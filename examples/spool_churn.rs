//! The spool lifecycle end to end on a real filesystem: a router under
//! BGP churn checkpoints crash-consistent epoch images, folds its
//! journal, prunes old checkpoints, survives a simulated bit-rot scrub,
//! and warm-restarts from the survivors — with the offline scanner
//! (`fibc spool-status`) reporting health at each stage.
//!
//! ```sh
//! cargo run --release --example spool_churn [SPOOL_DIR]
//! ```
//!
//! The spool directory (default `target/spool-churn`) is left on disk so
//! `fibc spool-status` and `fibc serve --spool` can be pointed at it.

use fibcomp::core::{BuildConfig, PrefixDag};
use fibcomp::router::{scan_spool, Router, RouterConfig, SpoolConfig, StdFs};
use fibcomp::trie::BinaryTrie;
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::updates::{bgp_sequence, UpdateOp};
use fibcomp::workload::{traces, FibSpec};

const FIB_SIZE: usize = 20_000;
const UPDATES: usize = 2_000;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/spool-churn".to_string());
    let _ = std::fs::remove_dir_all(&dir);

    let mut rng = Xoshiro256::seed_from_u64(7);
    let base: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);
    let updates = bgp_sequence(&mut rng, &base, UPDATES);
    let trace = traces::uniform::<u32, _>(&mut rng, 4_096);

    let mut router: Router<u32, PrefixDag<u32>> = Router::new(
        base,
        RouterConfig {
            build: BuildConfig::with_lambda(11),
            publish_every: Some(256), // each publish cuts a checkpoint
            degradation_threshold: 0.25,
            background_rebuild: false,
        },
    );
    let spool_cfg = SpoolConfig {
        keep: 2,
        ..SpoolConfig::default()
    };
    router
        .enable_spool_with(StdFs::shared(), &dir, spool_cfg)
        .expect("spool directory");
    println!("spool armed at {dir}");

    for op in &updates {
        match *op {
            UpdateOp::Announce(p, nh) => router.announce(p, nh),
            UpdateOp::Withdraw(p) => router.withdraw(p),
        }
    }
    router.publish();
    let fs = StdFs::shared();
    let status = scan_spool(fs.as_ref(), dir.as_ref()).expect("scan");
    println!("after churn:   {status}");
    assert_eq!(status.verdict(), "ok");
    assert!(
        status.images.len() <= spool_cfg.keep + 1,
        "retention must bound checkpoints, found {}",
        status.images.len()
    );
    assert!(router.spool_health().expect("armed").is_healthy());

    // Bit-rot the newest checkpoint in place; the scrub must quarantine
    // it with a typed reason and immediately re-spill the current epoch.
    let newest = status.images.first().expect("checkpoints exist");
    let mut bytes = std::fs::read(&newest.path).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest.path, &bytes).expect("rot checkpoint");
    let moved = router.scrub_spool();
    let status = scan_spool(fs.as_ref(), dir.as_ref()).expect("scan");
    println!("after scrub:   {status}");
    assert_eq!(moved, 1, "the rotted checkpoint is quarantined");
    assert_eq!(status.verdict(), "ok", "scrub re-spills a clean checkpoint");

    // Reboot from what is on disk and differentially check the recovered
    // FIB against the control plane that never died.
    let recovered = Router::<u32, PrefixDag<u32>>::warm_restart(
        &dir,
        RouterConfig {
            background_rebuild: false,
            ..RouterConfig::default()
        },
    )
    .expect("warm restart");
    let snapshot = recovered.snapshot();
    let mut diverged = 0usize;
    for &addr in &trace {
        if snapshot.lookup(addr) != router.control().lookup(addr) {
            diverged += 1;
        }
    }
    println!(
        "warm restart:  epoch {}, {} routes, {} probes, {diverged} divergences",
        recovered.epoch(),
        recovered.control().len(),
        trace.len()
    );
    assert_eq!(diverged, 0, "recovered FIB must answer like the original");
    println!("OK — spool left at {dir} for `fibc spool-status {dir}`");
}
