//! FIB entropy as a size predictor: sweep synthetic FIBs across their
//! entropy range and watch the compressed sizes track `E = 2n + n·H0`
//! while the uncompressed baselines do not.
//!
//! ```sh
//! cargo run --release --example entropy_explorer
//! ```

use fibcomp::core::{FibEntropy, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fibcomp::trie::{BinaryTrie, LcTrie};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::{FibSpec, LabelModel};

const N: usize = 50_000;
const DELTA: u32 = 16;

fn main() {
    println!("N = {N} prefixes, δ = {DELTA} next-hops, sweeping label entropy\n");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>8}",
        "H0(tgt)", "H0(leaf)", "I [KB]", "E [KB]", "XBW-b[KB]", "pDAG [KB]", "fib_trie[KB]", "ν"
    );

    for target in [0.2, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
        let spec = FibSpec {
            n_prefixes: N,
            max_len: 24,
            depth_bias: 0.3,
            labels: LabelModel::geometric_for_h0(DELTA, target),
            spatial_correlation: 0.0,
            default_route: false,
        };
        let mut rng = Xoshiro256::seed_from_u64((target * 1000.0) as u64);
        let trie: BinaryTrie<u32> = spec.generate(&mut rng);

        let metrics = FibEntropy::of_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, 11));
        let lc = LcTrie::from_trie(&trie);

        let kb = |bits: f64| bits / 8.0 / 1024.0;
        println!(
            "{:>8.2} {:>8.3} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>8.2}",
            target,
            metrics.h0,
            kb(metrics.info_bound_bits()),
            kb(metrics.entropy_bits()),
            xbw.size_bytes() as f64 / 1024.0,
            ser.size_bytes() as f64 / 1024.0,
            lc.kernel_model_bytes() as f64 / 1024.0,
            ser.size_bytes() as f64 * 8.0 / metrics.entropy_bits(),
        );
    }

    println!("\nReading the table:");
    println!("- I ignores the label distribution: flat except for the ⌈lg δ⌉ jumps;");
    println!("- E, XBW-b and pDAG all scale with the actual entropy H0;");
    println!("- the kernel-model fib_trie is an order of magnitude larger and");
    println!("  completely insensitive to H0 — the redundancy the paper eliminates.");
}
