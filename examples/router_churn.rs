//! A software router under BGP churn, on the control/data-plane split the
//! paper's §5 describes: a DFZ-sized FIB compressed with trie-folding
//! absorbs a live update feed through the control plane, the data plane
//! serves batched lookups from immutable epoch snapshots, and arena
//! fragmentation from λ-barrier refolds eventually triggers a background
//! compacting rebuild — all differentially checked against the
//! uncompressed control FIB throughout.
//!
//! ```sh
//! cargo run --release --example router_churn
//! ```

use fibcomp::core::{BuildConfig, PrefixDag};
use fibcomp::router::{Router, RouterConfig};
use fibcomp::trie::BinaryTrie;
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::updates::{bgp_sequence, UpdateOp};
use fibcomp::workload::{traces, FibSpec};
use std::time::Instant;

const FIB_SIZE: usize = 150_000;
const CHURN_BATCHES: usize = 10;
const UPDATES_PER_BATCH: usize = 2_000;
const LOOKUPS_PER_BATCH: usize = 200_000;
const LOOKUP_CHUNK: usize = 256;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(2024);
    println!("building a {FIB_SIZE}-prefix DFZ-like FIB…");
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None, // one epoch per churn batch below
        degradation_threshold: 0.002,
        background_rebuild: true,
    };
    let (mut router, build) = {
        let start = Instant::now();
        let router: Router<u32, PrefixDag<u32>> = Router::new(trie, config);
        (router, start.elapsed())
    };
    println!(
        "router up in {:.0} ms: epoch {} serving {} routes",
        build.as_secs_f64() * 1e3,
        router.epoch(),
        router.len(),
    );
    let mut data_plane = router.data_plane();

    let mut total_updates = 0usize;
    let mut total_lookups = 0usize;
    for batch in 1..=CHURN_BATCHES {
        // Control plane: absorb a burst of BGP updates, then cut an epoch.
        let updates = bgp_sequence(&mut rng, router.control(), UPDATES_PER_BATCH);
        let start = Instant::now();
        for op in &updates {
            match *op {
                UpdateOp::Announce(p, nh) => router.announce(p, nh),
                UpdateOp::Withdraw(p) => router.withdraw(p),
            }
        }
        router.publish();
        let upd_secs = start.elapsed().as_secs_f64();
        total_updates += updates.len();

        // Data plane: serve a burst of traffic in batches off the newest
        // snapshot (exactly what a forwarding thread would do).
        let keys = traces::uniform::<u32, _>(&mut rng, LOOKUPS_PER_BATCH);
        let snapshot = data_plane.snapshot();
        let start = Instant::now();
        let mut acc = 0u64;
        let mut out = [None; LOOKUP_CHUNK];
        for chunk in keys.chunks(LOOKUP_CHUNK) {
            snapshot.lookup_batch(chunk, &mut out);
            for nh in &out[..chunk.len()] {
                acc = acc.wrapping_add(u64::from(nh.map_or(0, |nh| nh.index())));
            }
        }
        std::hint::black_box(acc);
        let lk_secs = start.elapsed().as_secs_f64();
        total_lookups += keys.len();

        // Differential check against the control FIB.
        for &k in keys.iter().step_by(997) {
            assert_eq!(
                snapshot.lookup(k),
                router.control().lookup(k),
                "divergence at {k:#x}"
            );
        }
        println!(
            "batch {batch:>2}: epoch {:>2}, {:>6.1} Kupd/s, {:>5.2} Mlookup/s, {} routes live{}",
            snapshot.epoch(),
            UPDATES_PER_BATCH as f64 / upd_secs / 1e3,
            LOOKUPS_PER_BATCH as f64 / lk_secs / 1e6,
            router.len(),
            if router.rebuild_in_flight() {
                " (background rebuild in flight)"
            } else {
                ""
            },
        );
    }
    router.finish_rebuild(true);

    let stats = router.stats();
    println!("\nsurvived {total_updates} updates and {total_lookups} lookups with zero divergence");
    println!(
        "router stats: {} epochs, {} in-place updates, {} rebuilds ({} background, {} journal ops replayed)",
        stats.epochs, stats.in_place, stats.rebuilds, stats.background_rebuilds, stats.replayed,
    );
}
