//! A software router under BGP churn: a DFZ-sized FIB compressed with
//! trie-folding serves lookups while absorbing a live update feed, and the
//! folded form is differentially checked against the uncompressed control
//! FIB throughout.
//!
//! ```sh
//! cargo run --release --example router_churn
//! ```

use fibcomp::core::PrefixDag;
use fibcomp::trie::BinaryTrie;
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::updates::{bgp_sequence, UpdateOp};
use fibcomp::workload::{traces, FibSpec};
use std::time::Instant;

const FIB_SIZE: usize = 150_000;
const CHURN_BATCHES: usize = 10;
const UPDATES_PER_BATCH: usize = 2_000;
const LOOKUPS_PER_BATCH: usize = 200_000;

fn main() {
    let mut rng = Xoshiro256::seed_from_u64(2024);
    println!("building a {FIB_SIZE}-prefix DFZ-like FIB…");
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);

    let (dag, build) = {
        let start = Instant::now();
        let dag = PrefixDag::from_trie(&trie, 11);
        (dag, start.elapsed())
    };
    let stats = dag.stats();
    println!(
        "folded in {:.0} ms: {} live nodes ({} shared interiors), model size {} KB",
        build.as_secs_f64() * 1e3,
        stats.live_nodes,
        stats.folded_interior,
        dag.model_size_bits() / 8 / 1024,
    );

    let mut dag = dag;
    let mut total_updates = 0usize;
    let mut total_lookups = 0usize;
    for batch in 1..=CHURN_BATCHES {
        // Absorb a burst of BGP updates.
        let updates = bgp_sequence(&mut rng, dag.control(), UPDATES_PER_BATCH);
        let start = Instant::now();
        for op in &updates {
            match *op {
                UpdateOp::Announce(p, nh) => {
                    dag.insert(p, nh);
                }
                UpdateOp::Withdraw(p) => {
                    dag.remove(p);
                }
            }
        }
        let upd_secs = start.elapsed().as_secs_f64();
        total_updates += updates.len();

        // Serve a burst of traffic.
        let keys = traces::uniform::<u32, _>(&mut rng, LOOKUPS_PER_BATCH);
        let start = Instant::now();
        let mut acc = 0u64;
        for &k in &keys {
            acc = acc.wrapping_add(u64::from(dag.lookup(k).map_or(0, |nh| nh.index())));
        }
        std::hint::black_box(acc);
        let lk_secs = start.elapsed().as_secs_f64();
        total_lookups += keys.len();

        // Differential check against the control FIB.
        for &k in keys.iter().step_by(997) {
            assert_eq!(
                dag.lookup(k),
                dag.control().lookup(k),
                "divergence at {k:#x}"
            );
        }
        println!(
            "batch {batch:>2}: {:>6.1} Kupd/s, {:>5.2} Mlookup/s, {} routes live",
            UPDATES_PER_BATCH as f64 / upd_secs / 1e3,
            LOOKUPS_PER_BATCH as f64 / lk_secs / 1e6,
            dag.len(),
        );
    }

    println!("\nsurvived {total_updates} updates and {total_lookups} lookups with zero divergence");
    println!("final fold state: {:?}", dag.stats());
}
