//! IPv6 FIB compression — the paper's "we see no reasons why our
//! techniques could not be adapted to IPv6" (§7), demonstrated: the whole
//! stack is generic over the address width, so W = 128 works unchanged.
//!
//! ```sh
//! cargo run --release --example ipv6_fib
//! ```

use fibcomp::core::{FibEntropy, PrefixDag, XbwFib, XbwStorage};
use fibcomp::prelude::*;
use fibcomp::workload::rng::{Rng, Xoshiro256};
use fibcomp::workload::{FibSpec, LabelModel};

fn main() {
    // A synthetic IPv6 table: global unicast prefixes between /20 and /48.
    let spec = FibSpec {
        n_prefixes: 30_000,
        max_len: 48,
        depth_bias: 0.4,
        labels: LabelModel::Geometric {
            ratio: 0.5,
            delta: 8,
        },
        spatial_correlation: 0.0,
        default_route: false,
    };
    let mut rng = Xoshiro256::seed_from_u64(66);
    let trie: BinaryTrie<u128> = spec.generate(&mut rng);
    println!(
        "IPv6 FIB: {} prefixes, {} trie nodes",
        trie.len(),
        trie.node_count()
    );

    let metrics = FibEntropy::of_trie(&trie);
    println!(
        "normal form: n = {}, δ = {}, H0 = {:.3}",
        metrics.n_leaves, metrics.delta, metrics.h0
    );
    println!(
        "I = {:.1} KB, E = {:.1} KB",
        metrics.info_bound_bits() / 8192.0,
        metrics.entropy_bits() / 8192.0
    );

    // Compress with both engines. The barrier formula knows W = 128.
    let dag = PrefixDag::<u128>::with_entropy_barrier(&trie);
    let xbw = XbwFib::<u128>::build(&trie, XbwStorage::Entropy);
    println!(
        "\npDAG: λ = {} (Eq. 3), {:?}, model {:.1} KB",
        dag.lambda(),
        dag.stats(),
        dag.model_size_bits() as f64 / 8192.0
    );
    println!("XBW-b: {:.1} KB", xbw.size_bytes() as f64 / 1024.0);

    // Differential check over addresses inside and outside the table.
    let mut checked = 0u32;
    for _ in 0..50_000 {
        let addr: u128 = rng.random();
        assert_eq!(dag.lookup(addr), trie.lookup(addr));
        assert_eq!(xbw.lookup(addr), trie.lookup(addr));
        checked += 1;
    }
    println!("\n{checked} random 128-bit lookups agree across all engines ✓");

    // And a live update at depth > λ.
    let p: Prefix6 = "2001:db8:cafe::/48".parse().unwrap();
    let mut dag = dag;
    dag.insert(p, NextHop::new(7));
    let probe: u128 = "2001:db8:cafe::1"
        .parse::<std::net::Ipv6Addr>()
        .unwrap()
        .into();
    assert_eq!(dag.lookup(probe), Some(NextHop::new(7)));
    println!("inserted 2001:db8:cafe::/48 → nh7 into the folded form ✓");
}
