//! Quickstart: build a FIB, measure its entropy bounds, compress it three
//! ways, and verify every representation forwards identically.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fibcomp::core::{FibEngine, FibEntropy, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fibcomp::prelude::*;
use fibcomp::trie::LcTrie;

fn main() {
    // The running example of the paper's Fig. 1, scaled to IPv4.
    let routes = [
        ("0.0.0.0/0", 2u32),
        ("0.0.0.0/1", 3),
        ("0.0.0.0/2", 3),
        ("32.0.0.0/3", 2),
        ("64.0.0.0/2", 2),
        ("96.0.0.0/3", 1),
    ];
    let trie: BinaryTrie<u32> = routes
        .iter()
        .map(|&(p, nh)| (Prefix4::from_str(p).unwrap(), NextHop::new(nh)))
        .collect();
    println!(
        "FIB with {} routes ({} trie nodes)",
        trie.len(),
        trie.node_count()
    );

    // 1. The compressibility metrics of Section 2.
    let metrics = FibEntropy::of_trie(&trie);
    println!(
        "\nnormal form: n = {} leaves, t = {} nodes, δ = {}",
        metrics.n_leaves, metrics.t_nodes, metrics.delta
    );
    println!(
        "information-theoretic bound I = {:.0} bits",
        metrics.info_bound_bits()
    );
    println!(
        "FIB entropy               E = {:.1} bits (H0 = {:.3})",
        metrics.entropy_bits(),
        metrics.h0
    );

    // 2. Compress: XBW-b (entropy mode), prefix DAG (λ = 2), serialized DAG.
    let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 2);
    let ser = SerializedDag::from_dag(&dag);
    let lc = LcTrie::from_trie(&trie);
    println!("\n{:<18}{:>12}", "representation", "size");
    for engine in [&trie as &dyn FibEngine<u32>, &lc, &xbw, &dag, &ser] {
        println!("{:<18}{:>10} B", engine.name(), engine.size_bytes());
    }
    let stats = dag.stats();
    println!("\nprefix DAG structure: {stats:?}");

    // 3. Longest-prefix match agrees everywhere, including the paper's
    //    worked example: 0111… → next-hop 1.
    let addr = u32::from(std::net::Ipv4Addr::new(0b0111_0000, 0, 0, 1));
    let expected = trie.lookup(addr);
    println!(
        "\nlookup({}) = {:?}",
        std::net::Ipv4Addr::from(addr),
        expected
    );
    assert_eq!(expected, Some(NextHop::new(1)));
    for engine in [&trie as &dyn FibEngine<u32>, &lc, &xbw, &dag, &ser] {
        assert_eq!(engine.lookup(addr), expected, "{} disagrees", engine.name());
    }

    // 4. Updates on the compressed form: rewrite the default route — cheap,
    //    because it lives above the barrier — then verify.
    let mut dag = dag;
    dag.insert(Prefix4::from_str("0.0.0.0/0").unwrap(), NextHop::new(9));
    assert_eq!(dag.lookup(u32::MAX), Some(NextHop::new(9)));
    println!("\nupdated default route on the folded form: lookup(255.255.255.255) = nh9 ✓");
    println!("all representations agree — done.");
}
