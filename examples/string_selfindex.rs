//! Trie-folding as a *dynamic compressed string self-index* (§4.2/Fig. 4):
//! store a text as a folded complete binary trie, read any position
//! without decompressing, and rewrite positions in place.
//!
//! ```sh
//! cargo run --release --example string_selfindex
//! ```

use fibcomp::core::FoldedString;

fn main() {
    // Fig. 4's example.
    let text = "bananaba";
    let symbols: Vec<u16> = text.bytes().map(u16::from).collect();
    let fs = FoldedString::new(&symbols, 0);
    println!("\"{text}\" folded: {:?}", fs.stats());
    let third = char::from(fs.get(2) as u8);
    println!("random access: position 2 (key 010₂) = '{third}'");
    assert_eq!(third, 'n');

    // A highly repetitive text: folding is LZ78-like, so repetition
    // collapses dramatically.
    let long: String = "needle-haystack-".repeat(4096);
    let symbols: Vec<u16> = long.bytes().take(1 << 16).map(u16::from).collect();
    let mut fs = FoldedString::with_entropy_barrier(&symbols);
    let stats = fs.stats();
    println!(
        "\n64 KiB periodic text → {} distinct nodes ({} interiors, {} leaves), λ = {}",
        stats.live_nodes,
        stats.folded_interior,
        stats.folded_leaves,
        fs.lambda(),
    );
    println!(
        "model size: {} bytes ({}x smaller than raw)",
        fs.model_size_bits() / 8,
        symbols.len() * 8 * 8 / fs.model_size_bits().max(1),
    );
    for (i, &expect) in symbols.iter().enumerate().step_by(4999) {
        assert_eq!(fs.get(i), expect, "corrupted at {i}");
    }
    println!("spot-checked random access across the text ✓");

    // Dynamic updates: rewrite a window, read it back.
    let patch = b"COMPRESSED";
    for (i, &b) in patch.iter().enumerate() {
        fs.set(1000 + i, u16::from(b));
    }
    let read_back: String = (1000..1000 + patch.len())
        .map(|i| char::from(fs.get(i) as u8))
        .collect();
    println!("after in-place patch at offset 1000: \"{read_back}\"");
    assert_eq!(read_back.as_bytes(), patch);
    println!("new fold state: {:?}", fs.stats());
}
