//! Drives the committed lint corpus through `Router::warm_restart`: a
//! spool seeded with every hand-corrupted corpus image *newer* than one
//! honest checkpoint must quarantine each corrupt file with its typed
//! reason and serve the newest honest image — recovery never trusts
//! file freshness over structural integrity.

use std::fs;
use std::path::PathBuf;

use fibcomp::core::lint::lint_bytes;
use fibcomp::core::SerializedDag;
use fibcomp::router::{scan_spool, Router, RouterConfig, StdFs};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::traces;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// `(file, expected lint code)` pairs from the corpus MANIFEST.
fn manifest() -> Vec<(String, String)> {
    fs::read_to_string(corpus_dir().join("MANIFEST"))
        .expect("corpus MANIFEST")
        .lines()
        .filter_map(|line| {
            let (name, code) = line.split_once(' ')?;
            Some((name.to_string(), code.to_string()))
        })
        .collect()
}

fn epoch_name(epoch: u64) -> String {
    format!("epoch-{epoch:016x}.img")
}

#[test]
fn warm_restart_quarantines_the_whole_corrupt_corpus_and_serves_the_honest_image() {
    let spool = std::env::temp_dir().join(format!("fib-quarantine-{}", std::process::id()));
    let _ = fs::remove_dir_all(&spool);
    fs::create_dir_all(&spool).expect("spool dir");

    // Stage: every clean corpus image below the honest serialized
    // checkpoint (epoch 100), every corrupt image above it — so a naive
    // newest-first recovery would serve garbage 12 different ways.
    const HONEST_EPOCH: u64 = 100;
    let mut corrupt = Vec::new();
    let mut staged_older = 0u64;
    for (name, code) in manifest() {
        let bytes = fs::read(corpus_dir().join(&name)).expect("corpus file");
        if code == "clean" {
            if name == "clean-serialized.img" {
                fs::write(spool.join(epoch_name(HONEST_EPOCH)), &bytes).expect("stage honest");
            } else {
                staged_older += 1;
                fs::write(spool.join(epoch_name(staged_older)), &bytes).expect("stage clean");
            }
        } else {
            let epoch = 200 + corrupt.len() as u64;
            fs::write(spool.join(epoch_name(epoch)), &bytes).expect("stage corrupt");
            corrupt.push((epoch_name(epoch), name, code, bytes));
        }
    }
    assert!(corrupt.len() >= 10, "corpus shrank to {}", corrupt.len());

    let recovered = Router::<u32, SerializedDag<u32>>::warm_restart(
        &spool,
        RouterConfig {
            background_rebuild: false,
            ..RouterConfig::default()
        },
    )
    .expect("the honest image must still serve");

    // The newest *honest* image won, not the newest file.
    assert_eq!(recovered.epoch(), HONEST_EPOCH);
    assert_eq!(recovered.control().len(), 600);
    assert_eq!(recovered.health().quarantined, corrupt.len() as u64);
    let snapshot = recovered.snapshot();
    let trace = traces::uniform::<u32, _>(&mut Xoshiro256::seed_from_u64(9), 256);
    for &addr in &trace {
        assert_eq!(
            snapshot.lookup(addr),
            recovered.control().lookup(addr),
            "image-backed snapshot diverges at {addr:#010x}"
        );
    }

    // Every corrupt image moved to quarantine with a reason file whose
    // typed code matches what lint says about those exact bytes — and
    // the corpus MANIFEST's expected code is among the lint findings.
    let qdir = spool.join("quarantine");
    for (staged, original, expected_code, bytes) in &corrupt {
        assert!(
            !spool.join(staged).exists(),
            "{original}: corrupt image must leave the spool"
        );
        assert!(
            qdir.join(staged).exists(),
            "{original}: corrupt image must land in quarantine"
        );
        let reason = fs::read_to_string(qdir.join(format!("{staged}.reason")))
            .unwrap_or_else(|e| panic!("{original}: typed reason file: {e}"));
        let issues = lint_bytes(bytes);
        assert!(
            issues.iter().any(|i| i.code == expected_code),
            "{original}: MANIFEST code {expected_code} missing from lint: {issues:?}"
        );
        let first = &issues.first().expect("corrupt image lints dirty").code;
        assert!(
            reason.starts_with(&format!("{first}:")),
            "{original}: reason {reason:?} must carry the lint code {first}"
        );
    }

    // The offline scanner agrees with what recovery left behind.
    let status = scan_spool(StdFs::shared().as_ref(), &spool).expect("scan");
    assert_eq!(status.quarantined, corrupt.len());
    assert_eq!(status.newest_valid_epoch, Some(HONEST_EPOCH));
    assert_eq!(status.quarantine_reasons.len(), corrupt.len());

    let _ = fs::remove_dir_all(&spool);
}
