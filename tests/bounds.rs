//! Empirical validation of the paper's analytical claims: the size bounds
//! of Lemmas 2–3 and Theorems 1–2, and the update-complexity shape of
//! Theorem 3.

use fibcomp::core::{lambda, FibEntropy, FoldedString, PrefixDag, XbwFib, XbwStorage};
use fibcomp::trie::BinaryTrie;
use fibcomp::workload::rng::{Rng, Xoshiro256};
use fibcomp::workload::{FibSpec, LabelModel};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

fn bernoulli_symbols(n: usize, p: f64, seed: u64) -> Vec<u16> {
    let sampler = LabelModel::Bernoulli { p }.sampler();
    let mut r = rng(seed);
    (0..n)
        .map(|_| sampler.sample(&mut r).index() as u16)
        .collect()
}

#[test]
fn theorem1_info_bound_holds_across_alphabets() {
    // D(S) ≤ 4·n·lg δ + o(n) with the Eq. (2) barrier.
    let n = 1usize << 15;
    for delta in [2u64, 4, 8, 16] {
        let mut r = rng(delta);
        let symbols: Vec<u16> = (0..n).map(|_| r.random_range(0..delta) as u16).collect();
        let lam = lambda::barrier_info(n, delta as usize, 15);
        let fs = FoldedString::new(&symbols, lam);
        let bound = 4.0 * n as f64 * (delta as f64).log2();
        let measured = fs.model_size_bits() as f64;
        assert!(
            measured <= bound + 0.35 * n as f64,
            "Theorem 1 violated at δ={delta}: {measured} > {bound} + o(n)"
        );
    }
}

#[test]
fn theorem2_entropy_bound_holds_across_skew() {
    // E[|D(S)|] ≤ (6 + 2·lg(1/H0) + 2·lg lg δ)·H0·n + o(n) with Eq. (3).
    let n = 1usize << 15;
    for (i, p) in [0.02, 0.05, 0.1, 0.25, 0.5].iter().enumerate() {
        let symbols = bernoulli_symbols(n, *p, i as u64);
        let ones = symbols.iter().filter(|&&s| s == 1).count() as u64;
        let h0 = fib_entropy(&[ones, n as u64 - ones]);
        let lam = lambda::barrier_entropy(n, h0, 15);
        let fs = FoldedString::new(&symbols, lam);
        let factor = 6.0 + 2.0 * (1.0 / h0).log2().max(0.0) + 2.0 * 1.0f64.max(1.0);
        let bound = factor * h0 * n as f64;
        let measured = fs.model_size_bits() as f64;
        assert!(
            measured <= bound + 0.5 * n as f64,
            "Theorem 2 violated at p={p}: {measured} > {bound} + o(n) (H0={h0:.3}, λ={lam})"
        );
    }
}

fn fib_entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

#[test]
fn xbw_succinct_meets_lemma2_bound() {
    // Lemma 2: 2n + n·lg δ bits, up to the o(n) rank directory.
    let trie: BinaryTrie<u32> = FibSpec {
        n_prefixes: 30_000,
        max_len: 24,
        depth_bias: 0.3,
        labels: LabelModel::Uniform { delta: 8 },
        spatial_correlation: 0.0,
        default_route: false,
    }
    .generate(&mut rng(20));
    let metrics = FibEntropy::of_trie(&trie);
    let xbw = XbwFib::build(&trie, XbwStorage::Succinct);
    let measured = xbw.size_report().total_bits() as f64;
    let bound = metrics.info_bound_bits();
    assert!(
        measured <= bound * 1.45 + 2048.0,
        "Lemma 2: {measured} bits vs I = {bound} (+ directory overhead)"
    );
}

#[test]
fn xbw_entropy_tracks_lemma3_bound() {
    // Lemma 3: 2n + n·H0 + o(n) bits on a skewed FIB.
    let trie: BinaryTrie<u32> = FibSpec {
        n_prefixes: 40_000,
        max_len: 24,
        depth_bias: 0.3,
        labels: LabelModel::geometric_for_h0(16, 0.8),
        spatial_correlation: 0.0,
        default_route: false,
    }
    .generate(&mut rng(21));
    let metrics = FibEntropy::of_trie(&trie);
    let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
    let measured = xbw.size_report().total_bits() as f64;
    let bound = metrics.entropy_bits();
    assert!(
        measured <= bound * 1.5 + 4096.0,
        "Lemma 3: {measured} bits vs E = {bound}"
    );
    // And the entropy mode must actually beat the succinct mode here.
    let succinct = XbwFib::build(&trie, XbwStorage::Succinct);
    assert!(measured < succinct.size_report().total_bits() as f64);
}

#[test]
fn pdag_compact_within_constant_of_entropy() {
    // The end-to-end ν of Table 1/Fig. 6: pDAG within a small constant
    // (≈ 2–5×) of the entropy bound on realistic FIBs.
    for target_h0 in [0.8, 1.5, 3.0] {
        let trie: BinaryTrie<u32> = FibSpec {
            n_prefixes: 50_000,
            max_len: 24,
            depth_bias: 0.35,
            labels: LabelModel::geometric_for_h0(16, target_h0),
            spatial_correlation: 0.0,
            default_route: false,
        }
        .generate(&mut rng((target_h0 * 10.0) as u64));
        let metrics = FibEntropy::of_trie(&trie);
        let dag = PrefixDag::with_entropy_barrier(&trie);
        let nu = dag.model_size_bits() as f64 / metrics.entropy_bits();
        assert!(
            nu < 6.0,
            "ν = {nu:.2} out of range at H0 = {target_h0} (λ = {})",
            dag.lambda()
        );
    }
}

#[test]
fn update_cost_scales_with_two_to_w_minus_p() {
    // Theorem 3 shape check, counting folded-arena churn instead of time:
    // an update at a longer prefix must touch far fewer nodes.
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(60_000).generate(&mut rng(30));
    let dag = PrefixDag::from_trie(&trie, 8);
    let work = |p_len: u8| -> usize {
        let mut d = dag.clone();
        let before = d.stats().live_nodes;
        d.insert(
            fibcomp::trie::Prefix4::new(0x0A0A_0A0A, p_len),
            fibcomp::trie::NextHop::new(3),
        );
        let after = d.stats().live_nodes;
        before.abs_diff(after)
    };
    // Churn at /28 must be no larger than churn at /9 (usually far less);
    // use max over a few prefixes to damp luck.
    let shallow: usize = (9..12).map(work).max().unwrap();
    let deep: usize = (26..29).map(work).max().unwrap();
    assert!(
        deep <= shallow.max(8) * 4,
        "deep updates ({deep} nodes) should not dwarf shallow ones ({shallow})"
    );
}

#[test]
fn lambda_formulas_land_in_the_papers_flat_region() {
    // §5.1: the good region is 5 ≤ λ ≤ 12 for DFZ-scale FIBs. Eq. (3)
    // with realistic n and H0 must land in or near it.
    for n_leaves in [300_000usize, 700_000] {
        for h0 in [1.0f64, 2.0, 4.0] {
            let l = lambda::barrier_entropy(n_leaves, h0, 32);
            assert!(
                (5..=17).contains(&l),
                "λ = {l} for n = {n_leaves}, H0 = {h0}"
            );
        }
    }
}
