//! Multi-tenant VRF sets: canonical-form interning properties and
//! differential checks of every VRF against its uncompressed oracle.
//!
//! Two families of guarantees back the shared-arena compiler:
//!
//! * **Interning counts** — hash-consing is observable through
//!   [`fibcomp::core::VrfSetStats`]: a duplicated table contributes zero
//!   new unique nodes and lands on the *same* arena root, and the unique
//!   count never exceeds the sum of standalone folded sizes.
//! * **Answer equivalence** — every compiled VRF answers bit-identically
//!   to its own `BinaryTrie` oracle, for IPv4 and IPv6, under uniform and
//!   Zipf key streams, both scalar and through the VRF-bucketed batch
//!   path, and across a rebuild running on a background thread.

use std::collections::BTreeMap;

use fibcomp::core::{compile_vrf_set, BuildConfig, VrfPolicy, VrfTable};
use fibcomp::router::{VrfBatchScratch, VrfSetRouter};
use fibcomp::trie::{Address, BinaryTrie, NextHop, Prefix};
use fibcomp::workload::rng::{Rng, Xoshiro256};
use fibcomp::workload::traces::{self, ZipfTrace};
use fibcomp::workload::{FibSpec, VrfFleetSpec};

const CASES: u64 = 16;

fn arb_prefix<A: Address>(rng: &mut impl Rng) -> Prefix<A> {
    let addr = A::from_u128(rng.random::<u128>() >> (128 - u32::from(A::WIDTH)));
    Prefix::new(addr, rng.random_range(0..=u32::from(A::WIDTH)) as u8)
}

fn arb_routes<A: Address>(rng: &mut impl Rng, max: usize) -> Vec<(Prefix<A>, NextHop)> {
    let n = rng.random_range(1..max);
    (0..n)
        .map(|_| (arb_prefix(rng), NextHop::new(rng.random_range(0..6u32))))
        .collect()
}

/// Folded node count of a table compiled on its own (a one-table set).
fn solo_nodes<A: Address>(trie: &BinaryTrie<A>, config: &BuildConfig) -> u64 {
    let tables = [VrfTable { id: 0, trie }];
    compile_vrf_set(&tables, config, &VrfPolicy::Shared)
        .stats
        .unique_nodes
}

#[test]
fn interning_counts_hold_for_arbitrary_overlapping_tables() {
    let config = BuildConfig::default();
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("vrf_interning_counts", case);
        // Three tables over a shared base plus private deltas, and a
        // fourth that is an exact clone of the second.
        let base: Vec<(Prefix<u32>, NextHop)> = arb_routes(&mut rng, 160);
        let mut tries: Vec<BinaryTrie<u32>> = Vec::new();
        for _ in 0..3 {
            let mut t: BinaryTrie<u32> = base.iter().copied().collect();
            for (p, nh) in arb_routes::<u32>(&mut rng, 24) {
                t.insert(p, nh);
            }
            tries.push(t);
        }
        tries.push(tries[1].clone());

        let tables: Vec<VrfTable<'_, u32>> = tries
            .iter()
            .enumerate()
            .map(|(i, trie)| VrfTable { id: i as u32, trie })
            .collect();
        let set = compile_vrf_set(&tables, &config, &VrfPolicy::Shared);

        // A duplicated table is a pure alias: same root, zero new nodes.
        assert_eq!(
            set.tables[1].root, set.tables[3].root,
            "case {case}: clone of table 1 must intern to the same root"
        );
        let without_clone = compile_vrf_set(&tables[..3], &config, &VrfPolicy::Shared);
        assert_eq!(
            set.stats.unique_nodes, without_clone.stats.unique_nodes,
            "case {case}: adding a clone must not grow the arena"
        );

        // Interning can only remove nodes relative to standalone folds,
        // and the per-table view of the arena is exactly the standalone
        // fold (canonical forms are unique).
        let solo: u64 = tries.iter().map(|t| solo_nodes(t, &config)).sum();
        assert!(
            set.stats.unique_nodes <= solo,
            "case {case}: unique {} exceeds standalone sum {solo}",
            set.stats.unique_nodes
        );
        assert_eq!(
            set.stats.total_nodes, solo,
            "case {case}: per-table reachable counts must match standalone folds"
        );
        assert!(
            set.stats.sharing_ratio() >= 1.0,
            "case {case}: sharing ratio below 1"
        );
    }
}

#[test]
fn identical_fleets_collapse_to_one_table() {
    let mut rng = Xoshiro256::for_case("vrf_identical_fleet", 0);
    let base: BinaryTrie<u32> = FibSpec::dfz_like(400).generate(&mut rng);
    // overlap = 1.0 → zero churn events: every VRF is bit-identical.
    let fleet = VrfFleetSpec {
        tables: 6,
        overlap: 1.0,
        seed: 7,
    }
    .generate(&base);
    let tables: Vec<VrfTable<'_, u32>> = fleet
        .iter()
        .enumerate()
        .map(|(i, trie)| VrfTable { id: i as u32, trie })
        .collect();
    let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
    assert_eq!(
        set.stats.unique_nodes,
        solo_nodes(&base, &BuildConfig::default())
    );
    for t in &set.tables[1..] {
        assert_eq!(t.root, set.tables[0].root);
    }
    assert!((set.stats.sharing_ratio() - 6.0).abs() < 1e-9);
}

/// Uniform and per-table Zipf keys for a fleet, tagged with VRF ids.
fn fleet_keys<A: Address>(
    oracles: &BTreeMap<u32, BinaryTrie<A>>,
    rng: &mut impl Rng,
    per_vrf: usize,
) -> Vec<(u32, A)> {
    let mut keys = Vec::new();
    for (&vrf, trie) in oracles {
        for addr in traces::uniform::<A, _>(rng, per_vrf) {
            keys.push((vrf, addr));
        }
        let zipf = ZipfTrace::new(trie, 1.0);
        for _ in 0..per_vrf {
            keys.push((vrf, zipf.sample(rng)));
        }
    }
    // Shuffle so the batch path sees interleaved VRFs, not sorted runs.
    for i in (1..keys.len()).rev() {
        let j = rng.random_range(0..=i as u64) as usize;
        keys.swap(i, j);
    }
    keys
}

/// Every key answered by the snapshot — scalar and batch — must match
/// the uncompressed oracle for its VRF.
fn assert_matches_oracles<A: Address + Send + Sync + 'static>(
    snapshot: &fibcomp::router::VrfSnapshot<A>,
    oracles: &BTreeMap<u32, BinaryTrie<A>>,
    keys: &[(u32, A)],
    tag: &str,
) {
    for &(vrf, addr) in keys {
        assert_eq!(
            snapshot.lookup(vrf, addr),
            oracles[&vrf].lookup(addr),
            "{tag}: vrf {vrf} addr {:#x}",
            addr.to_u128()
        );
    }
    let mut out = vec![None; keys.len()];
    let mut scratch = VrfBatchScratch::new();
    snapshot.lookup_batch(keys, &mut out, &mut scratch);
    for (&(vrf, addr), got) in keys.iter().zip(&out) {
        assert_eq!(
            *got,
            oracles[&vrf].lookup(addr),
            "{tag} batch: vrf {vrf} addr {:#x}",
            addr.to_u128()
        );
    }
}

fn differential_across_rebuild<A: Address + Send + Sync + 'static>(tag: &str) {
    let mut rng = Xoshiro256::for_case("vrf_differential", 0);
    let base: BinaryTrie<A> = FibSpec::dfz_like(500).generate(&mut rng);
    let fleet = VrfFleetSpec {
        tables: 6,
        overlap: 0.9,
        seed: 0xF1B,
    }
    .generate(&base);

    let mut router: VrfSetRouter<A> = VrfSetRouter::new(BuildConfig::default(), VrfPolicy::Shared);
    let mut oracles: BTreeMap<u32, BinaryTrie<A>> = BTreeMap::new();
    for (i, table) in fleet.into_iter().enumerate() {
        oracles.insert(i as u32, table.clone());
        router.insert_vrf(i as u32, table);
    }
    let snapshot = router.publish();
    let keys = fleet_keys(&oracles, &mut rng, 64);
    assert_matches_oracles(&snapshot, &oracles, &keys, &format!("{tag} initial"));

    // Mutate half the fleet, then compile the new set on a background
    // thread while the published snapshot keeps serving the old answers.
    for vrf in [0u32, 2, 4] {
        for (p, nh) in arb_routes::<A>(&mut rng, 20) {
            router.announce(vrf, p, nh);
            oracles.get_mut(&vrf).unwrap().insert(p, nh);
        }
        let victim = oracles[&vrf].iter().next().map(|(p, _)| p);
        if let Some(p) = victim {
            router.withdraw(vrf, p);
            oracles.get_mut(&vrf).unwrap().remove(p);
        }
    }
    let job = router.begin_rebuild();
    let worker = std::thread::spawn(move || job.run());
    // Old snapshot stays valid mid-rebuild: re-check a slice of the keys
    // against pre-mutation oracles via the snapshot we already hold.
    for &(vrf, addr) in keys.iter().take(200) {
        let _ = snapshot.lookup(vrf, addr); // must not tear or panic
    }
    let rebuilt = worker.join().expect("rebuild thread panicked");
    router.install(rebuilt).expect("rebuild went stale");

    let mut reader = router.reader();
    let fresh_keys = fleet_keys(&oracles, &mut rng, 64);
    assert_matches_oracles(
        reader.snapshot(),
        &oracles,
        &fresh_keys,
        &format!("{tag} post-rebuild"),
    );
}

#[test]
fn every_vrf_matches_its_oracle_across_a_background_rebuild_v4() {
    differential_across_rebuild::<u32>("v4");
}

#[test]
fn every_vrf_matches_its_oracle_across_a_background_rebuild_v6() {
    differential_across_rebuild::<u128>("v6");
}
