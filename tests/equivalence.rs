//! Cross-crate differential tests: every representation in the workspace
//! must compute the same longest-prefix-match function, on FIBs of every
//! shape the workload generators can produce.

use fibcomp::core::{
    FibEngine, MultibitDag, PrefixDag, SerializedDag, VarStrideDag, VsParams, XbwFib, XbwStorage,
};
use fibcomp::trie::{ortc, BinaryTrie, LcTrie, NextHop, ProperTrie, RouteTable};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::{traces, FibSpec, LabelModel};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

/// Builds every engine over `trie` and checks they agree on `keys`, both
/// one address at a time and through the batched data-plane entry point
/// (which the flat-layout engines override with interleaved walks).
fn check_all_engines(trie: &BinaryTrie<u32>, keys: &[u32]) {
    let table: RouteTable<u32> = trie.iter().collect();
    let proper = ProperTrie::from_trie(trie);
    proper.assert_invariants();
    let lc_half = LcTrie::with_params(trie, 0.5, 16);
    let lc_full = LcTrie::with_params(trie, 1.0, 8);
    let xbw_s = XbwFib::build(trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(trie, XbwStorage::Entropy);
    let dag0 = PrefixDag::from_trie(trie, 0);
    let dag11 = PrefixDag::from_trie(trie, 11);
    let dag_eq3 = PrefixDag::with_entropy_barrier(trie);
    dag0.assert_invariants();
    dag11.assert_invariants();
    dag_eq3.assert_invariants();
    let ser0 = SerializedDag::from_dag(&dag0);
    let ser11 = SerializedDag::from_dag(&dag11);
    let mb4 = MultibitDag::from_trie(trie, 4);
    let mb8 = MultibitDag::from_trie(trie, 8);
    let vs = VarStrideDag::from_trie(trie, VsParams::default());
    // Heat-weighted build: skew all traffic onto the first probe keys'
    // /12 classes. The DP may pick wildly different strides, but the
    // forwarding function must not move.
    let heat: Vec<(u64, u64)> = keys
        .iter()
        .take(64)
        .map(|&k| ((u64::from(k) << 32) & (u64::MAX << 52), 7u64))
        .collect();
    let vs_hot = VarStrideDag::from_trie_weighted(
        trie,
        VsParams {
            max_stride: 6,
            budget: f64::INFINITY,
        },
        Some((&heat, 12)),
    );
    let aggregated = ortc::compress(trie);

    let engines: Vec<&dyn FibEngine<u32>> = vec![
        trie, &proper, &lc_half, &lc_full, &xbw_s, &xbw_e, &dag0, &dag11, &dag_eq3, &ser0, &ser11,
        &mb4, &mb8, &vs, &vs_hot,
    ];
    for &key in keys {
        let expected = table.lookup(key);
        for engine in &engines {
            assert_eq!(
                engine.lookup(key),
                expected,
                "{} diverges from the oracle at {key:#010x}",
                engine.name()
            );
        }
        assert_eq!(
            aggregated.lookup(key),
            expected,
            "ORTC diverges at {key:#010x}"
        );
    }
    // Batched lookups must agree with per-address lookups on every engine
    // — including the RouteTable oracle running the default loop impl.
    let mut out = vec![Some(NextHop::new(u32::MAX - 1)); keys.len()];
    for engine in engines
        .iter()
        .copied()
        .chain([&table as &dyn FibEngine<u32>])
    {
        out.fill(Some(NextHop::new(u32::MAX - 1))); // poison every slot
        engine.lookup_batch(keys, &mut out);
        for (&key, &got) in keys.iter().zip(&out) {
            assert_eq!(
                got,
                engine.lookup(key),
                "{} batch diverges at {key:#010x}",
                engine.name()
            );
        }
    }
}

fn probe_keys(trie: &BinaryTrie<u32>, seed: u64, count: usize) -> Vec<u32> {
    let mut r = rng(seed);
    let mut keys = traces::uniform::<u32, _>(&mut r, count);
    // Adversarial keys: the exact prefix boundaries of every route, and
    // the addresses just before/after each covered block.
    for (p, _) in trie.iter().take(500) {
        keys.push(p.addr());
        keys.push(p.addr().wrapping_sub(1));
        if p.len() > 0 {
            let width = 32 - u32::from(p.len());
            let last = p.addr() | ((1u64 << width) - 1) as u32;
            keys.push(last);
            keys.push(last.wrapping_add(1));
        }
    }
    keys
}

#[test]
fn dfz_like_fib() {
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(20_000).generate(&mut rng(1));
    let keys = probe_keys(&trie, 2, 4000);
    check_all_engines(&trie, &keys);
}

#[test]
fn access_like_fib_with_default_and_skew() {
    let spec = FibSpec {
        n_prefixes: 8_000,
        max_len: 32,
        depth_bias: 0.6,
        labels: LabelModel::geometric_for_h0(28, 1.06),
        spatial_correlation: 0.0,
        default_route: true,
    };
    let trie: BinaryTrie<u32> = spec.generate(&mut rng(3));
    check_all_engines(&trie, &probe_keys(&trie, 4, 3000));
}

#[test]
fn bernoulli_low_entropy_fib() {
    let spec = FibSpec {
        n_prefixes: 5_000,
        max_len: 24,
        depth_bias: 0.0,
        labels: LabelModel::Bernoulli { p: 0.02 },
        spatial_correlation: 0.0,
        default_route: false,
    };
    let trie: BinaryTrie<u32> = spec.generate(&mut rng(5));
    check_all_engines(&trie, &probe_keys(&trie, 6, 3000));
}

#[test]
fn tiny_fibs_and_degenerate_shapes() {
    // Empty.
    check_all_engines(&BinaryTrie::new(), &[0, 1, u32::MAX, 0x8000_0000]);
    // Default only.
    let mut t = BinaryTrie::new();
    t.insert("0.0.0.0/0".parse().unwrap(), fibcomp::trie::NextHop::new(1));
    check_all_engines(&t, &[0, u32::MAX, 42]);
    // One host route.
    let mut t = BinaryTrie::new();
    t.insert(
        "1.2.3.4/32".parse().unwrap(),
        fibcomp::trie::NextHop::new(2),
    );
    check_all_engines(&t, &[0x0102_0304, 0x0102_0305, 0x0102_0303, 0]);
    // Two maximally separated routes.
    let mut t = BinaryTrie::new();
    t.insert("0.0.0.0/1".parse().unwrap(), fibcomp::trie::NextHop::new(1));
    t.insert(
        "128.0.0.0/1".parse().unwrap(),
        fibcomp::trie::NextHop::new(2),
    );
    check_all_engines(&t, &[0, 0x7FFF_FFFF, 0x8000_0000, u32::MAX]);
}

#[test]
fn nested_chains_exercise_deep_paths() {
    // A chain of ever-more-specific routes flipping between two labels:
    // worst case for leaf-pushing depth and fall-through handling.
    let mut t = BinaryTrie::new();
    for len in 0..=32u8 {
        let nh = fibcomp::trie::NextHop::new(u32::from(len % 2));
        t.insert(fibcomp::trie::Prefix4::new(0, len), nh);
    }
    let keys: Vec<u32> = (0..33)
        .map(|b| if b == 32 { 0 } else { 1u32 << b })
        .collect();
    check_all_engines(&t, &keys);
}

#[test]
fn ortc_output_recompresses_equivalently() {
    // ORTC then re-encoding with the compressed engines must preserve the
    // forwarding function end-to-end.
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(3_000).generate(&mut rng(7));
    let aggregated = ortc::compress(&trie);
    if let Some(rebuilt) = aggregated.to_trie() {
        let keys = probe_keys(&trie, 8, 2000);
        let dag = PrefixDag::from_trie(&rebuilt, 11);
        for key in keys {
            assert_eq!(dag.lookup(key), trie.lookup(key), "at {key:#x}");
        }
    }
}

// ---------------------------------------------------------------------
// IPv6: the same differential guarantee over u128 addresses
// ---------------------------------------------------------------------

/// Builds every engine over a u128 trie and checks scalar + batched
/// agreement — the coverage gap the IPv4-only suite above left open.
fn check_all_engines_v6(trie: &fibcomp::trie::BinaryTrie<u128>, keys: &[u128]) {
    use fibcomp::trie::BinaryTrie;
    let table: RouteTable<u128> = trie.iter().collect();
    let proper = ProperTrie::from_trie(trie);
    let lc = LcTrie::with_params(trie, 0.5, 16);
    let xbw_s = XbwFib::build(trie, XbwStorage::Succinct);
    let xbw_e = XbwFib::build(trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(trie, 24);
    let ser = SerializedDag::from_dag(&dag);
    let mb = MultibitDag::from_trie(trie, 8);
    let vs = VarStrideDag::from_trie(trie, VsParams::default());
    let engines: Vec<&dyn FibEngine<u128>> = vec![
        trie as &BinaryTrie<u128>,
        &proper,
        &lc,
        &xbw_s,
        &xbw_e,
        &dag,
        &ser,
        &mb,
        &vs,
    ];
    for &key in keys {
        let expected = table.lookup(key);
        for engine in &engines {
            assert_eq!(
                engine.lookup(key),
                expected,
                "{} diverges from the oracle at {key:#034x}",
                engine.name()
            );
        }
    }
    let mut out = vec![Some(NextHop::new(u32::MAX - 1)); keys.len()];
    for engine in &engines {
        out.fill(Some(NextHop::new(u32::MAX - 1)));
        engine.lookup_batch(keys, &mut out);
        for (&key, &got) in keys.iter().zip(&out) {
            assert_eq!(
                got,
                engine.lookup(key),
                "{} batch diverges at {key:#034x}",
                engine.name()
            );
        }
    }
}

#[test]
fn ipv6_fib_all_engines() {
    use fibcomp::workload::rng::Rng;
    let mut trie: fibcomp::trie::BinaryTrie<u128> = fibcomp::trie::BinaryTrie::new();
    trie.insert(
        "::/0".parse::<fibcomp::trie::Prefix6>().unwrap(),
        NextHop::new(0),
    );
    let mut r = rng(60);
    for i in 0..4_000u64 {
        // 2001:db8::/32-rooted allocations with BGP-ish v6 lengths.
        let base = (0x2001_0db8u128 << 96) | (u128::from(i) << 72);
        let len = [32u8, 40, 44, 48, 56, 64][(r.random::<u64>() % 6) as usize];
        trie.insert(
            fibcomp::trie::Prefix::new(base | (u128::from(r.random::<u64>()) << 16), len),
            NextHop::new((r.random::<u64>() % 14) as u32),
        );
    }
    let mut keys = traces::uniform::<u128, _>(&mut rng(61), 2_000);
    // Half the probes inside the routed region, plus exact boundaries.
    for (i, key) in keys.iter_mut().enumerate().take(1_000) {
        *key = (0x2001_0db8u128 << 96) | ((i as u128) << 72) | (*key & ((1u128 << 72) - 1));
    }
    for (p, _) in trie.iter().take(300) {
        keys.push(p.addr());
        keys.push(p.addr().wrapping_sub(1));
    }
    check_all_engines_v6(&trie, &keys);
}

#[test]
fn ipv6_host_routes_and_deep_chains() {
    let mut trie: fibcomp::trie::BinaryTrie<u128> = fibcomp::trie::BinaryTrie::new();
    for len in (0..=128u8).step_by(16) {
        trie.insert(
            fibcomp::trie::Prefix::new(u128::MAX, len),
            NextHop::new(u32::from(len % 3)),
        );
    }
    let keys: Vec<u128> = (0..128u32)
        .map(|b| u128::MAX ^ (1u128 << b))
        .chain([0u128, u128::MAX])
        .collect();
    check_all_engines_v6(&trie, &keys);
}
