//! End-to-end pipeline test: a FIB travels through every interchange
//! format in the workspace — text routes → trie → aggregation →
//! compression → binary image → decode — and still forwards identically.

use fibcomp::core::{PrefixDag, SerializedDag};
use fibcomp::trie::{io, ortc, BinaryTrie};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::{traces, FibSpec};

#[test]
fn text_to_wire_image_roundtrip() {
    let mut rng = Xoshiro256::seed_from_u64(99);
    let original: BinaryTrie<u32> = FibSpec::dfz_like(5_000).generate(&mut rng);

    // 1. Export to the tabular text format and re-import.
    let text = io::format_routes(original.iter());
    let reimported: BinaryTrie<u32> = io::parse_routes::<u32>(&text)
        .expect("own output parses")
        .into_iter()
        .collect();

    // 2. Aggregate with ORTC, rebuild a trie from the minimal route set.
    let aggregated = ortc::compress(&reimported);
    let minimal = aggregated
        .to_trie()
        .expect("partition FIBs need no blackhole entries");
    assert!(minimal.len() <= reimported.len());

    // 3. Fold, serialize to the wire image, encode to bytes, decode.
    let dag = PrefixDag::from_trie(&minimal, 11);
    let blob = SerializedDag::from_dag(&dag).to_bytes();
    let wire = SerializedDag::<u32>::from_bytes(&blob).expect("blob decodes");

    // 4. The decoded image forwards exactly like the original FIB.
    let keys = traces::uniform::<u32, _>(&mut rng, 5_000);
    for k in keys {
        assert_eq!(
            wire.lookup(k),
            original.lookup(k),
            "divergence at {k:#010x}"
        );
    }
}

#[test]
fn updates_survive_the_pipeline() {
    // Updates applied to the DAG must be visible after image export.
    let mut rng = Xoshiro256::seed_from_u64(100);
    let base: BinaryTrie<u32> = FibSpec::dfz_like(2_000).generate(&mut rng);
    let mut dag = PrefixDag::from_trie(&base, 11);
    let updates = fibcomp::workload::updates::bgp_sequence(&mut rng, &base, 1_000);
    for op in &updates {
        match *op {
            fibcomp::workload::updates::UpdateOp::Announce(p, nh) => {
                dag.insert(p, nh);
            }
            fibcomp::workload::updates::UpdateOp::Withdraw(p) => {
                dag.remove(p);
            }
        }
    }
    let blob = SerializedDag::from_dag(&dag).to_bytes();
    let wire = SerializedDag::<u32>::from_bytes(&blob).expect("blob decodes");
    for k in traces::uniform::<u32, _>(&mut rng, 3_000) {
        assert_eq!(wire.lookup(k), dag.control().lookup(k), "at {k:#010x}");
    }
}
