//! Traffic-aware hot-layout guarantees.
//!
//! The hot slab is an *optimization*, never a semantic change: a
//! [`HotFib`] must be extensionally equal to the engine it fronts — on
//! uniform, Zipf-skewed, and adversarial boundary keys, for v4 and v6 —
//! because compilation only promotes blocks whose every address shares one
//! longest-prefix-match answer. And the heat pipeline feeding it must be
//! deterministic: a seeded trace pushed through per-worker sketches merges
//! to a pinned fingerprint, so the same traffic always compiles the same
//! slab.

use fibcomp::core::{
    FibLookup, HotConfig, HotFib, HotSlab, MultibitDag, PrefixDag, SerializedDag, XbwFib,
    XbwStorage,
};
use fibcomp::trie::{Address, BinaryTrie, LcTrie, NextHop};
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::{traces, FibSpec, HeatMap, HeatSummary};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

/// Wraps `engine` with `slab` and checks the composite is bit-identical to
/// the bare engine on `keys`, through every lookup entry point.
fn assert_twin<A: Address, E: FibLookup<A>>(engine: E, slab: &HotSlab, keys: &[A]) {
    let hot = HotFib::new(engine, slab.clone());
    let plain = hot.inner();
    for &key in keys {
        assert_eq!(
            hot.lookup(key),
            plain.lookup(key),
            "{} hot/plain single-lookup divergence",
            plain.name()
        );
    }
    let poison = Some(NextHop::new(u32::MAX - 1));
    let mut want = vec![poison; keys.len()];
    let mut got = vec![poison; keys.len()];
    plain.lookup_batch(keys, &mut want);
    hot.lookup_batch(keys, &mut got);
    assert_eq!(got, want, "{} hot/plain batch divergence", plain.name());
    got.fill(poison);
    hot.lookup_stream(keys, &mut got);
    assert_eq!(got, want, "{} hot/plain stream divergence", plain.name());
}

/// Uniform + Zipf + adversarial boundary keys for `trie`.
fn probe_keys<A: Address>(trie: &BinaryTrie<A>, seed: u64, zipf: &[A]) -> Vec<A> {
    let mut keys = traces::uniform::<A, _>(&mut rng(seed), 2_000);
    keys.extend_from_slice(zipf);
    let width_mask = if A::WIDTH == 128 {
        u128::MAX
    } else {
        (1u128 << A::WIDTH) - 1
    };
    for (p, _) in trie.iter().take(400) {
        keys.push(p.addr());
        keys.push(A::from_u128(
            p.addr().to_u128().wrapping_sub(1) & width_mask,
        ));
        keys.push(A::from_u128(
            p.addr().to_u128().wrapping_add(1) & width_mask,
        ));
    }
    keys
}

/// Builds every flat-layout engine over `trie` and runs the hot/plain
/// twin check on all of them with one shared slab.
fn check_hot_layouts<A: Address>(trie: &BinaryTrie<A>, config: &HotConfig, seed: u64) {
    let zipf = traces::ZipfTrace::new(trie, 1.0).generate(&mut rng(seed), 4_000);
    let heat = HeatSummary::sample_addrs(config.depth, zipf.iter().copied());
    let (slab, stats) = HotSlab::compile(trie, heat.entries(), config);
    assert!(
        stats.promoted > 0,
        "a skewed trace over a DFZ-like FIB must promote some blocks"
    );
    let keys = probe_keys(trie, seed ^ 0x5EED, &zipf);
    // The slab must actually participate: skewed keys should hit it.
    let hits = keys
        .iter()
        .filter(|&&k| slab.as_ref().probe_addr(k).is_some())
        .count();
    assert!(hits > 0, "no probe key hit the slab — test is vacuous");

    let dag = PrefixDag::from_trie(trie, 11);
    assert_twin(LcTrie::with_params(trie, 0.5, 16), &slab, &keys);
    assert_twin(XbwFib::build(trie, XbwStorage::Succinct), &slab, &keys);
    assert_twin(SerializedDag::from_dag(&dag), &slab, &keys);
    assert_twin(dag, &slab, &keys);
    assert_twin(MultibitDag::from_trie(trie, 8), &slab, &keys);
}

#[test]
fn hot_layout_equivalence_v4() {
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(12_000).generate(&mut rng(11));
    check_hot_layouts(&trie, &HotConfig::for_width(32), 12);
}

#[test]
fn hot_layout_equivalence_v6() {
    let mut trie: BinaryTrie<u128> = BinaryTrie::new();
    trie.insert(
        "::/0".parse::<fibcomp::trie::Prefix6>().unwrap(),
        NextHop::new(0),
    );
    let mut r = rng(21);
    use fibcomp::workload::rng::Rng;
    for i in 0..3_000u64 {
        let base = (0x2001_0db8u128 << 96) | (u128::from(i) << 72);
        let len = [32u8, 40, 44, 48, 56, 64][(r.random::<u64>() % 6) as usize];
        trie.insert(
            fibcomp::trie::Prefix::new(base | (u128::from(r.random::<u64>()) << 16), len),
            NextHop::new((r.random::<u64>() % 14) as u32),
        );
    }
    check_hot_layouts(&trie, &HotConfig::for_width(128), 22);
}

#[test]
fn empty_and_tiny_slabs_are_neutral() {
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(2_000).generate(&mut rng(31));
    let keys = probe_keys(&trie, 32, &[]);
    // An empty slab never answers, so the composite is trivially the
    // inner engine.
    assert_twin(PrefixDag::from_trie(&trie, 11), &HotSlab::empty(24), &keys);
    // A one-entry budget still has to stay equivalent.
    let zipf = traces::ZipfTrace::new(&trie, 1.0).generate(&mut rng(33), 1_000);
    let heat = HeatSummary::sample_addrs(24, zipf.iter().copied());
    let config = HotConfig {
        depth: 24,
        max_entries: 1,
    };
    let (slab, _) = HotSlab::compile(&trie, heat.entries(), &config);
    assert_twin(PrefixDag::from_trie(&trie, 11), &slab, &keys);
}

#[test]
fn heat_fingerprint_is_pinned() {
    // Integer-only synthetic traffic (no float trace model): a skewed
    // stream where low ranks repeat geometrically — the pin must not be
    // able to drift with floating-point codegen.
    let mut r = rng(42);
    use fibcomp::workload::rng::Rng;
    let addrs: Vec<u32> = (0..50_000)
        .map(|_| {
            let rank = (r.random::<u64>() % (1u64 << (r.random::<u64>() % 12))) as u32;
            (rank << 12) | (r.random::<u64>() as u32 & 0xFFF)
        })
        .collect();
    let map = HeatMap::new(4, 24, 4096);
    for (i, &a) in addrs.iter().enumerate() {
        map.sketch(i % 4).record(a);
    }
    let merged = map.merged();
    assert_eq!(
        merged.total() + merged.missed(),
        50_000,
        "no recorded hit may vanish in the merge"
    );
    // Pinned: the whole sample → sketch → merge → summary pipeline is
    // deterministic for a seeded trace. A change here means slabs stop
    // being reproducible from recorded traffic.
    assert_eq!(merged.fingerprint(), 0x651B_A94C_CC42_B0D8u64);
    // Merging again must produce the identical summary.
    assert_eq!(map.merged(), merged);
    // Worker-count invariance holds when no sketch overflows (bounded
    // probes make overflow load-dependent, so it cannot hold in general):
    // with ample capacity, sharding the same stream across 1 or 4 workers
    // merges to the same summary.
    let wide4 = HeatMap::new(4, 24, 1 << 16);
    let wide1 = HeatMap::new(1, 24, 1 << 16);
    for (i, &a) in addrs.iter().enumerate() {
        wide4.sketch(i % 4).record(a);
        wide1.sketch(0).record(a);
    }
    assert_eq!(wide4.merged().missed(), 0, "ample sketch must not overflow");
    assert_eq!(wide4.merged(), wide1.merged());
}
