//! The software-pipelined lookup path: `lookup_stream` must agree with
//! `lookup_batch`/`lookup` everywhere, and the first-touch prefetch it
//! issues must actually convert demand misses into hits under the
//! `hwsim` cache model.

use fibcomp::core::{
    FibBuild, FibLookup, FibUpdate, ImageCodec, MultibitDag, PrefixDag, SerializedDag, XbwFib,
    XbwStorage,
};
use fibcomp::hwsim::{CacheLevel, CacheSim};
use fibcomp::router::{Router, RouterConfig};
use fibcomp::trie::{Address, BinaryTrie, LcTrie, NextHop};
use fibcomp::workload::instances;
use fibcomp::workload::rng::Xoshiro256;
use fibcomp::workload::traces::uniform;

fn taz_fib(scale: f64) -> BinaryTrie<u32> {
    let mut inst = instances::by_name("taz").expect("taz instance");
    inst.n_prefixes = ((inst.n_prefixes as f64 * scale) as usize).max(64);
    inst.build(0xF1B)
}

fn v6_fib() -> BinaryTrie<u128> {
    let spec = fibcomp::workload::FibSpec {
        n_prefixes: 800,
        max_len: 64,
        depth_bias: 0.3,
        labels: fibcomp::workload::LabelModel::Uniform { delta: 7 },
        spatial_correlation: 0.4,
        default_route: true,
    };
    spec.generate(&mut Xoshiro256::seed_from_u64(66))
}

fn assert_stream_matches<A: Address, E: FibLookup<A>>(engine: &E, addrs: &[A]) {
    let mut batch = vec![None; addrs.len()];
    let mut stream = vec![Some(NextHop::new(u32::MAX - 1)); addrs.len()];
    engine.lookup_batch(addrs, &mut batch);
    engine.lookup_stream(addrs, &mut stream);
    for (i, (&b, &s)) in batch.iter().zip(&stream).enumerate() {
        assert_eq!(b, s, "{}: lane {i} diverges", engine.name());
    }
    // Odd lengths exercise the scalar tails of both paths.
    for n in [0usize, 1, 3, 5, 7, 9, 13] {
        let n = n.min(addrs.len());
        let mut out = vec![Some(NextHop::new(7)); n + 2];
        engine.lookup_stream(&addrs[..n], &mut out);
        for (a, got) in addrs[..n].iter().zip(&out) {
            assert_eq!(*got, engine.lookup(*a), "{} tail at n={n}", engine.name());
        }
    }
}

#[test]
fn stream_agrees_with_batch_on_every_engine_v4() {
    let trie = taz_fib(0.02);
    let addrs: Vec<u32> = uniform(&mut Xoshiro256::seed_from_u64(1), 4097);
    let dag = PrefixDag::from_trie(&trie, 11);
    assert_stream_matches(&SerializedDag::from_dag(&dag), &addrs);
    assert_stream_matches(&MultibitDag::from_trie(&trie, 4), &addrs);
    assert_stream_matches(&LcTrie::from_trie(&trie), &addrs);
    assert_stream_matches(&XbwFib::build(&trie, XbwStorage::Succinct), &addrs);
    assert_stream_matches(&XbwFib::build(&trie, XbwStorage::Entropy), &addrs);
    assert_stream_matches(&dag, &addrs); // default (forwarding) impl
}

#[test]
fn stream_agrees_with_batch_on_every_engine_v6() {
    let trie = v6_fib();
    let addrs: Vec<u128> = uniform(&mut Xoshiro256::seed_from_u64(2), 2049);
    let dag = PrefixDag::from_trie(&trie, 11);
    assert_stream_matches(&SerializedDag::from_dag(&dag), &addrs);
    assert_stream_matches(&MultibitDag::from_trie(&trie, 4), &addrs);
    assert_stream_matches(&LcTrie::from_trie(&trie), &addrs);
    assert_stream_matches(&XbwFib::build(&trie, XbwStorage::Succinct), &addrs);
}

#[test]
fn image_views_stream_identically() {
    let trie = taz_fib(0.02);
    let addrs: Vec<u32> = uniform(&mut Xoshiro256::seed_from_u64(3), 1025);
    let engine: SerializedDag<u32> = FibBuild::build(&trie, &fibcomp::core::BuildConfig::default());
    let bytes = fibcomp::core::write_image(&engine, None, 1).expect("image encodes");
    let image = fibcomp::core::FibImage::from_bytes(&bytes).expect("image loads");
    let view = <SerializedDag<u32> as ImageCodec<u32>>::view(&image).expect("view");
    assert_stream_matches(&view, &addrs);
}

#[test]
fn snapshot_stream_agrees_across_owned_and_image_backing() {
    let trie = taz_fib(0.02);
    let addrs: Vec<u32> = uniform(&mut Xoshiro256::seed_from_u64(4), 513);
    let router: Router<u32, SerializedDag<u32>> = Router::new(
        trie.clone(),
        RouterConfig {
            publish_every: None,
            ..RouterConfig::default()
        },
    );
    let snap = router.snapshot();
    let mut batch = vec![None; addrs.len()];
    let mut stream = vec![None; addrs.len()];
    snap.lookup_batch(&addrs, &mut batch);
    snap.lookup_stream(&addrs, &mut stream);
    assert_eq!(batch, stream);
}

/// The miss-reduction claim, validated on the cache model: feeding the
/// pipeline's access order (next group's first-touch lines prefetched
/// before the current group's walk) into `CacheSim` must convert
/// first-touch *demand* misses into hits, relative to the same walks
/// without prefetch.
#[test]
fn prefetch_converts_demand_misses_into_hits_under_cachesim() {
    // One L1-sized level, so an engine bigger than L1 produces a steady
    // demand-miss stream; the simulator is deterministic, so the
    // comparison is exact, not statistical.
    let l1 = || {
        CacheSim::new(&[CacheLevel {
            capacity: 32 * 1024,
            ways: 8,
            line: 64,
        }])
    };
    let trie = taz_fib(0.1);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    assert!(
        FibLookup::<u32>::size_bytes(&ser) > 48 * 1024,
        "engine must overflow L1 for the experiment to mean anything"
    );
    let addrs: Vec<u32> = uniform(&mut Xoshiro256::seed_from_u64(5), 4096);

    // Per-address access streams (trace-space offsets).
    let streams: Vec<Vec<(u64, u32)>> = addrs
        .iter()
        .map(|&a| {
            let mut touches = Vec::new();
            ser.lookup_traced(a, &mut |off, sz| touches.push((off, sz)));
            touches
        })
        .collect();

    const LANES: usize = 4; // SER_BATCH_LANES
    let misses_of = |sim: &CacheSim| sim.level_stats()[0].misses;

    // Baseline: demand-only, same chunk order as the batch walk.
    let mut base = l1();
    for chunk in streams.chunks(LANES) {
        for stream in chunk {
            for &(off, sz) in stream {
                base.access(off, sz);
            }
        }
    }
    let demand_baseline = misses_of(&base);

    // Pipelined: before chunk i's walks, touch chunk i+1's first lines
    // (exactly what `lookup_stream`'s prefetch stage does). Prefetch
    // misses are charged separately from demand misses.
    let mut piped = l1();
    let mut demand_piped = 0u64;
    let chunks: Vec<&[Vec<(u64, u32)>]> = streams.chunks(LANES).collect();
    // Warm the very first chunk's first touches (the stream path's
    // leading prefetch).
    for stream in chunks[0] {
        if let Some(&(off, sz)) = stream.first() {
            piped.access(off, sz);
        }
    }
    for (c, chunk) in chunks.iter().enumerate() {
        if c + 1 < chunks.len() {
            for stream in chunks[c + 1] {
                if let Some(&(off, sz)) = stream.first() {
                    piped.access(off, sz);
                }
            }
        }
        let before = misses_of(&piped);
        for stream in *chunk {
            for &(off, sz) in stream {
                piped.access(off, sz);
            }
        }
        demand_piped += misses_of(&piped) - before;
    }

    assert!(
        demand_piped < demand_baseline,
        "prefetch must reduce demand misses: {demand_piped} !< {demand_baseline}"
    );
    let reduction = 1.0 - demand_piped as f64 / demand_baseline as f64;
    assert!(
        reduction > 0.05,
        "reduction {reduction:.3} too small to matter \
         ({demand_piped} vs {demand_baseline})"
    );
    println!(
        "demand misses: {demand_baseline} -> {demand_piped} \
         ({:.1}% reduction)",
        reduction * 100.0
    );
}

/// `prefetch` itself must be a pure hint: no engine state, no answers
/// change, any address is acceptable.
#[test]
fn prefetch_is_side_effect_free() {
    let trie = taz_fib(0.02);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let mb = MultibitDag::from_trie(&trie, 4);
    let lc = LcTrie::from_trie(&trie);
    let xbw = XbwFib::build(&trie, XbwStorage::Succinct);
    for addr in [0u32, 1, 0xFFFF_FFFF, 0x0A00_0001, 0x8000_0000] {
        let before = (
            ser.lookup(addr),
            mb.lookup(addr),
            LcTrie::lookup(&lc, addr),
            xbw.lookup(addr),
        );
        FibLookup::<u32>::prefetch(&ser, addr);
        FibLookup::<u32>::prefetch(&mb, addr);
        FibLookup::<u32>::prefetch(&lc, addr);
        FibLookup::<u32>::prefetch(&xbw, addr);
        let mut dummy = PrefixDag::from_trie(&trie, 5);
        let _ = dummy.try_insert("1.2.3.0/24".parse().unwrap(), NextHop::new(1));
        let after = (
            ser.lookup(addr),
            mb.lookup(addr),
            LcTrie::lookup(&lc, addr),
            xbw.lookup(addr),
        );
        assert_eq!(before, after);
    }
}
