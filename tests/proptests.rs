//! Workspace-level property tests: arbitrary route sets and update
//! interleavings, checked against the tabular oracle.

use fibcomp::core::{PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fibcomp::trie::{ortc, BinaryTrie, LcTrie, NextHop, Prefix4, ProperTrie, RouteTable};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix4> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Prefix4::new(addr, len))
}

fn arb_routes(max: usize) -> impl Strategy<Value = Vec<(Prefix4, NextHop)>> {
    prop::collection::vec((arb_prefix(), 0u32..6).prop_map(|(p, h)| (p, NextHop::new(h))), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_static_engine_matches_the_oracle(
        routes in arb_routes(120),
        keys in prop::collection::vec(any::<u32>(), 40),
    ) {
        let table: RouteTable<u32> = routes.iter().copied().collect();
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let proper = ProperTrie::from_trie(&trie);
        proper.assert_invariants();
        let lc = LcTrie::from_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let dag = PrefixDag::from_trie(&trie, 7);
        dag.assert_invariants();
        let ser = SerializedDag::from_dag(&dag);
        let agg = ortc::compress(&trie);
        prop_assert!(agg.len() <= trie.len() + agg.blackhole_count());
        // Probe random keys plus every route's base address.
        for key in keys.into_iter().chain(routes.iter().map(|(p, _)| p.addr())) {
            let expected = table.lookup(key);
            prop_assert_eq!(trie.lookup(key), expected);
            prop_assert_eq!(proper.lookup(key), expected);
            prop_assert_eq!(lc.lookup(key), expected);
            prop_assert_eq!(xbw.lookup(key), expected);
            prop_assert_eq!(dag.lookup(key), expected);
            prop_assert_eq!(ser.lookup(key), expected);
            prop_assert_eq!(agg.lookup(key), expected);
        }
    }

    #[test]
    fn dag_tracks_oracle_under_interleaved_updates(
        initial in arb_routes(60),
        ops in prop::collection::vec(
            (arb_prefix(), prop::option::of(0u32..6)), 0..120
        ),
        keys in prop::collection::vec(any::<u32>(), 30),
        lambda in 0u8..=32,
    ) {
        let mut table: RouteTable<u32> = initial.iter().copied().collect();
        let trie: BinaryTrie<u32> = initial.iter().copied().collect();
        let mut dag = PrefixDag::from_trie(&trie, lambda);
        for (prefix, op) in ops {
            match op {
                Some(h) => {
                    let nh = NextHop::new(h);
                    prop_assert_eq!(dag.insert(prefix, nh), table.insert(prefix, nh));
                }
                None => {
                    prop_assert_eq!(dag.remove(prefix), table.remove(prefix));
                }
            }
        }
        dag.assert_invariants();
        for key in keys.into_iter().chain(std::iter::once(0)).chain(std::iter::once(u32::MAX)) {
            prop_assert_eq!(dag.lookup(key), table.lookup(key), "key {:#010x}", key);
        }
    }

    #[test]
    fn leaf_push_is_canonical_and_minimal(routes in arb_routes(80)) {
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let proper = ProperTrie::from_trie(&trie);
        proper.assert_invariants();
        // Rebuilding from the iterated routes gives the identical form.
        let rebuilt: BinaryTrie<u32> = trie.iter().collect();
        let proper2 = ProperTrie::from_trie(&rebuilt);
        prop_assert_eq!(proper.n_leaves(), proper2.n_leaves());
        let a: Vec<_> = proper.bfs().collect();
        let b: Vec<_> = proper2.bfs().collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ortc_never_inflates_and_preserves_semantics(routes in arb_routes(80)) {
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let agg = ortc::compress(&trie);
        // ORTC is optimal, so it can never exceed the input size (counting
        // blackhole entries as entries).
        prop_assert!(agg.len() <= trie.len().max(1));
        for (p, _) in trie.iter() {
            prop_assert_eq!(agg.lookup(p.addr()), trie.lookup(p.addr()));
        }
    }

    #[test]
    fn folded_string_roundtrips_and_updates(
        log_n in 1u32..=9,
        seed in any::<u64>(),
        lambda in 0u8..=9,
        patches in prop::collection::vec((any::<u16>(), any::<u16>()), 0..12),
    ) {
        let n = 1usize << log_n;
        let mut x = seed | 1;
        let mut symbols: Vec<u16> = (0..n).map(|_| {
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            (x % 5) as u16
        }).collect();
        let mut fs = fibcomp::core::FoldedString::new(&symbols, lambda.min(log_n as u8));
        for (pos, val) in patches {
            let pos = pos as usize % n;
            let val = val % 7;
            fs.set(pos, val);
            symbols[pos] = val;
        }
        for (i, &s) in symbols.iter().enumerate() {
            prop_assert_eq!(fs.get(i), s, "position {}", i);
        }
    }
}
