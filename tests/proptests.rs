//! Workspace-level property tests: arbitrary route sets and update
//! interleavings, checked against the tabular oracle.
//!
//! Inputs are drawn from the workspace's deterministic PRNG
//! (`fibcomp::workload::rng`) rather than proptest, which cannot be
//! fetched in the offline build. Each test runs 64 seeded cases (the count
//! the original proptest config used); failure messages carry the case
//! number for exact reproduction.

use fibcomp::core::{PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fibcomp::trie::{ortc, BinaryTrie, LcTrie, NextHop, Prefix4, ProperTrie, RouteTable};
use fibcomp::workload::rng::{Rng, Xoshiro256};

const CASES: u64 = 64;

fn arb_prefix(rng: &mut impl Rng) -> Prefix4 {
    Prefix4::new(rng.random(), rng.random_range(0..=32))
}

fn arb_routes(rng: &mut impl Rng, max: usize) -> Vec<(Prefix4, NextHop)> {
    let n = rng.random_range(0..max);
    (0..n)
        .map(|_| (arb_prefix(rng), NextHop::new(rng.random_range(0..6u32))))
        .collect()
}

fn arb_keys(rng: &mut impl Rng, count: usize) -> Vec<u32> {
    (0..count).map(|_| rng.random()).collect()
}

#[test]
fn every_static_engine_matches_the_oracle() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("every_static_engine_matches_the_oracle", case);
        let routes = arb_routes(&mut rng, 120);
        let keys = arb_keys(&mut rng, 40);
        let table: RouteTable<u32> = routes.iter().copied().collect();
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let proper = ProperTrie::from_trie(&trie);
        proper.assert_invariants();
        let lc = LcTrie::from_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let dag = PrefixDag::from_trie(&trie, 7);
        dag.assert_invariants();
        let ser = SerializedDag::from_dag(&dag);
        let agg = ortc::compress(&trie);
        assert!(
            agg.len() <= trie.len() + agg.blackhole_count(),
            "case {case}"
        );
        // Probe random keys plus every route's base address.
        for key in keys.into_iter().chain(routes.iter().map(|(p, _)| p.addr())) {
            let expected = table.lookup(key);
            assert_eq!(
                trie.lookup(key),
                expected,
                "case {case}, trie at {key:#010x}"
            );
            assert_eq!(
                proper.lookup(key),
                expected,
                "case {case}, proper at {key:#010x}"
            );
            assert_eq!(lc.lookup(key), expected, "case {case}, lc at {key:#010x}");
            assert_eq!(xbw.lookup(key), expected, "case {case}, xbw at {key:#010x}");
            assert_eq!(dag.lookup(key), expected, "case {case}, dag at {key:#010x}");
            assert_eq!(ser.lookup(key), expected, "case {case}, ser at {key:#010x}");
            assert_eq!(
                agg.lookup(key),
                expected,
                "case {case}, ortc at {key:#010x}"
            );
        }
    }
}

#[test]
fn dag_tracks_oracle_under_interleaved_updates() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("dag_tracks_oracle_under_interleaved_updates", case);
        let initial = arb_routes(&mut rng, 60);
        let n_ops: usize = rng.random_range(0..120);
        let ops: Vec<(Prefix4, Option<u32>)> = (0..n_ops)
            .map(|_| {
                let p = arb_prefix(&mut rng);
                let op = if rng.random::<f64>() < 0.5 {
                    Some(rng.random_range(0..6u32))
                } else {
                    None
                };
                (p, op)
            })
            .collect();
        let keys = arb_keys(&mut rng, 30);
        let lambda: u8 = rng.random_range(0..=32);
        let mut table: RouteTable<u32> = initial.iter().copied().collect();
        let trie: BinaryTrie<u32> = initial.iter().copied().collect();
        let mut dag = PrefixDag::from_trie(&trie, lambda);
        for (prefix, op) in ops {
            match op {
                Some(h) => {
                    let nh = NextHop::new(h);
                    assert_eq!(
                        dag.insert(prefix, nh),
                        table.insert(prefix, nh),
                        "case {case}, insert {prefix}"
                    );
                }
                None => {
                    assert_eq!(
                        dag.remove(prefix),
                        table.remove(prefix),
                        "case {case}, remove {prefix}"
                    );
                }
            }
        }
        dag.assert_invariants();
        for key in keys.into_iter().chain([0, u32::MAX]) {
            assert_eq!(
                dag.lookup(key),
                table.lookup(key),
                "case {case}, λ={lambda}, key {key:#010x}"
            );
        }
    }
}

#[test]
fn leaf_push_is_canonical_and_minimal() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("leaf_push_is_canonical_and_minimal", case);
        let routes = arb_routes(&mut rng, 80);
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let proper = ProperTrie::from_trie(&trie);
        proper.assert_invariants();
        // Rebuilding from the iterated routes gives the identical form.
        let rebuilt: BinaryTrie<u32> = trie.iter().collect();
        let proper2 = ProperTrie::from_trie(&rebuilt);
        assert_eq!(proper.n_leaves(), proper2.n_leaves(), "case {case}");
        let a: Vec<_> = proper.bfs().collect();
        let b: Vec<_> = proper2.bfs().collect();
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn ortc_never_inflates_and_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("ortc_never_inflates_and_preserves_semantics", case);
        let routes = arb_routes(&mut rng, 80);
        let trie: BinaryTrie<u32> = routes.iter().copied().collect();
        let agg = ortc::compress(&trie);
        // ORTC is optimal, so it can never exceed the input size (counting
        // blackhole entries as entries).
        assert!(agg.len() <= trie.len().max(1), "case {case}");
        for (p, _) in trie.iter() {
            assert_eq!(
                agg.lookup(p.addr()),
                trie.lookup(p.addr()),
                "case {case}, at {p}"
            );
        }
    }
}

#[test]
fn folded_string_roundtrips_and_updates() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("folded_string_roundtrips_and_updates", case);
        let log_n: u32 = rng.random_range(1..=9);
        let lambda: u8 = rng.random_range(0..=9);
        let n = 1usize << log_n;
        let mut symbols: Vec<u16> = (0..n).map(|_| rng.random_range(0..5u16)).collect();
        let mut fs = fibcomp::core::FoldedString::new(&symbols, lambda.min(log_n as u8));
        let n_patches: usize = rng.random_range(0..12);
        for _ in 0..n_patches {
            let pos = rng.random_range(0..n);
            let val: u16 = rng.random_range(0..7);
            fs.set(pos, val);
            symbols[pos] = val;
        }
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(fs.get(i), s, "case {case}, λ={lambda}, position {i}");
        }
    }
}
