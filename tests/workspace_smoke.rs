//! Workspace-seam smoke tests.
//!
//! The examples are the workspace's public face: this suite drives cargo
//! itself (always with `--offline` — the build environment has no
//! registry access) to compile all five examples and run `quickstart`
//! end-to-end. It also pins the deterministic PRNG: the same seed must
//! produce bit-identical workloads on every platform, build and run —
//! that contract is what makes every seeded test and bench in the tree
//! reproducible.

use fibcomp::prelude::*;
use fibcomp::workload::rng::{Rng, Xoshiro256};
use fibcomp::workload::FibSpec;
use std::process::Command;

/// A cargo invocation rooted at the workspace, inheriting the toolchain
/// that built this test.
fn cargo() -> Command {
    let mut c = Command::new(env!("CARGO"));
    c.current_dir(env!("CARGO_MANIFEST_DIR"));
    c.arg("--offline");
    c
}

#[test]
fn every_example_builds_offline() {
    let out = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("cargo runs");
    assert!(
        out.status.success(),
        "examples failed to build:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_example_runs_end_to_end() {
    let out = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("cargo runs");
    assert!(
        out.status.success(),
        "quickstart failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The example's own final differential check printed its verdict.
    assert!(
        stdout.contains("all representations agree — done."),
        "unexpected quickstart output:\n{stdout}"
    );
}

#[test]
fn string_selfindex_example_runs_end_to_end() {
    let out = cargo()
        .args(["run", "--example", "string_selfindex"])
        .output()
        .expect("cargo runs");
    assert!(
        out.status.success(),
        "string_selfindex failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// FNV-1a over the generated route set: any change to the PRNG stream or
/// to the generator's consumption order shows up here.
fn fib_fingerprint(seed: u64) -> u64 {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let routes = FibSpec::dfz_like(5_000).generate_routes::<u32, _>(&mut rng);
    let mut bytes = Vec::with_capacity(routes.len() * 24);
    for (p, nh) in routes {
        bytes.extend_from_slice(&u64::from(p.addr()).to_le_bytes());
        bytes.extend_from_slice(&u64::from(p.len()).to_le_bytes());
        bytes.extend_from_slice(&u64::from(nh.index()).to_le_bytes());
    }
    fibcomp::workload::rng::fnv1a(&bytes)
}

#[test]
fn prng_streams_are_stable_across_runs_and_builds() {
    // Same seed → same FIB, different seed → different FIB.
    assert_eq!(fib_fingerprint(42), fib_fingerprint(42));
    assert_ne!(fib_fingerprint(42), fib_fingerprint(43));
    // Pinned fingerprint: fails if the xoshiro stream, the Lemire range
    // sampler, or the generator's draw order ever changes silently.
    assert_eq!(fib_fingerprint(42), 0xA50F_12E2_70ED_B2B4);
}

#[test]
fn prelude_exports_cover_the_quickstart_surface() {
    // The doctest in `src/lib.rs` leans on exactly these prelude names;
    // keep them exported (and constructible) or the quickstart breaks.
    let p = Prefix4::from_str("10.0.0.0/8").unwrap();
    let trie: BinaryTrie<u32> = [(p, NextHop::new(1))].into_iter().collect();
    let dag = PrefixDag::from_trie(&trie, 4);
    let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
    let addr = u32::from(std::net::Ipv4Addr::new(10, 1, 2, 3));
    assert_eq!(trie.lookup(addr), dag.lookup(addr));
    assert_eq!(trie.lookup(addr), xbw.lookup(addr));
}

#[test]
fn uniform_trace_is_seed_reproducible() {
    let mut a = Xoshiro256::seed_from_u64(7);
    let mut b = Xoshiro256::seed_from_u64(7);
    let ta = fibcomp::workload::traces::uniform::<u32, _>(&mut a, 1000);
    let tb = fibcomp::workload::traces::uniform::<u32, _>(&mut b, 1000);
    assert_eq!(ta, tb);
    // The stream advances: a second draw from the same generator differs.
    let tc = fibcomp::workload::traces::uniform::<u32, _>(&mut a, 1000);
    assert_ne!(ta, tc);
    let _unused: f64 = b.random();
}
