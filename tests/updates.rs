//! Dynamic behaviour: the folded FIB must track its control FIB exactly
//! under arbitrary update storms, at every barrier setting, with reference
//! counts staying consistent throughout — whether the updates are applied
//! directly or through the `FibUpdate` trait and the router core.

use fibcomp::core::{FibUpdate, PrefixDag, SerializedDag};
use fibcomp::router::{Router, RouterConfig, ShardedRouter};
use fibcomp::trie::{BinaryTrie, NextHop, Prefix4, RouteTable};
use fibcomp::workload::rng::{Rng, Xoshiro256};
use fibcomp::workload::updates::{bgp_sequence, random_sequence, UpdateOp};
use fibcomp::workload::{traces, FibSpec};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

/// Applies an update sequence through the `FibUpdate` trait (every op must
/// be accepted in place).
fn apply_in_place<E: FibUpdate<u32>>(engine: &mut E, seq: &[UpdateOp<u32>]) {
    for op in seq {
        match *op {
            UpdateOp::Announce(p, nh) => {
                engine.try_insert(p, nh).expect("in-place insert");
            }
            UpdateOp::Withdraw(p) => {
                engine.try_remove(p).expect("in-place remove");
            }
        }
    }
}

fn assert_dag_tracks_control(dag: &PrefixDag<u32>, keys: &[u32]) {
    for &k in keys {
        assert_eq!(
            dag.lookup(k),
            dag.control().lookup(k),
            "divergence at {k:#010x}"
        );
    }
}

#[test]
fn random_storm_across_barriers() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(2_000).generate(&mut rng(1));
    let seq: Vec<UpdateOp<u32>> = random_sequence(&mut rng(2), 1_500, 5);
    let keys = traces::uniform::<u32, _>(&mut rng(3), 1500);
    for lambda in [0u8, 5, 11, 20, 32] {
        let mut dag = PrefixDag::from_trie(&base, lambda);
        for (i, op) in seq.iter().enumerate() {
            match *op {
                UpdateOp::Announce(p, nh) => {
                    dag.insert(p, nh);
                }
                UpdateOp::Withdraw(p) => {
                    dag.remove(p);
                }
            }
            if i % 250 == 0 {
                dag.assert_invariants();
            }
        }
        dag.assert_invariants();
        assert_dag_tracks_control(&dag, &keys);
        // Serialization of the post-churn DAG still agrees.
        if lambda <= 25 {
            let ser = SerializedDag::from_dag(&dag);
            for &k in keys.iter().step_by(7) {
                assert_eq!(ser.lookup(k), dag.lookup(k), "λ={lambda} at {k:#x}");
            }
        }
    }
}

#[test]
fn bgp_storm_tracks_control() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(10_000).generate(&mut rng(4));
    let seq = bgp_sequence(&mut rng(5), &base, 5_000);
    let mut dag = PrefixDag::from_trie(&base, 11);
    apply_in_place(&mut dag, &seq);
    dag.assert_invariants();
    assert_dag_tracks_control(&dag, &traces::uniform::<u32, _>(&mut rng(6), 3000));
}

#[test]
fn router_epochs_track_direct_dag_updates() {
    // The same feed through the router core and through direct DAG calls
    // must land on identical forwarding functions at every publish.
    let base: BinaryTrie<u32> = FibSpec::dfz_like(5_000).generate(&mut rng(13));
    let seq = bgp_sequence(&mut rng(14), &base, 3_000);
    let keys = traces::uniform::<u32, _>(&mut rng(15), 1_000);
    let config = RouterConfig {
        publish_every: None,
        ..RouterConfig::default()
    };
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(base.clone(), config);
    let mut dag = PrefixDag::from_trie(&base, 11);
    for (i, op) in seq.iter().enumerate() {
        match *op {
            UpdateOp::Announce(p, nh) => {
                dag.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                dag.remove(p);
                router.withdraw(p);
            }
        }
        if (i + 1) % 750 == 0 {
            let snapshot = router.publish();
            for &k in &keys {
                assert_eq!(snapshot.lookup(k), dag.lookup(k), "divergence at {k:#x}");
            }
        }
    }
}

#[test]
fn sharded_router_tracks_flat_router() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(3_000).generate(&mut rng(16));
    let seq = bgp_sequence(&mut rng(17), &base, 1_000);
    let config = RouterConfig {
        publish_every: None,
        ..RouterConfig::default()
    };
    let mut sharded: ShardedRouter<u32, PrefixDag<u32>> = ShardedRouter::new(&base, config);
    let mut oracle = base;
    for op in &seq {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                sharded.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                sharded.withdraw(p);
            }
        }
    }
    sharded.publish_all();
    let keys = traces::uniform::<u32, _>(&mut rng(18), 2_000);
    let mut batched = vec![None; keys.len()];
    sharded.lookup_batch(&keys, &mut batched);
    for (&k, &got) in keys.iter().zip(&batched) {
        assert_eq!(got, oracle.lookup(k), "sharded divergence at {k:#x}");
        assert_eq!(sharded.lookup(k), oracle.lookup(k));
    }
}

#[test]
fn dag_insert_remove_returns_match_route_table() {
    // The DAG's insert/remove return values must behave like a map,
    // matching RouteTable (the oracle) operation by operation.
    let mut dag = PrefixDag::from_trie(&BinaryTrie::new(), 8);
    let mut table: RouteTable<u32> = RouteTable::new();
    let mut r = rng(7);
    for _ in 0..2_000 {
        let p = Prefix4::new(r.random(), r.random_range(0..=32));
        if r.random::<f64>() < 0.7 {
            let nh = NextHop::new(r.random_range(0..6));
            assert_eq!(dag.insert(p, nh), table.insert(p, nh), "insert {p}");
        } else {
            assert_eq!(dag.remove(p), table.remove(p), "remove {p}");
        }
    }
    assert_eq!(dag.len(), table.len());
    dag.assert_invariants();
}

#[test]
fn rebuild_equals_incremental() {
    // Folding the final control FIB from scratch must give the same
    // structure counts as the incrementally maintained DAG (canonicity of
    // hash-consing).
    let base: BinaryTrie<u32> = FibSpec::dfz_like(3_000).generate(&mut rng(8));
    let seq: Vec<UpdateOp<u32>> = random_sequence(&mut rng(9), 2_000, 4);
    let mut dag = PrefixDag::from_trie(&base, 9);
    apply_in_place(&mut dag, &seq);
    let fresh = PrefixDag::from_trie(dag.control(), 9);
    assert_eq!(
        dag.stats(),
        fresh.stats(),
        "incremental fold must be canonical"
    );
    assert_eq!(dag.model_size_bits(), fresh.model_size_bits());
}

#[test]
fn idempotent_reannouncement_is_a_noop_structurally() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(1_000).generate(&mut rng(10));
    let mut dag = PrefixDag::from_trie(&base, 8);
    let before = dag.stats();
    // Re-announce every route with its existing next-hop.
    let routes: Vec<_> = base.iter().collect();
    for (p, nh) in routes {
        assert_eq!(dag.insert(p, nh), Some(nh));
    }
    dag.assert_invariants();
    assert_eq!(
        dag.stats(),
        before,
        "identical announcements must not change the fold"
    );
}

#[test]
fn insert_then_remove_round_trips_to_baseline() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(1_000).generate(&mut rng(11));
    let mut dag = PrefixDag::from_trie(&base, 6);
    let baseline = dag.stats();
    let mut r = rng(12);
    let fresh: Vec<Prefix4> = (0..200)
        .map(|_| Prefix4::new(r.random(), r.random_range(6..=32)))
        .filter(|p| base.exact_match(*p).is_none())
        .collect();
    for &p in &fresh {
        dag.insert(p, NextHop::new(99));
    }
    for &p in &fresh {
        dag.remove(p);
    }
    dag.assert_invariants();
    assert_eq!(
        dag.stats(),
        baseline,
        "adding and removing must restore the fold"
    );
}
