//! The lint corpus: committed hand-corrupted FIB images, each paired
//! with the typed diagnostic `fibc lint` must produce for it.
//!
//! `tests/corpus/MANIFEST` lists `<file> <expected-code>` pairs
//! (`clean` for images that must produce no issues). The corpus is
//! *generated* — `FIB_CORPUS_REGEN=1 cargo test -q --test corpus`
//! rebuilds every file deterministically — and *committed*, so the lint
//! contract is pinned against whatever bytes are in the tree, not
//! whatever the current builders emit.
//!
//! The star exhibit is `rank-directory.img`: its checksum is valid, the
//! loader accepts it, every size check passes — but a rank-line count
//! word is off by one, so lookups through it would silently misroute.
//! Only the deep cross-validation pass catches it.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use fibcomp::core::image::sections;
use fibcomp::core::lint::lint_bytes;
use fibcomp::core::{
    compile_vrf_set, hot_key, vrf_section_base, write_image, write_image_hot, write_vrf_image,
    BuildConfig, FibBuild, FibImage, HotConfig, HotSlab, PrefixDag, SerializedDag, VrfEngineChoice,
    VrfPolicy, VrfTable, XbwFib, XbwStorage,
};
use fibcomp::trie::BinaryTrie;
use fibcomp::workload::rng::{Random, Xoshiro256};
use fibcomp::workload::FibSpec;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn repair_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
    bytes[56..64].fill(0);
    let checksum = fibcomp::succinct::fnv1a(&bytes);
    bytes[56..64].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Byte offset of a section's payload, in the image the bytes encode.
fn section_byte_offset(bytes: &[u8], id: u32) -> usize {
    let image = FibImage::from_bytes(bytes).expect("base image loads");
    image
        .section_table()
        .iter()
        .find(|e| e.id == id)
        .unwrap_or_else(|| panic!("section {id:#x} present"))
        .offset
        * 8
}

fn read_word(bytes: &[u8], byte_off: usize) -> u64 {
    u64::from_le_bytes(bytes[byte_off..byte_off + 8].try_into().expect("8 bytes"))
}

fn write_word(bytes: &mut [u8], byte_off: usize, value: u64) {
    bytes[byte_off..byte_off + 8].copy_from_slice(&value.to_le_bytes());
}

/// Builds the whole corpus deterministically: `(file, bytes, expected)`
/// where `expected` is a lint code or `"clean"`.
fn build_corpus() -> Vec<(&'static str, Vec<u8>, &'static str)> {
    let trie: BinaryTrie<u32> =
        FibSpec::dfz_like(600).generate(&mut Xoshiro256::seed_from_u64(0x0C0F_FEE0));
    let config = BuildConfig::default();
    let ser: SerializedDag<u32> = FibBuild::build(&trie, &config);
    let ser_img = write_image(&ser, Some(&trie), 1).unwrap();
    let xbw_s: XbwFib<u32> = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_s_img = write_image(&xbw_s, None, 1).unwrap();
    let xbw_e: XbwFib<u32> = XbwFib::build(&trie, XbwStorage::Entropy);
    let xbw_e_img = write_image(&xbw_e, None, 1).unwrap();
    let dag: PrefixDag<u32> = FibBuild::build(&trie, &config);
    let pdag_img = write_image(&dag, None, 1).unwrap();

    let mut corpus = vec![
        ("clean-serialized.img", ser_img.clone(), "clean"),
        ("clean-xbw-succinct.img", xbw_s_img.clone(), "clean"),
        ("clean-xbw-entropy.img", xbw_e_img.clone(), "clean"),
        ("clean-pdag.img", pdag_img.clone(), "clean"),
    ];

    // Load-path classes: each stops at its own typed error.
    corpus.push(("truncated.img", ser_img[..128].to_vec(), "image-truncated"));
    let mut bad = ser_img.clone();
    bad[0] ^= 0xFF;
    corpus.push(("bad-magic.img", bad, "image-bad-magic"));
    let mut bad = ser_img.clone();
    bad[8] = 0xEE; // version byte inside header word 1
    corpus.push(("bad-version.img", repair_checksum(bad), "image-bad-version"));
    let mut bad = ser_img.clone();
    bad[200] ^= 0x10;
    corpus.push(("checksum-flip.img", bad, "image-checksum-mismatch"));
    let mut bad = ser_img.clone();
    bad[11] = 0x7F; // engine byte inside header word 1
    corpus.push((
        "unknown-engine.img",
        repair_checksum(bad),
        "image-unknown-engine",
    ));

    // Section-table hygiene: slide the second section onto the first.
    let mut bad = ser_img.clone();
    let loc0 = read_word(&bad, (8 + 1) * 8);
    let loc1 = read_word(&bad, (8 + 3) * 8);
    write_word(
        &mut bad,
        (8 + 3) * 8,
        (loc0 & 0xFFFF_FFFF) | (loc1 & !0xFFFF_FFFF),
    );
    corpus.push((
        "section-overlap.img",
        repair_checksum(bad),
        "section-overlap",
    ));

    // The showcase: bump one rank-line absolute count inside S_I. The
    // checksum is repaired, the loader's size checks all pass, lookups
    // would misroute — only the deep audit sees it.
    let mut bad = xbw_s_img.clone();
    let si = section_byte_offset(&xbw_s_img, sections::XBW_SI);
    let line1_word0 = si + 8 * 8 + 8 * 8; // skip rsvec meta block, then line 0
    let v = read_word(&bad, line1_word0);
    write_word(&mut bad, line1_word0, v + 1);
    corpus.push((
        "rank-directory.img",
        repair_checksum(bad),
        "rank-directory-mismatch",
    ));

    // Wavelet child that fails to strictly decrease (self-loop).
    let mut bad = xbw_e_img.clone();
    let sa = section_byte_offset(&xbw_e_img, sections::XBW_SA);
    let n_nodes = read_word(&bad, sa + 8) as usize;
    assert!(n_nodes >= 2, "entropy image has a real wavelet tree");
    let idx = n_nodes - 1;
    let rec = sa + 8 * 8 + idx * 4 * 8;
    write_word(&mut bad, rec, (1u64 << 62) | idx as u64);
    corpus.push((
        "wavelet-child.img",
        repair_checksum(bad),
        "wavelet-child-no-decrease",
    ));

    // pDAG with a back edge: last packed node's left child -> root.
    let mut bad = pdag_img.clone();
    let nodes = section_byte_offset(&pdag_img, sections::PDAG_NODES);
    let image = FibImage::from_bytes(&pdag_img).unwrap();
    let entry = image
        .section_table()
        .iter()
        .find(|e| e.id == sections::PDAG_NODES)
        .copied()
        .unwrap();
    let last_children = nodes + (entry.len - 2) * 8;
    let v = read_word(&bad, last_children);
    write_word(&mut bad, last_children, v & !0xFFFF_FFFF); // left = 0 (root)
    corpus.push(("pdag-cycle.img", repair_checksum(bad), "pdag-cycle"));

    // pDAG whose root has no children: the rest of the pack is orphaned.
    let mut bad = pdag_img.clone();
    write_word(&mut bad, nodes, u64::MAX);
    corpus.push((
        "pdag-unreachable.img",
        repair_checksum(bad),
        "pdag-unreachable",
    ));

    // A route with an impossible prefix length.
    let mut bad = ser_img.clone();
    let routes = section_byte_offset(&ser_img, sections::ROUTES);
    let v = read_word(&bad, routes + 2 * 8);
    write_word(&mut bad, routes + 2 * 8, (v & !0xFF) | 200);
    corpus.push((
        "routes-malformed.img",
        repair_checksum(bad),
        "routes-malformed",
    ));

    // A resident-size claim wildly off the actual payload.
    let mut bad = ser_img.clone();
    let claimed = read_word(&bad, 5 * 8);
    write_word(&mut bad, 5 * 8, claimed * 4 + 1024);
    corpus.push(("size-drift.img", repair_checksum(bad), "size-claim-drift"));

    // Hot-slab classes: a serialized image with a pinned hot slab, and
    // the same image with one pinned answer flipped — the slab then
    // disagrees with both the routes payload and the engine view, which
    // only the semantic cross-validation pass can see (the slab still
    // parses and the checksum is repaired).
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_0707);
    let config4 = HotConfig::for_width(32);
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..2048 {
        let addr = u32::random(&mut rng);
        *counts.entry(hot_key(addr, config4.depth)).or_insert(0u64) += 1;
    }
    let heat: Vec<(u64, u64)> = counts.into_iter().collect();
    let (slab, stats) = HotSlab::compile(&trie, &heat, &config4);
    assert!(stats.promoted > 0, "corpus slab pinned at least one block");
    let hot_img = write_image_hot(&ser, Some(&trie), 1, &slab).unwrap();
    corpus.push(("clean-hot-serialized.img", hot_img.clone(), "clean"));

    let mut bad = hot_img;
    let slab_off = section_byte_offset(&bad, sections::HOT_SLAB);
    let cap = read_word(&bad, slab_off + 8) as usize;
    let pinned = (0..cap)
        .map(|i| slab_off + (8 + 2 * i) * 8)
        .find(|&off| read_word(&bad, off) & 1 == 1 && read_word(&bad, off + 8) != u64::MAX)
        .expect("slab has a pinned real next hop");
    let hop = read_word(&bad, pinned + 8);
    write_word(&mut bad, pinned + 8, hop + 1);
    corpus.push((
        "hot-slab-mismatch.img",
        repair_checksum(bad),
        "hot-slab-answer-mismatch",
    ));

    // VRF-set classes: a three-tenant fleet sharing one arena. The clean
    // image pins the VRF_DIR contract; the corrupt pair exercise the two
    // failure modes the directory pass exists for — a root index pointing
    // past the shared arena, and a dedicated table whose sections were
    // dropped from the section table (id zapped, geometry intact, so only
    // the directory walk notices).
    let mut tenant_b = trie.clone();
    let mut tenant_c = trie.clone();
    for (i, (p, _)) in trie.iter().enumerate().take(40) {
        if i % 2 == 0 {
            tenant_b.insert(p, fibcomp::trie::NextHop::new(77));
        } else {
            tenant_c.remove(p);
        }
    }
    let vrf_tables = [
        VrfTable { id: 1, trie: &trie },
        VrfTable {
            id: 5,
            trie: &tenant_b,
        },
        VrfTable {
            id: 9,
            trie: &tenant_c,
        },
    ];
    let vrf_set = compile_vrf_set(&vrf_tables, &config, &VrfPolicy::Shared);
    let vrf_img = write_vrf_image(&vrf_set, 1).unwrap();
    corpus.push(("clean-vrfset.img", vrf_img.clone(), "clean"));

    // Directory record 0's root word → one past the arena.
    let mut bad = vrf_img.clone();
    let dir_off = section_byte_offset(&vrf_img, sections::VRF_DIR);
    let n_nodes = {
        let image = FibImage::from_bytes(&vrf_img).unwrap();
        image.section(sections::VRF_PDAG).unwrap().len() as u64 / 2
    };
    write_word(&mut bad, dir_off + 2 * 8, n_nodes + 17);
    corpus.push((
        "vrf-root-range.img",
        repair_checksum(bad),
        "vrf-root-out-of-range",
    ));

    // A fleet with table 0 pinned on a dedicated serialized engine;
    // zapping its section-table ids leaves the directory claiming
    // sections the image no longer exposes. Pinned (not Auto) so the
    // corpus bytes survive cost-model retunes.
    let hot_set = compile_vrf_set(
        &vrf_tables,
        &config,
        &VrfPolicy::Pinned {
            choices: vec![
                VrfEngineChoice::Serialized,
                VrfEngineChoice::Shared,
                VrfEngineChoice::Shared,
            ],
        },
    );
    assert_eq!(
        hot_set.tables[0].choice,
        VrfEngineChoice::Serialized,
        "corpus fleet pins a dedicated table"
    );
    let hot_vrf_img = write_vrf_image(&hot_set, 1).unwrap();
    let mut bad = hot_vrf_img.clone();
    let section_count = FibImage::from_bytes(&hot_vrf_img)
        .unwrap()
        .section_table()
        .len();
    let doomed = u64::from(vrf_section_base(0));
    for s in 0..section_count {
        if read_word(&bad, (8 + 2 * s) * 8) == doomed {
            write_word(&mut bad, (8 + 2 * s) * 8, 0x0EEE);
        }
    }
    corpus.push((
        "vrf-dropped-section.img",
        repair_checksum(bad),
        "vrf-dangling-section",
    ));

    // Variable-stride DAG classes: the clean image pins the VS_NODES /
    // VS_SLOTS codec; the corrupt pair hit the two deep-pass codes. A
    // stride field of 31 can never be emitted by the DP (band is
    // [1, 16]), and shrinking the declared slot count makes the node
    // spans overrun the slot table exactly like a truncated download.
    let vs: fibcomp::core::VarStrideDag<u32> = FibBuild::build(&trie, &config);
    let vs_img = write_image(&vs, Some(&trie), 1).unwrap();
    corpus.push(("clean-vsdag.img", vs_img.clone(), "clean"));

    let mut bad = vs_img.clone();
    let nodes_off = section_byte_offset(&vs_img, sections::VS_NODES);
    let node0 = read_word(&bad, nodes_off);
    write_word(&mut bad, nodes_off, (31u64 << 32) | (node0 & 0xFFFF_FFFF));
    corpus.push((
        "vsdag-stride-range.img",
        repair_checksum(bad),
        "vsdag-stride-out-of-range",
    ));

    let mut bad = vs_img.clone();
    let params_off = section_byte_offset(&vs_img, sections::PARAMS);
    let n_slots = read_word(&bad, params_off + 2 * 8);
    assert!(n_slots > 16, "corpus vsdag has a real slot table");
    write_word(&mut bad, params_off + 2 * 8, n_slots - 16);
    corpus.push((
        "vsdag-slot-truncated.img",
        repair_checksum(bad),
        "vsdag-slot-coverage",
    ));

    corpus
}

fn assert_lints_to(name: &str, bytes: &[u8], expected: &str) {
    let issues = lint_bytes(bytes);
    if expected == "clean" {
        assert!(issues.is_empty(), "{name}: expected clean, got {issues:?}");
    } else {
        assert!(
            issues.iter().any(|i| i.code == expected),
            "{name}: expected a `{expected}` issue, got {issues:?}"
        );
    }
}

/// The generator's own expectations hold — independent of what is on
/// disk, every constructed corruption produces its intended diagnostic.
#[test]
fn generated_corpus_lints_as_expected() {
    for (name, bytes, expected) in build_corpus() {
        assert_lints_to(name, &bytes, expected);
    }
}

/// Regenerates `tests/corpus/` when `FIB_CORPUS_REGEN=1`; otherwise
/// verifies every committed file against the MANIFEST. The committed
/// bytes are the contract: lint behavior is pinned against them even if
/// the builders' output drifts.
#[test]
fn committed_corpus_matches_manifest() {
    let dir = corpus_dir();
    if std::env::var("FIB_CORPUS_REGEN").as_deref() == Ok("1") {
        fs::create_dir_all(&dir).unwrap();
        let mut manifest = String::new();
        for (name, bytes, expected) in build_corpus() {
            fs::write(dir.join(name), &bytes).unwrap();
            manifest.push_str(&format!("{name} {expected}\n"));
        }
        fs::write(dir.join("MANIFEST"), manifest).unwrap();
        return;
    }
    let manifest = fs::read_to_string(dir.join("MANIFEST"))
        .expect("tests/corpus/MANIFEST is committed (regen with FIB_CORPUS_REGEN=1)");
    let mut entries = 0;
    for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
        let (name, expected) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("malformed MANIFEST line: {line}"));
        let bytes = fs::read(dir.join(name))
            .unwrap_or_else(|e| panic!("corpus file {name} unreadable: {e}"));
        assert_lints_to(name, &bytes, expected);
        entries += 1;
    }
    assert!(entries >= 10, "corpus has shrunk to {entries} entries");
}

/// The `fibc lint` binary agrees with the library: exit 0 + "clean" on
/// honest images, non-zero + the typed code on corrupt ones.
#[test]
fn fibc_lint_binary_agrees_with_library() {
    let dir = corpus_dir();
    if !dir.join("MANIFEST").exists() {
        panic!("tests/corpus/MANIFEST missing (regen with FIB_CORPUS_REGEN=1)");
    }
    let fibc = env!("CARGO_BIN_EXE_fibc");

    let clean = Command::new(fibc)
        .args(["lint"])
        .arg(dir.join("clean-serialized.img"))
        .output()
        .expect("fibc runs");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(clean.status.success(), "clean image failed lint: {stdout}");
    assert!(
        stdout.contains("lint: clean"),
        "unexpected output: {stdout}"
    );

    let dirty = Command::new(fibc)
        .args(["lint"])
        .arg(dir.join("rank-directory.img"))
        .output()
        .expect("fibc runs");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(
        !dirty.status.success(),
        "corrupt image passed lint: {stdout}"
    );
    assert!(
        stdout.contains("rank-directory-mismatch"),
        "expected typed code in output, got: {stdout}"
    );
}
