//! FIB-image integration tests: roundtrip equivalence for every Table 2
//! engine on IPv4 and IPv6, zero-copy pointer-range assertions, size
//! accounting, and robustness against corrupt files.

use fibcomp::core::image::sections;
use fibcomp::core::{
    any_view, write_image, BuildConfig, EngineKind, FibBuild, FibImage, FibLookup, ImageCodec,
    ImageError, MultibitDag, PrefixDag, SerializedDag, VarStrideDag, XbwFib, XbwStorage,
};
use fibcomp::trie::{Address, BinaryTrie, LcTrie, NextHop, Prefix4, Prefix6};
use fibcomp::workload::rng::{Rng, Xoshiro256};
use fibcomp::workload::{traces, FibSpec};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

fn v4_fib(routes: usize, seed: u64) -> BinaryTrie<u32> {
    FibSpec::dfz_like(routes).generate(&mut rng(seed))
}

fn v6_fib() -> BinaryTrie<u128> {
    let mut trie: BinaryTrie<u128> = BinaryTrie::new();
    trie.insert("::/0".parse::<Prefix6>().unwrap(), NextHop::new(1));
    let mut r = rng(0x6666);
    for i in 0..3000u64 {
        let base = (0x2001_0db8u128 << 96) | (u128::from(i) << 76);
        let len = 32 + (r.random::<u64>() % 33) as u8;
        trie.insert(
            fibcomp::trie::Prefix::new(base | (u128::from(r.random::<u64>()) << 8), len),
            NextHop::new((r.random::<u64>() % 12) as u32),
        );
    }
    trie
}

/// Writes `engine` to an image, loads it back, and checks: header fields,
/// lookup equivalence on every probe (scalar and batched), and route
/// restoration.
fn assert_roundtrip<A, E>(engine: &E, trie: &BinaryTrie<A>, keys: &[A])
where
    A: Address,
    E: ImageCodec<A>,
{
    let bytes = write_image(engine, Some(trie), 7).expect("image encodes");
    assert_eq!(bytes.len() % 64, 0, "file length is whole blocks");
    let image = FibImage::from_bytes(&bytes).expect("image loads");
    assert_eq!(image.engine().unwrap() as u8, E::ENGINE as u8);
    assert_eq!(image.family(), if A::WIDTH == 32 { 4 } else { 6 });
    assert_eq!(image.epoch(), 7);
    assert_eq!(image.route_count() as usize, trie.len());
    let view = E::view(&image).expect("view assembles");
    for &key in keys {
        assert_eq!(
            view.lookup(key),
            engine.lookup(key),
            "{} image diverges at {:#x}",
            engine.name(),
            key.to_u128()
        );
    }
    let mut owned_out = vec![None; keys.len()];
    let mut image_out = vec![Some(NextHop::new(u32::MAX - 1)); keys.len()];
    engine.lookup_batch(keys, &mut owned_out);
    view.lookup_batch(keys, &mut image_out);
    assert_eq!(owned_out, image_out, "{} batch diverges", engine.name());
    // The routes section restores the control FIB exactly.
    let restored = image.routes::<A>().expect("routes decode");
    assert_eq!(restored.len(), trie.len());
    for &key in keys {
        assert_eq!(restored.lookup(key), trie.lookup(key));
    }
    // The type-erased view agrees too (what `fibc serve` uses).
    let erased = any_view::<A>(&image).expect("any_view assembles");
    for &key in keys.iter().take(64) {
        assert_eq!(erased.lookup(key), engine.lookup(key));
    }
}

fn engines_v4(trie: &BinaryTrie<u32>) -> impl Iterator<Item = (&'static str, Vec<u8>)> + '_ {
    let config = BuildConfig::default();
    let xbw_s: XbwFib<u32> = XbwFib::build(trie, XbwStorage::Succinct);
    let xbw_e: XbwFib<u32> = XbwFib::build(trie, XbwStorage::Entropy);
    let dag: PrefixDag<u32> = FibBuild::build(trie, &config);
    let ser: SerializedDag<u32> = FibBuild::build(trie, &config);
    let mb: MultibitDag<u32> = FibBuild::build(trie, &config);
    let lc: LcTrie<u32> = FibBuild::build(trie, &config);
    let vs: VarStrideDag<u32> = FibBuild::build(trie, &config);
    [
        ("xbw-succinct", write_image(&xbw_s, Some(trie), 0).unwrap()),
        ("xbw-entropy", write_image(&xbw_e, Some(trie), 0).unwrap()),
        ("pdag", write_image(&dag, Some(trie), 0).unwrap()),
        ("serialized", write_image(&ser, Some(trie), 0).unwrap()),
        ("multibit", write_image(&mb, Some(trie), 0).unwrap()),
        ("lctrie", write_image(&lc, Some(trie), 0).unwrap()),
        ("vsdag", write_image(&vs, Some(trie), 0).unwrap()),
    ]
    .into_iter()
}

#[test]
fn every_engine_roundtrips_on_ipv4() {
    let trie = v4_fib(12_000, 1);
    let keys = traces::uniform::<u32, _>(&mut rng(2), 3000);
    let config = BuildConfig::default();
    assert_roundtrip(&XbwFib::build(&trie, XbwStorage::Succinct), &trie, &keys);
    assert_roundtrip(&XbwFib::build(&trie, XbwStorage::Entropy), &trie, &keys);
    assert_roundtrip::<u32, PrefixDag<u32>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u32, SerializedDag<u32>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u32, MultibitDag<u32>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u32, LcTrie<u32>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u32, VarStrideDag<u32>>(&FibBuild::build(&trie, &config), &trie, &keys);
}

#[test]
fn every_engine_roundtrips_on_ipv6() {
    let trie = v6_fib();
    let mut keys = traces::uniform::<u128, _>(&mut rng(3), 2000);
    // Bias half the probes into the routed region.
    for (i, key) in keys.iter_mut().enumerate().take(1000) {
        *key = (0x2001_0db8u128 << 96) | (*key & ((1u128 << 76) - 1)) | ((i as u128) << 76);
    }
    let config = BuildConfig::default();
    assert_roundtrip(&XbwFib::build(&trie, XbwStorage::Succinct), &trie, &keys);
    assert_roundtrip(&XbwFib::build(&trie, XbwStorage::Entropy), &trie, &keys);
    assert_roundtrip::<u128, PrefixDag<u128>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u128, SerializedDag<u128>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u128, MultibitDag<u128>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u128, LcTrie<u128>>(&FibBuild::build(&trie, &config), &trie, &keys);
    assert_roundtrip::<u128, VarStrideDag<u128>>(&FibBuild::build(&trie, &config), &trie, &keys);
}

/// The zero-copy guarantee, asserted by pointer ranges: every word the
/// views read lives inside the image's single load buffer.
#[test]
fn loaded_views_borrow_from_the_image_arena() {
    let trie = v4_fib(4_000, 4);
    let config = BuildConfig::default();
    let within = |range: std::ops::Range<usize>, arena: std::ops::Range<*const u64>| {
        assert!(
            range.start >= arena.start as usize && range.end <= arena.end as usize,
            "view payload {range:?} outside the arena {arena:?}"
        );
    };

    let ser: SerializedDag<u32> = FibBuild::build(&trie, &config);
    let image = FibImage::from_bytes(&write_image(&ser, None, 0).unwrap()).unwrap();
    let view = <SerializedDag<u32> as ImageCodec<u32>>::view(&image).unwrap();
    within(view.payload_ptr_range(), image.words().as_ptr_range());

    let mb: MultibitDag<u32> = FibBuild::build(&trie, &config);
    let image = FibImage::from_bytes(&write_image(&mb, None, 0).unwrap()).unwrap();
    let view = <MultibitDag<u32> as ImageCodec<u32>>::view(&image).unwrap();
    within(view.payload_ptr_range(), image.words().as_ptr_range());

    let lc: LcTrie<u32> = FibBuild::build(&trie, &config);
    let image = FibImage::from_bytes(&write_image(&lc, None, 0).unwrap()).unwrap();
    let view = <LcTrie<u32> as ImageCodec<u32>>::view(&image).unwrap();
    within(view.payload_ptr_range(), image.words().as_ptr_range());

    let dag: PrefixDag<u32> = FibBuild::build(&trie, &config);
    let image = FibImage::from_bytes(&write_image(&dag, None, 0).unwrap()).unwrap();
    let view = <PrefixDag<u32> as ImageCodec<u32>>::view(&image).unwrap();
    within(view.payload_ptr_range(), image.words().as_ptr_range());

    let vs: VarStrideDag<u32> = FibBuild::build(&trie, &config);
    let image = FibImage::from_bytes(&write_image(&vs, None, 0).unwrap()).unwrap();
    let view = <VarStrideDag<u32> as ImageCodec<u32>>::view(&image).unwrap();
    within(view.payload_ptr_range(), image.words().as_ptr_range());

    for storage in [XbwStorage::Succinct, XbwStorage::Entropy] {
        let xbw = XbwFib::build(&trie, storage);
        let image = FibImage::from_bytes(&write_image(&xbw, None, 0).unwrap()).unwrap();
        let view = <XbwFib<u32> as ImageCodec<u32>>::view(&image).unwrap();
        for range in view.payload_ptr_ranges() {
            within(range, image.words().as_ptr_range());
        }
        // The load buffer is 64-byte aligned, so interleaved rank lines
        // keep their single-cache-line guarantee when served from disk.
        assert_eq!(image.words().as_ptr() as usize % 64, 0);
    }
}

/// The engine's own size accounting and the image payload must agree
/// within a few percent — this is the drift alarm for both.
#[test]
fn image_payload_tracks_engine_size_bytes() {
    // Large enough that the image's fixed metadata (8-word meta blocks,
    // wavelet node tables, block padding) amortizes below the tolerance.
    let trie = v4_fib(40_000, 5);
    for (name, bytes) in engines_v4(&trie) {
        let image = FibImage::from_bytes(&bytes).unwrap();
        let payload_bytes: usize = image
            .section_table()
            .iter()
            .filter(|e| e.id != sections::ROUTES && e.id != sections::PARAMS)
            .map(|e| e.len * 8)
            .sum();
        let claimed = image.claimed_size_bytes() as usize;
        assert!(claimed > 0, "{name}: empty size claim");
        let drift = payload_bytes.abs_diff(claimed) as f64 / claimed as f64;
        assert!(
            drift < 0.05,
            "{name}: image payload {payload_bytes} B vs claimed size_bytes {claimed} B \
             ({:.1}% drift)",
            drift * 100.0
        );
    }
}

/// Corrupt images must fail loudly with a typed error — never panic,
/// never misroute.
#[test]
fn corrupt_images_fail_loudly() {
    let trie = v4_fib(2_000, 6);
    let ser: SerializedDag<u32> = FibBuild::build(&trie, &BuildConfig::default());
    let good = write_image(&ser, Some(&trie), 3).unwrap();

    // Truncation at every interesting boundary.
    for cut in [0usize, 7, 8, 63, 64, 128, good.len() / 2, good.len() - 1] {
        let got = FibImage::from_bytes(&good[..cut]);
        assert!(
            matches!(got, Err(ImageError::Truncated | ImageError::BadMagic)),
            "cut {cut}: {got:?}"
        );
    }
    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert_eq!(
        FibImage::from_bytes(&bad).unwrap_err(),
        ImageError::BadMagic
    );
    // Bad version (checksum repaired so the version check is what fires).
    let mut bad = good.clone();
    bad[8] = 0xEE;
    let repaired = repair_checksum(bad);
    assert_eq!(
        FibImage::from_bytes(&repaired).unwrap_err(),
        ImageError::BadVersion(0xEE)
    );
    // Wrong address family: a v4 image refused by a v6 view.
    let image = FibImage::from_bytes(&good).unwrap();
    assert!(matches!(
        <SerializedDag<u128> as ImageCodec<u128>>::view(&image),
        Err(ImageError::FamilyMismatch {
            image: 4,
            expected: 6
        })
    ));
    assert!(matches!(
        image.routes::<u128>(),
        Err(ImageError::FamilyMismatch { .. })
    ));
    // Wrong engine.
    assert!(matches!(
        <MultibitDag<u32> as ImageCodec<u32>>::view(&image),
        Err(ImageError::EngineMismatch { .. })
    ));
    // A single flipped payload byte breaks the checksum.
    for pos in [65usize, 200, good.len() - 2] {
        let mut bad = good.clone();
        bad[pos] ^= 0x10;
        assert_eq!(
            FibImage::from_bytes(&bad).unwrap_err(),
            ImageError::ChecksumMismatch,
            "flip at {pos}"
        );
    }
    // Flipping the checksum itself (header word 7) also fails.
    let mut bad = good.clone();
    bad[56] ^= 0x01;
    assert_eq!(
        FibImage::from_bytes(&bad).unwrap_err(),
        ImageError::ChecksumMismatch
    );
    // Unknown engine id (checksum repaired so the engine check fires).
    let mut bad = good;
    bad[11] = 0x7F; // engine byte inside header word 1
    let repaired = repair_checksum(bad);
    let image = FibImage::from_bytes(&repaired).unwrap();
    assert_eq!(image.engine().unwrap_err(), ImageError::UnknownEngine(0x7F));
    assert!(any_view::<u32>(&image).is_err());
}

/// Recomputes the trailer checksum after deliberate header edits, so
/// tests can reach the validation that sits *behind* the checksum.
fn repair_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
    bytes[56..64].fill(0);
    let checksum = fibcomp::succinct::fnv1a(&bytes);
    bytes[56..64].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

#[test]
fn per_level_xbw_declines_image_encoding() {
    let trie = v4_fib(500, 8);
    let xbw = XbwFib::build(
        &trie,
        XbwStorage::Custom(
            fibcomp::core::SiStorage::Rrr,
            fibcomp::core::SaStorage::HuffmanPerLevel,
        ),
    );
    assert!(matches!(
        write_image(&xbw, None, 0),
        Err(ImageError::Unsupported(_))
    ));
}

#[test]
fn engine_kind_names_roundtrip() {
    for kind in [
        EngineKind::Xbw,
        EngineKind::PrefixDag,
        EngineKind::SerializedDag,
        EngineKind::MultibitDag,
        EngineKind::LcTrie,
    ] {
        assert_eq!(EngineKind::parse(kind.name()), Some(kind));
        assert_eq!(EngineKind::from_u8(kind as u8), Some(kind));
    }
    assert_eq!(EngineKind::parse("bogus"), None);
}

#[test]
fn image_file_roundtrip_via_disk() {
    let dir = std::env::temp_dir().join(format!("fibimg-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trie = v4_fib(1_000, 9);
    let ser: SerializedDag<u32> = FibBuild::build(&trie, &BuildConfig::default());
    let path = dir.join("t.img");
    fibcomp::core::write_image_file(&ser, Some(&trie), 1, &path).unwrap();
    let keys = traces::uniform::<u32, _>(&mut rng(10), 500);
    let hits = fibcomp::core::load_image::<u32, SerializedDag<u32>, usize>(&path, |view| {
        keys.iter().filter(|&&k| view.lookup(k).is_some()).count()
    })
    .unwrap();
    let expected = keys.iter().filter(|&&k| ser.lookup(k).is_some()).count();
    assert_eq!(hits, expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefix4_prefix6_image_probes() {
    // A tiny, fully hand-checkable FIB on both families.
    let mut t4: BinaryTrie<u32> = BinaryTrie::new();
    t4.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), NextHop::new(1));
    t4.insert("10.0.0.0/8".parse::<Prefix4>().unwrap(), NextHop::new(2));
    let ser: SerializedDag<u32> = FibBuild::build(&t4, &BuildConfig::default());
    let image = FibImage::from_bytes(&write_image(&ser, Some(&t4), 0).unwrap()).unwrap();
    let view = <SerializedDag<u32> as ImageCodec<u32>>::view(&image).unwrap();
    assert_eq!(view.lookup(0x0A00_0001u32), Some(NextHop::new(2)));
    assert_eq!(view.lookup(0x0B00_0001u32), Some(NextHop::new(1)));
}
