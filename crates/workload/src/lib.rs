//! Workload generation for the FIB-compression evaluation.
//!
//! The paper evaluates on five proprietary router FIBs, RouteViews BGP
//! dumps, a CAIDA packet trace and a BGP update log — none of which can be
//! redistributed. This crate builds faithful synthetic stand-ins (the
//! substitution ledger in DESIGN.md argues why each preserves the relevant
//! behaviour):
//!
//! * [`labels`] — next-hop label distributions (truncated Poisson,
//!   Bernoulli, geometric-calibrated-to-H0, uniform) with exact entropy
//!   reporting,
//! * [`genfib`] — synthetic FIBs by **iterative random prefix splitting**,
//!   the paper's own generator for its `fib_600k`/`fib_1m` instances,
//! * [`instances`] — one stand-in per Table 1 row, carrying the published
//!   numbers for side-by-side reporting,
//! * [`updates`] — random and BGP-like update sequences (§5.1),
//! * [`traces`] — uniform, locality-skewed (Zipf) and bursty
//!   flow-locality lookup key streams (§5.3's random keys and
//!   CAIDA-trace stand-in, plus a dedup control separating popularity
//!   locality from depth bias),
//! * [`loadgen`] — named key models turned into per-worker, seeded
//!   address streams for the multi-core forwarding runtime,
//! * [`heat`] — lock-free per-worker traffic heat sketches and the merged
//!   summaries that drive traffic-aware compilation in `fib-core`,
//! * [`vrf`] — multi-tenant VRF fleets derived from one base FIB (shared
//!   base routes + per-VRF churn) and mixed-VRF probe streams for the
//!   cross-table dedup compiler.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod genfib;
pub mod heat;
pub mod instances;
pub mod labels;
pub mod loadgen;
pub mod rng;
pub mod traces;
pub mod updates;
pub mod vrf;

pub use genfib::FibSpec;
pub use heat::{heat_key, HeatMap, HeatSketch, HeatSummary};
pub use instances::{InstanceGroup, PaperInstance, PaperRow};
pub use labels::LabelModel;
pub use vrf::{fleet_weights, instance_fleet, mixed_keys, VrfFleetSpec};
