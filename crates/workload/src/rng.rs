//! Deterministic, dependency-free pseudo-randomness.
//!
//! The workspace must build with no registry access, so the usual `rand`
//! stack is replaced by this module: a SplitMix64 seeder feeding a
//! xoshiro256\*\* generator (Blackman–Vigna), plus just enough trait
//! surface — [`Rng::random`], [`Rng::random_range`], [`Rng::choose`] — to
//! express every workload, test and bench in the tree.
//!
//! Determinism is part of the contract: a given seed produces the same
//! stream on every platform, every build and every run. Nothing here is
//! cryptographic; it is a simulation-quality generator with 256 bits of
//! state and full 64-bit output.

use std::ops::{Range, RangeInclusive};

pub use fib_succinct::fnv1a;

/// A deterministic source of pseudo-random bits.
///
/// Implementors only provide [`Rng::next_u64`]; everything else derives
/// from it. Generic workload APIs take `R: Rng + ?Sized` so callers can
/// pass any generator (or a `&mut` borrow of one).
pub trait Rng {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly over the whole domain of `T` (for floats:
    /// uniformly on `[0, 1)`).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Samples uniformly from an integer range, half-open (`lo..hi`) or
    /// inclusive (`lo..=hi`), without modulo bias.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = uniform_below(self, slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 (Steele–Lea–Vigna): a tiny 64-bit generator whose main job
/// here is expanding a single seed word into larger state, as the xoshiro
/// authors recommend.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed, including 0, is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* (Blackman–Vigna): the workspace's standard generator.
/// 256 bits of state, period 2²⁵⁶ − 1, excellent statistical quality, and
/// a few nanoseconds per draw.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Builds the full 256-bit state from one seed word via SplitMix64
    /// (the state can never end up all-zero this way).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives an independent stream for one case of a named seeded test:
    /// the name separates tests, the case index separates their cases, so
    /// any failing case reproduces in isolation without replaying a suite.
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> Self {
        Self::seed_from_u64(fnv1a(name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types [`Rng::random`] can sample uniformly over their whole domain.
pub trait Random {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                // Truncate from the top bits, which are the strongest in
                // xoshiro256**-style generators.
                (rng.next_u64() >> (64 - <$t>::BITS)) as $t
            }
        }
    )*};
}

impl_random_uint!(u8, u16, u32, u64, usize);

impl Random for u128 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → uniform on [0, 1).
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

/// Draws uniformly from `[0, span)` without modulo bias (Lemire's
/// multiply-shift rejection method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(span);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(span);
        }
    }
    (m >> 64) as u64
}

/// Range shapes [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    uniform_below(rng, span + 1)
                };
                lo.wrapping_add(offset as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First outputs for seed 1234567, from the reference C
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(sm.next_u64(), 3_203_168_211_198_807_973);
        assert_eq!(sm.next_u64(), 9_817_491_932_198_370_423);
    }

    #[test]
    fn fnv1a_matches_reference_values() {
        // Offset basis for the empty string; "a" from the FNV reference.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn for_case_separates_tests_and_cases() {
        let mut a = Xoshiro256::for_case("test_a", 0);
        let mut a2 = Xoshiro256::for_case("test_a", 0);
        let mut b = Xoshiro256::for_case("test_b", 0);
        let mut a1 = Xoshiro256::for_case("test_a", 1);
        let first = a.next_u64();
        assert_eq!(first, a2.next_u64());
        assert_ne!(first, b.next_u64());
        assert_ne!(first, a1.next_u64());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!((0..100).any(|_| c.next_u64() != b.next_u64()));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let a: u8 = rng.random_range(0..=32);
            assert!(a <= 32);
            let b: usize = rng.random_range(3..17);
            assert!((3..17).contains(&b));
            let c: u64 = rng.random_range(0..1);
            assert_eq!(c, 0);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_is_supported() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        // Must not overflow or panic; over a few draws it must not be
        // constant either.
        let draws: Vec<u64> = (0..8).map(|_| rng.random_range(0..=u64::MAX)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let _: u32 = rng.random_range(5..5);
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; 5% tolerance is ~13 sigma.
            assert!((9_500..10_500).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn choose_covers_all_elements_and_handles_empty() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let empty: [u32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [1u32, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let &x = rng.choose(&items).unwrap();
            seen[x as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_borrows_work_through_the_blanket_impl() {
        fn takes_dyn(rng: &mut dyn FnMut() -> u64) -> u64 {
            rng()
        }
        // The `&mut R` impl lets generic APIs take `&mut rng` by value.
        let mut rng = Xoshiro256::seed_from_u64(12);
        fn draw<R: Rng>(mut r: R) -> u64 {
            r.next_u64()
        }
        let a = draw(&mut rng);
        let b = rng.next_u64();
        assert_ne!(a, b);
        let _ = takes_dyn(&mut || 0);
    }

    #[test]
    fn float_draws_fill_the_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
