//! The load generator feeding the multi-core forwarding runtime: named
//! key models (uniform, Zipf, bursty flow-locality) turned into
//! per-worker, independently-seeded address streams.
//!
//! Reproducibility contract: a `(model, fib, seed, worker)` tuple always
//! produces the identical packet stream, and distinct workers get
//! decorrelated streams from one base seed — so a multi-thread serve
//! benchmark is exactly re-runnable.

use fib_trie::{Address, BinaryTrie};

use crate::rng::{Rng, Xoshiro256};
use crate::traces::{uniform, BurstyTrace, ZipfTrace};

/// A named lookup-key distribution (the serve benchmark's `keys` axis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyModel {
    /// Addresses uniform on the space — the paper's "rand." worst case.
    Uniform,
    /// Zipf-popularity destinations over the FIB's prefixes (CAIDA-trace
    /// stand-in); exponent ≈ 1.0 matches measured skew.
    Zipf {
        /// Zipf exponent.
        s: f64,
    },
    /// Flow bursts: Zipf-popular flows each emitting a geometric run of
    /// packets to one address (temporal + popularity locality).
    Bursty {
        /// Zipf exponent for flow popularity.
        s: f64,
        /// Mean packets per flow burst (≥ 1).
        mean_burst: f64,
    },
}

impl KeyModel {
    /// The benchmark-standard variants: `uniform`, `zipf` (s = 1.0),
    /// `bursty` (s = 1.0, mean burst 8).
    ///
    /// Returns `None` for unknown names.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "uniform" => Some(Self::Uniform),
            "zipf" => Some(Self::Zipf { s: 1.0 }),
            "bursty" => Some(Self::Bursty {
                s: 1.0,
                mean_burst: 8.0,
            }),
            _ => None,
        }
    }

    /// The row label this model reports under.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::Zipf { .. } => "zipf",
            Self::Bursty { .. } => "bursty",
        }
    }
}

enum StreamKind<A: Address> {
    Uniform,
    Zipf(ZipfTrace<A>),
    Bursty(BurstyTrace<A>),
}

/// One worker's reproducible address stream.
pub struct AddrStream<A: Address> {
    kind: StreamKind<A>,
    rng: Xoshiro256,
}

impl<A: Address> AddrStream<A> {
    /// A stream for `worker` under `model`, drawing destinations from
    /// `fib`'s prefixes where the model needs them. Workers derive
    /// decorrelated RNG streams from the one `seed`.
    #[must_use]
    pub fn new(model: KeyModel, fib: &BinaryTrie<A>, seed: u64, worker: u64) -> Self {
        let rng = Self::worker_rng(seed, worker);
        let kind = match model {
            KeyModel::Uniform => StreamKind::Uniform,
            KeyModel::Zipf { s } => StreamKind::Zipf(ZipfTrace::new(fib, s)),
            KeyModel::Bursty { s, mean_burst } => {
                StreamKind::Bursty(BurstyTrace::new(fib, s, mean_burst))
            }
        };
        Self { kind, rng }
    }

    /// A uniform stream needing no FIB (e.g. serving an image whose
    /// routes section was stripped).
    #[must_use]
    pub fn uniform(seed: u64, worker: u64) -> Self {
        Self {
            kind: StreamKind::Uniform,
            rng: Self::worker_rng(seed, worker),
        }
    }

    fn worker_rng(seed: u64, worker: u64) -> Xoshiro256 {
        // Weyl-step the seed per worker so streams decorrelate without a
        // jump function.
        Xoshiro256::seed_from_u64(seed ^ (worker + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The next destination address.
    pub fn next_addr(&mut self) -> A {
        match &mut self.kind {
            StreamKind::Uniform => {
                A::from_u128(self.rng.random::<u128>() >> (128 - u32::from(A::WIDTH)))
            }
            StreamKind::Zipf(z) => z.sample(&mut self.rng),
            StreamKind::Bursty(b) => b.next_addr(&mut self.rng),
        }
    }

    /// Replaces `buf`'s contents with the next `n` addresses — the shape
    /// the forwarding runtime's `AddressSource` expects.
    pub fn fill(&mut self, buf: &mut Vec<A>, n: usize) {
        buf.clear();
        buf.reserve(n);
        for _ in 0..n {
            let addr = self.next_addr();
            buf.push(addr);
        }
    }

    /// Draws a whole trace (convenience for single-shot benchmarks).
    pub fn take_vec(&mut self, n: usize) -> Vec<A> {
        match &mut self.kind {
            StreamKind::Uniform => uniform(&mut self.rng, n),
            StreamKind::Zipf(z) => z.generate(&mut self.rng, n),
            StreamKind::Bursty(b) => b.generate(&mut self.rng, n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genfib::FibSpec;

    fn fib() -> BinaryTrie<u32> {
        FibSpec::dfz_like(600).generate(&mut Xoshiro256::seed_from_u64(11))
    }

    #[test]
    fn model_names_roundtrip() {
        for name in ["uniform", "zipf", "bursty"] {
            assert_eq!(KeyModel::parse(name).unwrap().name(), name);
        }
        assert_eq!(KeyModel::parse("nope"), None);
    }

    #[test]
    fn streams_are_reproducible_and_worker_decorrelated() {
        let fib = fib();
        for model in [
            KeyModel::Uniform,
            KeyModel::Zipf { s: 1.0 },
            KeyModel::Bursty {
                s: 1.0,
                mean_burst: 8.0,
            },
        ] {
            let a = AddrStream::new(model, &fib, 42, 0).take_vec(500);
            let b = AddrStream::new(model, &fib, 42, 0).take_vec(500);
            assert_eq!(a, b, "{model:?} must be reproducible");
            let c = AddrStream::new(model, &fib, 42, 1).take_vec(500);
            assert_ne!(a, c, "{model:?} workers must differ");
        }
    }

    #[test]
    fn fill_matches_next_addr() {
        let fib = fib();
        let mut s1 = AddrStream::new(KeyModel::Zipf { s: 1.0 }, &fib, 7, 3);
        let mut s2 = AddrStream::new(KeyModel::Zipf { s: 1.0 }, &fib, 7, 3);
        let mut buf = Vec::new();
        s1.fill(&mut buf, 64);
        let direct: Vec<u32> = (0..64).map(|_| s2.next_addr()).collect();
        assert_eq!(buf, direct);
    }

    #[test]
    fn bursty_stream_has_temporal_locality() {
        let fib = fib();
        let mut stream = AddrStream::new(
            KeyModel::Bursty {
                s: 1.0,
                mean_burst: 8.0,
            },
            &fib,
            9,
            0,
        );
        let trace = stream.take_vec(20_000);
        let repeats = trace.windows(2).filter(|w| w[0] == w[1]).count();
        // Mean burst 8 → P(next == current) = 7/8; leave slack for noise.
        let frac = repeats as f64 / (trace.len() - 1) as f64;
        assert!(
            (0.80..0.95).contains(&frac),
            "repeat fraction {frac} outside bursty expectation"
        );
        // Every packet still lands inside the FIB.
        for addr in trace.iter().take(500) {
            assert!(fib.lookup(*addr).is_some());
        }
    }

    #[test]
    fn uniform_stream_has_no_temporal_locality() {
        let fib = fib();
        let mut stream = AddrStream::<u32>::new(KeyModel::Uniform, &fib, 9, 0);
        let trace = stream.take_vec(20_000);
        let repeats = trace.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(repeats, 0, "u32-uniform back-to-back repeats ≈ never");
    }
}
