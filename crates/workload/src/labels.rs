//! Next-hop label distributions.

use fib_trie::NextHop;

use crate::rng::Rng;

/// A probability distribution over next-hop labels `0..δ`.
///
/// Each model reports its exact Shannon entropy, which is how the paper
/// instances are matched to their published `H0` column.
#[derive(Clone, Debug)]
pub enum LabelModel {
    /// All δ labels equally likely — the worst case for compression.
    Uniform {
        /// Alphabet size.
        delta: u32,
    },
    /// Two labels: label 0 with probability `p`, label 1 otherwise. This is
    /// the model of the paper's Figs. 6 and 7.
    Bernoulli {
        /// Probability of label 0.
        p: f64,
    },
    /// Poisson(λ) truncated (renormalized) to `0..δ` — the paper's model
    /// for its synthetic `fib_600k`/`fib_1m` instances (parameter 3/5).
    TruncPoisson {
        /// Poisson rate parameter.
        lambda: f64,
        /// Alphabet size.
        delta: u32,
    },
    /// `p_i ∝ ratio^i` for `i` in `0..δ`: a dominant next-hop with a
    /// geometric tail, which is what access-router FIBs look like.
    Geometric {
        /// Decay ratio in `(0, 1]`.
        ratio: f64,
        /// Alphabet size.
        delta: u32,
    },
    /// Arbitrary weights (normalized internally).
    Weighted {
        /// Relative label weights; must be non-negative, not all zero.
        weights: Vec<f64>,
    },
}

impl LabelModel {
    /// The normalized probability vector.
    ///
    /// # Panics
    /// Panics on empty or degenerate parameterizations.
    #[must_use]
    pub fn probabilities(&self) -> Vec<f64> {
        let raw: Vec<f64> = match self {
            Self::Uniform { delta } => {
                assert!(*delta >= 1);
                vec![1.0; *delta as usize]
            }
            Self::Bernoulli { p } => {
                assert!((0.0..=1.0).contains(p), "p = {p} out of [0,1]");
                vec![*p, 1.0 - *p]
            }
            Self::TruncPoisson { lambda, delta } => {
                assert!(*lambda > 0.0 && *delta >= 1);
                let mut weights = Vec::with_capacity(*delta as usize);
                let mut term = 1.0; // λ^0 / 0!
                for k in 0..*delta {
                    if k > 0 {
                        term *= lambda / f64::from(k);
                    }
                    weights.push(term);
                }
                weights
            }
            Self::Geometric { ratio, delta } => {
                assert!(*ratio > 0.0 && *ratio <= 1.0 && *delta >= 1);
                let mut weights = Vec::with_capacity(*delta as usize);
                let mut w = 1.0;
                for _ in 0..*delta {
                    weights.push(w);
                    w *= ratio;
                }
                weights
            }
            Self::Weighted { weights } => {
                assert!(!weights.is_empty());
                weights.clone()
            }
        };
        let total: f64 = raw.iter().sum();
        assert!(total > 0.0, "all-zero weight vector");
        raw.into_iter().map(|w| w / total).collect()
    }

    /// Alphabet size δ.
    #[must_use]
    pub fn delta(&self) -> usize {
        match self {
            Self::Uniform { delta }
            | Self::TruncPoisson { delta, .. }
            | Self::Geometric { delta, .. } => *delta as usize,
            Self::Bernoulli { .. } => 2,
            Self::Weighted { weights } => weights.len(),
        }
    }

    /// Exact Shannon entropy of the model in bits.
    #[must_use]
    pub fn h0(&self) -> f64 {
        self.probabilities()
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }

    /// Samples one label.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NextHop {
        let probs = self.probabilities();
        let mut x: f64 = rng.random();
        for (i, &p) in probs.iter().enumerate() {
            if x < p {
                return NextHop::new(i as u32);
            }
            x -= p;
        }
        NextHop::new(probs.len() as u32 - 1)
    }

    /// Pre-computes a cumulative table for repeated sampling.
    #[must_use]
    pub fn sampler(&self) -> LabelSampler {
        let probs = self.probabilities();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in probs {
            acc += p;
            cumulative.push(acc);
        }
        LabelSampler { cumulative }
    }

    /// Calibrates a [`LabelModel::Geometric`] over `delta` labels whose
    /// entropy matches `target_h0` (clamped to the feasible range
    /// `[0, lg δ]`) to within 10⁻⁶ bits, by bisection on the decay ratio.
    #[must_use]
    pub fn geometric_for_h0(delta: u32, target_h0: f64) -> Self {
        assert!(delta >= 2, "need at least two labels to have entropy");
        let max_h0 = f64::from(delta).log2();
        let target = target_h0.clamp(0.0, max_h0 - 1e-9);
        let (mut lo, mut hi) = (1e-12, 1.0);
        for _ in 0..80 {
            let mid = f64::midpoint(lo, hi);
            let h = Self::Geometric { ratio: mid, delta }.h0();
            if h < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::Geometric {
            ratio: f64::midpoint(lo, hi),
            delta,
        }
    }
}

/// Cumulative-table sampler for a [`LabelModel`].
#[derive(Clone, Debug)]
pub struct LabelSampler {
    cumulative: Vec<f64>,
}

impl LabelSampler {
    /// Samples one label.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NextHop {
        let x: f64 = rng.random();
        let idx = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1);
        NextHop::new(idx as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn uniform_entropy_is_log_delta() {
        let m = LabelModel::Uniform { delta: 8 };
        assert!((m.h0() - 3.0).abs() < 1e-12);
        assert_eq!(m.delta(), 8);
    }

    #[test]
    fn bernoulli_entropy_curve() {
        assert!(LabelModel::Bernoulli { p: 0.5 }.h0() > 0.9999);
        assert!(LabelModel::Bernoulli { p: 0.01 }.h0() < 0.1);
        let h = LabelModel::Bernoulli { p: 0.25 }.h0();
        assert!((h - 0.811_278_124_459_1).abs() < 1e-9);
    }

    #[test]
    fn trunc_poisson_is_normalized_and_skewed() {
        let m = LabelModel::TruncPoisson {
            lambda: 0.6,
            delta: 4,
        };
        let probs = m.probabilities();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs[0] > probs[1] && probs[1] > probs[2] && probs[2] > probs[3]);
    }

    #[test]
    fn geometric_calibration_hits_target() {
        for (delta, target) in [(4u32, 1.06), (28, 1.06), (36, 3.91), (195, 2.00), (3, 1.54)] {
            let m = LabelModel::geometric_for_h0(delta, target);
            assert!(
                (m.h0() - target).abs() < 1e-5,
                "δ={delta} target={target} got {}",
                m.h0()
            );
        }
    }

    #[test]
    fn calibration_clamps_infeasible_targets() {
        // lg 4 = 2 is the maximum entropy with 4 labels.
        let m = LabelModel::geometric_for_h0(4, 5.0);
        assert!(m.h0() <= 2.0 + 1e-9);
        assert!(m.h0() > 1.99, "should saturate near lg δ, got {}", m.h0());
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let m = LabelModel::TruncPoisson {
            lambda: 0.6,
            delta: 4,
        };
        let sampler = m.sampler();
        let mut counts = [0u64; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[sampler.sample(&mut rng).index() as usize] += 1;
        }
        let probs = m.probabilities();
        for (i, &c) in counts.iter().enumerate() {
            let empirical = c as f64 / f64::from(n);
            assert!(
                (empirical - probs[i]).abs() < 0.01,
                "label {i}: empirical {empirical} vs {p}",
                p = probs[i]
            );
        }
    }

    #[test]
    fn direct_sample_agrees_with_sampler() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let m = LabelModel::Weighted {
            weights: vec![1.0, 2.0, 3.0],
        };
        for _ in 0..100 {
            let nh = m.sample(&mut rng);
            assert!(nh.index() < 3);
        }
    }
}
