//! Update sequences (§5.1).
//!
//! Two models, matching the paper's measurement setup:
//!
//! * **random** — prefixes uniform on the address space with uniform
//!   lengths: the adversarial sequence behind the full trade-off curve of
//!   Fig. 5;
//! * **BGP-like** — modeled on RouteViews churn: updates target existing
//!   prefixes (heavily biased toward long ones, mean length ≈ 21.87), with
//!   next-hops re-drawn from the FIB's own next-hop distribution, plus a
//!   small announce/withdraw flux of fresh prefixes.

use fib_trie::stats::route_label_histogram;
use fib_trie::{Address, BinaryTrie, NextHop, Prefix};

use crate::rng::Rng;

/// One routing-table change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateOp<A: Address> {
    /// Insert or replace a route.
    Announce(Prefix<A>, NextHop),
    /// Delete a route.
    Withdraw(Prefix<A>),
}

impl<A: Address> UpdateOp<A> {
    /// Applies the operation to a trie.
    pub fn apply(&self, trie: &mut BinaryTrie<A>) {
        match *self {
            Self::Announce(p, nh) => {
                trie.insert(p, nh);
            }
            Self::Withdraw(p) => {
                trie.remove(p);
            }
        }
    }

    /// The affected prefix.
    #[must_use]
    pub fn prefix(&self) -> Prefix<A> {
        match *self {
            Self::Announce(p, _) | Self::Withdraw(p) => p,
        }
    }
}

/// Uniform-random update sequence: addresses uniform on `[0, 2^W)`,
/// lengths uniform on `[0, W]`, labels uniform on `0..delta`; 80%
/// announcements.
pub fn random_sequence<A: Address, R: Rng + ?Sized>(
    rng: &mut R,
    count: usize,
    delta: u32,
) -> Vec<UpdateOp<A>> {
    (0..count)
        .map(|_| {
            let addr = A::from_u128(rng.random::<u128>() >> (128 - u32::from(A::WIDTH)));
            let len = rng.random_range(0..=u32::from(A::WIDTH)) as u8;
            let prefix = Prefix::new(addr, len);
            if rng.random::<f64>() < 0.8 {
                UpdateOp::Announce(prefix, NextHop::new(rng.random_range(0..delta)))
            } else {
                UpdateOp::Withdraw(prefix)
            }
        })
        .collect()
}

/// Empirical BGP announce-length histogram (per RouteViews churn studies):
/// pairs of (prefix length, relative weight). Mean ≈ 21.9, /24-heavy.
const BGP_LEN_WEIGHTS: [(u8, u32); 12] = [
    (8, 1),
    (12, 2),
    (14, 2),
    (16, 8),
    (17, 3),
    (18, 4),
    (19, 6),
    (20, 7),
    (21, 7),
    (22, 13),
    (23, 10),
    (24, 37),
];

/// Samples a BGP-like prefix length.
pub fn bgp_prefix_len<R: Rng + ?Sized>(rng: &mut R) -> u8 {
    let total: u32 = BGP_LEN_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut x = rng.random_range(0..total);
    for &(len, w) in &BGP_LEN_WEIGHTS {
        if x < w {
            return len;
        }
        x -= w;
    }
    24
}

/// BGP-like update sequence against an existing FIB.
///
/// 85% of operations re-announce an existing prefix with a next-hop drawn
/// from the FIB's own next-hop distribution (exactly the paper's setup);
/// 7.5% announce a fresh prefix with a BGP-like length; 7.5% withdraw one
/// of the prefixes touched so far.
pub fn bgp_sequence<R: Rng + ?Sized>(
    rng: &mut R,
    fib: &BinaryTrie<u32>,
    count: usize,
) -> Vec<UpdateOp<u32>> {
    let prefixes: Vec<Prefix<u32>> = fib.iter().map(|(p, _)| p).collect();
    // Next-hop distribution of the FIB, sampled by route frequency.
    let hist = route_label_histogram(fib);
    let hops: Vec<NextHop> = hist.keys().copied().collect();
    let weights: Vec<u64> = hist.values().copied().collect();
    let total_weight: u64 = weights.iter().sum::<u64>().max(1);
    let sample_hop = |rng: &mut R| -> NextHop {
        if hops.is_empty() {
            return NextHop::new(0);
        }
        let mut x = rng.random_range(0..total_weight);
        for (nh, &w) in hops.iter().zip(&weights) {
            if x < w {
                return *nh;
            }
            x -= w;
        }
        *hops.last().expect("non-empty")
    };

    let mut fresh: Vec<Prefix<u32>> = Vec::new();
    (0..count)
        .map(|_| {
            let roll: f64 = rng.random();
            if roll < 0.85 && !prefixes.is_empty() {
                let p = *rng.choose(&prefixes).expect("non-empty");
                UpdateOp::Announce(p, sample_hop(rng))
            } else if roll < 0.925 || fresh.is_empty() {
                let len = bgp_prefix_len(rng);
                let p = Prefix::new(rng.random::<u32>(), len);
                fresh.push(p);
                UpdateOp::Announce(p, sample_hop(rng))
            } else {
                let idx = rng.random_range(0..fresh.len());
                UpdateOp::Withdraw(fresh.swap_remove(idx))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genfib::FibSpec;
    use crate::rng::Xoshiro256;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn random_sequence_shape() {
        let seq: Vec<UpdateOp<u32>> = random_sequence(&mut rng(1), 1000, 4);
        assert_eq!(seq.len(), 1000);
        let announces = seq
            .iter()
            .filter(|op| matches!(op, UpdateOp::Announce(..)))
            .count();
        assert!(
            (700..900).contains(&announces),
            "≈80% announces, got {announces}"
        );
    }

    #[test]
    fn bgp_lengths_mean_matches_paper() {
        let mut r = rng(2);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| f64::from(bgp_prefix_len(&mut r)))
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean - 21.87).abs() < 0.8,
            "BGP mean length {mean} should be ≈ 21.87"
        );
    }

    #[test]
    fn bgp_sequence_mostly_touches_existing_prefixes() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(5000).generate(&mut rng(3));
        let seq = bgp_sequence(&mut rng(4), &fib, 2000);
        assert_eq!(seq.len(), 2000);
        let existing = seq
            .iter()
            .filter(|op| matches!(op, UpdateOp::Announce(p, _) if fib.exact_match(*p).is_some()))
            .count();
        assert!(
            existing > 1500,
            "most updates hit existing prefixes: {existing}"
        );
    }

    #[test]
    fn applying_updates_keeps_trie_consistent() {
        let mut fib: BinaryTrie<u32> = FibSpec::dfz_like(2000).generate(&mut rng(5));
        let seq = bgp_sequence(&mut rng(6), &fib, 3000);
        for op in &seq {
            op.apply(&mut fib);
        }
        // The FIB survives and still answers.
        assert!(fib.len() > 1000);
        assert!(fib.lookup(0x0808_0808).is_some() || fib.lookup(0x0808_0808).is_none());
    }

    #[test]
    fn withdraw_only_removes_fresh_prefixes() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(1000).generate(&mut rng(7));
        let seq = bgp_sequence(&mut rng(8), &fib, 5000);
        for op in &seq {
            if let UpdateOp::Withdraw(p) = op {
                assert!(
                    fib.exact_match(*p).is_none(),
                    "withdrawals must target churn prefixes, not the base FIB"
                );
            }
        }
    }

    #[test]
    fn sequences_are_deterministic() {
        let a: Vec<UpdateOp<u32>> = random_sequence(&mut rng(9), 100, 4);
        let b: Vec<UpdateOp<u32>> = random_sequence(&mut rng(9), 100, 4);
        assert_eq!(a, b);
    }
}
