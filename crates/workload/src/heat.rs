//! Lock-free traffic heat sampling.
//!
//! The paper's λ-optimization (Eqs. (2)/(3)) assumes every address is
//! equally likely. Real traffic is Zipf-skewed toward a small set of
//! popular destinations (§5.3's CAIDA stand-in), and BENCH_lookup shows
//! every engine paying a 1.7–2.4x depth-bias penalty on such traces. The
//! heat layer closes that loop: forwarding workers *sample* the addresses
//! they actually resolve into per-worker [`HeatSketch`]es (lock-free, no
//! coordination on the packet path), the router *merges* them at publish
//! time into a [`HeatSummary`], and the compiler spends a bounded slice of
//! the pDAG's structural slack on exactly the blocks traffic hits
//! (`fib_core::hot`).
//!
//! Keys are addresses truncated to a fixed *block depth* `D` (top `D`
//! bits, MSB-aligned in a `u64`). Zipf traces randomize host bits on every
//! draw, so exact addresses almost never repeat — but the covering
//! `D`-bit block does, which is why the sketch (and the hot slab it
//! feeds) is block-grained rather than address-grained.
//!
//! Everything is deterministic given a fixed insertion stream: the sketch
//! is a plain open-addressed table (no randomized hashing state), so a
//! seeded trace produces a pinned [`HeatSummary::fingerprint`].

use std::sync::atomic::{AtomicU64, Ordering};

use fib_trie::Address;

use crate::rng::fnv1a;

/// Maximum block depth a sketch accepts.
///
/// Keys keep their low 8 bits free so slot words can carry an occupancy
/// tag; 56 bits of prefix is far deeper than any useful slab (default
/// depths are 24 for v4 and 48 for v6).
pub const MAX_HEAT_DEPTH: u8 = 56;

/// Bounded linear probe length: after this many occupied slots with other
/// keys, the record is counted in [`HeatSketch::missed`] instead. Keeps
/// the record path O(1) under adversarial key sets.
const PROBE_LIMIT: usize = 16;

/// Low bit of a key word marks the slot occupied (keys are MSB-aligned
/// prefixes of ≤ [`MAX_HEAT_DEPTH`] bits, so their low 8 bits are zero).
const OCCUPIED: u64 = 1;

/// Truncates `addr` to its top `depth` bits, MSB-aligned in a `u64`.
///
/// This is the canonical heat key: the same function indexes the hot slab
/// in `fib-core`, so a sketch built at depth `D` is directly consumable by
/// a slab built at depth `D`.
///
/// # Panics
/// Panics if `depth` is 0 or exceeds [`MAX_HEAT_DEPTH`] or the address
/// width.
#[must_use]
#[inline]
pub fn heat_key<A: Address>(addr: A, depth: u8) -> u64 {
    assert!(
        depth > 0 && depth <= MAX_HEAT_DEPTH && depth <= A::WIDTH,
        "heat depth {depth} out of range for width {}",
        A::WIDTH
    );
    let msb = addr.to_u128() << (128 - u32::from(A::WIDTH));
    let top = (msb >> 64) as u64;
    top & (u64::MAX << (64 - u32::from(depth)))
}

/// A lock-free, fixed-capacity sketch of block hit counts.
///
/// One lives per forwarding worker: `record` is wait-free in the common
/// case (one relaxed load + one relaxed `fetch_add`) and never allocates,
/// blocks, or spins unboundedly, so it is safe to call from the packet
/// path. Counts are monotonically increasing and approximate under
/// contention only in the sense that a racing first-insert may send one
/// increment to `missed`; totals are never lost.
#[derive(Debug)]
pub struct HeatSketch {
    /// `2 * capacity` words: slot `i` is `(slots[2i], slots[2i+1])` =
    /// (key | OCCUPIED, count). Key words are written once (empty → key)
    /// and never change afterwards, which is what makes relaxed reads of
    /// the count word safe to attribute to that key.
    slots: Box<[AtomicU64]>,
    mask: usize,
    depth: u8,
    missed: AtomicU64,
}

impl HeatSketch {
    /// Creates a sketch with at least `capacity` slots (rounded up to a
    /// power of two) for keys at block depth `depth`.
    ///
    /// # Panics
    /// Panics if `depth` is 0 or exceeds [`MAX_HEAT_DEPTH`], or if
    /// `capacity` is 0.
    #[must_use]
    pub fn new(depth: u8, capacity: usize) -> Self {
        assert!(
            depth > 0 && depth <= MAX_HEAT_DEPTH,
            "heat depth {depth} out of range"
        );
        assert!(capacity > 0, "heat sketch capacity must be positive");
        let cap = capacity.next_power_of_two();
        let slots = (0..2 * cap).map(|_| AtomicU64::new(0)).collect();
        Self {
            slots,
            mask: cap - 1,
            depth,
            missed: AtomicU64::new(0),
        }
    }

    /// The block depth keys are truncated to.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Records one hit for the block covering `addr`.
    #[inline]
    pub fn record<A: Address>(&self, addr: A) {
        self.record_key(heat_key(addr, self.depth));
    }

    /// Records one hit for a pre-computed key (must come from
    /// [`heat_key`] at this sketch's depth).
    pub fn record_key(&self, key: u64) {
        let tagged = key | OCCUPIED;
        let mut idx = fnv1a(&key.to_le_bytes()) as usize & self.mask;
        for _ in 0..PROBE_LIMIT {
            // ordering: Relaxed — key words are write-once; any non-zero
            // value we observe is the final key for this slot, and counts
            // are independent monotonic counters needing no ordering with
            // other memory.
            let cur = self.slots[2 * idx].load(Ordering::Relaxed);
            if cur == tagged {
                // ordering: Relaxed — pure counter increment; merged reads
                // tolerate staleness.
                self.slots[2 * idx + 1].fetch_add(1, Ordering::Relaxed);
                return;
            }
            if cur == 0 {
                // ordering: Relaxed CAS — claiming an empty slot only has
                // to be atomic against other claimants; the count word is
                // only ever attributed to whichever key wins, and readers
                // ignore slots whose key word is still zero.
                match self.slots[2 * idx].compare_exchange(
                    0,
                    tagged,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // ordering: Relaxed — as above, monotonic counter.
                        self.slots[2 * idx + 1].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(winner) if winner == tagged => {
                        // ordering: Relaxed — lost the race to ourselves
                        // (another worker inserting the same key); count it.
                        self.slots[2 * idx + 1].fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(_) => {} // other key won this slot; keep probing
                }
            }
            idx = (idx + 1) & self.mask;
        }
        // ordering: Relaxed — overflow counter, monotonic.
        self.missed.fetch_add(1, Ordering::Relaxed);
    }

    /// Hits that fell off the bounded probe (table effectively full along
    /// their probe path).
    #[must_use]
    pub fn missed(&self) -> u64 {
        // ordering: Relaxed — approximate monotonic counter read.
        self.missed.load(Ordering::Relaxed)
    }

    /// Snapshot of `(key, count)` pairs currently in the sketch,
    /// unordered. Counts racing with concurrent `record`s may be slightly
    /// stale but never negative or torn.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for i in 0..=self.mask {
            // ordering: Relaxed — key words are write-once; a published
            // key's count only ever grows, so a stale read undercounts.
            let key = self.slots[2 * i].load(Ordering::Relaxed);
            if key != 0 {
                let count = self.slots[2 * i + 1].load(Ordering::Relaxed);
                if count > 0 {
                    out.push((key & !OCCUPIED, count));
                }
            }
        }
        out
    }

    /// Clears all slots and the missed counter (quiescent use only — the
    /// router calls this after merging, between publish epochs).
    pub fn reset(&self) {
        for w in self.slots.iter() {
            // ordering: Relaxed — reset runs while workers are quiescent
            // for this sketch; no ordering to establish.
            w.store(0, Ordering::Relaxed);
        }
        // ordering: Relaxed — same quiescent reset.
        self.missed.store(0, Ordering::Relaxed);
    }
}

/// A set of per-worker sketches sharing one block depth.
///
/// Workers each own index `i` and call `map.sketch(i).record(addr)`
/// without any cross-worker traffic; the publisher calls [`HeatMap::merged`]
/// to fold all sketches into one [`HeatSummary`].
#[derive(Debug)]
pub struct HeatMap {
    sketches: Vec<HeatSketch>,
}

impl HeatMap {
    /// One sketch per worker, each with `capacity` slots at `depth`.
    #[must_use]
    pub fn new(workers: usize, depth: u8, capacity: usize) -> Self {
        Self {
            sketches: (0..workers.max(1))
                .map(|_| HeatSketch::new(depth, capacity))
                .collect(),
        }
    }

    /// Number of per-worker sketches.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.sketches.len()
    }

    /// The sketch owned by worker `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn sketch(&self, i: usize) -> &HeatSketch {
        &self.sketches[i]
    }

    /// Folds every worker sketch into one deterministic summary.
    #[must_use]
    pub fn merged(&self) -> HeatSummary {
        let depth = self.sketches[0].depth;
        let mut counts = std::collections::HashMap::new();
        let mut missed = 0;
        for s in &self.sketches {
            for (key, count) in s.entries() {
                *counts.entry(key).or_insert(0u64) += count;
            }
            missed += s.missed();
        }
        HeatSummary::from_counts(depth, counts, missed)
    }

    /// Resets every sketch (between publish epochs, workers quiescent).
    pub fn reset(&self) {
        for s in &self.sketches {
            s.reset();
        }
    }
}

/// A merged, ordered view of measured traffic heat.
///
/// Entries are sorted hottest-first with key as the tie-break, so the same
/// counts always produce the same summary — the property the fingerprint
/// test pins and the hot-layout pass depends on for reproducible slabs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeatSummary {
    depth: u8,
    entries: Vec<(u64, u64)>,
    total: u64,
    missed: u64,
}

impl HeatSummary {
    /// Builds a summary from raw `(key → count)` heat.
    #[must_use]
    pub fn from_counts(
        depth: u8,
        counts: impl IntoIterator<Item = (u64, u64)>,
        missed: u64,
    ) -> Self {
        let mut entries: Vec<(u64, u64)> = counts.into_iter().filter(|&(_, c)| c > 0).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total = entries.iter().map(|&(_, c)| c).sum();
        Self {
            depth,
            entries,
            total,
            missed,
        }
    }

    /// Samples `count` draws from `trace` into a fresh summary — the
    /// offline path the bench and `fibc compile --heat` use when no live
    /// router is running.
    #[must_use]
    pub fn sample_addrs<A: Address>(depth: u8, addrs: impl IntoIterator<Item = A>) -> Self {
        let mut counts = std::collections::HashMap::new();
        let mut n = 0u64;
        for a in addrs {
            *counts.entry(heat_key(a, depth)).or_insert(0u64) += 1;
            n += 1;
        }
        let _ = n;
        Self::from_counts(depth, counts, 0)
    }

    /// The block depth of every key.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// `(key, count)` hottest-first.
    #[must_use]
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// Total recorded hits across all entries.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Hits dropped by full sketches.
    #[must_use]
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// The hottest `n` keys.
    #[must_use]
    pub fn top_keys(&self, n: usize) -> Vec<u64> {
        self.entries.iter().take(n).map(|&(k, _)| k).collect()
    }

    /// Fraction of recorded traffic covered by the hottest `n` entries.
    #[must_use]
    pub fn coverage(&self, n: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.entries.iter().take(n).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// Projects this summary onto per-node traffic weights of a
    /// leaf-pushed trie — the input the variable-stride DP minimizes
    /// against. `spans` is [`fib_trie::ProperTrie::node_spans`]; the
    /// returned vector is parallel to it, each entry the fraction of
    /// recorded traffic whose lookup path passes through that node
    /// (uniform address fractions when the summary is empty).
    #[must_use]
    pub fn node_weights(&self, spans: &[(u64, u8)]) -> Vec<f64> {
        fib_trie::project_heat_weights(spans, &self.entries, self.depth)
    }

    /// Per-depth traffic weights for the traffic-weighted λ choice: for
    /// each trie depth `d` (0..=depth), the fraction of traffic whose
    /// matched block sits at depth ≥ `d` is derivable from these keys via
    /// the control trie; here we only expose the raw mass per key.
    ///
    /// Deterministic FNV-1a fingerprint over the ordered entries — the
    /// value the determinism test pins.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.entries.len() * 16 + 24);
        bytes.extend_from_slice(&[self.depth]);
        bytes.extend_from_slice(&self.total.to_le_bytes());
        bytes.extend_from_slice(&self.missed.to_le_bytes());
        for &(k, c) in &self.entries {
            bytes.extend_from_slice(&k.to_le_bytes());
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        fnv1a(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, Xoshiro256};

    #[test]
    fn heat_key_truncates_msb_aligned() {
        // 10.0.0.0/8 block at depth 8: key is 0x0A << 56.
        let addr = 0x0A01_0203u32;
        assert_eq!(heat_key(addr, 8), 0x0A00_0000_0000_0000);
        assert_eq!(heat_key(addr, 8), heat_key(0x0AFF_FFFFu32, 8));
        assert_ne!(heat_key(addr, 9), heat_key(0x0AFF_FFFFu32, 9));
        // Depth 32 keeps all address bits (still MSB-aligned).
        assert_eq!(heat_key(addr, 32), 0x0A01_0203u64 << 32);
        // v6 keys agree with v4 keys on the same top bits.
        let v6 = u128::from(addr) << 96;
        assert_eq!(heat_key(v6, 8), heat_key(addr, 8));
    }

    #[test]
    fn sketch_counts_and_merges() {
        let map = HeatMap::new(2, 16, 64);
        let a = 0x0A01_0203u32;
        let b = 0x0B01_0203u32;
        for _ in 0..5 {
            map.sketch(0).record(a);
        }
        for _ in 0..3 {
            map.sketch(1).record(a);
            map.sketch(1).record(b);
        }
        let sum = map.merged();
        assert_eq!(sum.total(), 11);
        assert_eq!(sum.missed(), 0);
        assert_eq!(sum.entries().len(), 2);
        assert_eq!(sum.entries()[0], (heat_key(a, 16), 8));
        assert_eq!(sum.entries()[1], (heat_key(b, 16), 3));
        assert!((sum.coverage(1) - 8.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn sketch_overflow_goes_to_missed() {
        // Capacity 1 (rounded to 1): the probe path saturates fast.
        let s = HeatSketch::new(24, 1);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..1000 {
            s.record(rng.next_u64() as u32);
        }
        let recorded: u64 = s.entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(recorded + s.missed(), 1000, "no hit may vanish");
        assert!(s.missed() > 0, "a 1-slot sketch must overflow");
    }

    #[test]
    fn reset_clears() {
        let s = HeatSketch::new(16, 8);
        s.record(0x0001_0000u32);
        assert_eq!(s.entries().len(), 1);
        s.reset();
        assert!(s.entries().is_empty());
        assert_eq!(s.missed(), 0);
    }

    #[test]
    fn concurrent_records_never_lose_counts() {
        use std::sync::Arc;
        let s = Arc::new(HeatSketch::new(16, 256));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut rng = Xoshiro256::seed_from_u64(t);
                    for _ in 0..10_000 {
                        let a = ((rng.next_u64() & 0xFF) << 24) as u32;
                        s.record(a);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let recorded: u64 = s.entries().iter().map(|&(_, c)| c).sum();
        assert_eq!(recorded + s.missed(), 40_000);
    }

    #[test]
    fn summary_order_is_deterministic() {
        // Same counts inserted in different orders → identical summaries.
        let counts = [(5u64 << 32, 7u64), (9u64 << 32, 7), (1u64 << 32, 20)];
        let a = HeatSummary::from_counts(24, counts.iter().copied(), 0);
        let b = HeatSummary::from_counts(24, counts.iter().rev().copied(), 0);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Hottest first; ties by key.
        assert_eq!(a.entries()[0].0, 1u64 << 32);
        assert_eq!(a.entries()[1].0, 5u64 << 32);
    }
}
