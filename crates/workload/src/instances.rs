//! Stand-ins for the FIB instances of Table 1.
//!
//! The real routers' FIBs (taz, hbone, …) are proprietary; the RouteViews
//! dumps are external data. Each stand-in reproduces the *published
//! parameters* that all of the paper's size quantities are functions of —
//! prefix count `N`, next-hop count δ, and the route-level next-hop
//! entropy `H0` — with the same generator the paper used for its own
//! synthetic instances. The published I/E/XBW-b/pDAG/ν/η values ride along
//! as [`PaperRow`] so the Table 1 harness prints paper-vs-measured side by
//! side.

use fib_trie::BinaryTrie;

use crate::genfib::FibSpec;
use crate::labels::LabelModel;
use crate::rng::Xoshiro256;

/// Which Table 1 block an instance belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceGroup {
    /// Access-router FIBs (taz, hbone, access(d), access(v), mobile).
    Access,
    /// Core/DFZ RouteViews-derived FIBs (as1221, as4637, as6447, as6730).
    Core,
    /// The paper's own synthetic instances (fib_600k, fib_1m).
    Synthetic,
}

/// The published Table 1 numbers for one FIB (sizes in KBytes).
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// FIB information-theoretic limit `I`.
    pub i_kb: f64,
    /// FIB entropy `E`.
    pub e_kb: f64,
    /// XBW-b size.
    pub xbw_kb: f64,
    /// Prefix DAG size (λ = 11).
    pub pdag_kb: f64,
    /// Compression efficiency ν (pDAG / E).
    pub nu: f64,
    /// Bits/prefix for XBW-b.
    pub eta_xbw: f64,
    /// Bits/prefix for the prefix DAG.
    pub eta_pdag: f64,
}

/// One Table 1 row: published parameters plus a generator configuration.
#[derive(Clone, Debug)]
pub struct PaperInstance {
    /// Instance name as it appears in the paper.
    pub name: &'static str,
    /// Table block.
    pub group: InstanceGroup,
    /// Prefix count `N`.
    pub n_prefixes: usize,
    /// Next-hop count δ.
    pub delta: u32,
    /// Route-level next-hop Shannon entropy (the paper's `H0` column).
    pub h0: f64,
    /// Whether the FIB carries a default route.
    pub default_route: bool,
    /// Published numbers.
    pub paper: PaperRow,
}

impl PaperInstance {
    /// Builds the stand-in FIB, deterministically for a given seed.
    ///
    /// Labels follow a geometric model calibrated to the row's `H0`;
    /// depth bias 0.35 pushes mass toward the /17–/24 band as in real
    /// tables. The two synthetic rows use the paper's own truncated
    /// Poisson model instead.
    #[must_use]
    pub fn build(&self, seed: u64) -> BinaryTrie<u32> {
        let labels = match self.group {
            // The paper quotes "truncated Poisson with parameter 3/5" *and*
            // H0 = 1.06 for its synthetic FIBs; those are inconsistent
            // (Poisson(0.6) truncated to 4-5 labels has H0 ≈ 1.44). The
            // entropy is the quantity every size bound depends on, so we
            // honor it: Poisson(0.33) truncated to δ labels gives
            // H0 ≈ 1.055.
            InstanceGroup::Synthetic => LabelModel::TruncPoisson {
                lambda: 0.33,
                delta: self.delta,
            },
            _ => LabelModel::geometric_for_h0(self.delta, self.h0),
        };
        let spec = FibSpec {
            n_prefixes: self.n_prefixes,
            max_len: 25,
            depth_bias: 0.35,
            labels,
            // Real router FIBs assign next-hops with strong spatial
            // correlation (consecutive prefixes usually share one); the
            // paper's own synthetic instances draw i.i.d. labels. 0.62
            // calibrates taz's normal-form leaf count to the n/N ≈ 0.5
            // implied by the published I column.
            spatial_correlation: match self.group {
                InstanceGroup::Synthetic => 0.0,
                _ => 0.62,
            },
            default_route: self.default_route,
        };
        let mut rng = Xoshiro256::seed_from_u64(seed);
        spec.generate(&mut rng)
    }
}

/// All eleven Table 1 rows.
#[must_use]
pub fn all() -> Vec<PaperInstance> {
    use InstanceGroup::{Access, Core, Synthetic};
    vec![
        PaperInstance {
            name: "taz",
            group: Access,
            n_prefixes: 410_513,
            delta: 4,
            h0: 1.00,
            default_route: false,
            paper: PaperRow {
                i_kb: 94.0,
                e_kb: 56.0,
                xbw_kb: 63.0,
                pdag_kb: 178.0,
                nu: 3.17,
                eta_xbw: 1.12,
                eta_pdag: 3.47,
            },
        },
        PaperInstance {
            name: "hbone",
            group: Access,
            n_prefixes: 410_454,
            delta: 195,
            h0: 2.00,
            default_route: false,
            paper: PaperRow {
                i_kb: 356.0,
                e_kb: 142.0,
                xbw_kb: 149.0,
                pdag_kb: 396.0,
                nu: 2.78,
                eta_xbw: 1.05,
                eta_pdag: 7.71,
            },
        },
        PaperInstance {
            name: "access(d)",
            group: Access,
            n_prefixes: 444_513,
            delta: 28,
            h0: 1.06,
            default_route: true,
            paper: PaperRow {
                i_kb: 206.0,
                e_kb: 90.0,
                xbw_kb: 100.0,
                pdag_kb: 370.0,
                nu: 4.1,
                eta_xbw: 1.12,
                eta_pdag: 6.65,
            },
        },
        PaperInstance {
            name: "access(v)",
            group: Access,
            n_prefixes: 2_986,
            delta: 3,
            h0: 1.22,
            default_route: true,
            paper: PaperRow {
                i_kb: 2.8,
                e_kb: 2.2,
                xbw_kb: 2.5,
                pdag_kb: 7.5,
                nu: 3.4,
                eta_xbw: 1.13,
                eta_pdag: 20.23,
            },
        },
        PaperInstance {
            name: "mobile",
            group: Access,
            n_prefixes: 21_783,
            delta: 16,
            h0: 1.08,
            default_route: true,
            paper: PaperRow {
                i_kb: 0.8,
                e_kb: 0.4,
                xbw_kb: 1.1,
                pdag_kb: 3.6,
                nu: 8.71,
                eta_xbw: 2.36,
                eta_pdag: 1.35,
            },
        },
        PaperInstance {
            name: "as1221",
            group: Core,
            n_prefixes: 440_060,
            delta: 3,
            h0: 1.54,
            default_route: false,
            paper: PaperRow {
                i_kb: 130.0,
                e_kb: 115.0,
                xbw_kb: 111.0,
                pdag_kb: 331.0,
                nu: 2.86,
                eta_xbw: 2.03,
                eta_pdag: 6.02,
            },
        },
        PaperInstance {
            name: "as4637",
            group: Core,
            n_prefixes: 219_581,
            delta: 3,
            h0: 1.12,
            default_route: false,
            paper: PaperRow {
                i_kb: 52.0,
                e_kb: 41.0,
                xbw_kb: 44.0,
                pdag_kb: 129.0,
                nu: 3.13,
                eta_xbw: 1.62,
                eta_pdag: 4.69,
            },
        },
        PaperInstance {
            name: "as6447",
            group: Core,
            n_prefixes: 445_016,
            delta: 36,
            h0: 3.91,
            default_route: false,
            paper: PaperRow {
                i_kb: 375.0,
                e_kb: 277.0,
                xbw_kb: 277.0,
                pdag_kb: 748.0,
                nu: 2.7,
                eta_xbw: 5.0,
                eta_pdag: 13.45,
            },
        },
        PaperInstance {
            name: "as6730",
            group: Core,
            n_prefixes: 437_378,
            delta: 186,
            h0: 2.98,
            default_route: false,
            paper: PaperRow {
                i_kb: 421.0,
                e_kb: 209.0,
                xbw_kb: 213.0,
                pdag_kb: 545.0,
                nu: 2.6,
                eta_xbw: 3.91,
                eta_pdag: 9.96,
            },
        },
        PaperInstance {
            name: "fib_600k",
            group: Synthetic,
            n_prefixes: 600_000,
            delta: 5,
            h0: 1.06,
            default_route: false,
            paper: PaperRow {
                i_kb: 257.0,
                e_kb: 157.0,
                xbw_kb: 179.0,
                pdag_kb: 462.0,
                nu: 2.93,
                eta_xbw: 1.14,
                eta_pdag: 6.16,
            },
        },
        PaperInstance {
            name: "fib_1m",
            group: Synthetic,
            n_prefixes: 1_000_000,
            delta: 5,
            h0: 1.06,
            default_route: false,
            paper: PaperRow {
                i_kb: 427.0,
                e_kb: 261.0,
                xbw_kb: 297.0,
                pdag_kb: 782.0,
                nu: 2.99,
                eta_xbw: 1.14,
                eta_pdag: 6.26,
            },
        },
    ]
}

/// Looks an instance up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<PaperInstance> {
    all().into_iter().find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::stats::{next_hop_count, route_label_histogram};

    #[test]
    fn eleven_rows_with_unique_names() {
        let rows = all();
        assert_eq!(rows.len(), 11);
        let mut names: Vec<_> = rows.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn by_name_finds_rows() {
        assert!(by_name("taz").is_some());
        assert!(by_name("fib_1m").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn small_instance_matches_parameters() {
        // access(v) is small enough for a unit test: N, δ and H0 must land
        // near the published values.
        let inst = by_name("access(v)").unwrap();
        let trie = inst.build(1);
        assert_eq!(trie.len(), inst.n_prefixes + 1, "N prefixes + default");
        let delta = next_hop_count(&trie);
        assert!(delta <= inst.delta as usize);
        assert!(delta >= inst.delta as usize - 1, "δ = {delta}");
        let hist = route_label_histogram(&trie);
        let counts: Vec<u64> = hist.values().copied().collect();
        let h0 = fib_succinct_entropy(&counts);
        assert!(
            (h0 - inst.h0).abs() < 0.12,
            "route H0 = {h0} vs target {}",
            inst.h0
        );
    }

    fn fib_succinct_entropy(counts: &[u64]) -> f64 {
        let total: u64 = counts.iter().sum();
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total as f64;
                -p * p.log2()
            })
            .sum()
    }

    #[test]
    fn mobile_builds_with_default() {
        let inst = by_name("mobile").unwrap();
        let trie = inst.build(2);
        // Default route present → full coverage.
        assert!(trie.lookup(0xDEAD_BEEF).is_some());
    }
}
