//! Multi-tenant VRF fleet generation.
//!
//! A provider-edge router compiles many logical tables (VRFs) that are
//! mostly the same FIB: every tenant sees the provider's base routes,
//! plus a thin per-tenant layer of private more-specifics and re-homed
//! next-hops. This module builds deterministic synthetic stand-ins for
//! that fleet shape so the cross-table dedup compiler in `fib-core` can
//! be measured end to end:
//!
//! * [`VrfFleetSpec`] — derives `tables` VRF tries from one base FIB,
//!   keeping an `overlap` fraction of routes shared verbatim and
//!   churning the rest per VRF (re-labeled routes plus injected
//!   more-specifics),
//! * [`instance_fleet`] — the same, seeded from a named Table 1 paper
//!   instance (the ISSUE's "64 VRFs derived from taz" fleet),
//! * [`mixed_keys`] — an interleaved `(vrf, addr)` probe stream over the
//!   fleet, uniformly or Zipf-weighted across VRFs,
//! * [`fleet_weights`] — the matching per-VRF traffic-weight vector for
//!   cost-model engine placement.
//!
//! Everything is deterministic given a seed.

use fib_trie::{Address, BinaryTrie, NextHop, Prefix};

use crate::instances;
use crate::rng::{Rng, Xoshiro256};
use crate::traces;

/// How to derive a fleet of VRF tables from one base FIB.
#[derive(Clone, Copy, Debug)]
pub struct VrfFleetSpec {
    /// Number of VRF tables to derive.
    pub tables: usize,
    /// Fraction of base routes every VRF keeps verbatim (`0.0..=1.0`).
    /// The remaining `1 − overlap` fraction is churned per VRF.
    pub overlap: f64,
    /// Master seed; VRF `v` draws from an independent stream.
    pub seed: u64,
}

/// Contiguous churn runs per VRF. Divergence in a real fleet is not
/// uniform over the table — each tenant re-homes and punches holes in
/// *its own* address blocks — so churn lands in a few address-order
/// clusters. Routes outside the clusters stay bit-identical across the
/// fleet, which is exactly the sharing the cross-table interner folds.
const CHURN_CLUSTERS: usize = 8;

impl VrfFleetSpec {
    /// Derives the fleet. Each VRF starts as an exact copy of `base`;
    /// `round((1 − overlap) · N)` churn events then mutate it, each
    /// either re-homing an existing route to a new next-hop or injecting
    /// a private more-specific under an existing route. Events are
    /// grouped into [`CHURN_CLUSTERS`] contiguous runs over the routes
    /// in address order (tenant-local divergence), so the untouched
    /// `overlap` fraction stays structurally identical across the whole
    /// fleet.
    ///
    /// # Panics
    /// Panics if `overlap` is not in `0.0..=1.0`.
    #[must_use]
    pub fn generate<A: Address>(&self, base: &BinaryTrie<A>) -> Vec<BinaryTrie<A>> {
        assert!(
            (0.0..=1.0).contains(&self.overlap),
            "overlap must be in [0, 1], got {}",
            self.overlap
        );
        let routes: Vec<(Prefix<A>, NextHop)> = base.iter().collect();
        let delta = routes
            .iter()
            .map(|(_, nh)| nh.index())
            .max()
            .map_or(1, |m| m + 1);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let churn = ((1.0 - self.overlap) * routes.len() as f64).round() as usize;
        (0..self.tables)
            .map(|v| {
                let mut rng = Xoshiro256::seed_from_u64(
                    self.seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let mut table = base.clone();
                if churn > 0 && !routes.is_empty() {
                    let clusters = churn.min(CHURN_CLUSTERS);
                    for c in 0..clusters {
                        let run = churn / clusters + usize::from(c < churn % clusters);
                        let start = rng.random_range(0..routes.len());
                        for i in 0..run {
                            let (prefix, nh) = routes[(start + i) % routes.len()];
                            churn_route(&mut table, prefix, nh, delta, &mut rng);
                        }
                    }
                }
                table
            })
            .collect()
    }
}

/// One churn event: re-home the route to a fresh next-hop, or hang a
/// private more-specific (1–4 bits longer, random branch) under it.
fn churn_route<A: Address, R: Rng + ?Sized>(
    table: &mut BinaryTrie<A>,
    prefix: Prefix<A>,
    nh: NextHop,
    delta: u32,
    rng: &mut R,
) {
    let relabel = rng.random::<bool>() || prefix.len() >= A::WIDTH;
    if relabel {
        // A new label distinct from the current one (mod δ+1 keeps the
        // alphabet from growing without bound).
        let fresh = (nh.index() + 1 + rng.random_range(0..delta)) % (delta + 1);
        table.insert(prefix, NextHop::new(fresh));
    } else {
        let extend = rng.random_range(1..=4u8).min(A::WIDTH - prefix.len());
        let mut addr = prefix.addr();
        for i in 0..extend {
            if rng.random::<bool>() {
                addr = addr.with_bit(prefix.len() + i);
            }
        }
        let specific = Prefix::new(addr, prefix.len() + extend);
        table.insert(specific, NextHop::new(rng.random_range(0..delta)));
    }
}

/// Builds the ISSUE's canonical fleet: the named paper instance at
/// `scale`, derived into `tables` VRFs at the given `overlap`. Returns
/// `None` for an unknown instance name.
#[must_use]
pub fn instance_fleet(
    name: &str,
    scale: f64,
    tables: usize,
    overlap: f64,
    seed: u64,
) -> Option<Vec<BinaryTrie<u32>>> {
    let mut inst = instances::by_name(name)?;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        inst.n_prefixes = ((inst.n_prefixes as f64 * scale) as usize).max(64);
    }
    let base = inst.build(seed);
    Some(
        VrfFleetSpec {
            tables,
            overlap,
            seed: seed.wrapping_add(1),
        }
        .generate(&base),
    )
}

/// Per-VRF traffic weights for cost-model placement: `w_v ∝ 1/(v+1)^s`,
/// normalized to sum to 1. `s = 0` is uniform; `s ≈ 1` models the usual
/// few-hot-tenants skew.
///
/// # Panics
/// Panics if `tables` is 0 or `s` is negative or non-finite.
#[must_use]
pub fn fleet_weights(tables: usize, s: f64) -> Vec<f64> {
    assert!(tables > 0, "need at least one table");
    assert!(s.is_finite() && s >= 0.0, "skew must be finite and >= 0");
    #[allow(clippy::cast_precision_loss)]
    let raw: Vec<f64> = (0..tables)
        .map(|v| 1.0 / ((v + 1) as f64).powf(s))
        .collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / total).collect()
}

/// An interleaved probe stream over the fleet: `count` pairs of
/// `(vrf id, addr)`. VRF ids are drawn from `weights` (see
/// [`fleet_weights`]; uniform when `None`); addresses are uniform over
/// the space, the paper's "rand." key model.
///
/// # Panics
/// Panics if `tables` is 0 or `weights` has the wrong length.
#[must_use]
pub fn mixed_keys<A: Address>(
    tables: usize,
    weights: Option<&[f64]>,
    seed: u64,
    count: usize,
) -> Vec<(u32, A)> {
    assert!(tables > 0, "need at least one table");
    let cumulative: Option<Vec<f64>> = weights.map(|w| {
        assert_eq!(w.len(), tables, "one weight per table");
        let mut acc = 0.0;
        w.iter()
            .map(|x| {
                acc += x;
                acc
            })
            .collect()
    });
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut addr_rng = Xoshiro256::seed_from_u64(seed ^ 0xA5A5_5A5A_F00D_BEEF);
    (0..count)
        .map(|_| {
            #[allow(clippy::cast_possible_truncation)]
            let vrf = match &cumulative {
                None => rng.random_range(0..tables) as u32,
                Some(cum) => {
                    let x: f64 = rng.random::<f64>() * cum.last().copied().unwrap_or(1.0);
                    cum.partition_point(|&c| c <= x).min(tables - 1) as u32
                }
            };
            let addr = traces::uniform::<A, _>(&mut addr_rng, 1)[0];
            (vrf, addr)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genfib::FibSpec;
    use crate::labels::LabelModel;

    fn small_base() -> BinaryTrie<u32> {
        let spec = FibSpec {
            n_prefixes: 2_000,
            max_len: 25,
            depth_bias: 0.35,
            labels: LabelModel::Uniform { delta: 4 },
            spatial_correlation: 0.5,
            default_route: false,
        };
        spec.generate(&mut Xoshiro256::seed_from_u64(7))
    }

    #[test]
    fn fleet_is_deterministic_and_sized() {
        let base = small_base();
        let spec = VrfFleetSpec {
            tables: 5,
            overlap: 0.9,
            seed: 11,
        };
        let a = spec.generate(&base);
        let b = spec.generate(&base);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            let rx: Vec<_> = x.iter().collect();
            let ry: Vec<_> = y.iter().collect();
            assert_eq!(rx, ry);
        }
    }

    #[test]
    fn full_overlap_reproduces_the_base_verbatim() {
        let base = small_base();
        let fleet = VrfFleetSpec {
            tables: 3,
            overlap: 1.0,
            seed: 1,
        }
        .generate(&base);
        let base_routes: Vec<_> = base.iter().collect();
        for table in &fleet {
            let routes: Vec<_> = table.iter().collect();
            assert_eq!(routes, base_routes);
        }
    }

    #[test]
    fn churn_stays_near_the_overlap_budget() {
        let base = small_base();
        let overlap = 0.9;
        let fleet = VrfFleetSpec {
            tables: 4,
            overlap,
            seed: 3,
        }
        .generate(&base);
        let base_routes: std::collections::HashMap<_, _> = base.iter().collect();
        let budget = (1.0 - overlap) * base.len() as f64;
        for table in &fleet {
            let mut changed = 0usize;
            for (p, nh) in table.iter() {
                if base_routes.get(&p) != Some(&nh) {
                    changed += 1;
                }
            }
            assert!(changed > 0, "churn must actually change routes");
            // Each churn event changes at most one route (relabels can
            // collide or no-op); allow slack for the injected specifics.
            assert!(
                (changed as f64) <= budget * 1.05,
                "changed {changed} of {} exceeds churn budget {budget}",
                table.len()
            );
        }
        // Distinct VRFs churn differently.
        let r0: Vec<_> = fleet[0].iter().collect();
        let r1: Vec<_> = fleet[1].iter().collect();
        assert_ne!(r0, r1);
    }

    #[test]
    fn instance_fleet_builds_taz_and_rejects_unknown() {
        let fleet = instance_fleet("taz", 0.01, 3, 0.9, 42).expect("taz exists");
        assert_eq!(fleet.len(), 3);
        assert!(fleet.iter().all(|t| t.len() > 1_000));
        assert!(instance_fleet("nope", 1.0, 1, 0.9, 0).is_none());
    }

    #[test]
    fn fleet_weights_are_normalized_and_skewed() {
        let uniform = fleet_weights(8, 0.0);
        assert!(uniform.iter().all(|&w| (w - 0.125).abs() < 1e-12));
        let zipf = fleet_weights(8, 1.0);
        assert!((zipf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(zipf.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn mixed_keys_cover_all_vrfs_deterministically() {
        let keys: Vec<(u32, u32)> = mixed_keys(4, None, 9, 4_000);
        let again: Vec<(u32, u32)> = mixed_keys(4, None, 9, 4_000);
        assert_eq!(keys, again);
        let mut seen = [false; 4];
        for &(v, _) in &keys {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Skewed draw favors VRF 0.
        let w = fleet_weights(4, 1.0);
        let skewed: Vec<(u32, u32)> = mixed_keys(4, Some(&w), 9, 4_000);
        let hot = skewed.iter().filter(|&&(v, _)| v == 0).count();
        assert!(hot > 1_400, "vrf 0 drew {hot} of 4000");
    }
}
