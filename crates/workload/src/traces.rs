//! Lookup key streams (§5.3).
//!
//! * [`uniform`] — addresses uniform on the space, the paper's "rand." row
//!   of Table 2 (no cache locality at all);
//! * [`ZipfTrace`] — a CAIDA-trace stand-in: destination prefixes drawn
//!   Zipf-distributed over the FIB's own prefixes with random host bits.
//!   Real packet traces are heavily skewed toward popular destinations,
//!   which is exactly what lets a big-but-cached structure like `fib_trie`
//!   keep its hot paths resident; the Zipf model reproduces that effect.

use fib_trie::{Address, BinaryTrie, Prefix};

use crate::rng::Rng;

/// Uniform random addresses.
pub fn uniform<A: Address, R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<A> {
    (0..count)
        .map(|_| A::from_u128(rng.random::<u128>() >> (128 - u32::from(A::WIDTH))))
        .collect()
}

/// Zipf-over-prefixes trace generator.
#[derive(Clone, Debug)]
pub struct ZipfTrace<A: Address> {
    prefixes: Vec<Prefix<A>>,
    /// Cumulative Zipf weights aligned with `prefixes`.
    cumulative: Vec<f64>,
}

impl<A: Address> ZipfTrace<A> {
    /// Prepares a trace model over the FIB's prefixes with Zipf exponent
    /// `s` (≈ 1.0 matches measured traffic skew). Prefix popularity ranks
    /// are assigned pseudo-randomly (by iteration order), not by prefix
    /// value, so popular destinations scatter across the table.
    ///
    /// # Panics
    /// Panics if the FIB is empty or `s` is not finite and positive.
    #[must_use]
    pub fn new(fib: &BinaryTrie<A>, s: f64) -> Self {
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        let prefixes: Vec<Prefix<A>> = fib.iter().map(|(p, _)| p).collect();
        assert!(
            !prefixes.is_empty(),
            "cannot build a trace over an empty FIB"
        );
        let mut cumulative = Vec::with_capacity(prefixes.len());
        let mut acc = 0.0;
        for rank in 1..=prefixes.len() {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Self {
            prefixes,
            cumulative,
        }
    }

    /// Draws one destination address: a Zipf-ranked prefix filled with
    /// random host bits.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> A {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.random::<f64>() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.prefixes.len() - 1);
        let prefix = self.prefixes[idx];
        // Random host bits below the prefix length.
        let host_bits = u32::from(A::WIDTH - prefix.len());
        let noise = if host_bits == 0 {
            0u128
        } else {
            rng.random::<u128>() & ((1u128 << host_bits) - 1)
        };
        A::from_u128(prefix.addr().to_u128() | noise)
    }

    /// Draws a whole trace.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<A> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genfib::FibSpec;
    use crate::rng::Xoshiro256;
    use std::collections::HashMap;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn uniform_covers_the_space() {
        let addrs: Vec<u32> = uniform(&mut rng(1), 10_000);
        assert_eq!(addrs.len(), 10_000);
        let top_set = addrs.iter().filter(|&&a| a >= 0x8000_0000).count();
        assert!(
            (4000..6000).contains(&top_set),
            "unbiased halves: {top_set}"
        );
    }

    #[test]
    fn zipf_samples_fall_inside_their_prefix() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(2000).generate(&mut rng(2));
        let trace = ZipfTrace::new(&fib, 1.0);
        let mut r = rng(3);
        for _ in 0..3000 {
            let addr = trace.sample(&mut r);
            assert!(fib.lookup(addr).is_some(), "partition FIB always matches");
        }
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(1000).generate(&mut rng(4));
        let trace = ZipfTrace::new(&fib, 1.2);
        let mut r = rng(5);
        // Count hits per /8 bucket for a crude skew measure.
        let mut zipf_hits: HashMap<u32, u32> = HashMap::new();
        for _ in 0..20_000 {
            *zipf_hits.entry(trace.sample(&mut r) >> 24).or_insert(0) += 1;
        }
        let zipf_max = *zipf_hits.values().max().unwrap();
        let mut uni_hits: HashMap<u32, u32> = HashMap::new();
        for addr in uniform::<u32, _>(&mut r, 20_000) {
            *uni_hits.entry(addr >> 24).or_insert(0) += 1;
        }
        let uni_max = *uni_hits.values().max().unwrap();
        assert!(
            zipf_max > uni_max * 2,
            "zipf max bucket {zipf_max} should dominate uniform {uni_max}"
        );
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(100).generate(&mut rng(6));
        let trace = ZipfTrace::new(&fib, 1.0);
        let a = trace.generate(&mut rng(7), 50);
        let b = trace.generate(&mut rng(7), 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty FIB")]
    fn empty_fib_panics() {
        let fib: BinaryTrie<u32> = BinaryTrie::new();
        let _ = ZipfTrace::new(&fib, 1.0);
    }

    #[test]
    fn ipv6_traces() {
        let spec = FibSpec {
            n_prefixes: 200,
            max_len: 48,
            depth_bias: 0.2,
            labels: crate::labels::LabelModel::Uniform { delta: 3 },
            spatial_correlation: 0.0,
            default_route: false,
        };
        let fib: BinaryTrie<u128> = spec.generate(&mut rng(8));
        let trace = ZipfTrace::new(&fib, 1.0);
        let addr = trace.sample(&mut rng(9));
        assert!(fib.lookup(addr).is_some());
    }
}
