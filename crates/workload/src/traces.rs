//! Lookup key streams (§5.3).
//!
//! * [`uniform`] — addresses uniform on the space, the paper's "rand." row
//!   of Table 2 (no cache locality at all);
//! * [`ZipfTrace`] — a CAIDA-trace stand-in: destination prefixes drawn
//!   Zipf-distributed over the FIB's own prefixes with random host bits.
//!   Real packet traces are heavily skewed toward popular destinations,
//!   which is exactly what lets a big-but-cached structure like `fib_trie`
//!   keep its hot paths resident; the Zipf model reproduces that effect.

use fib_trie::{Address, BinaryTrie, Prefix};

use crate::rng::Rng;

/// Uniform random addresses.
pub fn uniform<A: Address, R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<A> {
    (0..count)
        .map(|_| A::from_u128(rng.random::<u128>() >> (128 - u32::from(A::WIDTH))))
        .collect()
}

/// Zipf-over-prefixes trace generator.
#[derive(Clone, Debug)]
pub struct ZipfTrace<A: Address> {
    prefixes: Vec<Prefix<A>>,
    /// Cumulative Zipf weights aligned with `prefixes`.
    cumulative: Vec<f64>,
}

impl<A: Address> ZipfTrace<A> {
    /// Prepares a trace model over the FIB's prefixes with Zipf exponent
    /// `s` (≈ 1.0 matches measured traffic skew). Prefix popularity ranks
    /// are assigned pseudo-randomly (by iteration order), not by prefix
    /// value, so popular destinations scatter across the table.
    ///
    /// # Panics
    /// Panics if the FIB is empty or `s` is not finite and positive.
    #[must_use]
    pub fn new(fib: &BinaryTrie<A>, s: f64) -> Self {
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        let prefixes: Vec<Prefix<A>> = fib.iter().map(|(p, _)| p).collect();
        assert!(
            !prefixes.is_empty(),
            "cannot build a trace over an empty FIB"
        );
        let mut cumulative = Vec::with_capacity(prefixes.len());
        let mut acc = 0.0;
        for rank in 1..=prefixes.len() {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Self {
            prefixes,
            cumulative,
        }
    }

    /// Draws one destination address: a Zipf-ranked prefix filled with
    /// random host bits.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> A {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.random::<f64>() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c < x)
            .min(self.prefixes.len() - 1);
        let prefix = self.prefixes[idx];
        // Random host bits below the prefix length.
        let host_bits = u32::from(A::WIDTH - prefix.len());
        let noise = if host_bits == 0 {
            0u128
        } else if host_bits >= 128 {
            // A default route leaves every bit free; `1 << 128` would
            // overflow, so take the whole word.
            rng.random::<u128>()
        } else {
            rng.random::<u128>() & ((1u128 << host_bits) - 1)
        };
        A::from_u128(prefix.addr().to_u128() | noise)
    }

    /// Draws a whole trace.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<A> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// The dedup control for the zipf-vs-uniform benchmark gap: a trace
    /// of `count` *distinct* addresses drawn from the same Zipf-ranked
    /// prefix model (shuffled, so residual ordering cannot fake
    /// locality).
    ///
    /// A Zipf trace differs from a uniform one in two confounded ways:
    /// *popularity locality* (hot destinations repeat, keeping their walk
    /// paths cache-resident) and *depth bias* (every key lands inside a
    /// real — usually long — prefix, while uniform keys mostly resolve in
    /// shallow or empty space). Deduplicating kills the repetition while
    /// preserving each address's walk depth, so comparing
    /// `zipf / zipf-dedup / uniform` latencies splits the two effects:
    /// if dedup ≈ zipf, the gap is depth bias; if dedup ≫ zipf,
    /// popularity locality was doing real work.
    ///
    /// # Panics
    /// Panics if the model cannot produce `count` distinct addresses in
    /// `64 × count` draws (never for FIB-sized models and sane counts).
    pub fn generate_dedup<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<A> {
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        let mut budget = count.saturating_mul(64).max(1024);
        while out.len() < count {
            assert!(budget > 0, "cannot draw {count} distinct Zipf addresses");
            budget -= 1;
            let addr = self.sample(rng);
            if seen.insert(addr.to_u128()) {
                out.push(addr);
            }
        }
        // Fisher–Yates so the rank-ordered discovery sequence cannot
        // masquerade as temporal locality.
        for i in (1..out.len()).rev() {
            let j = rng.random_range(0..=i);
            out.swap(i, j);
        }
        out
    }
}

/// A flow-locality ("bursty") key stream: real packet arrivals come in
/// flows — several packets to the same destination back to back — rather
/// than as i.i.d. draws. Flows are drawn from a [`ZipfTrace`] popularity
/// model and each emits a geometrically-distributed burst of packets to
/// one address, so the stream has *temporal* locality (same line touched
/// again immediately) on top of Zipf's *popularity* locality.
#[derive(Clone, Debug)]
pub struct BurstyTrace<A: Address> {
    zipf: ZipfTrace<A>,
    /// P(burst continues with another packet); mean burst = 1/(1−p).
    continue_p: f64,
    current: Option<A>,
}

impl<A: Address> BurstyTrace<A> {
    /// A bursty stream over `fib`'s prefixes: Zipf exponent `s` for flow
    /// popularity, `mean_burst ≥ 1` packets per flow on average.
    ///
    /// # Panics
    /// Panics as [`ZipfTrace::new`], or if `mean_burst < 1` or not
    /// finite.
    #[must_use]
    pub fn new(fib: &BinaryTrie<A>, s: f64, mean_burst: f64) -> Self {
        assert!(
            mean_burst.is_finite() && mean_burst >= 1.0,
            "mean burst length must be ≥ 1"
        );
        Self {
            zipf: ZipfTrace::new(fib, s),
            continue_p: 1.0 - 1.0 / mean_burst,
            current: None,
        }
    }

    /// Draws the next packet's destination address.
    pub fn next_addr<R: Rng + ?Sized>(&mut self, rng: &mut R) -> A {
        if let Some(addr) = self.current {
            if rng.random::<f64>() < self.continue_p {
                return addr;
            }
        }
        let addr = self.zipf.sample(rng);
        self.current = Some(addr);
        addr
    }

    /// Draws a whole trace.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R, count: usize) -> Vec<A> {
        (0..count).map(|_| self.next_addr(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genfib::FibSpec;
    use crate::rng::Xoshiro256;
    use std::collections::HashMap;

    fn rng(seed: u64) -> Xoshiro256 {
        Xoshiro256::seed_from_u64(seed)
    }

    #[test]
    fn uniform_covers_the_space() {
        let addrs: Vec<u32> = uniform(&mut rng(1), 10_000);
        assert_eq!(addrs.len(), 10_000);
        let top_set = addrs.iter().filter(|&&a| a >= 0x8000_0000).count();
        assert!(
            (4000..6000).contains(&top_set),
            "unbiased halves: {top_set}"
        );
    }

    #[test]
    fn zipf_samples_fall_inside_their_prefix() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(2000).generate(&mut rng(2));
        let trace = ZipfTrace::new(&fib, 1.0);
        let mut r = rng(3);
        for _ in 0..3000 {
            let addr = trace.sample(&mut r);
            assert!(fib.lookup(addr).is_some(), "partition FIB always matches");
        }
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(1000).generate(&mut rng(4));
        let trace = ZipfTrace::new(&fib, 1.2);
        let mut r = rng(5);
        // Count hits per /8 bucket for a crude skew measure.
        let mut zipf_hits: HashMap<u32, u32> = HashMap::new();
        for _ in 0..20_000 {
            *zipf_hits.entry(trace.sample(&mut r) >> 24).or_insert(0) += 1;
        }
        let zipf_max = *zipf_hits.values().max().unwrap();
        let mut uni_hits: HashMap<u32, u32> = HashMap::new();
        for addr in uniform::<u32, _>(&mut r, 20_000) {
            *uni_hits.entry(addr >> 24).or_insert(0) += 1;
        }
        let uni_max = *uni_hits.values().max().unwrap();
        assert!(
            zipf_max > uni_max * 2,
            "zipf max bucket {zipf_max} should dominate uniform {uni_max}"
        );
    }

    #[test]
    fn dedup_control_is_distinct_and_depth_preserving() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(2000).generate(&mut rng(40));
        let trace = ZipfTrace::new(&fib, 1.0);
        let deduped = trace.generate_dedup(&mut rng(41), 5000);
        assert_eq!(deduped.len(), 5000);
        let distinct: std::collections::HashSet<u32> = deduped.iter().copied().collect();
        assert_eq!(distinct.len(), 5000, "all addresses distinct");
        // Depth profile preserved: dedup keys still land inside real
        // prefixes (the partition FIB always matches).
        for addr in deduped.iter().take(1000) {
            assert!(fib.lookup(*addr).is_some());
        }
        // Deterministic per seed.
        assert_eq!(deduped, trace.generate_dedup(&mut rng(41), 5000));
    }

    #[test]
    fn bursty_trace_bursts_and_stays_in_fib() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(800).generate(&mut rng(50));
        let mut bursty = BurstyTrace::new(&fib, 1.0, 4.0);
        let mut r = rng(51);
        let trace = bursty.generate(&mut r, 10_000);
        let repeats = trace.windows(2).filter(|w| w[0] == w[1]).count();
        let frac = repeats as f64 / (trace.len() - 1) as f64;
        // Mean burst 4 → P(repeat) = 3/4.
        assert!((0.70..0.80).contains(&frac), "repeat fraction {frac}");
        for addr in trace.iter().take(500) {
            assert!(fib.lookup(*addr).is_some());
        }
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let fib: BinaryTrie<u32> = FibSpec::dfz_like(100).generate(&mut rng(6));
        let trace = ZipfTrace::new(&fib, 1.0);
        let a = trace.generate(&mut rng(7), 50);
        let b = trace.generate(&mut rng(7), 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty FIB")]
    fn empty_fib_panics() {
        let fib: BinaryTrie<u32> = BinaryTrie::new();
        let _ = ZipfTrace::new(&fib, 1.0);
    }

    #[test]
    fn ipv6_traces() {
        let spec = FibSpec {
            n_prefixes: 200,
            max_len: 48,
            depth_bias: 0.2,
            labels: crate::labels::LabelModel::Uniform { delta: 3 },
            spatial_correlation: 0.0,
            default_route: false,
        };
        let fib: BinaryTrie<u128> = spec.generate(&mut rng(8));
        let trace = ZipfTrace::new(&fib, 1.0);
        let addr = trace.sample(&mut rng(9));
        assert!(fib.lookup(addr).is_some());
    }
}
