//! Property tests for the core compression structures: arbitrary route
//! sets, every engine against the binary trie, blob round-trips, and the
//! entropy-accounting identities.
//!
//! Inputs are drawn from the workspace's deterministic PRNG
//! (`fib_workload::rng`) rather than proptest, which cannot be fetched in
//! the offline build. Each test runs 48 seeded cases (the count the
//! original proptest config used); failure messages carry the case number
//! for exact reproduction.

use fib_core::{
    FibEntropy, MultibitDag, PrefixDag, SerializedDag, VarStrideDag, VsParams, XbwFib, XbwStorage,
};
use fib_trie::{BinaryTrie, NextHop, Prefix, Prefix4};
use fib_workload::rng::{Rng, Xoshiro256};

const CASES: u64 = 48;

fn arb_routes(rng: &mut impl Rng) -> Vec<(Prefix4, NextHop)> {
    let n: usize = rng.random_range(0..100);
    (0..n)
        .map(|_| {
            (
                Prefix::new(rng.random::<u32>(), rng.random_range(0..=32u8)),
                NextHop::new(rng.random_range(0..8u32)),
            )
        })
        .collect()
}

fn arb_keys(rng: &mut impl Rng, count: usize) -> Vec<u32> {
    (0..count).map(|_| rng.random()).collect()
}

#[test]
fn xbw_equals_trie_on_arbitrary_fibs() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("xbw_equals_trie_on_arbitrary_fibs", case);
        let routes = arb_routes(&mut rng);
        let keys = arb_keys(&mut rng, 50);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        for storage in [XbwStorage::Succinct, XbwStorage::Entropy] {
            let xbw = XbwFib::build(&trie, storage);
            for &k in &keys {
                assert_eq!(xbw.lookup(k), trie.lookup(k), "case {case}, key {k:#010x}");
            }
        }
    }
}

#[test]
fn multibit_equals_trie_for_any_stride() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("multibit_equals_trie_for_any_stride", case);
        let routes = arb_routes(&mut rng);
        let keys = arb_keys(&mut rng, 50);
        let stride: u8 = rng.random_range(1..=16);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let mb = MultibitDag::from_trie(&trie, stride);
        for &k in &keys {
            assert_eq!(
                mb.lookup(k),
                trie.lookup(k),
                "case {case}, stride {stride}, key {k:#010x}"
            );
        }
    }
}

#[test]
fn serialized_blob_roundtrips_any_dag() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("serialized_blob_roundtrips_any_dag", case);
        let routes = arb_routes(&mut rng);
        let lambda: u8 = rng.random_range(0..=16);
        let keys = arb_keys(&mut rng, 30);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let dag = PrefixDag::from_trie(&trie, lambda);
        let ser = SerializedDag::from_dag(&dag);
        let decoded = SerializedDag::<u32>::from_bytes(&ser.to_bytes()).expect("own blob decodes");
        for &k in &keys {
            assert_eq!(
                decoded.lookup(k),
                trie.lookup(k),
                "case {case}, λ={lambda}, key {k:#010x}"
            );
        }
    }
}

#[test]
fn blob_decoder_never_panics_on_garbage() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("blob_decoder_never_panics_on_garbage", case);
        let len: usize = rng.random_range(0..600);
        let bytes: Vec<u8> = (0..len).map(|_| rng.random()).collect();
        // Arbitrary input must be rejected cleanly, never crash.
        let _ = SerializedDag::<u32>::from_bytes(&bytes);
    }
}

#[test]
fn blob_decoder_survives_mutations() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("blob_decoder_survives_mutations", case);
        let routes = arb_routes(&mut rng);
        let lambda: u8 = rng.random_range(0..=8);
        let n_flips: usize = rng.random_range(1..6);
        let flips: Vec<(u16, u8)> = (0..n_flips)
            .map(|_| (rng.random(), rng.random_range(0..8u8)))
            .collect();
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, lambda));
        let mut blob = ser.to_bytes();
        for (pos, bit) in flips {
            let pos = pos as usize % blob.len();
            blob[pos] ^= 1 << bit;
        }
        // Either rejected, or (if the flips cancelled out / hit dead
        // padding) decoded into something that can be queried.
        if let Ok(decoded) = SerializedDag::<u32>::from_bytes(&blob) {
            let _ = decoded.lookup(0u32);
            let _ = decoded.lookup(u32::MAX);
        }
    }
}

#[test]
fn entropy_identities_hold() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("entropy_identities_hold", case);
        let routes = arb_routes(&mut rng);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let m = FibEntropy::of_trie(&trie);
        // Structural identities of the normal form.
        assert_eq!(m.t_nodes, 2 * m.n_leaves - 1, "case {case}");
        assert_eq!(
            m.label_counts.iter().sum::<u64>() as usize,
            m.n_leaves,
            "case {case}"
        );
        // 0 ≤ H0 ≤ lg δ, and E ≤ I always.
        assert!(m.h0 >= -1e-12, "case {case}");
        assert!(m.h0 <= (m.delta as f64).log2() + 1e-12, "case {case}");
        assert!(
            m.entropy_bits() <= m.info_bound_bits() + 1e-9,
            "case {case}"
        );
        // δ ≥ 1 even for the empty FIB (the ⊥ leaf).
        assert!(m.delta >= 1, "case {case}");
    }
}

#[test]
fn fold_is_idempotent_and_size_monotone_in_lambda() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("fold_is_idempotent_and_size_monotone_in_lambda", case);
        let routes = arb_routes(&mut rng);
        let lambda: u8 = rng.random_range(0..=32);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let dag = PrefixDag::from_trie(&trie, lambda);
        dag.assert_invariants();
        // Folding the control again is canonical.
        let again = PrefixDag::from_trie(dag.control(), lambda);
        assert_eq!(dag.stats(), again.stats(), "case {case}, λ={lambda}");
        // Upper bound: never more nodes than the control trie above the
        // barrier plus the full normal form below it. (Note λ=0 can exceed
        // the *plain* trie's node count on sparse chains — leaf-pushing
        // materializes ⊥ leaves the sparse trie never stores — so the
        // bound is against the normal form, not the input.)
        let proper = fib_trie::ProperTrie::from_trie(&trie);
        assert!(
            dag.stats().live_nodes <= trie.node_count() + proper.node_count(),
            "case {case}, λ={lambda}"
        );
    }
}

/// Routes confined to the top `depth` bits: below that the trie never
/// branches, so lookup depth and result depend only on the leading
/// `depth` address bits and heat classes at that depth are exact.
fn arb_shallow_routes(rng: &mut impl Rng, depth: u8) -> Vec<(Prefix4, NextHop)> {
    let n: usize = rng.random_range(0..60);
    (0..n)
        .map(|_| {
            let len = rng.random_range(0..=depth);
            let bits = rng.random::<u32>() & (u32::MAX << (32 - u32::from(depth)));
            (
                Prefix::new(bits, len),
                NextHop::new(rng.random_range(0..8u32)),
            )
        })
        .collect()
}

#[test]
fn vsdag_dp_beats_every_fixed_stride_uniform() {
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("vsdag_dp_beats_every_fixed_stride_uniform", case);
        let routes = arb_shallow_routes(&mut rng, 12);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let params = VsParams {
            max_stride: 8,
            budget: f64::INFINITY,
        };
        let vs = VarStrideDag::from_trie(&trie, params);
        let vs_avg = vs.depth_stats().0;
        // The DP's own objective (traffic-weighted slot reads) must agree
        // with the emitted structure's measured expected depth: the plan
        // is what got built.
        assert!(
            (vs.planned_cost() - vs_avg).abs() < 1e-6,
            "case {case}: planned {} vs measured {vs_avg}",
            vs.planned_cost()
        );
        // Every fixed-stride placement is a point in the DP's search
        // space, so the optimum can never be deeper on average.
        for stride in 1..=8u8 {
            let mb_avg = MultibitDag::from_trie(&trie, stride).depth_stats().0;
            assert!(
                vs_avg <= mb_avg + 1e-9,
                "case {case}: vsdag {vs_avg} deeper than stride-{stride} {mb_avg}"
            );
        }
    }
}

#[test]
fn vsdag_dp_beats_every_fixed_stride_under_heat() {
    const HEAT_DEPTH: u8 = 12;
    for case in 0..CASES {
        let mut rng = Xoshiro256::for_case("vsdag_dp_beats_every_fixed_stride_under_heat", case);
        let routes = arb_shallow_routes(&mut rng, HEAT_DEPTH);
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        // A spiky heat summary over full address classes at the trie's
        // branching floor: exact weights, no projection slack.
        let n_hot: usize = rng.random_range(1..16);
        let heat: Vec<(u64, u64)> = (0..n_hot)
            .map(|_| {
                let class = u64::from(rng.random::<u16>() & 0x0FFF);
                (
                    class << (64 - u32::from(HEAT_DEPTH)),
                    rng.random_range(1..100u64),
                )
            })
            .collect();
        let total: u64 = heat.iter().map(|&(_, c)| c).sum();
        let params = VsParams {
            max_stride: 8,
            budget: f64::INFINITY,
        };
        let vs = VarStrideDag::from_trie_weighted(&trie, params, Some((&heat, HEAT_DEPTH)));
        let expected_hops = |depth_of: &dyn Fn(u32) -> u32| -> f64 {
            heat.iter()
                .map(|&(key, count)| {
                    let addr = ((key >> 32) as u32) & (u32::MAX << (32 - u32::from(HEAT_DEPTH)));
                    count as f64 * f64::from(depth_of(addr))
                })
                .sum::<f64>()
                / total as f64
        };
        let vs_w = expected_hops(&|a| vs.lookup_with_depth(a).1);
        for stride in 1..=8u8 {
            let mb = MultibitDag::from_trie(&trie, stride);
            let mb_w = expected_hops(&|a| mb.lookup_with_depth(a).1);
            assert!(
                vs_w <= mb_w + 1e-9,
                "case {case}: weighted vsdag {vs_w} deeper than stride-{stride} {mb_w}"
            );
        }
    }
}
