//! Property tests for the core compression structures: arbitrary route
//! sets, every engine against the binary trie, blob round-trips, and the
//! entropy-accounting identities.

use fib_core::{
    FibEntropy, MultibitDag, PrefixDag, SerializedDag, XbwFib, XbwStorage,
};
use fib_trie::{BinaryTrie, NextHop, Prefix, Prefix4};
use proptest::prelude::*;

fn arb_routes() -> impl Strategy<Value = Vec<(Prefix4, NextHop)>> {
    prop::collection::vec(
        (any::<u32>(), 0u8..=32, 0u32..8).prop_map(|(a, l, h)| (Prefix::new(a, l), NextHop::new(h))),
        0..100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn xbw_equals_trie_on_arbitrary_fibs(
        routes in arb_routes(),
        keys in prop::collection::vec(any::<u32>(), 50),
    ) {
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        for storage in [XbwStorage::Succinct, XbwStorage::Entropy] {
            let xbw = XbwFib::build(&trie, storage);
            for &k in &keys {
                prop_assert_eq!(xbw.lookup(k), trie.lookup(k));
            }
        }
    }

    #[test]
    fn multibit_equals_trie_for_any_stride(
        routes in arb_routes(),
        keys in prop::collection::vec(any::<u32>(), 50),
        stride in 1u8..=16,
    ) {
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let mb = MultibitDag::from_trie(&trie, stride);
        for &k in &keys {
            prop_assert_eq!(mb.lookup(k), trie.lookup(k));
        }
    }

    #[test]
    fn serialized_blob_roundtrips_any_dag(
        routes in arb_routes(),
        lambda in 0u8..=16,
        keys in prop::collection::vec(any::<u32>(), 30),
    ) {
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let dag = PrefixDag::from_trie(&trie, lambda);
        let ser = SerializedDag::from_dag(&dag);
        let decoded = SerializedDag::<u32>::from_bytes(&ser.to_bytes()).expect("own blob decodes");
        for &k in &keys {
            prop_assert_eq!(decoded.lookup(k), trie.lookup(k));
        }
    }

    #[test]
    fn blob_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        // Arbitrary input must be rejected cleanly, never crash.
        let _ = SerializedDag::<u32>::from_bytes(&bytes);
    }

    #[test]
    fn blob_decoder_survives_mutations(
        routes in arb_routes(),
        lambda in 0u8..=8,
        flips in prop::collection::vec((any::<u16>(), 0u8..8), 1..6),
    ) {
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, lambda));
        let mut blob = ser.to_bytes();
        for (pos, bit) in flips {
            let pos = pos as usize % blob.len();
            blob[pos] ^= 1 << bit;
        }
        // Either rejected, or (if the flips cancelled out / hit dead
        // padding) decoded into something that can be queried.
        if let Ok(decoded) = SerializedDag::<u32>::from_bytes(&blob) {
            let _ = decoded.lookup(0u32);
            let _ = decoded.lookup(u32::MAX);
        }
    }

    #[test]
    fn entropy_identities_hold(routes in arb_routes()) {
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let m = FibEntropy::of_trie(&trie);
        // Structural identities of the normal form.
        prop_assert_eq!(m.t_nodes, 2 * m.n_leaves - 1);
        prop_assert_eq!(m.label_counts.iter().sum::<u64>() as usize, m.n_leaves);
        // 0 ≤ H0 ≤ lg δ, and E ≤ I always.
        prop_assert!(m.h0 >= -1e-12);
        prop_assert!(m.h0 <= (m.delta as f64).log2() + 1e-12);
        prop_assert!(m.entropy_bits() <= m.info_bound_bits() + 1e-9);
        // δ ≥ 1 even for the empty FIB (the ⊥ leaf).
        prop_assert!(m.delta >= 1);
    }

    #[test]
    fn fold_is_idempotent_and_size_monotone_in_lambda(
        routes in arb_routes(),
        lambda in 0u8..=32,
    ) {
        let trie: BinaryTrie<u32> = routes.into_iter().collect();
        let dag = PrefixDag::from_trie(&trie, lambda);
        dag.assert_invariants();
        // Folding the control again is canonical.
        let again = PrefixDag::from_trie(dag.control(), lambda);
        prop_assert_eq!(dag.stats(), again.stats());
        // Upper bound: never more nodes than the control trie above the
        // barrier plus the full normal form below it. (Note λ=0 can exceed
        // the *plain* trie's node count on sparse chains — leaf-pushing
        // materializes ⊥ leaves the sparse trie never stores — so the
        // bound is against the normal form, not the input.)
        let proper = fib_trie::ProperTrie::from_trie(&trie);
        prop_assert!(
            dag.stats().live_nodes <= trie.node_count() + proper.node_count()
        );
    }
}
