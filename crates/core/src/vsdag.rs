//! Traffic-weighted variable-stride multibit prefix DAG (`vsdag`).
//!
//! The fixed-stride [`crate::MultibitDag`] spends the same fanout
//! everywhere; the paper's λ-optimization (Eqs. 2–3) picks one global
//! leaf-push barrier assuming uniform access. Both leave measured traffic
//! on the table: under zipf-shaped load the popular prefixes sit deep and
//! every packet pays the full walk. `VarStrideDag` generalizes both — the
//! stride is chosen **per node** by a dynamic program over the leaf-pushed
//! normal form that minimizes expected traffic-weighted lookup depth
//!
//! ```text
//! C(v) = w(v) + min_{s ∈ [1, max_stride]} [ μ·2^s + Σ_{c ∈ I_s(v)} C(c) ]
//! ```
//!
//! where `w(v)` is the fraction of traffic whose lookup passes through
//! `v` (projected from a heat summary, or the uniform address fraction
//! when no heat is attached), `I_s(v)` are the internal descendants at
//! depth exactly `s` (the slots that recurse after controlled prefix
//! expansion), and `μ` is a Lagrangian slot penalty bisected until the
//! plan's pre-dedup slot mass fits a configurable multiple of the fixed
//! stride-4 plan. `μ = 0` with uniform weights degenerates to the best
//! fixed stride (and beats it when mixing strides pays); `max_stride = 1`
//! degenerates to the binary prefix DAG.
//!
//! The emitted structure is two flat word strings shared verbatim by the
//! owned builder and the zero-copy [`VarStrideDagRef`] a FIB image
//! borrows: a node directory (one `u64` per supernode: stride in the
//! upper half, first-slot index in the lower) and a packed slot table
//! (two tagged 32-bit references per word, exactly the
//! [`crate::MultibitDag`] encoding). Nodes are hash-consed per
//! `(stride, slots)` shape, and children always precede their parent in
//! the directory, so untrusted images are validated by one monotonicity
//! scan and the walk provably terminates.

use std::collections::HashMap;
use std::marker::PhantomData;

use fib_succinct::simd::gather4_u32;
use fib_succinct::storage::get_u32 as slot_at;
use fib_trie::{project_heat_weights, Address, BinaryTrie, Depth, NextHop, ProperNode, ProperTrie};

const LEAF_TAG: u32 = 0x8000_0000;
const BOT: u32 = 0x7FFF_FFFF;

/// Number of lookups the gather kernel behind
/// [`VarStrideDag::lookup_stream`] walks in lockstep — sized to the
/// 4-wide [`gather4_u32`] the SIMD dispatch resolves to.
pub const VS_BATCH_LANES: usize = 4;

/// In-flight walks of the rolling-refill kernel behind
/// [`VarStrideDag::lookup_batch`]. Each slot owns one walk and takes
/// the next address the moment its walk resolves, so the (short —
/// usually one or two slot reads) dependency chains of eight lookups
/// overlap instead of convoying on the slowest chunk member. Eight
/// matches the XBW retune's lane sweep: enough chains to saturate the
/// load ports on a cache-resident table, few enough that the lane
/// state stays in registers.
pub const VS_REFILL_LANES: usize = 8;

/// Knobs of the stride-placement dynamic program.
#[derive(Clone, Copy, Debug)]
pub struct VsParams {
    /// Widest per-node stride the DP may choose (1 ≤ max_stride ≤ 16).
    pub max_stride: u8,
    /// Slot budget as a multiple of the fixed stride-4 plan's pre-dedup
    /// slot mass; `f64::INFINITY` disables the budget (pure
    /// depth-minimizing placement).
    pub budget: f64,
}

impl Default for VsParams {
    /// Tuned on taz 0.1 with zipf(1.0) heat: stride cap 12 keeps the
    /// root table L2-sized, and a 0.6× pre-dedup budget lands the
    /// *post*-dedup image around 1.2× the hash-consed stride-4
    /// `MultibitDag` (stride-4 dedup removes ~2.4× of the pre-dedup
    /// slot mass, so a sub-1.0 pre-dedup multiple is not a shrink) —
    /// inside the 1.5× size gate `benchdump` pins, at ~1.1/~2.0
    /// expected hops for uniform/zipf traffic.
    fn default() -> Self {
        Self {
            max_stride: 12,
            budget: 0.6,
        }
    }
}

/// A traffic-weighted variable-stride multibit prefix DAG (owned builder;
/// queries run on the borrowed [`VarStrideDagRef`]).
#[derive(Clone, Debug)]
pub struct VarStrideDag<A: Address> {
    /// Node directory: `stride << 32 | first_slot_index` per supernode.
    nodes: Vec<u64>,
    /// Slot arrays, flattened and packed two tagged references per word.
    words: Vec<u64>,
    /// Number of slots (tagged references) stored in `words`.
    n_slots: usize,
    /// Tagged reference to the root.
    root: u32,
    /// Expected traffic-weighted slot reads the DP planned for.
    plan_cost: f64,
    _marker: PhantomData<A>,
}

/// Borrowed zero-copy view of a [`VarStrideDag`].
#[derive(Clone, Copy, Debug)]
pub struct VarStrideDagRef<'a, A: Address> {
    nodes: &'a [u64],
    words: &'a [u64],
    n_slots: usize,
    root: u32,
    _marker: PhantomData<A>,
}

/// One stride plan: per-proper-node stride choice plus the aggregate
/// traffic cost (expected slot reads) and pre-dedup slot mass it implies.
struct Plan {
    choice: Vec<u8>,
    cost: f64,
    mass: u64,
}

/// Runs the DP recurrence bottom-up for one Lagrangian penalty `mu`
/// (traffic cost per slot). Returns the per-node choice that minimizes
/// `cost + mu·mass` together with the unpenalized cost/mass it achieves.
fn solve<A: Address>(proper: &ProperTrie<A>, weights: &[f64], max_stride: u8, mu: f64) -> Plan {
    let n = proper.node_count();
    let mut choice = vec![0u8; n];
    let mut pcost = vec![0f64; n];
    let mut cost = vec![0f64; n];
    let mut mass = vec![0u64; n];
    let mut stack: Vec<(u32, bool)> = vec![(proper.root_idx(), false)];
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    while let Some((idx, expanded)) = stack.pop() {
        let ProperNode::Internal { left, right } = *proper.node(idx) else {
            continue;
        };
        if !expanded {
            stack.push((idx, true));
            stack.push((left, false));
            stack.push((right, false));
            continue;
        }
        // The frontier holds the internal descendants at depth exactly s
        // — the slots that recurse; each candidate stride extends the
        // previous one's frontier by one level instead of re-walking the
        // subtree per candidate.
        frontier.clear();
        let mut psum = 0.0;
        let mut csum = 0.0;
        let mut msum = 0u64;
        for c in [left, right] {
            if matches!(proper.node(c), ProperNode::Internal { .. }) {
                frontier.push(c);
                psum += pcost[c as usize];
                csum += cost[c as usize];
                msum += mass[c as usize];
            }
        }
        let mut best_s = 1u8;
        let mut best_p = mu * 2.0 + psum;
        let mut best_c = csum;
        let mut best_m = 2 + msum;
        for s in 2..=max_stride {
            if frontier.is_empty() {
                // Every path already hit a leaf: wider strides only add
                // slots.
                break;
            }
            next.clear();
            psum = 0.0;
            csum = 0.0;
            msum = 0;
            for &f in &frontier {
                let ProperNode::Internal { left, right } = *proper.node(f) else {
                    unreachable!("frontier holds internal nodes")
                };
                for c in [left, right] {
                    if matches!(proper.node(c), ProperNode::Internal { .. }) {
                        next.push(c);
                        psum += pcost[c as usize];
                        csum += cost[c as usize];
                        msum += mass[c as usize];
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            let width = 1u64 << s;
            let p = mu * width as f64 + psum;
            if p < best_p {
                best_p = p;
                best_s = s;
                best_c = csum;
                best_m = width + msum;
            }
        }
        let w = weights[idx as usize];
        choice[idx as usize] = best_s;
        pcost[idx as usize] = w + best_p;
        cost[idx as usize] = w + best_c;
        mass[idx as usize] = best_m;
    }
    let r = proper.root_idx() as usize;
    Plan {
        choice,
        cost: cost[r],
        mass: mass[r],
    }
}

/// Pre-dedup slot mass of the fixed-stride-`s` plan — the budget's unit.
fn forced_mass<A: Address>(proper: &ProperTrie<A>, s: u8) -> u64 {
    if !matches!(proper.node(proper.root_idx()), ProperNode::Internal { .. }) {
        return 0;
    }
    let mut total = 0u64;
    let mut stack = vec![proper.root_idx()];
    let mut frontier: Vec<u32> = Vec::new();
    let mut next: Vec<u32> = Vec::new();
    while let Some(idx) = stack.pop() {
        total += 1u64 << s;
        frontier.clear();
        frontier.push(idx);
        for _ in 0..s {
            next.clear();
            for &f in &frontier {
                if let ProperNode::Internal { left, right } = *proper.node(f) {
                    for c in [left, right] {
                        if matches!(proper.node(c), ProperNode::Internal { .. }) {
                            next.push(c);
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        stack.extend_from_slice(&frontier);
    }
    total
}

struct Emitter<'a, A: Address> {
    proper: &'a ProperTrie<A>,
    choice: &'a [u8],
    slots: Vec<u32>,
    nodes: Vec<u64>,
    interner: HashMap<(u8, Box<[u32]>), u32>,
}

impl<A: Address> Emitter<'_, A> {
    /// Encodes the proper-trie node `idx` as a tagged reference.
    fn encode(&mut self, idx: u32) -> u32 {
        match *self.proper.node(idx) {
            ProperNode::Leaf(label) => LEAF_TAG | label.map_or(BOT, |nh| nh.index()),
            ProperNode::Internal { .. } => {
                let stride = self.choice[idx as usize];
                let width = 1usize << stride;
                let mut children = Vec::with_capacity(width);
                for slot in 0..width {
                    children.push(self.encode_slot(idx, slot as u32, stride));
                }
                let key = (stride, children.into_boxed_slice());
                if let Some(&existing) = self.interner.get(&key) {
                    return existing;
                }
                let node = self.nodes.len() as u32;
                let base = self.slots.len() as u32;
                self.slots.extend_from_slice(&key.1);
                // Children were interned before their parent, so every
                // interior slot reference is a strictly smaller directory
                // index — the monotonicity `from_parts` re-checks.
                self.nodes.push(u64::from(stride) << 32 | u64::from(base));
                self.interner.insert(key, node);
                node
            }
        }
    }

    /// Walks `stride` bits (MSB-first bits of `slot`) down from `idx`,
    /// duplicating early leaves into the slot (controlled prefix
    /// expansion).
    fn encode_slot(&mut self, mut idx: u32, slot: u32, stride: u8) -> u32 {
        for depth in 0..stride {
            match *self.proper.node(idx) {
                ProperNode::Leaf(label) => {
                    return LEAF_TAG | label.map_or(BOT, |nh| nh.index());
                }
                ProperNode::Internal { left, right } => {
                    let bit = (slot >> (stride - 1 - depth)) & 1 == 1;
                    idx = if bit { right } else { left };
                }
            }
        }
        self.encode(idx)
    }
}

impl<A: Address> VarStrideDag<A> {
    /// Compiles `trie` with uniform per-node weights (every address
    /// equally likely) — the heat-free fallback.
    ///
    /// # Panics
    /// Panics if `params.max_stride` is outside `[1, 16]`.
    #[must_use]
    pub fn from_trie(trie: &BinaryTrie<A>, params: VsParams) -> Self {
        Self::from_trie_weighted(trie, params, None)
    }

    /// Compiles `trie` with strides placed by the traffic-weighted DP.
    ///
    /// `heat` is `(entries, depth)` in the workload `HeatSummary` shape:
    /// MSB-aligned `u64` prefix keys truncated to `depth` bits with hit
    /// counts. `None` (or an all-zero summary) falls back to the uniform
    /// address-fraction distribution.
    ///
    /// # Panics
    /// Panics if `params.max_stride` is outside `[1, 16]`.
    #[must_use]
    pub fn from_trie_weighted(
        trie: &BinaryTrie<A>,
        params: VsParams,
        heat: Option<(&[(u64, u64)], u8)>,
    ) -> Self {
        let max_stride = params.max_stride;
        assert!(
            (1..=16).contains(&max_stride),
            "max_stride {max_stride} out of [1, 16]"
        );
        let proper = ProperTrie::from_trie(trie);
        let spans = proper.node_spans();
        let weights = match heat {
            Some((entries, depth)) => project_heat_weights(&spans, entries, depth),
            None => project_heat_weights(&spans, &[], 0),
        };
        let mut plan = solve(&proper, &weights, max_stride, 0.0);
        if params.budget.is_finite() {
            let reference = forced_mass(&proper, 4).max(1);
            let budget_slots = (params.budget * reference as f64) as u64;
            if plan.mass > budget_slots {
                // Bisect the Lagrangian slot penalty: mass is monotone
                // non-increasing in μ, so the smallest feasible μ gives
                // the cheapest plan that fits. If even the tightest
                // achievable plan exceeds the budget (possible when the
                // stride-4 reference is unusually small), ship that.
                let mut lo = 0.0f64;
                let mut hi = 1e-12f64;
                let mut hi_plan = solve(&proper, &weights, max_stride, hi);
                let mut rounds = 0;
                while hi_plan.mass > budget_slots && rounds < 60 {
                    hi *= 4.0;
                    hi_plan = solve(&proper, &weights, max_stride, hi);
                    rounds += 1;
                }
                plan = hi_plan;
                if plan.mass <= budget_slots {
                    for _ in 0..24 {
                        let mid = 0.5 * (lo + hi);
                        let mid_plan = solve(&proper, &weights, max_stride, mid);
                        if mid_plan.mass <= budget_slots {
                            hi = mid;
                            plan = mid_plan;
                        } else {
                            lo = mid;
                        }
                    }
                }
            }
        }
        let mut emitter = Emitter {
            proper: &proper,
            choice: &plan.choice,
            slots: Vec::new(),
            nodes: Vec::new(),
            interner: HashMap::new(),
        };
        let root = emitter.encode(proper.root_idx());
        let n_slots = emitter.slots.len();
        let mut words = Vec::with_capacity(n_slots.div_ceil(2));
        for pair in emitter.slots.chunks(2) {
            let lo = u64::from(pair[0]);
            let hi = pair.get(1).map_or(0, |&s| u64::from(s));
            words.push(lo | (hi << 32));
        }
        Self {
            nodes: emitter.nodes,
            words,
            n_slots,
            root,
            plan_cost: plan.cost,
            _marker: PhantomData,
        }
    }

    /// Number of distinct supernodes after folding.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Footprint in bytes: 4 per slot plus 8 per directory entry.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.n_slots * 4 + self.nodes.len() * 8
    }

    /// Expected traffic-weighted slot reads the DP planned for (exact for
    /// the weight distribution the build saw).
    #[must_use]
    pub fn planned_cost(&self) -> f64 {
        self.plan_cost
    }

    /// How many supernodes chose each stride, `(stride, count)` pairs in
    /// ascending stride order — the benchdump `stride_histogram` field.
    #[must_use]
    pub fn stride_histogram(&self) -> Vec<(u8, usize)> {
        let mut counts = [0usize; 17];
        for &node in &self.nodes {
            counts[((node >> 32) & 0x1F) as usize] += 1;
        }
        (1..=16u8)
            .filter(|&s| counts[s as usize] > 0)
            .map(|s| (s, counts[s as usize]))
            .collect()
    }

    /// The borrowed view all queries run on.
    #[must_use]
    #[inline]
    pub fn view(&self) -> VarStrideDagRef<'_, A> {
        VarStrideDagRef {
            nodes: &self.nodes,
            words: &self.words,
            n_slots: self.n_slots,
            root: self.root,
            _marker: PhantomData,
        }
    }

    /// The node directory words (`stride << 32 | base` each).
    #[must_use]
    pub fn node_words(&self) -> &[u64] {
        &self.nodes
    }

    /// The packed slot words (two tagged references per word).
    #[must_use]
    pub fn slot_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of slots (tagged references).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// The tagged root reference.
    #[must_use]
    pub fn root_ref(&self) -> u32 {
        self.root
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.view().lookup(addr)
    }

    /// Lookup also returning the number of slot reads.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        self.view().lookup_with_depth(addr)
    }

    /// Batched longest-prefix match (see [`VarStrideDagRef::lookup_batch`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_batch(addrs, out);
    }

    /// Prefetches the first-level slot `addr` will read (see
    /// [`VarStrideDagRef::prefetch`]).
    #[inline]
    pub fn prefetch(&self, addr: A) {
        self.view().prefetch(addr);
    }

    /// Software-pipelined batched lookup (see
    /// [`VarStrideDagRef::lookup_stream`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_stream(addrs, out);
    }

    /// Lookup reporting each read as `(byte offset, size)` for the cache
    /// and SRAM models (slot table first, directory mapped above it).
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        self.view().lookup_traced(addr, sink)
    }

    /// Average and maximum slot reads over the address space, weighting
    /// each slot by the address fraction it covers.
    #[must_use]
    pub fn depth_stats(&self) -> (f64, u32) {
        let view = self.view();
        let mut avg = 0.0;
        let mut max = 0u32;
        let mut stack = vec![(self.root, 0u32, 1.0f64)];
        while let Some((reference, hops, frac)) = stack.pop() {
            if reference & LEAF_TAG != 0 {
                avg += f64::from(hops) * frac;
                max = max.max(hops);
                continue;
            }
            let node = view.nodes[reference as usize];
            let width = 1usize << ((node >> 32) & 0x1F);
            let base = (node as u32) as usize;
            let child_frac = frac / width as f64;
            for slot in 0..width {
                stack.push((slot_at(view.words, base + slot), hops + 1, child_frac));
            }
        }
        (avg, max)
    }
}

impl<'a, A: Address> VarStrideDagRef<'a, A> {
    /// Assembles a view over the directory and slot words, validating
    /// every node's stride, slot span, and child monotonicity (interior
    /// references strictly precede their parent) so the walk cannot index
    /// out of bounds or loop on untrusted bytes.
    ///
    /// # Errors
    /// A static message naming the structural violation.
    pub fn from_parts(
        nodes: &'a [u64],
        words: &'a [u64],
        n_slots: usize,
        root: u32,
    ) -> Result<Self, &'static str> {
        let view = Self::from_parts_trusted(nodes, words, n_slots, root)?;
        if root & LEAF_TAG == 0 && root as usize >= nodes.len() {
            return Err("root reference past node directory");
        }
        for (i, &node) in nodes.iter().enumerate() {
            let stride = node >> 32;
            if !(1..=16).contains(&stride) {
                return Err("node stride out of [1, 16]");
            }
            let base = (node as u32) as usize;
            let width = 1usize << stride;
            if base + width > n_slots {
                return Err("node slot span past slot table");
            }
            for j in base..base + width {
                let r = slot_at(words, j);
                if r & LEAF_TAG == 0 && r as usize >= i {
                    return Err("interior reference breaks directory order");
                }
            }
        }
        Ok(view)
    }

    /// [`Self::from_parts`] minus the O(n) directory scan — only for
    /// words that already passed a full validation (a loaded image is
    /// immutable, so one scan covers its lifetime).
    pub fn from_parts_trusted(
        nodes: &'a [u64],
        words: &'a [u64],
        n_slots: usize,
        root: u32,
    ) -> Result<Self, &'static str> {
        if n_slots.div_ceil(2) != words.len() {
            return Err("slot count does not match word count");
        }
        Ok(Self {
            nodes,
            words,
            n_slots,
            root,
            _marker: PhantomData,
        })
    }

    /// The pointer range of the borrowed slot words, for zero-copy
    /// assertions in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// Footprint in bytes: 4 per slot plus 8 per directory entry.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.n_slots * 4 + self.nodes.len() * 8
    }

    /// Longest-prefix-match lookup.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.lookup_with_depth(addr).0
    }

    /// Lookup also returning the number of slot reads.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        let mut reference = self.root;
        let mut offset = 0u8;
        let mut hops: Depth = 0;
        loop {
            if reference & LEAF_TAG != 0 {
                let label = reference & !LEAF_TAG;
                return ((label != BOT).then(|| NextHop::new(label)), hops);
            }
            let node = self.nodes[reference as usize];
            let stride = ((node >> 32) & 0x1F) as u8;
            // Final chunk may be narrower than the stride; expansion
            // stops at leaf-tagged refs at depth W, so take stays > 0.
            let take = stride.min(A::WIDTH - offset);
            debug_assert!(take > 0, "walked past the address width");
            let slot = addr.bits(offset, take) << (stride - take);
            reference = slot_at(self.words, (node as u32) as usize + slot as usize);
            offset += take;
            hops += 1;
        }
    }

    /// Batched longest-prefix match: resolves `addrs[i]` into `out[i]`
    /// with a rolling-refill walk kernel — [`VS_REFILL_LANES`] walks in
    /// flight, each lane taking the next address the moment its walk
    /// resolves. Ungated: the refill overlaps the serial
    /// directory-read → slot-read chains whether the table lives in L2
    /// or misses to memory, so it wins at every size (the lockstep
    /// gather kernel only paid off out of cache and convoyed on the
    /// slowest chunk member when resident).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        let n = addrs.len();
        let out = &mut out[..n];
        // Degenerate table: the root itself is a leaf reference.
        if self.root & LEAF_TAG != 0 {
            let label = self.root & !LEAF_TAG;
            out.fill((label != BOT).then(|| NextHop::new(label)));
            return;
        }
        // The root directory word is loop-invariant, so a lane's first
        // slot read fuses into the round that refills it: a one-hop
        // lookup (the uniform-traffic common case once the DP widens the
        // root) costs exactly one round, not a refill round plus a walk
        // round.
        let root_node = self.nodes[self.root as usize];
        let root_stride = ((root_node >> 32) & 0x1F) as u8;
        let root_take = root_stride.min(A::WIDTH);
        let step0 = |addr: A| {
            let slot = addr.bits(0, root_take) << (root_stride - root_take);
            slot_at(self.words, (root_node as u32) as usize + slot as usize)
        };
        let mut reference = [0u32; VS_REFILL_LANES];
        let mut offset = [0u8; VS_REFILL_LANES];
        // Index into `addrs` each lane is walking; `usize::MAX` = drained.
        let mut job = [usize::MAX; VS_REFILL_LANES];
        let mut live = VS_REFILL_LANES.min(n);
        for lane in 0..live {
            job[lane] = lane;
            reference[lane] = step0(addrs[lane]);
            offset[lane] = root_take;
        }
        let mut next = live;
        while live > 0 {
            for lane in 0..VS_REFILL_LANES {
                let j = job[lane];
                if j == usize::MAX {
                    continue;
                }
                let r = reference[lane];
                if r & LEAF_TAG != 0 {
                    let label = r & !LEAF_TAG;
                    out[j] = (label != BOT).then(|| NextHop::new(label));
                    if next < n {
                        job[lane] = next;
                        reference[lane] = step0(addrs[next]);
                        offset[lane] = root_take;
                        next += 1;
                    } else {
                        job[lane] = usize::MAX;
                        live -= 1;
                    }
                } else {
                    let node = self.nodes[r as usize];
                    let stride = ((node >> 32) & 0x1F) as u8;
                    let take = stride.min(A::WIDTH - offset[lane]);
                    let slot = addrs[j].bits(offset[lane], take) << (stride - take);
                    reference[lane] = slot_at(self.words, (node as u32) as usize + slot as usize);
                    offset[lane] += take;
                }
            }
        }
    }

    /// Prefetches the first-level slot `addr` will read. The root's
    /// directory word is read every lookup and stays resident; the hint
    /// targets the slot line the walk will actually miss on.
    #[inline]
    pub fn prefetch(&self, addr: A) {
        if self.root & LEAF_TAG != 0 {
            return;
        }
        let node = self.nodes[self.root as usize];
        let stride = ((node >> 32) & 0x1F) as u8;
        let take = stride.min(A::WIDTH);
        let slot = addr.bits(0, take) << (stride - take);
        let index = (node as u32) as usize + slot as usize;
        // Two tagged slots per packed word.
        fib_succinct::mem::prefetch_index(self.words, index / 2);
    }

    /// Software-pipelined batched lookup: identical results to
    /// [`Self::lookup_batch`], walking [`VS_BATCH_LANES`]-lane lockstep
    /// groups through the SIMD gather kernel with the next group's
    /// first-level slot lines prefetched while the current group walks.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        // Below the residency threshold the whole structure lives in
        // cache and the prefetch stage is pure overhead — identical
        // results either way, so take the rolling-refill batch kernel.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            return self.lookup_batch(addrs, out);
        }
        fib_succinct::mem::pipelined_stream(
            VS_BATCH_LANES,
            addrs,
            out,
            |addr| self.prefetch(addr),
            |chunk, slot| self.resolve_lanes(chunk, slot),
            |addr, slot| *slot = self.lookup(addr),
        );
    }

    /// One lockstep [`VS_BATCH_LANES`]-lane group: the gather kernel of
    /// [`Self::lookup_stream`]'s out-of-cache path. Both slices must be
    /// exactly [`VS_BATCH_LANES`] long.
    #[inline]
    fn resolve_lanes(&self, chunk: &[A], slot_out: &mut [Option<NextHop>]) {
        let mut reference = [self.root; VS_BATCH_LANES];
        let mut offset = [0u8; VS_BATCH_LANES];
        let mut live = reference.iter().filter(|&&r| r & LEAF_TAG == 0).count();
        // Each step reads the (hot, resident) directory word per lane,
        // then gathers all four lanes' slots in one SIMD gather over the
        // packed-u32 word array (scalar fallback inside `gather4_u32`);
        // parked lanes re-read slot 0.
        while live > 0 {
            let mut take = [0u8; VS_BATCH_LANES];
            let mut gidx = [0u64; VS_BATCH_LANES];
            for lane in 0..VS_BATCH_LANES {
                if reference[lane] & LEAF_TAG != 0 {
                    continue;
                }
                let node = self.nodes[reference[lane] as usize];
                let stride = ((node >> 32) & 0x1F) as u8;
                take[lane] = stride.min(A::WIDTH - offset[lane]);
                let slot = chunk[lane].bits(offset[lane], take[lane]) << (stride - take[lane]);
                gidx[lane] = u64::from(node as u32) + u64::from(slot);
            }
            let slots = gather4_u32(self.words, gidx);
            for lane in 0..VS_BATCH_LANES {
                if reference[lane] & LEAF_TAG != 0 {
                    continue;
                }
                reference[lane] = slots[lane];
                offset[lane] += take[lane];
                if reference[lane] & LEAF_TAG != 0 {
                    live -= 1;
                }
            }
        }
        for lane in 0..VS_BATCH_LANES {
            let label = reference[lane] & !LEAF_TAG;
            slot_out[lane] = (label != BOT).then(|| NextHop::new(label));
        }
    }

    /// Lookup reporting each read as `(byte offset, size)` for the cache
    /// and SRAM models: slot reads at their packed offsets, directory
    /// reads mapped above the slot table.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let dir_base = self.words.len() as u64 * 8;
        let mut reference = self.root;
        let mut offset = 0u8;
        loop {
            if reference & LEAF_TAG != 0 {
                let label = reference & !LEAF_TAG;
                return (label != BOT).then(|| NextHop::new(label));
            }
            sink(dir_base + u64::from(reference) * 8, 8);
            let node = self.nodes[reference as usize];
            let stride = ((node >> 32) & 0x1F) as u8;
            let take = stride.min(A::WIDTH - offset);
            let slot = addr.bits(offset, take) << (stride - take);
            let index = (node as u32) as usize + slot as usize;
            sink(index as u64 * 4, 4);
            reference = slot_at(self.words, index);
            offset += take;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    fn spread_trie() -> BinaryTrie<u32> {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(0));
        for i in 0..512u32 {
            trie.insert(Prefix4::new(i << 15, 17), nh(1 + i % 5));
        }
        trie.insert(p("10.1.2.3/32"), nh(9));
        trie
    }

    #[test]
    fn equivalence_with_oracle_uniform() {
        for trie in [fig1_trie(), spread_trie()] {
            let vs = VarStrideDag::from_trie(&trie, VsParams::default());
            for i in 0..4000u32 {
                let addr = i.wrapping_mul(0x9E37_79B9);
                assert_eq!(vs.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
            }
        }
    }

    #[test]
    fn equivalence_with_heat_attached() {
        let trie = spread_trie();
        // Heat concentrated on one /8 block at depth 8.
        let heat: Vec<(u64, u64)> = vec![(0x0A00_0000_0000_0000, 1000), (0x8000_0000_0000_0000, 1)];
        for budget in [1.0, 1.5, f64::INFINITY] {
            let vs = VarStrideDag::from_trie_weighted(
                &trie,
                VsParams {
                    max_stride: 16,
                    budget,
                },
                Some((&heat, 8)),
            );
            for i in 0..4000u32 {
                let addr = i.wrapping_mul(0x9E37_79B9);
                assert_eq!(vs.lookup(addr), trie.lookup(addr), "b={budget} {addr:#x}");
            }
        }
    }

    #[test]
    fn unbounded_uniform_plan_beats_every_fixed_stride() {
        let trie = spread_trie();
        let vs = VarStrideDag::from_trie(
            &trie,
            VsParams {
                max_stride: 12,
                budget: f64::INFINITY,
            },
        );
        let (vs_avg, _) = vs.depth_stats();
        for s in 1..=12u8 {
            let (mb_avg, _) = crate::MultibitDag::from_trie(&trie, s).depth_stats();
            assert!(
                vs_avg <= mb_avg + 1e-9,
                "uniform DP ({vs_avg}) must not lose to fixed stride {s} ({mb_avg})"
            );
        }
    }

    #[test]
    fn heat_shifts_strides_toward_hot_subtree() {
        let trie = spread_trie();
        // All traffic inside 10.0.0.0/8: the DP should spend its slot
        // budget reaching depth-17 leaves (and the /32) fast there, so
        // the expected heat-weighted depth must beat the uniform plan's
        // on that traffic.
        let heat: Vec<(u64, u64)> = vec![(0x0A00_0000_0000_0000, 1_000_000)];
        let params = VsParams {
            max_stride: 16,
            budget: 1.2,
        };
        let uniform = VarStrideDag::from_trie(&trie, params);
        let hot = VarStrideDag::from_trie_weighted(&trie, params, Some((&heat, 8)));
        let probe: Vec<u32> = (0..4096).map(|i| 0x0A00_0000 | (i * 4093)).collect();
        let avg = |vs: &VarStrideDag<u32>| {
            probe
                .iter()
                .map(|&a| f64::from(vs.lookup_with_depth(a).1))
                .sum::<f64>()
                / probe.len() as f64
        };
        assert!(
            avg(&hot) <= avg(&uniform) + 1e-9,
            "heat-placed strides must not walk hot traffic deeper: hot {} uniform {}",
            avg(&hot),
            avg(&uniform)
        );
        for (a, b) in probe.iter().map(|&a| (hot.lookup(a), trie.lookup(a))) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn budget_caps_size() {
        let trie = spread_trie();
        let tight = VarStrideDag::from_trie(
            &trie,
            VsParams {
                max_stride: 16,
                budget: 1.0,
            },
        );
        let loose = VarStrideDag::from_trie(
            &trie,
            VsParams {
                max_stride: 16,
                budget: f64::INFINITY,
            },
        );
        assert!(tight.size_bytes() <= loose.size_bytes());
        // The budget is counted pre-dedup against the fixed stride-4
        // plan, so the deduped structure lands well under it.
        let mb4 = crate::MultibitDag::from_trie(&trie, 4);
        assert!(
            tight.slot_count() as f64 <= 1.0 * forced_mass(&ProperTrie::from_trie(&trie), 4) as f64,
            "tight plan {} exceeds its own budget",
            tight.slot_count()
        );
        let _ = mb4;
    }

    #[test]
    fn max_stride_one_is_binary_dag() {
        let trie = fig1_trie();
        let vs = VarStrideDag::from_trie(
            &trie,
            VsParams {
                max_stride: 1,
                budget: f64::INFINITY,
            },
        );
        let mb = crate::MultibitDag::from_trie(&trie, 1);
        assert_eq!(vs.node_count(), mb.node_count());
        assert_eq!(vs.slot_count(), mb.slot_count());
        let hist = vs.stride_histogram();
        assert_eq!(hist, vec![(1, vs.node_count())]);
    }

    #[test]
    fn empty_fib() {
        let vs = VarStrideDag::from_trie(&BinaryTrie::<u32>::new(), VsParams::default());
        assert_eq!(vs.lookup(42), None);
        assert_eq!(vs.node_count(), 0);
        assert_eq!(vs.size_bytes(), 0);
        assert_eq!(vs.depth_stats(), (0.0, 0));
    }

    #[test]
    fn host_routes_at_full_width() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        trie.insert(p("10.0.0.1/32"), nh(2));
        let vs = VarStrideDag::from_trie(&trie, VsParams::default());
        assert_eq!(vs.lookup(0x0A00_0001), Some(nh(2)));
        assert_eq!(vs.lookup(0x0A00_0002), Some(nh(1)));
    }

    #[test]
    fn batch_and_stream_match_scalar() {
        let trie = spread_trie();
        let vs = VarStrideDag::from_trie(&trie, VsParams::default());
        for n in [0usize, 2, 4, 5, 9, 64, 257] {
            let addrs: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let mut out = vec![None; n];
            vs.lookup_batch(&addrs, &mut out);
            for (a, got) in addrs.iter().zip(&out) {
                assert_eq!(*got, vs.lookup(*a), "batch addr {a:#x}");
            }
            let mut streamed = vec![Some(NextHop::new(u32::MAX - 1)); n + 5];
            vs.lookup_stream(&addrs, &mut streamed);
            for (a, got) in addrs.iter().zip(&streamed) {
                assert_eq!(*got, vs.lookup(*a), "stream addr {a:#x}");
            }
        }
    }

    #[test]
    fn traced_lookup_matches_plain() {
        let trie = spread_trie();
        let vs = VarStrideDag::from_trie(&trie, VsParams::default());
        for addr in [0u32, 0x0A01_0203, 0x8000_0000, u32::MAX] {
            let mut slot_reads = 0u32;
            let traced = vs.lookup_traced(addr, &mut |_, size| {
                if size == 4 {
                    slot_reads += 1;
                }
            });
            assert_eq!(traced, vs.lookup(addr), "addr {addr:#x}");
            let (_, hops) = vs.lookup_with_depth(addr);
            assert_eq!(slot_reads, hops, "addr {addr:#x}");
        }
    }

    #[test]
    fn from_parts_rejects_bad_shapes() {
        let trie = spread_trie();
        let vs = VarStrideDag::from_trie(&trie, VsParams::default());
        let ok = VarStrideDagRef::<u32>::from_parts(
            vs.node_words(),
            vs.slot_words(),
            vs.slot_count(),
            vs.root_ref(),
        );
        assert!(ok.is_ok());
        // Stride out of range.
        let mut bad = vs.node_words().to_vec();
        bad[0] = (bad[0] & 0xFFFF_FFFF) | (31u64 << 32);
        assert!(VarStrideDagRef::<u32>::from_parts(
            &bad,
            vs.slot_words(),
            vs.slot_count(),
            vs.root_ref()
        )
        .is_err());
        // Slot span past the table.
        let mut bad = vs.node_words().to_vec();
        let last = bad.len() - 1;
        bad[last] = (bad[last] & !0xFFFF_FFFFu64) | (vs.slot_count() as u64 - 1);
        assert!(VarStrideDagRef::<u32>::from_parts(
            &bad,
            vs.slot_words(),
            vs.slot_count(),
            vs.root_ref()
        )
        .is_err());
        // Forward (order-breaking) reference: point a low node's slot at
        // the last node.
        if vs.node_count() >= 2 {
            let mut slots = vs.slot_words().to_vec();
            slots[0] = (slots[0] & !0xFFFF_FFFFu64) | (vs.node_count() as u64 - 1);
            assert!(VarStrideDagRef::<u32>::from_parts(
                vs.node_words(),
                &slots,
                vs.slot_count(),
                vs.root_ref()
            )
            .is_err());
        }
    }

    #[test]
    fn ipv6_vsdag() {
        let mut trie: BinaryTrie<u128> = BinaryTrie::new();
        let p1: fib_trie::Prefix6 = "2001:db8::/32".parse().unwrap();
        let p2: fib_trie::Prefix6 = "2001:db8:1::/48".parse().unwrap();
        trie.insert(p1, nh(1));
        trie.insert(p2, nh(2));
        let vs = VarStrideDag::from_trie(&trie, VsParams::default());
        let a: u128 = "2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap().into();
        let b: u128 = "2001:db8:1::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        assert_eq!(vs.lookup(a), Some(nh(1)));
        assert_eq!(vs.lookup(b), Some(nh(2)));
        assert_eq!(vs.lookup(0u128), None);
    }
}
