//! FIB entropy and the FIB information-theoretic lower bound (Section 2).
//!
//! Both are defined on the *leaf-pushed normal form* of the FIB, which is
//! unique per forwarding function:
//!
//! * **Proposition 1** — a proper binary leaf-labeled trie with `n` leaves
//!   over an alphabet of size δ needs at least `I = 2n + n·⌈lg δ⌉` bits,
//! * **Proposition 2** — with leaf-label Shannon entropy `H0`, the
//!   zero-order entropy is `E = 2n + n·H0` bits.
//!
//! (These are the *corrected* constants of the revised technical report;
//! the original SIGCOMM text had `4n` by a tree-counting slip.)

use fib_succinct::{ceil_log2, shannon_entropy};
use fib_trie::{Address, BinaryTrie, ProperTrie};

/// The compressibility metrics of one FIB.
#[derive(Clone, Debug, PartialEq)]
pub struct FibEntropy {
    /// Leaves of the normal form (the paper's `n`).
    pub n_leaves: usize,
    /// Total nodes of the normal form (`t = 2n − 1`).
    pub t_nodes: usize,
    /// Distinct leaf labels, the invalid label ⊥ included when present
    /// (the paper's δ).
    pub delta: usize,
    /// Shannon entropy of the leaf-label distribution in bits/label.
    pub h0: f64,
    /// Leaf-label histogram counts (order unspecified).
    pub label_counts: Vec<u64>,
}

impl FibEntropy {
    /// Computes the metrics from a normal form.
    #[must_use]
    pub fn of_proper<A: Address>(proper: &ProperTrie<A>) -> Self {
        let hist = proper.leaf_label_histogram();
        let label_counts: Vec<u64> = hist.values().copied().collect();
        Self {
            n_leaves: proper.n_leaves(),
            t_nodes: proper.node_count(),
            delta: label_counts.len(),
            h0: shannon_entropy(&label_counts),
            label_counts,
        }
    }

    /// Normalizes `trie` and computes the metrics.
    #[must_use]
    pub fn of_trie<A: Address>(trie: &BinaryTrie<A>) -> Self {
        Self::of_proper(&ProperTrie::from_trie(trie))
    }

    /// The depth-conditioned (first-order, context = trie level) label
    /// entropy in bits: `Σ_levels n_level · H0(level)`, plus the `2n`
    /// structure bits. §3.2 argues XBW-b can reach higher-order entropy
    /// because level order clusters equal-context labels; this quantity is
    /// the corresponding bound, and comparing it with
    /// [`Self::entropy_bits`] *answers the paper's open question* of
    /// whether contextual dependency exists in a given FIB: a gap means
    /// yes.
    #[must_use]
    pub fn contextual_entropy_bits<A: Address>(proper: &ProperTrie<A>) -> f64 {
        use std::collections::BTreeMap;
        let mut per_level: BTreeMap<u8, BTreeMap<Option<fib_trie::NextHop>, u64>> = BTreeMap::new();
        for (depth, node) in proper.bfs_with_depth() {
            if let fib_trie::ProperNode::Leaf(label) = node {
                *per_level
                    .entry(depth)
                    .or_default()
                    .entry(*label)
                    .or_insert(0) += 1;
            }
        }
        let n = proper.n_leaves() as f64;
        let mut label_bits = 0.0;
        for hist in per_level.values() {
            let counts: Vec<u64> = hist.values().copied().collect();
            let level_n: u64 = counts.iter().sum();
            label_bits += level_n as f64 * shannon_entropy(&counts);
        }
        2.0 * n + label_bits
    }

    /// The FIB information-theoretic lower bound `I = 2n + n·⌈lg δ⌉`, bits.
    #[must_use]
    pub fn info_bound_bits(&self) -> f64 {
        let n = self.n_leaves as f64;
        2.0 * n + n * f64::from(ceil_log2(self.delta as u64))
    }

    /// The FIB zero-order entropy `E = 2n + n·H0`, bits.
    #[must_use]
    pub fn entropy_bits(&self) -> f64 {
        let n = self.n_leaves as f64;
        2.0 * n + n * self.h0
    }

    /// `I` in KiB-free kilobytes (the paper reports KBytes = 1000 bytes…
    /// we use binary KBytes = 1024 consistently; EXPERIMENTS.md notes
    /// this).
    #[must_use]
    pub fn info_bound_kbytes(&self) -> f64 {
        self.info_bound_bits() / 8.0 / 1024.0
    }

    /// `E` in kilobytes.
    #[must_use]
    pub fn entropy_kbytes(&self) -> f64 {
        self.entropy_bits() / 8.0 / 1024.0
    }

    /// Compression efficiency ν of a representation of `size_bits`: the
    /// factor between achieved size and the entropy bound (Table 1's ν).
    #[must_use]
    pub fn efficiency(&self, size_bits: f64) -> f64 {
        size_bits / self.entropy_bits()
    }

    /// Bits per prefix (Table 1's η) for a FIB of `n_prefixes` routes.
    #[must_use]
    pub fn bits_per_prefix(size_bits: f64, n_prefixes: usize) -> f64 {
        size_bits / n_prefixes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::{NextHop, Prefix4};

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn fig1_metrics() {
        let e = FibEntropy::of_trie(&fig1_trie());
        assert_eq!(e.n_leaves, 5);
        assert_eq!(e.t_nodes, 9);
        assert_eq!(e.delta, 3);
        // Labels 2,3,2,2,1 → p = (3/5, 1/5, 1/5).
        let expected_h0 = -(0.6f64 * 0.6f64.log2() + 2.0 * 0.2 * 0.2f64.log2());
        assert!((e.h0 - expected_h0).abs() < 1e-12);
        // I = 2·5 + 5·lg 3 = 10 + 10 = 20 bits.
        assert_eq!(e.info_bound_bits(), 20.0);
        // E = 10 + 5·H0 < I since the distribution is skewed.
        assert!(e.entropy_bits() < e.info_bound_bits());
    }

    #[test]
    fn uniform_labels_meet_info_bound() {
        // δ = 2 with a 50/50 split: H0 = 1 = lg δ, so E = I.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/1"), nh(0));
        trie.insert(p("128.0.0.0/1"), nh(1));
        let e = FibEntropy::of_trie(&trie);
        assert_eq!(e.delta, 2);
        assert!((e.entropy_bits() - e.info_bound_bits()).abs() < 1e-12);
    }

    #[test]
    fn single_label_fib_has_zero_entropy() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(7));
        let e = FibEntropy::of_trie(&trie);
        assert_eq!(e.n_leaves, 1);
        assert_eq!(e.delta, 1);
        assert_eq!(e.h0, 0.0);
        assert_eq!(e.entropy_bits(), 2.0);
    }

    #[test]
    fn bottom_counts_as_a_symbol() {
        // Half the space uncovered: ⊥ is half the leaf mass → H0 = 1.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("128.0.0.0/1"), nh(1));
        let e = FibEntropy::of_trie(&trie);
        assert_eq!(e.delta, 2);
        assert!((e.h0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contextual_entropy_never_exceeds_zero_order() {
        // Conditioning cannot increase entropy (within each level the
        // distribution is exact, so Σ n_l·H0(l) ≤ n·H0).
        let trie = fig1_trie();
        let proper = fib_trie::ProperTrie::from_trie(&trie);
        let e = FibEntropy::of_proper(&proper);
        let ctx = FibEntropy::contextual_entropy_bits(&proper);
        assert!(
            ctx <= e.entropy_bits() + 1e-9,
            "{ctx} > {}",
            e.entropy_bits()
        );
    }

    #[test]
    fn contextual_entropy_detects_depth_dependence() {
        // Two depth regimes with disjoint alphabets: /14s alternating
        // {0,1} on the left half, /12s alternating {2,3} on the right.
        // Per level H = 1 bit; globally the four labels mix to H0 ≈ 1.72.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for i in 0..8192u32 {
            trie.insert(Prefix4::new(i << 18, 14), nh(i % 2));
        }
        for j in 0..2048u32 {
            trie.insert(Prefix4::new(0x8000_0000 | (j << 20), 12), nh(2 + j % 2));
        }
        let proper = fib_trie::ProperTrie::from_trie(&trie);
        let e = FibEntropy::of_proper(&proper);
        let ctx = FibEntropy::contextual_entropy_bits(&proper);
        let n = e.n_leaves as f64;
        let ctx_label = ctx - 2.0 * n;
        let global_label = e.entropy_bits() - 2.0 * n;
        assert!(
            ctx_label < 0.8 * global_label,
            "contextual label bits {ctx_label} should be well below zero-order {global_label}"
        );
    }

    #[test]
    fn efficiency_and_bits_per_prefix() {
        let e = FibEntropy::of_trie(&fig1_trie());
        let ebits = e.entropy_bits();
        assert!((e.efficiency(3.0 * ebits) - 3.0).abs() < 1e-12);
        assert!((FibEntropy::bits_per_prefix(600.0, 6) - 100.0).abs() < 1e-12);
    }
}
