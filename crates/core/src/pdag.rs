//! Trie-folding and prefix DAGs (Section 4 of the paper).
//!
//! Trie-folding is a "compressed reinvention" of the prefix tree: below a
//! *leaf-push barrier* λ the trie is normalized (leaf-pushed) and all
//! isomorphic labeled sub-tries are merged — LZ78-style — into a Directed
//! Acyclic Graph, while above λ an ordinary prefix tree is kept so updates
//! stay cheap. Lookup is *exactly* standard trie lookup (Lemma 5, O(W),
//! zero cost over an uncompressed trie); construction is O(t) (Lemma 4);
//! update is O(W + 2^(W−λ)) (Theorem 3); and the folded size meets the
//! information-theoretic bound within a factor 4 (Theorem 1) and the
//! entropy bound within ≈ 6 (Theorem 2) under the barrier choices of
//! `crate::lambda`.
//!
//! # Structure
//!
//! * nodes at depth `< λ` mirror the control FIB exactly: plain, unshared,
//!   labeled tree nodes ("top" nodes);
//! * at depth λ each existing control subtrie is leaf-pushed — with its
//!   root label as the default route, per the paper's `trie_fold` — and
//!   hash-consed bottom-up into the shared region (the *sub-trie index*
//!   `S` and *leaf table* `lp(s)` of Section 4.1 are one interning map
//!   here);
//! * the ⊥ leaf carries no label (the paper's `l(lp(⊥)) ← ∅` line), so a
//!   lookup that lands on it falls back to the last label seen above the
//!   barrier — this is what makes plain trie traversal correct on the DAG.
//!
//! # Update strategy
//!
//! The paper's §4.3 decompresses the DAG path node-by-node and re-folds
//! below the changed prefix. We implement the same-worst-case but simpler
//! variant (see DESIGN.md): an update at depth `p < λ` edits the top tree
//! in O(W); an update at depth `p ≥ λ` re-normalizes the one affected
//! λ-subtrie from the control FIB and re-folds it in O(2^(W−λ)), releasing
//! the old subtrie's references. Both match Theorem 3's bound.

use std::collections::HashMap;
use std::marker::PhantomData;

use fib_succinct::ceil_log2;
use fib_trie::{Address, BinaryTrie, Depth, NextHop, NodeRef, Prefix};

pub(crate) const NONE: u32 = u32::MAX;

/// Interning key of a folded node (the sub-trie id of Definition 1):
/// leaves are identical iff they hold the same label; interior nodes are
/// identical iff their children are the same folded nodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    /// Folded leaf with label index (`NONE` encodes ⊥).
    Leaf(u32),
    /// Folded interior node keyed by its folded children.
    Interior(u32, u32),
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct DagNode {
    pub(crate) left: u32,
    pub(crate) right: u32,
    pub(crate) label: u32,
    /// Reference count; fixed at 1 for top (unshared) nodes.
    refcount: u32,
}

impl DagNode {
    pub(crate) fn is_leaf(self) -> bool {
        self.left == NONE && self.right == NONE
    }
}

/// A FIB compressed by trie-folding.
///
/// Owns a *control FIB* (a plain [`BinaryTrie`], the uncompressed image the
/// paper keeps in control-plane DRAM) that drives updates, plus the folded
/// arena the data plane reads.
#[derive(Clone)]
pub struct PrefixDag<A: Address> {
    pub(crate) nodes: Vec<DagNode>,
    free: Vec<u32>,
    interner: HashMap<Key, u32>,
    pub(crate) root: u32,
    lambda: u8,
    control: BinaryTrie<A>,
    top_count: usize,
    _marker: PhantomData<A>,
}

impl<A: Address> PrefixDag<A> {
    /// Folds `trie` with leaf-push barrier `lambda` (clamped to the address
    /// width). `lambda = 0` folds everything (smallest, slowest updates);
    /// `lambda = W` degenerates to a plain prefix tree.
    #[must_use]
    pub fn from_trie(trie: &BinaryTrie<A>, lambda: u8) -> Self {
        let lambda = lambda.min(A::WIDTH);
        let mut dag = Self {
            nodes: Vec::new(),
            free: Vec::new(),
            interner: HashMap::new(),
            root: NONE,
            lambda,
            control: trie.clone(),
            top_count: 0,
            _marker: PhantomData,
        };
        dag.root = dag.build_top(trie.root(), 0);
        dag
    }

    /// Folds with the barrier of Eq. (3) computed from the FIB's own
    /// normal-form entropy.
    #[must_use]
    pub fn with_entropy_barrier(trie: &BinaryTrie<A>) -> Self {
        let metrics = crate::entropy::FibEntropy::of_trie(trie);
        let lambda = crate::lambda::barrier_entropy(metrics.n_leaves, metrics.h0, A::WIDTH);
        Self::from_trie(trie, lambda)
    }

    /// The leaf-push barrier in use.
    #[must_use]
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// Number of routes (delegates to the control FIB).
    #[must_use]
    pub fn len(&self) -> usize {
        self.control.len()
    }

    /// Whether the FIB holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.control.is_empty()
    }

    /// The control FIB (the uncompressed image of this DAG).
    #[must_use]
    pub fn control(&self) -> &BinaryTrie<A> {
        &self.control
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn alloc(&mut self, node: DagNode) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(node);
            idx
        }
    }

    /// Copies the control structure above the barrier; folds at depth λ.
    fn build_top(&mut self, node: NodeRef<'_, A>, depth: u8) -> u32 {
        if depth == self.lambda {
            return self.fold(Some(node), None, depth);
        }
        let left = node.left().map(|c| self.build_top(c, depth + 1));
        let right = node.right().map(|c| self.build_top(c, depth + 1));
        self.top_count += 1;
        self.alloc(DagNode {
            left: left.unwrap_or(NONE),
            right: right.unwrap_or(NONE),
            label: node.label().map_or(NONE, |nh| nh.index()),
            refcount: 1,
        })
    }

    /// Leaf-pushes and hash-conses the control subtrie at `node` in one
    /// post-order pass (the paper's `leaf_push` + `compress`). `inherited`
    /// is the pushed-down default label (⊥ = `None` at the subtrie root,
    /// matching `trie_fold`'s use of `l(u)` as the default route).
    fn fold(&mut self, node: Option<NodeRef<'_, A>>, inherited: Option<u32>, depth: u8) -> u32 {
        let Some(node) = node else {
            return self.intern_leaf(inherited.unwrap_or(NONE));
        };
        let effective = node.label().map(|nh| nh.index()).or(inherited);
        if node.is_leaf() || depth == A::WIDTH {
            return self.intern_leaf(effective.unwrap_or(NONE));
        }
        let left = self.fold(node.left(), effective, depth + 1);
        let right = self.fold(node.right(), effective, depth + 1);
        // Coalescing (normalization): identical sibling leaves merge into
        // their parent. Interning makes identical leaves *the same node*,
        // so the check is pointer equality.
        if left == right && self.nodes[left as usize].is_leaf() {
            self.release(right); // give back one of our two references
            return left;
        }
        self.intern_interior(left, right)
    }

    fn intern_leaf(&mut self, label: u32) -> u32 {
        if let Some(&existing) = self.interner.get(&Key::Leaf(label)) {
            self.nodes[existing as usize].refcount += 1;
            return existing;
        }
        let idx = self.alloc(DagNode {
            left: NONE,
            right: NONE,
            label,
            refcount: 1,
        });
        self.interner.insert(Key::Leaf(label), idx);
        idx
    }

    /// The paper's `put(i, j, v)`: share an interior node by child ids.
    fn intern_interior(&mut self, left: u32, right: u32) -> u32 {
        if let Some(&existing) = self.interner.get(&Key::Interior(left, right)) {
            self.nodes[existing as usize].refcount += 1;
            // The existing node already owns references to these children;
            // give back the ones acquired while building them.
            self.release(left);
            self.release(right);
            return existing;
        }
        let idx = self.alloc(DagNode {
            left,
            right,
            label: NONE,
            refcount: 1,
        });
        self.interner.insert(Key::Interior(left, right), idx);
        idx
    }

    /// The paper's `get`: drop one reference, freeing (and un-indexing)
    /// the node and its subtree when the count reaches zero.
    fn release(&mut self, idx: u32) {
        let node = self.nodes[idx as usize];
        debug_assert!(node.refcount >= 1, "release of dead node {idx}");
        if node.refcount > 1 {
            self.nodes[idx as usize].refcount -= 1;
            return;
        }
        let key = if node.is_leaf() {
            Key::Leaf(node.label)
        } else {
            Key::Interior(node.left, node.right)
        };
        let removed = self.interner.remove(&key);
        debug_assert_eq!(removed, Some(idx), "interner out of sync at {idx}");
        if !node.is_leaf() {
            self.release(node.left);
            self.release(node.right);
        }
        self.free.push(idx);
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Longest-prefix-match lookup — *standard trie traversal*, remembering
    /// the last label on the path (Lemma 5: O(W), no decompression).
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.lookup_with_depth(addr).0
    }

    /// Lookup that also reports the number of edges traversed.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        let mut idx = self.root;
        let mut last = NONE;
        let mut depth = 0u8;
        loop {
            let node = self.nodes[idx as usize];
            if node.label != NONE {
                last = node.label;
            }
            if depth >= A::WIDTH {
                break;
            }
            let child = if addr.bit(depth) {
                node.right
            } else {
                node.left
            };
            if child == NONE {
                break;
            }
            idx = child;
            depth += 1;
        }
        (
            (last != NONE).then(|| NextHop::new(last)),
            Depth::from(depth),
        )
    }

    // ------------------------------------------------------------------
    // Update (Section 4.3)
    // ------------------------------------------------------------------

    /// Inserts or replaces a route, returning the previous next-hop.
    ///
    /// Cost: O(W) when `prefix.len() < λ`; O(W + 2^(W−λ)) otherwise
    /// (Theorem 3).
    pub fn insert(&mut self, prefix: Prefix<A>, next_hop: NextHop) -> Option<NextHop> {
        let old = self.control.insert(prefix, next_hop);
        if prefix.len() < self.lambda {
            // Shallow update: edit the top tree in place.
            let mut idx = self.root;
            for depth in 0..prefix.len() {
                idx = self.ensure_top_child(idx, prefix.bit(depth));
            }
            self.nodes[idx as usize].label = next_hop.index();
        } else {
            self.refold_portal(prefix);
        }
        old
    }

    /// Removes a route, returning its next-hop if it existed.
    ///
    /// Same complexity as [`Self::insert`].
    pub fn remove(&mut self, prefix: Prefix<A>) -> Option<NextHop> {
        let old = self.control.remove(prefix)?;
        if prefix.len() < self.lambda {
            let mut path = Vec::with_capacity(prefix.len() as usize + 1);
            let mut idx = self.root;
            path.push(idx);
            for depth in 0..prefix.len() {
                idx = self.top_child(idx, prefix.bit(depth));
                debug_assert_ne!(idx, NONE, "top tree out of sync with control FIB");
                path.push(idx);
            }
            self.nodes[idx as usize].label = NONE;
            self.prune_top(&path, prefix);
        } else {
            self.refold_portal(prefix);
        }
        Some(old)
    }

    /// Re-normalizes and re-folds the λ-subtrie on `prefix`'s path after
    /// the control FIB has been modified. Handles appearing and
    /// disappearing portals and prunes the top path when it dies.
    fn refold_portal(&mut self, prefix: Prefix<A>) {
        // `fold` mutates the arena while walking the control trie, so the
        // control is moved out for the duration (it is not touched by any
        // arena operation).
        let control = std::mem::take(&mut self.control);
        self.refold_portal_inner(prefix, &control);
        self.control = control;
    }

    fn refold_portal_inner(&mut self, prefix: Prefix<A>, control: &BinaryTrie<A>) {
        // Locate the control node at depth λ (post-update).
        let mut ctrl = Some(control.root());
        for depth in 0..self.lambda {
            ctrl = ctrl.and_then(|c| {
                if prefix.bit(depth) {
                    c.right()
                } else {
                    c.left()
                }
            });
        }
        if self.lambda == 0 {
            let old = self.root;
            let new_root = if old == NONE {
                self.fold(ctrl, None, 0)
            } else {
                self.refold_path(ctrl, old, 0, prefix, None)
            };
            self.root = new_root;
            if old != NONE {
                self.release(old);
            }
            return;
        }
        // Ensure / walk the top path to the portal's parent.
        let mut path = Vec::with_capacity(self.lambda as usize);
        let mut idx = self.root;
        path.push(idx);
        for depth in 0..self.lambda - 1 {
            idx = self.ensure_top_child(idx, prefix.bit(depth));
            path.push(idx);
        }
        let portal_bit = prefix.bit(self.lambda - 1);
        let old_portal = self.top_child(idx, portal_bit);
        let new_portal = match ctrl {
            Some(node) if old_portal != NONE => {
                self.refold_path(Some(node), old_portal, self.lambda, prefix, None)
            }
            Some(node) => self.fold(Some(node), None, self.lambda),
            None => NONE,
        };
        self.set_top_child(idx, portal_bit, new_portal);
        if old_portal != NONE {
            self.release(old_portal);
        }
        if new_portal == NONE {
            self.prune_top(&path, prefix);
        }
    }

    /// The paper's §4.3 update path, sharing-aware: rebuilds only the
    /// nodes on `prefix`'s path between the barrier and the changed depth,
    /// re-using the *sibling* folds of the old DAG verbatim (they are
    /// unchanged by construction), and re-normalizes just the subtree below
    /// the changed prefix. Common-case cost is O(W + 2^(W−p)) for an update
    /// at depth p — tiny for the long prefixes that dominate BGP churn —
    /// with Theorem 3's O(W + 2^(W−λ)) as the worst case.
    ///
    /// Returns a new folded reference holding one acquired reference; the
    /// caller must release the old portal afterwards (which cascades down
    /// the old path, balancing the sibling references acquired here).
    fn refold_path(
        &mut self,
        ctrl: Option<NodeRef<'_, A>>,
        old: u32,
        depth: u8,
        prefix: Prefix<A>,
        inherited: Option<u32>,
    ) -> u32 {
        let reached_change = depth >= prefix.len();
        let ctrl_ends = ctrl.is_none_or(|n| n.is_leaf()) || depth == A::WIDTH;
        let old_is_leaf = self.nodes[old as usize].is_leaf();
        if reached_change || ctrl_ends || old_is_leaf {
            // Everything below here must be re-normalized from the control
            // FIB (or the old fold coalesced and offers nothing to share).
            return self.fold(ctrl, inherited, depth);
        }
        let node = ctrl.expect("checked non-leaf control node");
        let effective = node.label().map(|nh| nh.index()).or(inherited);
        let bit = prefix.bit(depth);
        let old_node = self.nodes[old as usize];
        let (old_follow, old_other) = if bit {
            (old_node.right, old_node.left)
        } else {
            (old_node.left, old_node.right)
        };
        let follow_ctrl = if bit { node.right() } else { node.left() };
        let new_follow = self.refold_path(follow_ctrl, old_follow, depth + 1, prefix, effective);
        // The sibling subtrie is untouched by this update, so its fold is
        // identical — acquire a reference instead of re-folding.
        self.nodes[old_other as usize].refcount += 1;
        let (left, right) = if bit {
            (old_other, new_follow)
        } else {
            (new_follow, old_other)
        };
        if left == right && self.nodes[left as usize].is_leaf() {
            self.release(right);
            return left;
        }
        self.intern_interior(left, right)
    }

    /// Removes label-less, childless top nodes along `path` bottom-up,
    /// mirroring the control FIB's own pruning. `path[d]` is the node at
    /// depth `d`; the root survives unconditionally.
    fn prune_top(&mut self, path: &[u32], prefix: Prefix<A>) {
        for depth in (1..path.len()).rev() {
            let idx = path[depth];
            let node = self.nodes[idx as usize];
            if node.left == NONE && node.right == NONE && node.label == NONE {
                let parent = path[depth - 1];
                self.set_top_child(parent, prefix.bit(depth as u8 - 1), NONE);
                self.free.push(idx);
                self.top_count -= 1;
            } else {
                break;
            }
        }
    }

    fn top_child(&self, idx: u32, bit: bool) -> u32 {
        let node = self.nodes[idx as usize];
        if bit {
            node.right
        } else {
            node.left
        }
    }

    fn set_top_child(&mut self, idx: u32, bit: bool, child: u32) {
        if bit {
            self.nodes[idx as usize].right = child;
        } else {
            self.nodes[idx as usize].left = child;
        }
    }

    fn ensure_top_child(&mut self, idx: u32, bit: bool) -> u32 {
        let child = self.top_child(idx, bit);
        if child != NONE {
            return child;
        }
        let new = self.alloc(DagNode {
            left: NONE,
            right: NONE,
            label: NONE,
            refcount: 1,
        });
        self.top_count += 1;
        self.set_top_child(idx, bit, new);
        new
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Structure counters.
    #[must_use]
    pub fn stats(&self) -> DagStats {
        let folded_leaves = self
            .interner
            .keys()
            .filter(|k| matches!(k, Key::Leaf(_)))
            .count();
        let folded_interior = self.interner.len() - folded_leaves;
        DagStats {
            lambda: self.lambda,
            top_nodes: self.top_count,
            folded_interior,
            folded_leaves,
            live_nodes: self.top_count + self.interner.len(),
        }
    }

    /// Distinct labels stored anywhere in the DAG (top labels plus folded
    /// leaf labels, ⊥ excluded) — the δ of the size model.
    #[must_use]
    pub fn distinct_labels(&self) -> usize {
        let mut labels: Vec<u32> = self
            .nodes_live()
            .filter_map(|n| (n.label != NONE).then_some(n.label))
            .collect(); // fibcheck: allow(hot-path): control-plane statistics; reached through a name-collision edge, not the lookup walk
        labels.sort_unstable();
        labels.dedup();
        labels.len()
    }

    fn nodes_live(&self) -> impl Iterator<Item = DagNode> + '_ {
        // Live nodes = reachable; free slots keep stale bits, so walk.
        let mut seen = vec![false; self.nodes.len()]; // fibcheck: allow(hot-path): control-plane statistics; reached through a name-collision edge, not the lookup walk
        let mut stack = Vec::new();
        if self.root != NONE {
            stack.push(self.root);
            seen[self.root as usize] = true;
        }
        let mut out = Vec::new();
        while let Some(idx) = stack.pop() {
            let node = self.nodes[idx as usize];
            out.push(node);
            for child in [node.left, node.right] {
                if child != NONE && !seen[child as usize] {
                    seen[child as usize] = true;
                    stack.push(child);
                }
            }
        }
        out.into_iter()
    }

    /// Storage size in bits under the paper's §4.2 memory model: nodes
    /// above the barrier hold one node pointer plus a `lg δ` label index;
    /// folded interior nodes hold two pointers; coalesced leaves cost
    /// `δ·lg δ` bits in total. Pointers are `⌈lg(live nodes)⌉` bits.
    #[must_use]
    pub fn model_size_bits(&self) -> usize {
        let s = self.stats();
        let delta = self.distinct_labels().max(1) as u64;
        let ptr = ceil_log2(s.live_nodes as u64).max(1) as usize;
        let lg_delta = ceil_log2(delta) as usize;
        s.top_nodes * (ptr + lg_delta) + s.folded_interior * 2 * ptr + delta as usize * lg_delta
    }

    /// Actual arena footprint in bytes (live slots only; 16 bytes each).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        (self.nodes.len() - self.free.len()) * std::mem::size_of::<DagNode>()
    }

    /// Fraction of arena slots sitting on the free list, in `[0, 1]`.
    ///
    /// A freshly folded DAG is fully compact (0.0); λ-barrier updates
    /// recycle slots but leave holes behind, so locality of the data-plane
    /// walk degrades as churn accumulates. A control plane watches this
    /// number and schedules a compacting rebuild when it crosses a
    /// threshold — the snapshot/re-emit lifecycle of the paper's §5.
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            self.free.len() as f64 / self.nodes.len() as f64
        }
    }

    /// Verifies internal consistency: reference counts match in-degrees,
    /// the interner indexes exactly the folded region, and every folded
    /// interior has two children. Test/diagnostic use.
    ///
    /// # Panics
    /// Panics if an invariant is broken.
    pub fn assert_invariants(&self) {
        // Count in-edges of every folded node.
        let mut indegree: HashMap<u32, u32> = HashMap::new();
        let mut stack = vec![(self.root, 0u8)];
        if self.root == NONE {
            assert!(
                self.lambda == 0,
                "only λ=0 may have a NONE root transiently"
            );
            return;
        }
        let mut visited_top = 0usize;
        while let Some((idx, depth)) = stack.pop() {
            let node = self.nodes[idx as usize];
            let folded = depth >= self.lambda;
            if !folded {
                visited_top += 1;
            }
            for child in [node.left, node.right] {
                if child == NONE {
                    continue;
                }
                if depth + 1 >= self.lambda {
                    let entry = indegree.entry(child).or_insert(0);
                    *entry += 1;
                    // Recurse into a folded node only on first sight.
                    if *entry == 1 {
                        stack.push((child, depth + 1));
                    }
                } else {
                    stack.push((child, depth + 1));
                }
            }
            if folded && !node.is_leaf() {
                assert!(
                    node.left != NONE && node.right != NONE,
                    "folded interior missing child"
                );
            }
        }
        assert_eq!(visited_top, self.top_count, "top node count out of sync");
        for &idx in self.interner.values() {
            let node = self.nodes[idx as usize];
            let mut expected = indegree.get(&idx).copied().unwrap_or(0);
            if idx == self.root {
                // The λ=0 root portal is held by the root handle itself.
                expected += 1;
            }
            assert_eq!(
                node.refcount, expected,
                "refcount mismatch at folded node {idx}: {} vs in-degree {expected}",
                node.refcount
            );
        }
        assert_eq!(
            indegree.len() + usize::from(self.lambda == 0),
            self.interner.len(),
            "interner size does not match reachable folded nodes"
        );
    }

    /// Serializes the DAG as a compact packed word image: reachable nodes
    /// are renumbered in BFS order (dropping free-list holes and the
    /// refcounts the read-only data plane never needs) into two words per
    /// node — `left | right << 32` and the label. Returns the words and
    /// the remapped root index.
    ///
    /// Shared folded nodes are emitted once; the sharing survives because
    /// the remap is by node identity.
    #[must_use]
    pub fn write_packed(&self) -> (Vec<u64>, u32) {
        if self.root == NONE {
            return (Vec::new(), NONE);
        }
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut order: Vec<u32> = Vec::new();
        let mut queue = std::collections::VecDeque::from([self.root]);
        remap.insert(self.root, 0);
        order.push(self.root);
        while let Some(idx) = queue.pop_front() {
            let node = self.nodes[idx as usize];
            for child in [node.left, node.right] {
                if child != NONE && !remap.contains_key(&child) {
                    remap.insert(child, order.len() as u32);
                    order.push(child);
                    queue.push_back(child);
                }
            }
        }
        let mut words = Vec::with_capacity(order.len() * 2);
        for &idx in &order {
            let node = self.nodes[idx as usize];
            let left = node.left;
            let right = node.right;
            let ml = if left == NONE { NONE } else { remap[&left] };
            let mr = if right == NONE { NONE } else { remap[&right] };
            words.push(u64::from(ml) | (u64::from(mr) << 32));
            words.push(u64::from(node.label));
        }
        (words, 0)
    }
}

/// Borrowed zero-copy view of a packed [`PrefixDag`] image: plain trie
/// traversal with label fall-through over two-word node records
/// (`left | right << 32`, `label`).
#[derive(Clone, Copy, Debug)]
pub struct PrefixDagRef<'a, A: Address> {
    words: &'a [u64],
    root: u32,
    _marker: PhantomData<A>,
}

impl<'a, A: Address> PrefixDagRef<'a, A> {
    /// Assembles a view over packed node words, validating that every
    /// child reference resolves inside the arena. (The walk terminates on
    /// any input because it consumes one address bit per hop, W at most.)
    ///
    /// # Errors
    /// A static message naming the structural violation.
    pub fn from_parts(words: &'a [u64], root: u32) -> Result<Self, &'static str> {
        let view = Self::from_parts_trusted(words, root)?;
        let n_nodes = words.len() / 2;
        for i in 0..n_nodes {
            let children = words[2 * i];
            for child in [children as u32, (children >> 32) as u32] {
                if child != NONE && child as usize >= n_nodes {
                    return Err("pdag child out of range");
                }
            }
        }
        Ok(view)
    }

    /// [`Self::from_parts`] minus the O(n) child scan — only for words
    /// that already passed a full validation (a loaded image is
    /// immutable, so one scan covers its lifetime). The walk is
    /// depth-bounded by `A::WIDTH` either way.
    pub fn from_parts_trusted(words: &'a [u64], root: u32) -> Result<Self, &'static str> {
        if words.len() % 2 != 0 {
            return Err("pdag image word count is odd");
        }
        if root != NONE && root as usize >= words.len() / 2 {
            return Err("pdag root out of range");
        }
        Ok(Self {
            words,
            root,
            _marker: PhantomData,
        })
    }

    /// The pointer range of the borrowed words, for zero-copy assertions
    /// in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// Image footprint in bytes (16 per node).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Longest-prefix-match lookup — the same standard trie traversal as
    /// [`PrefixDag::lookup`] (Lemma 5), over the packed image.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        if self.root == NONE {
            return None;
        }
        let mut idx = self.root;
        let mut last = NONE;
        let mut depth = 0u8;
        loop {
            let children = self.words[2 * idx as usize];
            let label = self.words[2 * idx as usize + 1] as u32;
            if label != NONE {
                last = label;
            }
            if depth >= A::WIDTH {
                break;
            }
            let child = if addr.bit(depth) {
                (children >> 32) as u32
            } else {
                children as u32
            };
            if child == NONE {
                break;
            }
            idx = child;
            depth += 1;
        }
        (last != NONE).then(|| NextHop::new(last))
    }
}

/// Structure counters of a [`PrefixDag`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DagStats {
    /// Barrier the DAG was folded with.
    pub lambda: u8,
    /// Unshared nodes above the barrier.
    pub top_nodes: usize,
    /// Distinct folded interior nodes.
    pub folded_interior: usize,
    /// Distinct folded leaves (≤ δ + 1).
    pub folded_leaves: usize,
    /// Total live nodes.
    pub live_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    fn assert_equivalent(trie: &BinaryTrie<u32>, dag: &PrefixDag<u32>, samples: u32) {
        for i in 0..samples {
            let addr = i.wrapping_mul(0x9E37_79B9) ^ (i >> 3);
            assert_eq!(dag.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
        }
        for top in 0..=255u32 {
            let addr = top << 24 | 0xABCDE;
            assert_eq!(dag.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn equivalence_across_all_barriers() {
        let trie = fig1_trie();
        for lambda in 0..=32u8 {
            let dag = PrefixDag::from_trie(&trie, lambda);
            dag.assert_invariants();
            assert_equivalent(&trie, &dag, 1000);
        }
    }

    #[test]
    fn lambda_zero_is_fully_folded() {
        let trie = fig1_trie();
        let dag = PrefixDag::from_trie(&trie, 0);
        let stats = dag.stats();
        assert_eq!(stats.top_nodes, 0);
        // Normal form has 9 nodes / 5 leaves over 3 distinct labels.
        // Folding shares the three duplicate "2" leaves into one node; the
        // 4 interiors are structurally distinct here and stay.
        assert_eq!(stats.folded_leaves, 3);
        assert_eq!(stats.folded_interior, 4);
        assert_eq!(stats.live_nodes, 7, "9-node normal form folds to 7");
    }

    #[test]
    fn lambda_w_is_a_plain_trie() {
        let trie = fig1_trie();
        let dag = PrefixDag::from_trie(&trie, 32);
        let stats = dag.stats();
        // Nothing reaches depth 32, so nothing folds.
        assert_eq!(stats.folded_interior + stats.folded_leaves, 0);
        assert_eq!(stats.top_nodes, trie.node_count());
        assert_equivalent(&trie, &dag, 500);
    }

    #[test]
    fn identical_subtries_fold_together() {
        // Two /8s with identical interior structure: the λ=8 DAG must share
        // one folded subtrie between them.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for base in [10u32, 20] {
            trie.insert(Prefix4::new(base << 24, 8), nh(1));
            trie.insert(Prefix4::new(base << 24 | 0x0080_0000, 9), nh(2));
            trie.insert(Prefix4::new(base << 24 | 0x00C0_0000, 10), nh(3));
        }
        let dag = PrefixDag::from_trie(&trie, 8);
        dag.assert_invariants();
        assert_equivalent(&trie, &dag, 2000);
        // A lone copy of the same subtrie for comparison:
        let mut single: BinaryTrie<u32> = BinaryTrie::new();
        single.insert(Prefix4::new(10 << 24, 8), nh(1));
        single.insert(Prefix4::new(10 << 24 | 0x0080_0000, 9), nh(2));
        single.insert(Prefix4::new(10 << 24 | 0x00C0_0000, 10), nh(3));
        let sdag = PrefixDag::from_trie(&single, 8);
        let (d, s) = (dag.stats(), sdag.stats());
        assert_eq!(
            d.folded_interior, s.folded_interior,
            "two identical subtries must not add folded interiors"
        );
    }

    #[test]
    fn empty_fib() {
        let trie: BinaryTrie<u32> = BinaryTrie::new();
        for lambda in [0u8, 4, 11, 32] {
            let dag = PrefixDag::from_trie(&trie, lambda);
            assert_eq!(dag.lookup(0), None);
            assert_eq!(dag.lookup(u32::MAX), None);
            assert!(dag.is_empty());
        }
    }

    #[test]
    fn insert_below_barrier_is_shallow() {
        let mut dag = PrefixDag::from_trie(&fig1_trie(), 11);
        let before = dag.stats().folded_interior;
        assert_eq!(dag.insert(p("0.0.0.0/4"), nh(9)), None);
        dag.assert_invariants();
        assert_eq!(dag.stats().folded_interior, before, "no folding below λ");
        assert_eq!(dag.lookup(0x0800_0000 >> 1), Some(nh(9)));
        assert_eq!(dag.control().lookup(0x0400_0000), dag.lookup(0x0400_0000));
    }

    #[test]
    fn insert_above_barrier_refolds_one_subtrie() {
        let mut trie = fig1_trie();
        let mut dag = PrefixDag::from_trie(&trie, 4);
        // Insert a /24 (deep below λ=4).
        let prefix = p("10.1.2.0/24");
        trie.insert(prefix, nh(7));
        assert_eq!(dag.insert(prefix, nh(7)), None);
        dag.assert_invariants();
        assert_equivalent(&trie, &dag, 3000);
        assert_eq!(
            dag.lookup(u32::from(std::net::Ipv4Addr::new(10, 1, 2, 99))),
            Some(nh(7))
        );
    }

    #[test]
    fn remove_restores_previous_state_counts() {
        let trie = fig1_trie();
        let mut dag = PrefixDag::from_trie(&trie, 4);
        let baseline = dag.stats();
        let prefix = p("10.1.2.0/24");
        dag.insert(prefix, nh(7));
        assert_ne!(dag.stats(), baseline);
        assert_eq!(dag.remove(prefix), Some(nh(7)));
        dag.assert_invariants();
        assert_eq!(dag.stats(), baseline, "fold state must return to baseline");
        assert_equivalent(&trie, &dag, 1000);
    }

    #[test]
    fn update_default_route_with_barrier_is_cheap_and_correct() {
        // The paper's motivating case: rewriting the default route must not
        // touch the folded region when λ > 0.
        let mut dag = PrefixDag::from_trie(&fig1_trie(), 11);
        let folded_before = dag.stats().folded_interior;
        dag.insert(p("0.0.0.0/0"), nh(5));
        assert_eq!(dag.stats().folded_interior, folded_before);
        assert_eq!(dag.lookup(0xF000_0000), Some(nh(5)));
        // Under λ=0 the same update refolds but stays correct.
        let mut dag0 = PrefixDag::from_trie(&fig1_trie(), 0);
        dag0.insert(p("0.0.0.0/0"), nh(5));
        dag0.assert_invariants();
        assert_eq!(dag0.lookup(0xF000_0000), Some(nh(5)));
    }

    #[test]
    fn churn_keeps_equivalence_with_control() {
        // Pseudo-random insert/remove storm, checked against the control
        // trie (which is itself differentially tested against RouteTable).
        let mut dag = PrefixDag::from_trie(&fig1_trie(), 8);
        let mut x: u64 = 0xC0FF_EE11_D00D_F00D;
        let mut live: Vec<Prefix4> = Vec::new();
        for round in 0u32..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !x.is_multiple_of(3) || live.is_empty() {
                let prefix = Prefix4::new((x >> 32) as u32, (x % 33) as u8);
                dag.insert(prefix, nh((x % 9) as u32));
                live.push(prefix);
            } else {
                let victim = live.swap_remove((x as usize) % live.len());
                dag.remove(victim);
            }
            if round.is_multiple_of(97) {
                dag.assert_invariants();
            }
        }
        dag.assert_invariants();
        let control = dag.control().clone();
        assert_equivalent(&control, &dag, 5000);
    }

    #[test]
    fn removing_last_route_under_a_portal_prunes_the_path() {
        let mut dag = PrefixDag::from_trie(&BinaryTrie::new(), 8);
        let prefix = p("10.1.0.0/16");
        dag.insert(prefix, nh(1));
        assert!(dag.stats().live_nodes > 1);
        dag.remove(prefix);
        dag.assert_invariants();
        let stats = dag.stats();
        assert_eq!(stats.top_nodes, 1, "only the root remains: {stats:?}");
        assert_eq!(stats.folded_interior + stats.folded_leaves, 0);
    }

    #[test]
    fn model_size_shrinks_with_smaller_lambda() {
        // More folding (smaller λ) must never increase the folded model
        // size on a FIB with shared structure.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for i in 0..512u32 {
            trie.insert(Prefix4::new(i << 23, 9), nh(i % 2));
            trie.insert(Prefix4::new(i << 23 | (1 << 22), 10), nh(1 - i % 2));
        }
        let big = PrefixDag::from_trie(&trie, 16).model_size_bits();
        let small = PrefixDag::from_trie(&trie, 4).model_size_bits();
        assert!(small < big, "λ=4: {small} bits, λ=16: {big} bits");
    }

    #[test]
    fn ipv6_folding_works() {
        let mut trie: BinaryTrie<u128> = BinaryTrie::new();
        let p1: fib_trie::Prefix6 = "2001:db8::/32".parse().unwrap();
        let p2: fib_trie::Prefix6 = "2001:db8:8000::/33".parse().unwrap();
        trie.insert(p1, nh(1));
        trie.insert(p2, nh(2));
        let mut dag = PrefixDag::from_trie(&trie, 16);
        dag.assert_invariants();
        let a: u128 = "2001:db8:8000::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        assert_eq!(dag.lookup(a), Some(nh(2)));
        let p3: fib_trie::Prefix6 = "2001:db8:8000::/48".parse().unwrap();
        dag.insert(p3, nh(3));
        let b: u128 = "2001:db8:8000::2"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        assert_eq!(dag.lookup(b), Some(nh(3)));
    }
}
