//! The paper's contribution: entropy-bounded FIB compression.
//!
//! This crate implements everything Sections 2–4 of *Compressing IP
//! Forwarding Tables: Towards Entropy Bounds and Beyond* (SIGCOMM 2013,
//! revised technical report) define:
//!
//! * [`FibEntropy`] — the FIB information-theoretic lower bound
//!   `I = 2n + n·lg δ` and FIB entropy `E = 2n + n·H0` on the leaf-pushed
//!   normal form (Propositions 1 and 2),
//! * [`XbwFib`] — the XBW-b transform: a succinct/entropy-compressed
//!   static FIB with O(W) lookup on the compressed form (Lemmas 1–3),
//! * [`PrefixDag`] — trie-folding: the pointer-machine prefix DAG with a
//!   leaf-push barrier λ, O(W) lookup (Lemma 5), O(t) construction
//!   (Lemma 4), O(W + 2^(W−λ)) updates (Theorem 3) and compact/entropy
//!   size bounds (Theorems 1 and 2),
//! * [`SerializedDag`] — the flat λ-collapsed image consumed by the
//!   kernel-module and FPGA engines of Section 5,
//! * [`FoldedString`] — trie-folding as a dynamic compressed string
//!   self-index (the string model of §4.2, Figs. 4 and 7),
//! * [`lambda`] — the Lambert-W barrier selection of Eqs. (2) and (3),
//! * the engine trait family — [`FibLookup`] (single + batched lookup,
//!   traced lookup), [`FibBuild`] (uniform construction from the control
//!   FIB under a [`BuildConfig`]), [`FibUpdate`] (incremental updates with
//!   a [`RebuildNeeded`] escape hatch), and the [`FibEngine`] umbrella
//!   supertrait that keeps pre-split call sites compiling. The `fib-router`
//!   crate composes these into a control/data-plane router with epoch
//!   snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod entropy;
pub mod hot;
pub mod image;
pub mod lambda;
pub mod lint;
mod multibit;
mod pdag;
mod serialized;
mod strmodel;
pub mod vrf;
mod vsdag;
mod xbw;

pub use engine::{BuildConfig, FibBuild, FibEngine, FibLookup, FibUpdate, RebuildNeeded};
pub use entropy::FibEntropy;
pub use hot::{
    depth_mass_from_heat, hot_key, slab_batch, HotConfig, HotFib, HotSlab, HotSlabRef, HotStats,
};
pub use image::{
    any_view, hot_any_view, load_image, write_image, write_image_file, write_image_hot, AnyView,
    EngineKind, FibImage, HotAnyView, ImageCodec, ImageError, ImageWriter,
};
pub use multibit::{MultibitDag, MultibitDagRef, MB_BATCH_LANES};
pub use pdag::{DagStats, PrefixDag, PrefixDagRef};
pub use serialized::{SerializedDag, SerializedDagRef, SER_BATCH_LANES, SER_REFILL_LANES};
pub use strmodel::FoldedString;
pub use vrf::{
    compile_vrf_set, vrf_section_base, write_vrf_image, CompiledVrf, CompiledVrfSet, CostModel,
    VrfEngineChoice, VrfEngineRef, VrfPolicy, VrfSetRef, VrfSetStats, VrfTable, VrfTableRef,
    VRF_DIR_RECORD_WORDS,
};
pub use vsdag::{VarStrideDag, VarStrideDagRef, VsParams, VS_BATCH_LANES, VS_REFILL_LANES};
pub use xbw::{
    SaStorage, SiStorage, XbwFib, XbwFibRef, XbwSizeReport, XbwStorage, XBW_BATCH_LANES,
};
