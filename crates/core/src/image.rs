//! `fibimage/v1` — the versioned, sectioned on-disk format for compiled
//! FIBs, with zero-copy load.
//!
//! The paper's whole point is that a compressed FIB is a *flat string of
//! bits*: the revised technical report ships the serialized prefix DAG
//! directly into SRAM, and the pDAG memory-bounds work treats the encoded
//! image as the deliverable. This module makes that the system's shape:
//! every Table 2 engine serializes into one image file, and loading an
//! image **borrows** the engine's words straight out of the single aligned
//! read buffer — no per-section copies, no rebuild from the control trie.
//!
//! # Format
//!
//! Everything is little-endian `u64` words; the file length is a multiple
//! of 64 bytes and every section starts on a 64-byte boundary, so
//! cache-line layouts (the interleaved rank lines of
//! [`fib_succinct::RsBitVec`]) keep their alignment guarantees when
//! served from a loaded buffer:
//!
//! ```text
//! word 0      magic "FIBIMG1\0"
//! word 1      version u16 | family u8 << 16 | engine u8 << 24
//!             | section-count u32 << 32
//! word 2      route count (control-FIB routes at write time)
//! word 3      epoch (router snapshot counter; 0 for standalone images)
//! word 4      total file length in words
//! word 5      engine resident size_bytes claim (inspect cross-checks it)
//! word 6      prefix count (normal-form leaves; 0 when not applicable)
//! word 7      FNV-1a checksum of the whole file with this word zeroed
//! then        section table: 2 words per section, padded to a block —
//!               word 0: section id (u32)
//!               word 1: offset in words (u32) | length in words (u32 << 32)
//! then        section payloads, each padded to a 64-byte boundary
//! ```
//!
//! Engines store their structural parameters in a [`sections::PARAMS`]
//! section and their payload words in engine-specific sections; an
//! optional [`sections::ROUTES`] section carries the control FIB's routes
//! (3 words per route) so a router can warm-restart from the image alone.
//!
//! # Zero-copy discipline
//!
//! [`FibImage::from_bytes`] performs exactly one copy: decoding the file
//! bytes into a 64-byte-aligned [`Arena`]. Everything after that —
//! [`FibImage::section`], [`ImageCodec::view`], [`any_view`] — hands out
//! `&[u64]` sub-slices of that arena. The `images` integration tests
//! assert this with pointer-range checks.

use std::path::Path;

use fib_succinct::{fnv1a, fnv1a_continue, Arena, StorageError};
use fib_trie::{Address, BinaryTrie, LcTrie, LcTrieRef, NextHop, Prefix};

use crate::multibit::{MultibitDag, MultibitDagRef};
use crate::pdag::{PrefixDag, PrefixDagRef};
use crate::serialized::{SerializedDag, SerializedDagRef};
use crate::vsdag::{VarStrideDag, VarStrideDagRef};
use crate::xbw::{XbwFib, XbwFibRef};
use crate::FibLookup;

/// Magic word: the bytes `FIBIMG1\0` read as a little-endian `u64`.
pub const MAGIC: u64 = u64::from_le_bytes(*b"FIBIMG1\0");
/// Current format version.
pub const VERSION: u16 = 1;

/// Section identifiers of `fibimage/v1`.
pub mod sections {
    /// Engine-specific structural parameters.
    pub const PARAMS: u32 = 0x01;
    /// Control-FIB routes (3 words per route), optional.
    pub const ROUTES: u32 = 0x02;
    /// XBW-b shape string `S_I`.
    pub const XBW_SI: u32 = 0x10;
    /// XBW-b label string `S_α`.
    pub const XBW_SA: u32 = 0x11;
    /// XBW-b symbol → next-hop table.
    pub const XBW_LABELS: u32 = 0x12;
    /// Prefix-DAG packed node records.
    pub const PDAG_NODES: u32 = 0x20;
    /// Serialized-DAG root entries.
    pub const SER_ENTRIES: u32 = 0x30;
    /// Serialized-DAG interior records.
    pub const SER_NODES: u32 = 0x31;
    /// Multibit-DAG packed slot arrays.
    pub const MB_SLOTS: u32 = 0x40;
    /// Variable-stride DAG node directory (`stride << 32 | slot_base`
    /// per supernode).
    pub const VS_NODES: u32 = 0x41;
    /// Variable-stride DAG packed slot arrays (same tagged-u32 encoding
    /// as [`MB_SLOTS`]).
    pub const VS_SLOTS: u32 = 0x42;
    /// LC-trie packed nodes.
    pub const LC_NODES: u32 = 0x50;
    /// Optional traffic-aware hot slab (any engine): meta block + slot
    /// words, see [`crate::hot::HotSlab::write_words`].
    pub const HOT_SLAB: u32 = 0x60;
    /// Multi-tenant VRF directory: `[table_count]` then 4 words per VRF
    /// (`id | engine << 32`, root-or-section-base, route count, reachable
    /// node count). See [`crate::vrf`].
    pub const VRF_DIR: u32 = 0x70;
    /// The shared hash-consed VRF arena: packed pDAG node records
    /// (identical format to [`PDAG_NODES`]), one arena serving every
    /// shared-placement table through its own root.
    pub const VRF_PDAG: u32 = 0x71;
    /// Base id for per-VRF dedicated-engine sections: table at directory
    /// index `i` owns ids `VRF_TABLE_BASE + i·VRF_TABLE_STRIDE ..+ STRIDE`
    /// (slot 0 = params, slots 1.. = the engine's payload sections in
    /// their canonical order).
    pub const VRF_TABLE_BASE: u32 = 0x1000;
    /// Section-id stride per VRF table (see [`VRF_TABLE_BASE`]).
    pub const VRF_TABLE_STRIDE: u32 = 8;
}

const BLOCK_WORDS: usize = 8;

/// The engine a FIB image encodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EngineKind {
    /// XBW-b (`S_I` plain or RRR, `S_α` packed or wavelet).
    Xbw = 1,
    /// Pointer-machine prefix DAG, compacted.
    PrefixDag = 2,
    /// λ-collapsed serialized DAG.
    SerializedDag = 3,
    /// Stride-`s` multibit DAG.
    MultibitDag = 4,
    /// Level-compressed trie.
    LcTrie = 5,
    /// Multi-tenant VRF set: one shared hash-consed pDAG arena plus
    /// per-table dedicated engines, keyed by VRF id (see [`crate::vrf`]).
    VrfSet = 6,
    /// Traffic-weighted variable-stride multibit DAG.
    VsDag = 7,
}

impl EngineKind {
    /// Decodes the header byte.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(Self::Xbw),
            2 => Some(Self::PrefixDag),
            3 => Some(Self::SerializedDag),
            4 => Some(Self::MultibitDag),
            5 => Some(Self::LcTrie),
            6 => Some(Self::VrfSet),
            7 => Some(Self::VsDag),
            _ => None,
        }
    }

    /// Stable lower-case name (accepted by `fibc --engine`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Xbw => "xbw",
            Self::PrefixDag => "pdag",
            Self::SerializedDag => "serialized",
            Self::MultibitDag => "multibit",
            Self::LcTrie => "lctrie",
            Self::VrfSet => "vrfset",
            Self::VsDag => "vsdag",
        }
    }

    /// Parses [`Self::name`].
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "xbw" => Some(Self::Xbw),
            "pdag" => Some(Self::PrefixDag),
            "serialized" => Some(Self::SerializedDag),
            "multibit" => Some(Self::MultibitDag),
            "lctrie" => Some(Self::LcTrie),
            "vrfset" => Some(Self::VrfSet),
            "vsdag" => Some(Self::VsDag),
            _ => None,
        }
    }
}

/// Address family byte of the header.
fn family_of<A: Address>() -> u8 {
    if A::WIDTH == 32 {
        4
    } else {
        6
    }
}

/// Error loading or validating a FIB image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImageError {
    /// Filesystem failure (message carries the OS error).
    Io(String),
    /// Fewer bytes than the header demands, or a length field pointing
    /// past the end.
    Truncated,
    /// The magic word is not `FIBIMG1\0`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The image was compiled for a different address family.
    FamilyMismatch {
        /// Family recorded in the image (4 or 6).
        image: u8,
        /// Family of the requested address type.
        expected: u8,
    },
    /// The image encodes a different engine than requested.
    EngineMismatch {
        /// Engine id recorded in the image.
        image: u8,
        /// Engine id the caller asked for.
        expected: u8,
    },
    /// Unknown engine id in the header.
    UnknownEngine(u8),
    /// FNV-1a checksum over the file does not match.
    ChecksumMismatch,
    /// A section the engine requires is absent.
    MissingSection(u32),
    /// Structurally invalid contents.
    Malformed(&'static str),
    /// The engine configuration has no image encoding (e.g. the
    /// ablation-only per-level XBW-b backend).
    Unsupported(&'static str),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "image i/o error: {e}"),
            Self::Truncated => write!(f, "image truncated"),
            Self::BadMagic => write!(f, "not a fibimage file"),
            Self::BadVersion(v) => write!(f, "unsupported fibimage version {v}"),
            Self::FamilyMismatch { image, expected } => {
                write!(f, "image is IPv{image}, expected IPv{expected}")
            }
            Self::EngineMismatch { image, expected } => {
                write!(f, "image encodes engine {image}, expected {expected}")
            }
            Self::UnknownEngine(v) => write!(f, "unknown engine id {v}"),
            Self::ChecksumMismatch => write!(f, "image checksum mismatch"),
            Self::MissingSection(id) => write!(f, "missing section {id:#x}"),
            Self::Malformed(what) => write!(f, "malformed image: {what}"),
            Self::Unsupported(what) => write!(f, "unsupported configuration: {what}"),
        }
    }
}

impl std::error::Error for ImageError {}

impl From<StorageError> for ImageError {
    fn from(e: StorageError) -> Self {
        Self::Malformed(e.0)
    }
}

/// One entry of the section table.
#[derive(Clone, Copy, Debug)]
pub struct SectionEntry {
    /// Section id (see [`sections`]).
    pub id: u32,
    /// Offset from the file start, in words (multiple of 8).
    pub offset: usize,
    /// Meaningful length in words (padding excluded).
    pub len: usize,
}

/// A loaded FIB image: one aligned arena plus the parsed header and
/// section table. All engine views borrow from it.
#[derive(Clone, Debug)]
pub struct FibImage {
    arena: Arena,
    section_table: Vec<SectionEntry>,
    version: u16,
    family: u8,
    engine: u8,
    route_count: u64,
    prefix_count: u64,
    epoch: u64,
    claimed_size_bytes: u64,
}

impl FibImage {
    /// Decodes and validates an image from bytes. This is the single copy
    /// of the load path (file bytes → aligned arena); everything after
    /// borrows.
    ///
    /// # Errors
    /// Any [`ImageError`] variant; corrupt bytes never panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ImageError> {
        if bytes.len() < 64 || bytes.len() % 64 != 0 {
            // Check the magic first so a short prefix of a real image
            // still reports what it is.
            if bytes.len() >= 8
                && u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) != MAGIC
            {
                return Err(ImageError::BadMagic);
            }
            return Err(ImageError::Truncated);
        }
        let arena = Arena::from_le_bytes(bytes).map_err(|_| ImageError::Truncated)?;
        // DFZ-scale images are walked with random access on the packet
        // path; ask the kernel to back the arena with transparent huge
        // pages so the walk spends TLB entries 512× more slowly. Purely
        // advisory: small arenas and non-Linux hosts return `false` and
        // the image serves identically from 4 KiB pages.
        let _ = arena.advise_hugepages();
        let words = arena.words();
        if words[0] != MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = (words[1] & 0xFFFF) as u16;
        if version != VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let family = ((words[1] >> 16) & 0xFF) as u8;
        let engine = ((words[1] >> 24) & 0xFF) as u8;
        let section_count = (words[1] >> 32) as u32 as usize;
        let total_words = words[4];
        if total_words as usize != words.len() {
            return Err(ImageError::Truncated);
        }
        // Checksum: the file with the checksum word zeroed — the same
        // shared FNV-1a the writer uses, chained around the hole.
        let stored = words[7];
        let hash = fnv1a_continue(
            fnv1a_continue(fib_succinct::fnv1a(&bytes[..56]), &[0u8; 8]),
            &bytes[64..],
        );
        if hash != stored {
            return Err(ImageError::ChecksumMismatch);
        }
        // Section table.
        let table_words = section_count * 2;
        if 8 + table_words > words.len() {
            return Err(ImageError::Truncated);
        }
        let mut section_table = Vec::with_capacity(section_count);
        for s in 0..section_count {
            let id = words[8 + s * 2] as u32;
            let loc = words[8 + s * 2 + 1];
            let offset = (loc as u32) as usize;
            let len = (loc >> 32) as usize;
            if offset % BLOCK_WORDS != 0 {
                return Err(ImageError::Malformed("section offset unaligned"));
            }
            if offset.checked_add(len).is_none_or(|end| end > words.len()) {
                return Err(ImageError::Truncated);
            }
            section_table.push(SectionEntry { id, offset, len });
        }
        let (route_count, prefix_count, epoch, claimed_size_bytes) =
            (words[2], words[6], words[3], words[5]);
        Ok(Self {
            arena,
            section_table,
            version,
            family,
            engine,
            route_count,
            prefix_count,
            epoch,
            claimed_size_bytes,
        })
    }

    /// Reads and decodes an image file.
    ///
    /// # Errors
    /// [`ImageError::Io`] on filesystem failure, else as
    /// [`Self::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ImageError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| ImageError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }

    /// Format version.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Address family (4 or 6).
    #[must_use]
    pub fn family(&self) -> u8 {
        self.family
    }

    /// Raw engine id byte.
    #[must_use]
    pub fn engine_id(&self) -> u8 {
        self.engine
    }

    /// The engine this image encodes.
    ///
    /// # Errors
    /// [`ImageError::UnknownEngine`] for ids this build does not know.
    pub fn engine(&self) -> Result<EngineKind, ImageError> {
        EngineKind::from_u8(self.engine).ok_or(ImageError::UnknownEngine(self.engine))
    }

    /// Routes in the control FIB when the image was written.
    #[must_use]
    pub fn route_count(&self) -> u64 {
        self.route_count
    }

    /// Normal-form leaves (0 when the engine does not track them).
    #[must_use]
    pub fn prefix_count(&self) -> u64 {
        self.prefix_count
    }

    /// Router epoch the image snapshots (0 for standalone compiles).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine's claimed resident `size_bytes` at write time.
    #[must_use]
    pub fn claimed_size_bytes(&self) -> u64 {
        self.claimed_size_bytes
    }

    /// The whole image as words (header + table + payloads).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.arena.words()
    }

    /// The parsed section table.
    #[must_use]
    pub fn section_table(&self) -> &[SectionEntry] {
        &self.section_table
    }

    /// Borrows a section's payload words (zero-copy).
    ///
    /// # Errors
    /// [`ImageError::MissingSection`] when absent.
    pub fn section(&self, id: u32) -> Result<&[u64], ImageError> {
        let entry = self
            .section_table
            .iter()
            .find(|e| e.id == id)
            .ok_or(ImageError::MissingSection(id))?;
        Ok(&self.arena.words()[entry.offset..entry.offset + entry.len])
    }

    /// Whether the image carries a routes section (needed for router warm
    /// restart).
    #[must_use]
    pub fn has_routes(&self) -> bool {
        self.section_table.iter().any(|e| e.id == sections::ROUTES)
    }

    /// Decodes the routes section into a control trie.
    ///
    /// # Errors
    /// [`ImageError`] when the section is absent, malformed, or encodes a
    /// different address family.
    pub fn routes<A: Address>(&self) -> Result<BinaryTrie<A>, ImageError> {
        if self.family != family_of::<A>() {
            return Err(ImageError::FamilyMismatch {
                image: self.family,
                expected: family_of::<A>(),
            });
        }
        let words = self.section(sections::ROUTES)?;
        if words.len() % 3 != 0 {
            return Err(ImageError::Malformed("routes section length"));
        }
        let mut trie = BinaryTrie::new();
        for route in words.chunks_exact(3) {
            let addr = (u128::from(route[0]) << 64) | u128::from(route[1]);
            let len = (route[2] & 0xFF) as u8;
            let nh = (route[2] >> 32) as u32;
            if len > A::WIDTH {
                return Err(ImageError::Malformed("route prefix length"));
            }
            if A::WIDTH < 128 && addr >> A::WIDTH != 0 {
                return Err(ImageError::Malformed("route address width"));
            }
            trie.insert(Prefix::new(A::from_u128(addr), len), NextHop::new(nh));
        }
        Ok(trie)
    }

    /// Validates the header against the requested address type and engine.
    pub(crate) fn expect<A: Address>(&self, engine: EngineKind) -> Result<(), ImageError> {
        if self.family != family_of::<A>() {
            return Err(ImageError::FamilyMismatch {
                image: self.family,
                expected: family_of::<A>(),
            });
        }
        if self.engine != engine as u8 {
            return Err(ImageError::EngineMismatch {
                image: self.engine,
                expected: engine as u8,
            });
        }
        Ok(())
    }
}

/// Incrementally assembles a `fibimage/v1` byte blob.
pub struct ImageWriter {
    engine: EngineKind,
    family: u8,
    route_count: u64,
    prefix_count: u64,
    epoch: u64,
    claimed_size_bytes: u64,
    /// Payload words, section-relative (assembled after the table).
    payload: Vec<u64>,
    /// `(id, payload offset, meaningful length)` per section.
    entries: Vec<(u32, usize, usize)>,
}

impl ImageWriter {
    /// Starts an image for `engine` over address type `A`.
    #[must_use]
    pub fn new<A: Address>(engine: EngineKind, route_count: u64, epoch: u64) -> Self {
        Self {
            engine,
            family: family_of::<A>(),
            route_count,
            prefix_count: 0,
            epoch,
            claimed_size_bytes: 0,
            payload: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Records the normal-form prefix (leaf) count.
    pub fn set_prefix_count(&mut self, count: u64) {
        self.prefix_count = count;
    }

    /// Records the engine's resident size claim.
    pub fn set_claimed_size_bytes(&mut self, bytes: u64) {
        self.claimed_size_bytes = bytes;
    }

    /// Appends a section from a word slice.
    pub fn section(&mut self, id: u32, words: &[u64]) {
        self.section_with(id, |out| out.extend_from_slice(words));
    }

    /// Appends a section whose words are produced by `fill` (e.g. a
    /// structure's `write_words`). The section starts on a 64-byte
    /// boundary; the meaningful length is whatever `fill` appends, and
    /// the writer pads the tail to a whole block.
    pub fn section_with(&mut self, id: u32, fill: impl FnOnce(&mut Vec<u64>)) {
        debug_assert_eq!(self.payload.len() % BLOCK_WORDS, 0);
        let start = self.payload.len();
        fill(&mut self.payload);
        let len = self.payload.len() - start;
        while self.payload.len() % BLOCK_WORDS != 0 {
            self.payload.push(0);
        }
        self.entries.push((id, start, len));
    }

    /// Re-emits every section of `sub` into this writer with ids passed
    /// through `map` — how the VRF compiler nests a dedicated per-table
    /// engine's sections (written by its ordinary [`ImageCodec`]) under
    /// that table's private id block without the codec knowing.
    pub fn import_remapped(&mut self, sub: ImageWriter, map: impl Fn(u32) -> u32) {
        for (id, start, len) in sub.entries {
            self.section(map(id), &sub.payload[start..start + len]);
        }
    }

    /// Appends the routes section (3 words per route).
    pub fn routes<A: Address>(&mut self, trie: &BinaryTrie<A>) {
        self.section_with(sections::ROUTES, |out| {
            for (prefix, nh) in trie.iter() {
                let addr = prefix.addr().to_u128();
                out.push((addr >> 64) as u64);
                out.push(addr as u64);
                out.push(u64::from(prefix.len()) | (u64::from(nh.index()) << 32));
            }
        });
    }

    /// Assembles the final image bytes (header, section table, payloads,
    /// checksum).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let table_words = (self.entries.len() * 2).div_ceil(BLOCK_WORDS) * BLOCK_WORDS;
        let payload_base = 8 + table_words;
        let total_words = payload_base + self.payload.len();
        let mut words = Vec::with_capacity(total_words);
        words.push(MAGIC);
        words.push(
            u64::from(VERSION)
                | (u64::from(self.family) << 16)
                | ((self.engine as u64) << 24)
                | ((self.entries.len() as u64) << 32),
        );
        words.push(self.route_count);
        words.push(self.epoch);
        words.push(total_words as u64);
        words.push(self.claimed_size_bytes);
        words.push(self.prefix_count);
        words.push(0); // checksum, patched below
        for &(id, start, len) in &self.entries {
            words.push(u64::from(id));
            let offset = payload_base + start;
            words.push((offset as u64) | ((len as u64) << 32));
        }
        while words.len() < payload_base {
            words.push(0);
        }
        words.extend_from_slice(&self.payload);
        // Checksum with word 7 zeroed, then patch it in.
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = fnv1a(&bytes);
        bytes[56..64].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }
}

/// An engine that can serialize itself into a FIB image and serve lookups
/// from a borrowed view of one.
///
/// `write_image(engine)` and `E::view(&image)` are inverses up to the
/// forwarding function: the view answers every probe identically to the
/// engine, borrowing — never copying — the image's section payloads.
pub trait ImageCodec<A: Address>: FibLookup<A> + Sized {
    /// The engine id stamped into the header.
    const ENGINE: EngineKind;

    /// Borrowed zero-copy view type.
    type Ref<'i>: FibLookup<A> + Copy;

    /// Writes the engine's parameter and payload sections.
    ///
    /// # Errors
    /// [`ImageError::Unsupported`] when this configuration has no image
    /// encoding.
    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError>;

    /// Assembles the zero-copy view over a loaded image.
    ///
    /// # Errors
    /// Any [`ImageError`]; hostile images fail loudly, never panic.
    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError>;

    /// Like [`Self::view`], but engines may skip their per-element
    /// reference scans (the O(n) part of validation). Only for images
    /// that already passed a full [`Self::view`] — a [`FibImage`] is
    /// immutable once loaded, so one validation covers its lifetime.
    /// The router's image-backed snapshots use this on the lookup path.
    ///
    /// # Errors
    /// Any [`ImageError`].
    fn view_prevalidated(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        Self::view(image)
    }

    /// The resident size claim recorded in the header — the engine's own
    /// byte accounting, which `fibc inspect` and the size-drift tests
    /// compare against the actual payload bytes.
    fn resident_size_bytes(&self) -> usize;
}

/// Serializes `engine` into `fibimage/v1` bytes. When `routes` is given,
/// the control FIB rides along in a [`sections::ROUTES`] section so a
/// router can warm-restart from the file.
///
/// # Errors
/// [`ImageError::Unsupported`] for engine configurations with no image
/// encoding.
pub fn write_image<A: Address, E: ImageCodec<A>>(
    engine: &E,
    routes: Option<&BinaryTrie<A>>,
    epoch: u64,
) -> Result<Vec<u8>, ImageError> {
    let route_count = routes.map_or(0, BinaryTrie::len) as u64;
    let mut writer = ImageWriter::new::<A>(E::ENGINE, route_count, epoch);
    writer.set_claimed_size_bytes(engine.resident_size_bytes() as u64);
    engine.write_sections(&mut writer)?;
    if let Some(trie) = routes {
        writer.routes(trie);
    }
    Ok(writer.finish())
}

/// [`write_image`] plus a [`sections::HOT_SLAB`] section carrying a
/// compiled traffic-aware hot slab, so any view assembled over the image
/// (see [`hot_any_view`]) serves the pinned blocks without recompilation.
///
/// # Errors
/// [`ImageError::Unsupported`] for engine configurations with no image
/// encoding.
pub fn write_image_hot<A: Address, E: ImageCodec<A>>(
    engine: &E,
    routes: Option<&BinaryTrie<A>>,
    epoch: u64,
    slab: &crate::hot::HotSlab,
) -> Result<Vec<u8>, ImageError> {
    let route_count = routes.map_or(0, BinaryTrie::len) as u64;
    let mut writer = ImageWriter::new::<A>(E::ENGINE, route_count, epoch);
    writer.set_claimed_size_bytes((engine.resident_size_bytes() + slab.size_bytes()) as u64);
    engine.write_sections(&mut writer)?;
    writer.section_with(sections::HOT_SLAB, |out| slab.write_words(out));
    if let Some(trie) = routes {
        writer.routes(trie);
    }
    Ok(writer.finish())
}

/// [`write_image`] straight to a file, atomically (write to a `.tmp`
/// sibling, then rename).
///
/// # Errors
/// [`ImageError::Io`] on filesystem failure.
pub fn write_image_file<A: Address, E: ImageCodec<A>>(
    engine: &E,
    routes: Option<&BinaryTrie<A>>,
    epoch: u64,
    path: impl AsRef<Path>,
) -> Result<(), ImageError> {
    let bytes = write_image(engine, routes, epoch)?;
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| ImageError::Io(format!("{}: {e}", path.display()));
    std::fs::write(&tmp, &bytes).map_err(io)?;
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(())
}

/// Loads an image file and hands the typed view to `f` (the view borrows
/// the image, so it cannot outlive this call — hold a [`FibImage`]
/// yourself for longer-lived serving).
///
/// # Errors
/// Any [`ImageError`].
pub fn load_image<A: Address, E: ImageCodec<A>, T>(
    path: impl AsRef<Path>,
    f: impl FnOnce(E::Ref<'_>) -> T,
) -> Result<T, ImageError> {
    let image = FibImage::load(path)?;
    let view = E::view(&image)?;
    Ok(f(view))
}

// ---------------------------------------------------------------------
// Codec implementations
// ---------------------------------------------------------------------

impl<A: Address> ImageCodec<A> for SerializedDag<A> {
    const ENGINE: EngineKind = EngineKind::SerializedDag;
    type Ref<'i> = SerializedDagRef<'i, A>;

    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        writer.section(sections::PARAMS, &[u64::from(self.lambda())]);
        writer.section(sections::SER_ENTRIES, self.entry_words());
        writer.section(sections::SER_NODES, self.node_words());
        Ok(())
    }

    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        let lambda = u8::try_from(*params.first().ok_or(ImageError::Malformed("params"))?)
            .map_err(|_| ImageError::Malformed("λ out of range"))?;
        SerializedDagRef::from_parts(
            lambda,
            image.section(sections::SER_ENTRIES)?,
            image.section(sections::SER_NODES)?,
        )
        .map_err(ImageError::Malformed)
    }

    fn view_prevalidated(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        let lambda = u8::try_from(*params.first().ok_or(ImageError::Malformed("params"))?)
            .map_err(|_| ImageError::Malformed("λ out of range"))?;
        SerializedDagRef::from_parts_trusted(
            lambda,
            image.section(sections::SER_ENTRIES)?,
            image.section(sections::SER_NODES)?,
        )
        .map_err(ImageError::Malformed)
    }

    fn resident_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl<A: Address> ImageCodec<A> for MultibitDag<A> {
    const ENGINE: EngineKind = EngineKind::MultibitDag;
    type Ref<'i> = MultibitDagRef<'i, A>;

    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        writer.section(
            sections::PARAMS,
            &[
                u64::from(self.stride()),
                u64::from(self.root_ref()),
                self.slot_count() as u64,
            ],
        );
        writer.section(sections::MB_SLOTS, self.slot_words());
        Ok(())
    }

    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        if params.len() < 3 {
            return Err(ImageError::Malformed("params"));
        }
        let stride =
            u8::try_from(params[0]).map_err(|_| ImageError::Malformed("stride out of range"))?;
        let root =
            u32::try_from(params[1]).map_err(|_| ImageError::Malformed("root out of range"))?;
        let n_slots = usize::try_from(params[2])
            .map_err(|_| ImageError::Malformed("slot count out of range"))?;
        MultibitDagRef::from_parts(stride, image.section(sections::MB_SLOTS)?, n_slots, root)
            .map_err(ImageError::Malformed)
    }

    fn view_prevalidated(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        if params.len() < 3 {
            return Err(ImageError::Malformed("params"));
        }
        let stride =
            u8::try_from(params[0]).map_err(|_| ImageError::Malformed("stride out of range"))?;
        let root =
            u32::try_from(params[1]).map_err(|_| ImageError::Malformed("root out of range"))?;
        let n_slots = usize::try_from(params[2])
            .map_err(|_| ImageError::Malformed("slot count out of range"))?;
        MultibitDagRef::from_parts_trusted(
            stride,
            image.section(sections::MB_SLOTS)?,
            n_slots,
            root,
        )
        .map_err(ImageError::Malformed)
    }

    fn resident_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl<A: Address> ImageCodec<A> for VarStrideDag<A> {
    const ENGINE: EngineKind = EngineKind::VsDag;
    type Ref<'i> = VarStrideDagRef<'i, A>;

    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        writer.section(
            sections::PARAMS,
            &[
                u64::from(self.root_ref()),
                self.node_count() as u64,
                self.slot_count() as u64,
            ],
        );
        writer.section(sections::VS_NODES, self.node_words());
        writer.section(sections::VS_SLOTS, self.slot_words());
        Ok(())
    }

    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let (root, node_count, n_slots) = vsdag_params(image)?;
        let nodes = image.section(sections::VS_NODES)?;
        if nodes.len() != node_count {
            return Err(ImageError::Malformed("node directory length mismatch"));
        }
        VarStrideDagRef::from_parts(nodes, image.section(sections::VS_SLOTS)?, n_slots, root)
            .map_err(ImageError::Malformed)
    }

    fn view_prevalidated(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let (root, node_count, n_slots) = vsdag_params(image)?;
        let nodes = image.section(sections::VS_NODES)?;
        if nodes.len() != node_count {
            return Err(ImageError::Malformed("node directory length mismatch"));
        }
        VarStrideDagRef::from_parts_trusted(
            nodes,
            image.section(sections::VS_SLOTS)?,
            n_slots,
            root,
        )
        .map_err(ImageError::Malformed)
    }

    fn resident_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

/// Decodes the vsdag `PARAMS` triple `[root, node_count, slot_count]`.
fn vsdag_params(image: &FibImage) -> Result<(u32, usize, usize), ImageError> {
    let params = image.section(sections::PARAMS)?;
    if params.len() < 3 {
        return Err(ImageError::Malformed("params"));
    }
    let root = u32::try_from(params[0]).map_err(|_| ImageError::Malformed("root out of range"))?;
    let node_count =
        usize::try_from(params[1]).map_err(|_| ImageError::Malformed("node count out of range"))?;
    let n_slots =
        usize::try_from(params[2]).map_err(|_| ImageError::Malformed("slot count out of range"))?;
    Ok((root, node_count, n_slots))
}

impl<A: Address> ImageCodec<A> for LcTrie<A> {
    const ENGINE: EngineKind = EngineKind::LcTrie;
    type Ref<'i> = LcTrieRef<'i, A>;

    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        writer.section(sections::PARAMS, &[u64::from(self.root())]);
        writer.section(sections::LC_NODES, self.packed_nodes());
        Ok(())
    }

    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        let root = u32::try_from(*params.first().ok_or(ImageError::Malformed("params"))?)
            .map_err(|_| ImageError::Malformed("root out of range"))?;
        LcTrieRef::from_parts(image.section(sections::LC_NODES)?, root)
            .map_err(ImageError::Malformed)
    }

    fn view_prevalidated(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        let root = u32::try_from(*params.first().ok_or(ImageError::Malformed("params"))?)
            .map_err(|_| ImageError::Malformed("root out of range"))?;
        LcTrieRef::from_parts_trusted(image.section(sections::LC_NODES)?, root)
            .map_err(ImageError::Malformed)
    }

    /// The *packed arena* bytes, deliberately not the kernel memory model
    /// that [`FibLookup::size_bytes`] reports for Table 2 — the image
    /// stores the packed form, so that is what the size claim must track.
    fn resident_size_bytes(&self) -> usize {
        LcTrie::size_bytes(self)
    }
}

impl<A: Address> ImageCodec<A> for PrefixDag<A> {
    const ENGINE: EngineKind = EngineKind::PrefixDag;
    type Ref<'i> = PrefixDagRef<'i, A>;

    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        let (words, root) = self.write_packed();
        writer.section(
            sections::PARAMS,
            &[u64::from(root), u64::from(self.lambda())],
        );
        writer.section(sections::PDAG_NODES, &words);
        Ok(())
    }

    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        let root = u32::try_from(*params.first().ok_or(ImageError::Malformed("params"))?)
            .map_err(|_| ImageError::Malformed("root out of range"))?;
        PrefixDagRef::from_parts(image.section(sections::PDAG_NODES)?, root)
            .map_err(ImageError::Malformed)
    }

    fn view_prevalidated(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        let root = u32::try_from(*params.first().ok_or(ImageError::Malformed("params"))?)
            .map_err(|_| ImageError::Malformed("root out of range"))?;
        PrefixDagRef::from_parts_trusted(image.section(sections::PDAG_NODES)?, root)
            .map_err(ImageError::Malformed)
    }

    /// The compacted arena bytes (16 per live node) — the exact payload
    /// the image stores, matching [`PrefixDag::size_bytes`].
    fn resident_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl<A: Address> ImageCodec<A> for XbwFib<A> {
    const ENGINE: EngineKind = EngineKind::Xbw;
    type Ref<'i> = XbwFibRef<'i, A>;

    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        let (si_kind, sa_kind) = self.image_kind_codes().ok_or(ImageError::Unsupported(
            "per-level XBW-b has no image encoding",
        ))?;
        let (n_leaves, t_nodes) = self.image_counts();
        writer.set_prefix_count(n_leaves);
        writer.section(sections::PARAMS, &[si_kind, sa_kind, n_leaves, t_nodes]);
        writer.section_with(sections::XBW_SI, |out| self.write_si_words(out));
        writer.section_with(sections::XBW_SA, |out| self.write_sa_words(out));
        writer.section(sections::XBW_LABELS, &self.label_words());
        Ok(())
    }

    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        image.expect::<A>(Self::ENGINE)?;
        let params = image.section(sections::PARAMS)?;
        if params.len() < 2 {
            return Err(ImageError::Malformed("params"));
        }
        XbwFibRef::from_parts(
            params[0],
            params[1],
            image.section(sections::XBW_SI)?,
            image.section(sections::XBW_SA)?,
            image.section(sections::XBW_LABELS)?,
        )
        .map_err(ImageError::from)
    }

    fn resident_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

// ---------------------------------------------------------------------
// FibLookup for the zero-copy views
// ---------------------------------------------------------------------

impl<A: Address> FibLookup<A> for SerializedDagRef<'_, A> {
    fn name(&self) -> &'static str {
        "pDAG-serialized/image"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        SerializedDagRef::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        SerializedDagRef::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        SerializedDagRef::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        SerializedDagRef::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        SerializedDagRef::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        SerializedDagRef::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for MultibitDagRef<'_, A> {
    fn name(&self) -> &'static str {
        "multibit-dag/image"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        MultibitDagRef::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        MultibitDagRef::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        MultibitDagRef::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        MultibitDagRef::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        MultibitDagRef::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        MultibitDagRef::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for VarStrideDagRef<'_, A> {
    fn name(&self) -> &'static str {
        "vsdag/image"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        VarStrideDagRef::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        VarStrideDagRef::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        VarStrideDagRef::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        VarStrideDagRef::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        VarStrideDagRef::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        VarStrideDagRef::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for LcTrieRef<'_, A> {
    fn name(&self) -> &'static str {
        "fib_trie/image"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        LcTrieRef::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        LcTrieRef::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        LcTrieRef::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        LcTrieRef::lookup_stream(self, addrs, out);
    }

    /// The packed arena bytes (what the image actually serves), not the
    /// kernel model the owned engine reports for Table 2.
    fn size_bytes(&self) -> usize {
        LcTrieRef::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        LcTrieRef::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for PrefixDagRef<'_, A> {
    fn name(&self) -> &'static str {
        "pDAG/image"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        PrefixDagRef::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        PrefixDagRef::size_bytes(self)
    }
}

impl<A: Address> FibLookup<A> for XbwFibRef<'_, A> {
    fn name(&self) -> &'static str {
        "XBW-b/image"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        XbwFibRef::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        XbwFibRef::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        XbwFibRef::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        XbwFibRef::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        // The borrowed payloads' words — the image-resident footprint.
        self.payload_words() * 8
    }
}

/// A type-erased view over whatever engine an image encodes — what `fibc
/// serve` and inspection tooling dispatch on.
#[derive(Clone, Copy, Debug)]
pub enum AnyView<'a, A: Address> {
    /// XBW-b image.
    Xbw(XbwFibRef<'a, A>),
    /// Prefix-DAG image.
    PrefixDag(PrefixDagRef<'a, A>),
    /// Serialized-DAG image.
    SerializedDag(SerializedDagRef<'a, A>),
    /// Multibit-DAG image.
    MultibitDag(MultibitDagRef<'a, A>),
    /// LC-trie image.
    LcTrie(LcTrieRef<'a, A>),
    /// Variable-stride DAG image.
    VsDag(VarStrideDagRef<'a, A>),
}

/// Assembles the engine-appropriate view for whatever `image` encodes.
///
/// # Errors
/// Any [`ImageError`].
pub fn any_view<A: Address>(image: &FibImage) -> Result<AnyView<'_, A>, ImageError> {
    Ok(match image.engine()? {
        EngineKind::Xbw => AnyView::Xbw(<XbwFib<A> as ImageCodec<A>>::view(image)?),
        EngineKind::PrefixDag => AnyView::PrefixDag(<PrefixDag<A> as ImageCodec<A>>::view(image)?),
        EngineKind::SerializedDag => {
            AnyView::SerializedDag(<SerializedDag<A> as ImageCodec<A>>::view(image)?)
        }
        EngineKind::MultibitDag => {
            AnyView::MultibitDag(<MultibitDag<A> as ImageCodec<A>>::view(image)?)
        }
        EngineKind::LcTrie => AnyView::LcTrie(<LcTrie<A> as ImageCodec<A>>::view(image)?),
        EngineKind::VsDag => AnyView::VsDag(<VarStrideDag<A> as ImageCodec<A>>::view(image)?),
        EngineKind::VrfSet => {
            return Err(ImageError::Unsupported(
                "vrfset images are VRF-keyed; assemble a crate::vrf::VrfSetRef instead",
            ))
        }
    })
}

impl<A: Address> FibLookup<A> for AnyView<'_, A> {
    fn name(&self) -> &'static str {
        match self {
            Self::Xbw(v) => FibLookup::<A>::name(v),
            Self::PrefixDag(v) => FibLookup::<A>::name(v),
            Self::SerializedDag(v) => FibLookup::<A>::name(v),
            Self::MultibitDag(v) => FibLookup::<A>::name(v),
            Self::LcTrie(v) => FibLookup::<A>::name(v),
            Self::VsDag(v) => FibLookup::<A>::name(v),
        }
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        match self {
            Self::Xbw(v) => v.lookup(addr),
            Self::PrefixDag(v) => v.lookup(addr),
            Self::SerializedDag(v) => v.lookup(addr),
            Self::MultibitDag(v) => v.lookup(addr),
            Self::LcTrie(v) => v.lookup(addr),
            Self::VsDag(v) => v.lookup(addr),
        }
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        match self {
            Self::Xbw(v) => v.lookup_batch(addrs, out),
            Self::PrefixDag(v) => FibLookup::lookup_batch(v, addrs, out),
            Self::SerializedDag(v) => v.lookup_batch(addrs, out),
            Self::MultibitDag(v) => v.lookup_batch(addrs, out),
            Self::LcTrie(v) => v.lookup_batch(addrs, out),
            Self::VsDag(v) => v.lookup_batch(addrs, out),
        }
    }

    fn prefetch(&self, addr: A) {
        match self {
            Self::Xbw(v) => v.prefetch(addr),
            Self::PrefixDag(_) => {}
            Self::SerializedDag(v) => v.prefetch(addr),
            Self::MultibitDag(v) => v.prefetch(addr),
            Self::LcTrie(v) => v.prefetch(addr),
            Self::VsDag(v) => v.prefetch(addr),
        }
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        match self {
            Self::Xbw(v) => v.lookup_stream(addrs, out),
            Self::PrefixDag(v) => FibLookup::lookup_batch(v, addrs, out),
            Self::SerializedDag(v) => v.lookup_stream(addrs, out),
            Self::MultibitDag(v) => v.lookup_stream(addrs, out),
            Self::LcTrie(v) => v.lookup_stream(addrs, out),
            Self::VsDag(v) => v.lookup_stream(addrs, out),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            Self::Xbw(v) => FibLookup::<A>::size_bytes(v),
            Self::PrefixDag(v) => FibLookup::<A>::size_bytes(v),
            Self::SerializedDag(v) => FibLookup::<A>::size_bytes(v),
            Self::MultibitDag(v) => FibLookup::<A>::size_bytes(v),
            Self::LcTrie(v) => FibLookup::<A>::size_bytes(v),
            Self::VsDag(v) => FibLookup::<A>::size_bytes(v),
        }
    }
}

impl FibImage {
    /// Borrows the optional [`sections::HOT_SLAB`] section as a validated
    /// slab view; `Ok(None)` when the image carries no slab.
    ///
    /// # Errors
    /// [`ImageError::Malformed`] when a slab section is present but fails
    /// validation.
    pub fn hot_slab(&self) -> Result<Option<crate::hot::HotSlabRef<'_>>, ImageError> {
        match self.section(sections::HOT_SLAB) {
            Err(ImageError::MissingSection(_)) => Ok(None),
            Err(e) => Err(e),
            Ok(words) => crate::hot::HotSlabRef::from_words(words)
                .map(Some)
                .map_err(|e| ImageError::Malformed(e.0)),
        }
    }
}

/// A type-erased image view with the image's hot slab (if any) pinned in
/// front — the composition `fibc serve` and the bench dispatch on when an
/// image was compiled `--heat`.
#[derive(Clone, Copy, Debug)]
pub struct HotAnyView<'a, A: Address> {
    slab: Option<crate::hot::HotSlabRef<'a>>,
    inner: AnyView<'a, A>,
}

/// Assembles [`any_view`] plus the image's optional hot slab, so images
/// written by [`write_image_hot`] get their traffic-aware layout for free.
///
/// # Errors
/// Any [`ImageError`].
pub fn hot_any_view<A: Address>(image: &FibImage) -> Result<HotAnyView<'_, A>, ImageError> {
    Ok(HotAnyView {
        slab: image.hot_slab()?,
        inner: any_view(image)?,
    })
}

impl<'a, A: Address> HotAnyView<'a, A> {
    /// The slab view, when the image carries one.
    #[must_use]
    pub fn slab(&self) -> Option<crate::hot::HotSlabRef<'a>> {
        self.slab
    }

    /// The underlying engine view.
    #[must_use]
    pub fn inner(&self) -> AnyView<'a, A> {
        self.inner
    }
}

impl<A: Address> FibLookup<A> for HotAnyView<'_, A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    #[inline]
    fn lookup(&self, addr: A) -> Option<NextHop> {
        if let Some(slab) = self.slab {
            if let Some(answer) = slab.probe_addr(addr) {
                return answer;
            }
        }
        self.inner.lookup(addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        match self.slab {
            Some(slab) => crate::hot::slab_batch(slab, addrs, out, |a, o| {
                self.inner.lookup_batch(a, o);
            }),
            None => self.inner.lookup_batch(addrs, out),
        }
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        match self.slab {
            Some(slab) => crate::hot::slab_batch(slab, addrs, out, |a, o| {
                self.inner.lookup_stream(a, o);
            }),
            None => self.inner.lookup_stream(addrs, out),
        }
    }

    fn prefetch(&self, addr: A) {
        self.inner.prefetch(addr);
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes() + self.slab.map_or(0, |s| s.size_bytes())
    }
}
