//! XBW-b: the Burrows–Wheeler transform for binary leaf-labeled tries
//! (Section 3 of the paper).
//!
//! The leaf-pushed normal form is serialized in level (BFS) order into
//!
//! * `S_I` — one bit per node: 0 = interior, 1 = leaf,
//! * `S_α` — the leaf labels, in the same order,
//!
//! and both strings are handed to compressed string self-indexes, after
//! which longest-prefix match runs *directly on the compressed form* using
//! only the `access`/`rank` primitives (the `lookup` pseudo-code of
//! §3.1). Level order is what gives the transform its name: it clusters
//! nodes of equal context (= depth) exactly as BWT clusters characters of
//! equal context in a string.
//!
//! Two storage modes realize the two lemmas:
//!
//! * [`XbwStorage::Succinct`] — `S_I` in a plain rank bitvector, `S_α`
//!   packed at `⌈lg δ⌉` bits/label: `2n + n·lg δ + o(n)` bits, Lemma 2;
//! * [`XbwStorage::Entropy`] — `S_I` in RRR, `S_α` in a Huffman-shaped
//!   wavelet tree: `2n + n·H0 + o(n)` bits, Lemma 3.
//!
//! Updates rebuild the transform (see DESIGN.md): the paper's dynamic
//! variant via Mäkinen–Navarro indexes is cited but not evaluated there
//! either.

use fib_succinct::{
    BitVec, IntVec, IntVecRef, RrrVec, RrrVecRef, RsBitVec, RsBitVecRef, StorageError, WaveletTree,
    WaveletTreeRef,
};
use fib_trie::{Address, BinaryTrie, NextHop, ProperNode, ProperTrie};
use std::marker::PhantomData;

/// Number of lookups [`XbwFib::lookup_batch`] interleaves.
///
/// Lane-width sweep on a DFZ-scale shape string (out-of-cache, uniform
/// keys, median ns/lookup of the interleaved walk): 4 lanes leave load
/// latency on the table (~0.88× scalar), 8 lanes saturate the walk's
/// useful memory-level parallelism (~0.74×), and 16 lanes give back the
/// gain to register spills in the lane state (~0.80×). 8 is the plateau,
/// so it stays.
///
/// The original per-chunk *lockstep* kernel lost on cache-resident
/// strings (~1.3× scalar on taz 0.1, hidden behind a residency gate
/// that dispatched those tables to the scalar walk): a lane matching
/// shallow idled until the whole chunk retired, so little of the serial
/// rank/access dependency chain actually overlapped. The rolling-refill
/// kernel keeps all 8 lanes busy across the stream and wins everywhere
/// — 0.71× scalar uniform / 0.69× zipf on the cache-resident taz 0.1
/// string (see `crates/bench/tests/xbw_lane_bench.rs` to reproduce), so
/// the batch-side gate is gone and only the RRR backing stays scalar
/// (its walk is decode-bound, not latency-bound).
pub const XBW_BATCH_LANES: usize = 8;

/// How the two XBW-b strings are stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XbwStorage {
    /// Plain rank directory + packed labels (`2n + n·lg δ`, Lemma 2).
    Succinct,
    /// RRR + Huffman wavelet tree (`2n + n·H0 + o(n)`, Lemma 3).
    Entropy,
    /// Any combination, for the ablation benchmarks.
    Custom(SiStorage, SaStorage),
}

/// Storage for the trie-shape string `S_I`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiStorage {
    /// Uncompressed bits + rank directory.
    Plain,
    /// RRR-compressed.
    Rrr,
}

/// Storage for the label string `S_α`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaStorage {
    /// Fixed-width packed labels.
    Packed,
    /// Balanced wavelet tree, plain nodes.
    WaveletBalanced,
    /// Huffman-shaped wavelet tree, plain nodes (`n(H0+1)` bits).
    WaveletHuffman,
    /// Huffman-shaped wavelet tree over RRR-compressed nodes — the true
    /// `n·H0 + o(n)` realization used by [`XbwStorage::Entropy`].
    WaveletHuffmanRrr,
    /// One Huffman/RRR wavelet tree **per trie level**. Because XBW-b's
    /// BFS order clusters equal-context (equal-depth) labels, this is the
    /// higher-order-entropy upgrade §3.2 sketches: when the label
    /// distribution shifts with depth (e.g. a dominant default next-hop
    /// near the root, diverse peering routes deep down), it compresses
    /// below `n·H0`.
    HuffmanPerLevel,
}

impl XbwStorage {
    fn kinds(self) -> (SiStorage, SaStorage) {
        match self {
            Self::Succinct => (SiStorage::Plain, SaStorage::Packed),
            Self::Entropy => (SiStorage::Rrr, SaStorage::WaveletHuffmanRrr),
            Self::Custom(si, sa) => (si, sa),
        }
    }
}

#[derive(Clone, Debug)]
enum SiStore {
    Plain(RsBitVec),
    Rrr(RrrVec),
}

impl SiStore {
    /// The borrowed view, hoisted out of walk loops so the per-query cost
    /// is one construction instead of one per level.
    #[inline]
    fn as_view(&self) -> SiRef<'_> {
        match self {
            Self::Plain(v) => SiRef::Plain(v.view()),
            Self::Rrr(v) => SiRef::Rrr(v.view()),
        }
    }

    /// Fused `(get(i), rank1(i))`: one interleaved-directory probe on the
    /// plain backing, one block decode on RRR. The lookup walk derives
    /// everything it needs per level from this pair.
    #[inline]
    fn access_rank1(&self, i: usize) -> (bool, usize) {
        match self {
            Self::Plain(v) => v.access_rank1(i),
            Self::Rrr(v) => v.access_rank1(i),
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            Self::Plain(v) => v.size_bits(),
            Self::Rrr(v) => v.size_bits(),
        }
    }
}

#[derive(Clone, Debug)]
enum SaStore {
    Packed(IntVec),
    Wavelet(WaveletTree),
    /// Per-level trees plus the global leaf rank at which each level
    /// starts (levels are contiguous in BFS order).
    PerLevel {
        trees: Vec<WaveletTree>,
        starts: Vec<usize>,
    },
}

impl SaStore {
    #[inline]
    fn access(&self, i: usize) -> u64 {
        match self {
            Self::Packed(v) => v.get(i),
            Self::Wavelet(w) => w.access(i),
            Self::PerLevel { trees, starts } => {
                // Levels are few (≤ W+1): find the enclosing one.
                let level = starts.partition_point(|&s| s <= i) - 1;
                trees[level].access(i - starts[level])
            }
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            Self::Packed(v) => v.size_bits(),
            Self::Wavelet(w) => w.size_bits(),
            Self::PerLevel { trees, starts } => {
                trees.iter().map(WaveletTree::size_bits).sum::<usize>() + starts.len() * 64
            }
        }
    }
}

/// Size breakdown of an [`XbwFib`], in bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XbwSizeReport {
    /// The shape string `S_I` including its rank directory.
    pub si_bits: usize,
    /// The label string `S_α` including its index.
    pub sa_bits: usize,
    /// The symbol → next-hop table.
    pub label_map_bits: usize,
}

impl XbwSizeReport {
    /// Total bits.
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.si_bits + self.sa_bits + self.label_map_bits
    }

    /// Total bytes, rounded up.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total_bits().div_ceil(8)
    }
}

/// An entropy-compressed, statically queryable FIB — the XBW-b transform.
#[derive(Clone, Debug)]
pub struct XbwFib<A: Address> {
    si: SiStore,
    sa: SaStore,
    /// Symbol → next-hop (⊥ included when present in the normal form).
    label_map: Vec<Option<NextHop>>,
    n_leaves: usize,
    t_nodes: usize,
    _marker: PhantomData<A>,
}

impl<A: Address> XbwFib<A> {
    /// Builds the transform from a route trie (normalizing it first).
    #[must_use]
    pub fn build(trie: &BinaryTrie<A>, storage: XbwStorage) -> Self {
        Self::from_proper(&ProperTrie::from_trie(trie), storage)
    }

    /// Builds the transform from an already-normalized trie. This is the
    /// O(t) construction of Lemma 1: one BFS pass fills both strings.
    #[must_use]
    pub fn from_proper(proper: &ProperTrie<A>, storage: XbwStorage) -> Self {
        // Stable symbol numbering: sorted distinct labels.
        let hist = proper.leaf_label_histogram();
        let label_map: Vec<Option<NextHop>> = hist.keys().copied().collect();
        let symbol_of = |label: Option<NextHop>| -> u64 {
            label_map
                .binary_search(&label)
                .expect("label seen in histogram") as u64
        };

        let mut si_bits = BitVec::with_capacity(proper.node_count());
        let mut symbols = Vec::with_capacity(proper.n_leaves());
        // Global leaf rank at which each depth's leaves begin (leaves are
        // depth-contiguous in BFS order). Used by the per-level backend.
        let mut level_starts = Vec::new();
        let mut last_depth = None;
        for (depth, node) in proper.bfs_with_depth() {
            match node {
                ProperNode::Internal { .. } => si_bits.push(false),
                ProperNode::Leaf(label) => {
                    if last_depth != Some(depth) {
                        level_starts.push(symbols.len());
                        last_depth = Some(depth);
                    }
                    si_bits.push(true);
                    symbols.push(symbol_of(*label));
                }
            }
        }

        let (si_kind, sa_kind) = storage.kinds();
        let si = match si_kind {
            SiStorage::Plain => SiStore::Plain(RsBitVec::new(si_bits)),
            SiStorage::Rrr => SiStore::Rrr(RrrVec::new(&si_bits)),
        };
        let sigma = label_map.len().max(1);
        let sa = match sa_kind {
            SaStorage::Packed => {
                let mut iv = IntVec::new(fib_succinct::ceil_log2(sigma as u64));
                for &s in &symbols {
                    iv.push(s);
                }
                SaStore::Packed(iv)
            }
            SaStorage::WaveletBalanced => SaStore::Wavelet(WaveletTree::balanced(&symbols, sigma)),
            SaStorage::WaveletHuffman => SaStore::Wavelet(WaveletTree::huffman(&symbols, sigma)),
            SaStorage::WaveletHuffmanRrr => SaStore::Wavelet(WaveletTree::with_backing(
                &symbols,
                sigma,
                fib_succinct::WaveletShape::Huffman,
                fib_succinct::WaveletBacking::Rrr,
            )),
            SaStorage::HuffmanPerLevel => {
                let mut trees = Vec::with_capacity(level_starts.len());
                for (i, &start) in level_starts.iter().enumerate() {
                    let end = level_starts.get(i + 1).copied().unwrap_or(symbols.len());
                    trees.push(WaveletTree::with_backing(
                        &symbols[start..end],
                        sigma,
                        fib_succinct::WaveletShape::Huffman,
                        fib_succinct::WaveletBacking::Rrr,
                    ));
                }
                SaStore::PerLevel {
                    trees,
                    starts: level_starts,
                }
            }
        };
        Self {
            si,
            sa,
            label_map,
            n_leaves: proper.n_leaves(),
            t_nodes: proper.node_count(),
            _marker: PhantomData,
        }
    }

    /// Longest-prefix match on the compressed form (§3.1's `lookup`): walk
    /// the level-order encoding with one *fused* `access_rank1` probe per
    /// level, O(W) in total.
    ///
    /// The paper's pseudo-code issues an `access` then a `rank0`/`rank1`
    /// at each level; those hit the same `S_I` word and directory entry,
    /// so the fused primitive answers both from one probe:
    /// `rank0(i + 1) = i + 1 − rank1(i)` whenever bit `i` is 0.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        // 0-based variant of the paper's pseudo-code: the children of the
        // r-th interior node (1-based) sit at positions 2r−1 and 2r. The
        // S_I view is hoisted so the walk pays for it once, not per level.
        let si = self.si.as_view();
        let mut i = 0usize;
        let mut q = 0u8;
        loop {
            let (leaf, rank1) = si.access_rank1(i);
            if leaf {
                let symbol = self.sa.access(rank1);
                return self.label_map[symbol as usize];
            }
            debug_assert!(q < A::WIDTH, "interior node below maximum depth");
            // Bit i is 0 here, so rank0(i + 1) follows from rank1(i).
            let r = i + 1 - rank1;
            i = 2 * r - 1 + usize::from(addr.bit(q));
            q += 1;
        }
    }

    /// Batched longest-prefix match: [`XBW_BATCH_LANES`] independent
    /// walks advance interleaved with rolling lane refill, so the
    /// directory and `S_α` accesses of different packets overlap instead
    /// of serializing. Out of cache that hides miss latency; in cache it
    /// still hides the serial rank/access dependency chain, so the
    /// interleave wins at every table size (see [`XBW_BATCH_LANES`]).
    /// Only the RRR-backed walk stays scalar: it is bound by the serial
    /// combinatorial decode (ALU, not loads), which interleaving cannot
    /// overlap.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        let out = &mut out[..addrs.len()];
        if matches!(self.si, SiStore::Rrr(_)) {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        self.interleaved_walk::<false>(addrs, out);
    }

    /// The shared rolling-refill walk kernel of [`Self::lookup_batch`]
    /// (`PREFETCH = false`) and [`Self::lookup_stream`] (`true`: each
    /// lane's next `S_I` line is requested the moment its position is
    /// known). Plain backing only; callers handle the RRR fallback.
    fn interleaved_walk<const PREFETCH: bool>(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        let si = self.si.as_view();
        let n = addrs.len();
        // Rolling lane refill: each slot owns one in-flight walk and takes
        // the next address from the stream the moment its walk resolves.
        // The earlier per-chunk lockstep paid a convoy tax — a lane that
        // matched at depth 8 idled while its chunk-mates walked to depth
        // 24, so the average number of overlapped walks sat well below
        // [`XBW_BATCH_LANES`]. Keeping every lane busy across the whole
        // stream is what lets the interleave pay even on cache-resident
        // strings, where the overlap hides the serial rank/access
        // dependency chain rather than memory latency.
        let mut pos = [0usize; XBW_BATCH_LANES];
        let mut depth = [0u8; XBW_BATCH_LANES];
        // Index into `addrs` each lane is walking; `usize::MAX` = drained.
        let mut job = [usize::MAX; XBW_BATCH_LANES];
        let mut live = XBW_BATCH_LANES.min(n);
        for (lane, slot) in job.iter_mut().enumerate().take(live) {
            *slot = lane;
        }
        let mut next = live;
        while live > 0 {
            for lane in 0..XBW_BATCH_LANES {
                let j = job[lane];
                if j == usize::MAX {
                    continue;
                }
                let (leaf, rank1) = si.access_rank1(pos[lane]);
                if leaf {
                    let symbol = self.sa.access(rank1);
                    out[j] = self.label_map[symbol as usize];
                    if next < n {
                        // Refill in place: the next walk starts at the
                        // root word, which is hot, so no prefetch is due
                        // until its first child position is known.
                        job[lane] = next;
                        pos[lane] = 0;
                        depth[lane] = 0;
                        next += 1;
                    } else {
                        job[lane] = usize::MAX;
                        live -= 1;
                    }
                } else {
                    let r = pos[lane] + 1 - rank1;
                    pos[lane] = 2 * r - 1 + usize::from(addrs[j].bit(depth[lane]));
                    depth[lane] += 1;
                    if PREFETCH {
                        si.prefetch(pos[lane]);
                    }
                }
            }
        }
    }

    /// Hints the prefetcher at the top of the shape string. The XBW walk
    /// starts at a fixed position, so unlike the flat engines there is no
    /// address-dependent first touch to request early; the useful
    /// prefetches happen *inside* [`Self::lookup_stream`], where each
    /// lane's next `S_I` line is requested as soon as its position is
    /// known, while the remaining lanes still resolve.
    #[inline]
    pub fn prefetch(&self, _addr: A) {
        self.si.as_view().prefetch(0);
    }

    /// Software-pipelined batched lookup: identical results to
    /// [`Self::lookup_batch`]. On the plain backing every lane issues a
    /// prefetch for its *next* level's `S_I` line the moment that
    /// position is computed, so by the time the interleave returns to
    /// the lane its line fetch has been in flight for seven other lanes'
    /// worth of work. RRR stays scalar (decode-bound, like the batch
    /// path).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-stream contract, not per-packet
        let out = &mut out[..addrs.len()];
        if matches!(self.si, SiStore::Rrr(_)) {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        // Below the residency threshold the whole shape string lives in
        // cache and the in-walk prefetch is pure overhead — identical
        // results either way, so take the plain interleaved path.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            return self.lookup_batch(addrs, out);
        }
        self.interleaved_walk::<true>(addrs, out);
    }

    /// Lookup reporting every memory touch as `(byte offset, byte size)`
    /// for cache simulation, under a flat `[S_I | S_α | label map]` layout.
    ///
    /// The access model: each level of the walk reads the 8-byte `S_I`
    /// word holding bit `i` (the `access` and the `rank` of §3.1 hit the
    /// same word plus a directory entry that lives alongside it), and the
    /// final label decode walks ≈`lg δ` wavelet-tree levels inside the
    /// `S_α` region — one 8-byte touch per level, spread across the
    /// per-level sub-arrays. Offsets are deterministic for a given query,
    /// which is all the cache and SRAM replay harnesses need.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let si_bytes = (self.si.size_bits().div_ceil(64) * 8) as u64;
        let sa_bytes = (self.sa.size_bits().div_ceil(64) * 8).max(8) as u64;
        let mut i = 0usize;
        let mut q = 0u8;
        loop {
            sink((i as u64 / 64) * 8, 8);
            let (leaf, leaf_rank) = self.si.access_rank1(i);
            if leaf {
                let symbol = self.sa.access(leaf_rank);
                // Wavelet walk: one level per code bit, each level owning
                // roughly an equal slice of the S_α region.
                let levels = fib_succinct::ceil_log2(self.label_map.len().max(2) as u64).max(1);
                let slice = (sa_bytes / u64::from(levels)).max(8);
                for level in 0..u64::from(levels) {
                    let within = (leaf_rank as u64 / 8 * 8) % slice;
                    sink(si_bytes + (level * slice + within) % sa_bytes, 8);
                }
                return self.label_map[symbol as usize];
            }
            debug_assert!(q < A::WIDTH, "interior node below maximum depth");
            let r = i + 1 - leaf_rank;
            i = 2 * r - 1 + usize::from(addr.bit(q));
            q += 1;
        }
    }

    /// Number of leaves `n` of the underlying normal form.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Number of nodes `t` of the underlying normal form.
    #[must_use]
    pub fn t_nodes(&self) -> usize {
        self.t_nodes
    }

    /// Alphabet size δ (⊥ included when present).
    #[must_use]
    pub fn delta(&self) -> usize {
        self.label_map.len()
    }

    /// Size breakdown.
    #[must_use]
    pub fn size_report(&self) -> XbwSizeReport {
        XbwSizeReport {
            si_bits: self.si.size_bits(),
            sa_bits: self.sa.size_bits(),
            label_map_bits: self.label_map.len() * 33,
        }
    }

    /// Total footprint in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.size_report().total_bytes()
    }

    // ------------------------------------------------------------------
    // FIB-image serialization (consumed by `crate::image`)
    // ------------------------------------------------------------------

    /// Storage kind codes for the image header: `(S_I kind, S_α kind)`
    /// with 0 = plain/packed and 1 = RRR/wavelet. `None` when the engine
    /// uses the per-level backend, which has no image encoding (it is an
    /// ablation-only mode).
    #[must_use]
    pub(crate) fn image_kind_codes(&self) -> Option<(u64, u64)> {
        let si = match self.si {
            SiStore::Plain(_) => 0,
            SiStore::Rrr(_) => 1,
        };
        let sa = match self.sa {
            SaStore::Packed(_) => 0,
            SaStore::Wavelet(_) => 1,
            SaStore::PerLevel { .. } => return None,
        };
        Some((si, sa))
    }

    /// `(n_leaves, t_nodes)` for the image header.
    #[must_use]
    pub(crate) fn image_counts(&self) -> (u64, u64) {
        (self.n_leaves as u64, self.t_nodes as u64)
    }

    /// Serializes the shape string `S_I`.
    pub(crate) fn write_si_words(&self, out: &mut Vec<u64>) {
        match &self.si {
            SiStore::Plain(v) => v.write_words(out),
            SiStore::Rrr(v) => v.write_words(out),
        }
    }

    /// Serializes the label string `S_α`.
    ///
    /// # Panics
    /// Panics on the per-level backend (callers gate on
    /// [`Self::image_kind_codes`]).
    pub(crate) fn write_sa_words(&self, out: &mut Vec<u64>) {
        match &self.sa {
            SaStore::Packed(v) => v.write_words(out),
            SaStore::Wavelet(w) => w.write_words(out),
            SaStore::PerLevel { .. } => unreachable!("per-level S_α has no image encoding"),
        }
    }

    /// The symbol → next-hop table as one word per symbol (`u64::MAX` for
    /// the ⊥ label).
    #[must_use]
    pub(crate) fn label_words(&self) -> Vec<u64> {
        self.label_map
            .iter()
            .map(|l| l.map_or(u64::MAX, |nh| u64::from(nh.index())))
            .collect()
    }
}

/// Borrowed shape-string backing of an [`XbwFibRef`].
#[derive(Clone, Copy, Debug)]
enum SiRef<'a> {
    Plain(RsBitVecRef<'a>),
    Rrr(RrrVecRef<'a>),
}

impl SiRef<'_> {
    #[inline]
    fn access_rank1(&self, i: usize) -> (bool, usize) {
        match self {
            Self::Plain(v) => v.access_rank1(i),
            Self::Rrr(v) => v.access_rank1(i),
        }
    }

    /// Hints the prefetcher at the line a future `access_rank1(i)` will
    /// touch. Only the plain backing prefetches: RRR's decode is
    /// ALU-bound, so a hint buys nothing.
    #[inline]
    fn prefetch(&self, i: usize) {
        if let Self::Plain(v) = self {
            v.prefetch(i);
        }
    }
}

/// Borrowed label-string backing of an [`XbwFibRef`].
#[derive(Clone, Copy, Debug)]
enum SaRef<'a> {
    Packed(IntVecRef<'a>),
    Wavelet(WaveletTreeRef<'a>),
}

impl SaRef<'_> {
    #[inline]
    fn access(&self, i: usize) -> u64 {
        match self {
            Self::Packed(v) => v.get(i),
            Self::Wavelet(w) => w.access(i),
        }
    }
}

/// Borrowed zero-copy view of an [`XbwFib`] image: the §3.1 lookup walk
/// over `S_I`/`S_α` sections parsed straight out of a loaded buffer.
#[derive(Clone, Copy, Debug)]
pub struct XbwFibRef<'a, A: Address> {
    si: SiRef<'a>,
    sa: SaRef<'a>,
    /// Symbol → next-hop words (`u64::MAX` = ⊥).
    labels: &'a [u64],
    /// Total borrowed payload words (for size reporting).
    payload_words: usize,
    _marker: PhantomData<A>,
}

impl<'a, A: Address> XbwFibRef<'a, A> {
    /// Assembles a view from the three image sections, validating that
    /// the strings agree (`S_α` holds exactly one symbol per `S_I` leaf).
    ///
    /// # Errors
    /// [`StorageError`] on malformed sections or inconsistent strings.
    pub fn from_parts(
        si_kind: u64,
        sa_kind: u64,
        si_words: &'a [u64],
        sa_words: &'a [u64],
        labels: &'a [u64],
    ) -> Result<Self, StorageError> {
        let (si, si_len, si_ones, si_consumed) = match si_kind {
            0 => {
                let (v, used) = RsBitVecRef::from_words(si_words)?;
                (SiRef::Plain(v), v.len(), v.count_ones(), used)
            }
            1 => {
                let (v, used) = RrrVecRef::from_words(si_words)?;
                (SiRef::Rrr(v), v.len(), v.count_ones(), used)
            }
            _ => return Err(StorageError("unknown S_I storage kind")),
        };
        let (sa, sa_len, sa_consumed) = match sa_kind {
            0 => {
                let (v, used) = IntVecRef::from_words(sa_words)?;
                (SaRef::Packed(v), v.len(), used)
            }
            1 => {
                let (w, used) = WaveletTreeRef::from_words(sa_words)?;
                (SaRef::Wavelet(w), w.len(), used)
            }
            _ => return Err(StorageError("unknown S_α storage kind")),
        };
        if si_ones != sa_len {
            return Err(StorageError("S_α length does not match S_I leaves"));
        }
        if si_len == 0 {
            return Err(StorageError("S_I is empty"));
        }
        if labels.is_empty() {
            return Err(StorageError("label map is empty"));
        }
        Ok(Self {
            si,
            sa,
            labels,
            payload_words: si_consumed + sa_consumed + labels.len(),
            _marker: PhantomData,
        })
    }

    /// Total borrowed payload words (`S_I` + `S_α` + label map).
    #[must_use]
    pub fn payload_words(&self) -> usize {
        self.payload_words
    }

    /// The pointer ranges of every borrowed payload (`S_I`, `S_α`, label
    /// map), for zero-copy assertions in tests.
    #[must_use]
    pub fn payload_ptr_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let labels_start = self.labels.as_ptr() as usize;
        vec![
            match &self.si {
                SiRef::Plain(v) => v.payload_ptr_range(),
                SiRef::Rrr(v) => v.payload_ptr_range(),
            },
            match &self.sa {
                SaRef::Packed(v) => v.payload_ptr_range(),
                SaRef::Wavelet(w) => w.payload_ptr_range(),
            },
            labels_start..labels_start + std::mem::size_of_val(self.labels),
        ]
    }

    #[inline]
    fn decode_label(&self, symbol: u64) -> Option<NextHop> {
        let word = self.labels[symbol as usize];
        (word != u64::MAX).then(|| NextHop::new(word as u32))
    }

    /// Longest-prefix match — the identical fused walk as
    /// [`XbwFib::lookup`], over borrowed sections.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        let mut i = 0usize;
        let mut q = 0u8;
        loop {
            let (leaf, rank1) = self.si.access_rank1(i);
            if leaf {
                let symbol = self.sa.access(rank1);
                return self.decode_label(symbol);
            }
            debug_assert!(q < A::WIDTH, "interior node below maximum depth");
            // Bit i is 0 here, so rank0(i + 1) follows from rank1(i).
            let r = i + 1 - rank1;
            i = 2 * r - 1 + usize::from(addr.bit(q));
            q += 1;
        }
    }

    /// Batched longest-prefix match, interleaving [`XBW_BATCH_LANES`]
    /// rolling-refill walks on a plain shape string exactly like
    /// [`XbwFib::lookup_batch`] (the RRR backing stays scalar —
    /// decode-bound, nothing for the interleave to overlap).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        let out = &mut out[..addrs.len()];
        if matches!(self.si, SiRef::Rrr(_)) {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        self.interleaved_walk::<false>(addrs, out);
    }

    /// The shared rolling-refill walk kernel of [`Self::lookup_batch`]
    /// and [`Self::lookup_stream`] (see [`XbwFib::interleaved_walk`]).
    fn interleaved_walk<const PREFETCH: bool>(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        let n = addrs.len();
        let mut pos = [0usize; XBW_BATCH_LANES];
        let mut depth = [0u8; XBW_BATCH_LANES];
        // Index into `addrs` each lane is walking; `usize::MAX` = drained.
        let mut job = [usize::MAX; XBW_BATCH_LANES];
        let mut live = XBW_BATCH_LANES.min(n);
        for (lane, slot) in job.iter_mut().enumerate().take(live) {
            *slot = lane;
        }
        let mut next = live;
        while live > 0 {
            for lane in 0..XBW_BATCH_LANES {
                let j = job[lane];
                if j == usize::MAX {
                    continue;
                }
                let (leaf, rank1) = self.si.access_rank1(pos[lane]);
                if leaf {
                    let symbol = self.sa.access(rank1);
                    out[j] = self.decode_label(symbol);
                    if next < n {
                        job[lane] = next;
                        pos[lane] = 0;
                        depth[lane] = 0;
                        next += 1;
                    } else {
                        job[lane] = usize::MAX;
                        live -= 1;
                    }
                } else {
                    let r = pos[lane] + 1 - rank1;
                    pos[lane] = 2 * r - 1 + usize::from(addrs[j].bit(depth[lane]));
                    depth[lane] += 1;
                    if PREFETCH {
                        self.si.prefetch(pos[lane]);
                    }
                }
            }
        }
    }

    /// Hints the prefetcher at the top of the shape string (see
    /// [`XbwFib::prefetch`]).
    #[inline]
    pub fn prefetch(&self, _addr: A) {
        self.si.prefetch(0);
    }

    /// Software-pipelined batched lookup over borrowed sections (see
    /// [`XbwFib::lookup_stream`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-stream contract, not per-packet
        let out = &mut out[..addrs.len()];
        if matches!(self.si, SiRef::Rrr(_)) {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        // Below the residency threshold the whole shape string lives in
        // cache and the in-walk prefetch is pure overhead — identical
        // results either way, so take the plain interleaved path.
        if self.payload_words * 8 < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            return self.lookup_batch(addrs, out);
        }
        self.interleaved_walk::<true>(addrs, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    const ALL_STORAGES: [XbwStorage; 5] = [
        XbwStorage::Succinct,
        XbwStorage::Entropy,
        XbwStorage::Custom(SiStorage::Plain, SaStorage::WaveletBalanced),
        XbwStorage::Custom(SiStorage::Rrr, SaStorage::Packed),
        XbwStorage::Custom(SiStorage::Rrr, SaStorage::HuffmanPerLevel),
    ];

    #[test]
    fn fig2_transform_shape() {
        // Fig. 2 of the paper: S_I = 0 01 00 1111 (t = 9), S_α = 2 3221.
        let proper = ProperTrie::from_trie(&fig1_trie());
        let xbw = XbwFib::from_proper(&proper, XbwStorage::Succinct);
        assert_eq!(xbw.t_nodes(), 9);
        assert_eq!(xbw.n_leaves(), 5);
        assert_eq!(xbw.delta(), 3);
    }

    #[test]
    fn lookup_matches_trie_for_all_storages() {
        let trie = fig1_trie();
        for storage in ALL_STORAGES {
            let xbw = XbwFib::build(&trie, storage);
            for i in 0..2000u32 {
                let addr = i.wrapping_mul(0x9E37_79B9);
                assert_eq!(
                    xbw.lookup(addr),
                    trie.lookup(addr),
                    "{storage:?} addr {addr:#x}"
                );
            }
            for top in 0..=255u32 {
                let addr = top << 24;
                assert_eq!(
                    xbw.lookup(addr),
                    trie.lookup(addr),
                    "{storage:?} addr {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn empty_fib_returns_none() {
        let trie: BinaryTrie<u32> = BinaryTrie::new();
        for storage in ALL_STORAGES {
            let xbw = XbwFib::build(&trie, storage);
            assert_eq!(xbw.lookup(0), None);
            assert_eq!(xbw.lookup(u32::MAX), None);
            assert_eq!(xbw.n_leaves(), 1);
        }
    }

    #[test]
    fn default_route_only() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(3));
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        assert_eq!(xbw.lookup(123_456), Some(nh(3)));
        assert_eq!(xbw.delta(), 1);
    }

    #[test]
    fn bottom_leaves_lookup_as_none() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("128.0.0.0/1"), nh(1));
        for storage in ALL_STORAGES {
            let xbw = XbwFib::build(&trie, storage);
            assert_eq!(xbw.lookup(0x7FFF_FFFF), None, "{storage:?}");
            assert_eq!(xbw.lookup(0x8000_0000), Some(nh(1)), "{storage:?}");
        }
    }

    #[test]
    fn host_route_at_maximum_depth() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        trie.insert(p("255.255.255.255/32"), nh(2));
        for storage in ALL_STORAGES {
            let xbw = XbwFib::build(&trie, storage);
            assert_eq!(xbw.lookup(u32::MAX), Some(nh(2)), "{storage:?}");
            assert_eq!(xbw.lookup(u32::MAX - 1), Some(nh(1)), "{storage:?}");
        }
    }

    #[test]
    fn entropy_mode_is_smaller_on_skewed_labels() {
        // A FIB with ~94% of leaves on one next-hop out of 16: the entropy
        // mode must beat the succinct mode clearly. Large enough that the
        // o(n) directory overheads do not dominate.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(0));
        for i in 0..65_536u32 {
            let hop = if i % 16 == 0 { 1 + (i / 16) % 15 } else { 0 };
            trie.insert(Prefix4::new(i << 16, 16), nh(hop));
        }
        let succinct = XbwFib::build(&trie, XbwStorage::Succinct);
        let entropy = XbwFib::build(&trie, XbwStorage::Entropy);
        assert_eq!(succinct.lookup(0x1234_5678), entropy.lookup(0x1234_5678));
        let (ss, es) = (succinct.size_report(), entropy.size_report());
        assert!(
            es.sa_bits * 2 < ss.sa_bits,
            "Huffman S_α {} not ≪ packed S_α {}",
            es.sa_bits,
            ss.sa_bits
        );
    }

    #[test]
    fn size_close_to_entropy_bound() {
        // Lemma 3: total ≈ 2n + nH0 + o(n). Allow the o(n) overhead of the
        // practical structures a generous ×1.6 slack.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(0));
        for i in 0..8192u32 {
            trie.insert(
                Prefix4::new(i << 19, 13),
                nh(if i % 8 == 0 { 1 } else { 0 }),
            );
        }
        let metrics = crate::entropy::FibEntropy::of_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let total = xbw.size_report().total_bits() as f64;
        assert!(
            total < metrics.entropy_bits() * 1.6 + 4096.0,
            "XBW-b {} bits vs entropy bound {}",
            total,
            metrics.entropy_bits()
        );
    }

    #[test]
    fn per_level_mode_exploits_depth_context() {
        // Two depth regimes with disjoint alphabets (see the matching
        // entropy test): per-level H = 1 bit while the global mixture has
        // H0 ≈ 1.72, so the level-partitioned backend must win.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for i in 0..8192u32 {
            trie.insert(Prefix4::new(i << 18, 14), nh(i % 2));
        }
        for j in 0..2048u32 {
            trie.insert(Prefix4::new(0x8000_0000 | (j << 20), 12), nh(2 + j % 2));
        }
        let global = XbwFib::build(
            &trie,
            XbwStorage::Custom(SiStorage::Rrr, SaStorage::WaveletHuffmanRrr),
        );
        let leveled = XbwFib::build(
            &trie,
            XbwStorage::Custom(SiStorage::Rrr, SaStorage::HuffmanPerLevel),
        );
        // Equivalence first.
        for i in 0..3000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(leveled.lookup(addr), global.lookup(addr), "addr {addr:#x}");
        }
        let (g, l) = (global.size_report().sa_bits, leveled.size_report().sa_bits);
        assert!(
            l < g,
            "per-level S_α ({l} bits) should beat single-tree ({g} bits) on depth-dependent labels"
        );
    }

    #[test]
    fn traced_lookup_matches_plain_for_all_storages() {
        let trie = fig1_trie();
        for storage in ALL_STORAGES {
            let xbw = XbwFib::build(&trie, storage);
            for addr in [0u32, 0x2000_0000, 0x6000_0000, 0x9999_9999, u32::MAX] {
                let mut touches = Vec::new();
                let traced = xbw.lookup_traced(addr, &mut |off, sz| touches.push((off, sz)));
                assert_eq!(traced, xbw.lookup(addr), "{storage:?} addr {addr:#x}");
                assert!(!touches.is_empty(), "{storage:?} produced no accesses");
                let total_bytes = (xbw.si.size_bits().div_ceil(64) * 8
                    + (xbw.sa.size_bits().div_ceil(64) * 8).max(8))
                    as u64;
                for &(off, _) in &touches {
                    assert!(off < total_bytes, "touch {off} outside the modeled image");
                }
            }
        }
    }

    #[test]
    fn ipv6_lookup() {
        let mut trie: BinaryTrie<u128> = BinaryTrie::new();
        let p1: fib_trie::Prefix6 = "2001:db8::/32".parse().unwrap();
        let p2: fib_trie::Prefix6 = "2001:db8::/64".parse().unwrap();
        trie.insert(p1, nh(1));
        trie.insert(p2, nh(2));
        let xbw: XbwFib<u128> = XbwFib::build(&trie, XbwStorage::Entropy);
        let a: u128 = "2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap().into();
        let b: u128 = "2001:db8:0:1::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        assert_eq!(xbw.lookup(a), Some(nh(2)));
        assert_eq!(xbw.lookup(b), Some(nh(1)));
    }
}
