//! Traffic-aware hot-path compilation: the pinned hot slab.
//!
//! BENCH_lookup shows every engine paying a 1.7–2.4x zipf penalty over
//! uniform keys, proved (PR 5's dedup control) to be *depth bias*: popular
//! destinations match deep prefixes, so the skewed trace walks more levels
//! per packet, not colder cache lines. The paper's λ-optimization cannot
//! see this — Eqs. (2)/(3) weight every address equally.
//!
//! This module spends a measured, bounded slice of the structural slack on
//! the blocks traffic actually hits. A [`HotSlab`] is a small open-addressed
//! direct-index table over *pure* address blocks: a block (top `D` bits) is
//! pure when every address inside it shares one longest-prefix-match
//! answer, which [`BinaryTrie::block_resolution`] decides exactly. The
//! [`HotSlab::compile`] pass walks a merged heat summary hottest-first
//! (`fib-workload`'s `HeatSummary::entries`, but any `(key, weight)` list
//! works) and pins pure blocks until the entry budget is spent.
//!
//! [`HotFib`] composes the slab in front of any engine: a probe is one
//! hash + at most [`HOT_PROBE`] cache-adjacent slot reads, and a hit skips
//! the compressed walk entirely while remaining bit-identical to it —
//! impure blocks are never promoted, so the slab can only answer what the
//! full walk would. Batched lookups compact slab misses into sub-batches
//! so the inner engine keeps its interleaved multi-lane kernels.
//!
//! Keys use the same encoding as `fib_workload::heat::heat_key` — the top
//! `D` address bits, MSB-aligned in a `u64` — so a sketch recorded at depth
//! `D` feeds a slab compiled at depth `D` with no translation.

use std::marker::PhantomData;

use fib_trie::{Address, BinaryTrie, NextHop};

use crate::engine::FibLookup;

/// Maximum slab block depth (keys keep their low 8 bits free for the
/// occupancy tag; matches `fib_workload::heat::MAX_HEAT_DEPTH`).
pub const MAX_HOT_DEPTH: u8 = 56;

/// Bounded probe length for slab lookups and inserts.
pub const HOT_PROBE: usize = 8;

/// Low bit of a key word marks the slot occupied.
const OCCUPIED: u64 = 1;

/// Label word encoding "the block matches no route" (distinct from an
/// empty slot, whose *key* word is zero).
const NO_ROUTE: u64 = u64::MAX;

/// Truncates `addr` to its top `depth` bits, MSB-aligned in a `u64` — the
/// slab's key function, identical to `fib_workload::heat::heat_key`.
///
/// # Panics
/// Panics if `depth` is 0 or exceeds [`MAX_HOT_DEPTH`] or the address
/// width.
#[must_use]
#[inline]
pub fn hot_key<A: Address>(addr: A, depth: u8) -> u64 {
    debug_assert!(
        depth > 0 && depth <= MAX_HOT_DEPTH && depth <= A::WIDTH,
        "hot depth out of range"
    );
    let msb = addr.to_u128() << (128 - u32::from(A::WIDTH));
    let top = (msb >> 64) as u64;
    top & (u64::MAX << (64 - u32::from(depth)))
}

/// Reconstructs the block base address from a slab key.
#[must_use]
#[inline]
pub(crate) fn key_addr<A: Address>(key: u64) -> A {
    A::from_u128((u128::from(key) << 64) >> (128 - u32::from(A::WIDTH)))
}

/// Finalizer-quality 64-bit mix (the murmur3/splitmix avalanche) — cheap
/// enough for one hash per packet, unlike byte-wise FNV.
#[inline]
fn mix(key: u64) -> u64 {
    let mut x = key;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Parameters of the hot-layout pass.
#[derive(Clone, Copy, Debug)]
pub struct HotConfig {
    /// Block depth `D` (top bits pinned per entry).
    pub depth: u8,
    /// Maximum promoted blocks.
    pub max_entries: usize,
}

impl HotConfig {
    /// Defaults per address width: depth 24 for v4 (the classic DIR-24
    /// cut, below which pure blocks are plentiful), 48 for v6, 4096
    /// entries (64 KiB of slab — L2-resident).
    #[must_use]
    pub fn for_width(width: u8) -> Self {
        Self {
            depth: if width > 32 { 48 } else { 24 },
            max_entries: 4096,
        }
    }
}

/// Outcome statistics of a [`HotSlab::compile`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct HotStats {
    /// Blocks promoted into the slab.
    pub promoted: usize,
    /// Hot blocks skipped because a longer route splits them.
    pub impure: usize,
    /// Pure blocks dropped by probe-limit collisions (table pressure).
    pub dropped: usize,
    /// Fraction of the summary's traffic weight the slab now answers.
    pub coverage: f64,
}

/// A pinned direct-index table over pure address blocks.
///
/// Layout (also its image-section payload): an 8-word meta block
/// `[depth, capacity, occupied, 0, 0, 0, 0, 0]` followed by `2 * capacity`
/// slot words, slot `i` = `(key | 1, label)` with `label = u64::MAX`
/// meaning "matches no route". Capacity is a power of two.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSlab {
    depth: u8,
    mask: u64,
    occupied: usize,
    /// `2 * capacity` slot words.
    slots: Vec<u64>,
}

impl HotSlab {
    /// Compiles a slab from a control trie and `(key, weight)` heat
    /// entries, hottest-first (a `HeatSummary::entries()` slice verbatim).
    /// Keys must be at `config.depth`.
    ///
    /// # Panics
    /// Panics if `config.depth` is 0 or exceeds [`MAX_HOT_DEPTH`] or the
    /// address width, or if `config.max_entries` is 0.
    #[must_use]
    pub fn compile<A: Address>(
        trie: &BinaryTrie<A>,
        heat: &[(u64, u64)],
        config: &HotConfig,
    ) -> (Self, HotStats) {
        let depth = config.depth;
        assert!(
            depth > 0 && depth <= MAX_HOT_DEPTH && depth <= A::WIDTH,
            "hot depth {depth} out of range for width {}",
            A::WIDTH
        );
        assert!(config.max_entries > 0, "hot slab needs a positive budget");
        // Load factor ≤ 1/2 keeps the bounded probe effective.
        let cap = (config.max_entries * 2).next_power_of_two();
        let mut slab = Self {
            depth,
            mask: cap as u64 - 1,
            occupied: 0,
            slots: vec![0u64; 2 * cap],
        };
        let mut stats = HotStats::default();
        let total_weight: u64 = heat.iter().map(|&(_, w)| w).sum();
        let mut covered: u64 = 0;
        let key_mask = u64::MAX << (64 - u32::from(depth));
        for &(key, weight) in heat {
            if stats.promoted >= config.max_entries {
                break;
            }
            if key & !key_mask != 0 {
                // Key deeper than the slab depth (foreign summary) —
                // treat its block as unresolvable rather than guessing.
                stats.impure += 1;
                continue;
            }
            match trie.block_resolution(key_addr::<A>(key), depth) {
                None => stats.impure += 1,
                Some(answer) => {
                    if slab.insert(key, answer) {
                        stats.promoted += 1;
                        covered += weight;
                    } else {
                        stats.dropped += 1;
                    }
                }
            }
        }
        stats.coverage = if total_weight == 0 {
            0.0
        } else {
            covered as f64 / total_weight as f64
        };
        (slab, stats)
    }

    /// An empty slab at `depth` (never answers; useful as a neutral
    /// element for tests and unheated builds).
    #[must_use]
    pub fn empty(depth: u8) -> Self {
        Self {
            depth,
            mask: 0,
            occupied: 0,
            slots: vec![0u64; 2],
        }
    }

    fn insert(&mut self, key: u64, answer: Option<NextHop>) -> bool {
        let tagged = key | OCCUPIED;
        let label = answer.map_or(NO_ROUTE, |nh| u64::from(nh.index()));
        let mut idx = mix(key) & self.mask;
        for _ in 0..HOT_PROBE {
            let slot = 2 * idx as usize;
            if self.slots[slot] == 0 {
                self.slots[slot] = tagged;
                self.slots[slot + 1] = label;
                self.occupied += 1;
                return true;
            }
            if self.slots[slot] == tagged {
                return true; // duplicate key in the summary
            }
            idx = (idx + 1) & self.mask;
        }
        false
    }

    /// The block depth.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Promoted block count.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Slot capacity (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        (self.mask as usize) + 1
    }

    /// Slab bytes (meta + slots), the number `size_bytes` accounts.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        (8 + self.slots.len()) * 8
    }

    /// The borrowed view all query code runs on.
    #[must_use]
    #[inline]
    pub fn as_ref(&self) -> HotSlabRef<'_> {
        HotSlabRef {
            depth: self.depth,
            mask: self.mask,
            slots: &self.slots,
        }
    }

    /// Serializes as an image-section payload (meta block + slots).
    pub fn write_words(&self, out: &mut Vec<u64>) {
        out.push(u64::from(self.depth));
        out.push(self.mask + 1);
        out.push(self.occupied as u64);
        out.extend_from_slice(&[0u64; 5]);
        out.extend_from_slice(&self.slots);
    }

    /// Parses a section payload written by [`HotSlab::write_words`],
    /// re-owning the slot words.
    ///
    /// # Errors
    /// [`fib_succinct::storage::StorageError`] on any malformed field.
    pub fn from_words(words: &[u64]) -> Result<Self, fib_succinct::storage::StorageError> {
        let r = HotSlabRef::from_words(words)?;
        Ok(Self {
            depth: r.depth,
            mask: r.mask,
            occupied: words[2] as usize,
            slots: r.slots.to_vec(), // fibcheck: allow(hot-path): load-time parse, not packet path
        })
    }
}

/// Zero-copy view of a [`HotSlab`] (e.g. over an image section).
#[derive(Clone, Copy, Debug)]
pub struct HotSlabRef<'a> {
    depth: u8,
    mask: u64,
    slots: &'a [u64],
}

impl<'a> HotSlabRef<'a> {
    /// Validating parse of a [`sections::HOT_SLAB`] payload.
    ///
    /// [`sections::HOT_SLAB`]: crate::image::sections::HOT_SLAB
    ///
    /// # Errors
    /// [`fib_succinct::storage::StorageError`] on any malformed field.
    pub fn from_words(words: &'a [u64]) -> Result<Self, fib_succinct::storage::StorageError> {
        use fib_succinct::storage::StorageError;
        if words.len() < 8 {
            return Err(StorageError("hot slab meta block truncated"));
        }
        let depth = words[0];
        if depth == 0 || depth > u64::from(MAX_HOT_DEPTH) {
            return Err(StorageError("hot slab depth out of range"));
        }
        let cap = words[1];
        if cap == 0 || !cap.is_power_of_two() || cap > 1 << 32 {
            return Err(StorageError("hot slab capacity not a power of two"));
        }
        let cap_us = cap as usize;
        if words.len() != 8 + 2 * cap_us {
            return Err(StorageError("hot slab payload length mismatch"));
        }
        let slots = &words[8..];
        let occupied = words[2];
        let key_mask = u64::MAX << (64 - depth as u32);
        let mut seen = 0u64;
        for slot in slots.chunks_exact(2) {
            let (key_word, label) = (slot[0], slot[1]);
            if key_word == 0 {
                if label != 0 {
                    return Err(StorageError("hot slab empty slot carries a label"));
                }
                continue;
            }
            seen += 1;
            if key_word & OCCUPIED == 0 || key_word & !(key_mask | OCCUPIED) != 0 {
                return Err(StorageError("hot slab key not depth-aligned"));
            }
            if label != NO_ROUTE && label > u64::from(u32::MAX - 1) {
                return Err(StorageError("hot slab label out of range"));
            }
        }
        if seen != occupied {
            return Err(StorageError("hot slab occupancy claim mismatch"));
        }
        Ok(Self {
            depth: depth as u8,
            mask: cap - 1,
            slots,
        })
    }

    /// The block depth.
    #[must_use]
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Slot capacity of the viewed slab.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.mask as usize + 1
    }

    /// Section bytes of the viewed slab (meta block + slots).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        (8 + 2 * self.capacity()) * 8
    }

    /// Probes the slab for the block covering `key` (which must come from
    /// [`hot_key`] at this slab's depth): `Some(answer)` pins the result,
    /// `None` falls through to the full walk.
    #[must_use]
    #[inline]
    pub fn probe(&self, key: u64) -> Option<Option<NextHop>> {
        let tagged = key | OCCUPIED;
        let mut idx = mix(key) & self.mask;
        for _ in 0..HOT_PROBE {
            let slot = 2 * idx as usize;
            let word = self.slots[slot];
            if word == 0 {
                return None;
            }
            if word == tagged {
                let label = self.slots[slot + 1];
                return Some((label != NO_ROUTE).then(|| NextHop::new(label as u32)));
            }
            idx = (idx + 1) & self.mask;
        }
        None
    }

    /// Probes with an address instead of a pre-computed key.
    #[must_use]
    #[inline]
    pub fn probe_addr<A: Address>(&self, addr: A) -> Option<Option<NextHop>> {
        self.probe(hot_key(addr, self.depth))
    }

    /// Iterates `(key, answer)` over occupied slots (lint and tooling).
    pub fn entries(&self) -> impl Iterator<Item = (u64, Option<NextHop>)> + 'a {
        self.slots
            .chunks_exact(2)
            .filter(|slot| slot[0] != 0)
            .map(|slot| {
                let key = slot[0] & !OCCUPIED;
                let label = slot[1];
                (key, (label != NO_ROUTE).then(|| NextHop::new(label as u32)))
            })
    }
}

/// Sub-batch width of the miss-compaction path: big enough to keep the
/// inner engine's interleaved kernels fed, small enough for the stack.
const HOT_CHUNK: usize = 64;

/// Lookups per adaptive-gate measurement window while probing.
const GATE_WINDOW: u64 = 4096;

/// Sampled probes per re-arm evaluation while bypassed.
const GATE_REARM_WINDOW: u64 = 512;

/// While bypassed, 1 in this many *batched* lookups still probes the
/// slab so the gate can re-arm when traffic shifts back onto pinned
/// blocks. 64 keeps the bypassed-mode cost — probe time *and* the cache
/// lines the probes drag in over the inner engine's working set — under
/// a couple percent, while a full re-arm evaluation still fits in ~33k
/// lookups (milliseconds at forwarding rates). The scalar path carries
/// no sampling at all: its bypass budget is one load and one branch.
const GATE_SAMPLE: u64 = 64;

/// The runtime hit-rate gate in front of a slab probe.
///
/// BENCH_lookup's committed v3 run showed `layout=hot` *losing* to base
/// on fast engines under keys that rarely hit the slab (binary-trie
/// uniform: 64.4 ns hot vs 45.7 ns base): every lookup paid the probe,
/// few were answered by it. The gate makes the probe conditional on its
/// measured worth: cheap relaxed window counters track the slab hit
/// rate, and when it drops below a engine-specific break-even threshold
/// (calibrated at construction from the measured probe and inner-walk
/// costs) the probe is bypassed entirely. While bypassed, the batch
/// paths still probe 1 in [`GATE_SAMPLE`] lookups so a traffic shift
/// back onto the pinned blocks re-arms the fast path (the scalar path
/// stays sampling-free — see [`GATE_SAMPLE`]). Answers are bit-identical
/// in both modes — the gate only decides *whether the probe is worth
/// it*.
#[derive(Debug)]
struct Gate {
    /// Probes observed in the current window.
    probes: std::sync::atomic::AtomicU64,
    /// Probe hits observed in the current window.
    hits: std::sync::atomic::AtomicU64,
    /// 1 when the probe is bypassed, 0 when probing.
    bypassed: std::sync::atomic::AtomicU64,
    /// Break-even slab hit rate ×1000: probe only while the measured
    /// rate stays at or above it.
    threshold_millis: u64,
}

impl Gate {
    fn new(threshold_millis: u64) -> Self {
        Self {
            probes: std::sync::atomic::AtomicU64::new(0),
            hits: std::sync::atomic::AtomicU64::new(0),
            bypassed: std::sync::atomic::AtomicU64::new(0),
            threshold_millis,
        }
    }

    #[inline]
    fn is_bypassed(&self) -> bool {
        use std::sync::atomic::Ordering;
        self.bypassed.load(Ordering::Relaxed) != 0 // ordering: Relaxed — heuristic mode flag; a stale read only delays the mode switch by one probe
    }

    /// Accounts `probes` slab probes of which `hits` hit, and flips the
    /// mode at window boundaries. Concurrent window resets race benignly:
    /// the counters are a heuristic rate estimate, not bookkeeping.
    #[inline]
    fn record(&self, probes: u64, hits: u64) {
        use std::sync::atomic::Ordering;
        let p = self.probes.fetch_add(probes, Ordering::Relaxed) + probes; // ordering: Relaxed — window counter; lost updates only stretch the window
        let h = self.hits.fetch_add(hits, Ordering::Relaxed) + hits; // ordering: Relaxed — window counter; lost updates only stretch the window
        let window = if self.is_bypassed() {
            GATE_REARM_WINDOW
        } else {
            GATE_WINDOW
        };
        if p >= window {
            let below = h.saturating_mul(1000) < self.threshold_millis.saturating_mul(p);
            self.bypassed.store(u64::from(below), Ordering::Relaxed); // ordering: Relaxed — heuristic mode flag; readers tolerate staleness
            self.probes.store(0, Ordering::Relaxed); // ordering: Relaxed — window reset; racing adds fold into the next window
            self.hits.store(0, Ordering::Relaxed); // ordering: Relaxed — window reset; racing adds fold into the next window
        }
    }
}

/// Calibrates the gate's break-even hit rate for `slab` over `inner`:
/// times ~1k slab probes against ~1k inner walks and returns the hit
/// rate ×1000 below which probing costs more than it saves
/// (`1.5 · t_probe / t_inner`, clamped to `[0.05, 0.95]` — the 1.5
/// margin keeps the gate from flapping at exact break-even).
fn calibrate_gate<A: Address, E: FibLookup<A>>(slab: &HotSlab, inner: &E) -> u64 {
    const SAMPLES: u64 = 1024;
    let view = slab.as_ref();
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..SAMPLES {
        let key = mix(i) & (u64::MAX << (64 - u32::from(MAX_HOT_DEPTH)));
        acc ^= match view.probe(key) {
            Some(Some(nh)) => u64::from(nh.index()),
            Some(None) => 1,
            None => 2,
        };
    }
    std::hint::black_box(acc);
    let t_probe = start.elapsed().as_nanos().max(1) as f64 / SAMPLES as f64;
    let mask = if A::WIDTH >= 128 {
        u128::MAX
    } else {
        (1u128 << A::WIDTH) - 1
    };
    let start = std::time::Instant::now();
    let mut acc = 0u64;
    for i in 0..SAMPLES {
        let addr = A::from_u128(u128::from(mix(i | 1 << 60)) & mask);
        acc ^= inner.lookup(addr).map_or(0, |nh| u64::from(nh.index()));
    }
    std::hint::black_box(acc);
    let t_inner = start.elapsed().as_nanos().max(1) as f64 / SAMPLES as f64;
    let ratio = (1.5 * t_probe / t_inner).clamp(0.05, 0.95);
    (ratio * 1000.0) as u64
}

/// An engine with a hot slab pinned in front of it.
///
/// Every lookup probes the slab first; hits answer in O(1) without
/// touching the compressed structure, misses run the inner engine
/// unchanged. Compilation promotes only pure blocks, so the composite is
/// extensionally equal to the inner engine — the equivalence tests pin
/// this bit-for-bit.
///
/// An adaptive [`Gate`] watches the measured slab hit rate and bypasses
/// the probe when it is not paying for itself, so `layout=hot` never
/// loses to the bare engine on traffic the slab cannot serve.
#[derive(Debug)]
pub struct HotFib<A: Address, E: FibLookup<A>> {
    inner: E,
    slab: HotSlab,
    gate: Gate,
    _marker: PhantomData<A>,
}

impl<A: Address, E: FibLookup<A> + Clone> Clone for HotFib<A, E> {
    /// Clones carry the calibrated threshold but start with fresh window
    /// counters in probing mode.
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            slab: self.slab.clone(),
            gate: Gate::new(self.gate.threshold_millis),
            _marker: PhantomData,
        }
    }
}

impl<A: Address, E: FibLookup<A>> HotFib<A, E> {
    /// Wraps `inner` with a compiled slab, calibrating the adaptive
    /// probe gate from the measured probe and inner-walk costs.
    #[must_use]
    pub fn new(inner: E, slab: HotSlab) -> Self {
        let threshold = calibrate_gate::<A, E>(&slab, &inner);
        Self {
            inner,
            slab,
            gate: Gate::new(threshold),
            _marker: PhantomData,
        }
    }

    /// The slab.
    #[must_use]
    pub fn slab(&self) -> &HotSlab {
        &self.slab
    }

    /// The wrapped engine.
    #[must_use]
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner engine.
    #[must_use]
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Whether the adaptive gate currently bypasses the slab probe.
    #[must_use]
    pub fn gate_bypassed(&self) -> bool {
        self.gate.is_bypassed()
    }

    /// The calibrated break-even slab hit rate, ×1000.
    #[must_use]
    pub fn gate_threshold_millis(&self) -> u64 {
        self.gate.threshold_millis
    }

    /// While bypassed, probes a 1-in-[`GATE_SAMPLE`] subsample of a batch
    /// purely for the hit-rate estimate; answers still come from the
    /// inner engine's batch kernel.
    #[inline]
    fn sampled_bypass_probe(&self, addrs: &[A]) {
        let view = self.slab.as_ref();
        let mut probes = 0u64;
        let mut hits = 0u64;
        for addr in addrs.iter().step_by(GATE_SAMPLE as usize) {
            probes += 1;
            hits += u64::from(view.probe(hot_key(*addr, self.slab.depth)).is_some());
        }
        if probes > 0 {
            self.gate.record(probes, hits);
        }
    }
}

/// Resolves `addrs` through a slab view with miss compaction, delegating
/// misses to `batch` in sub-batches — shared by [`HotFib`], the
/// image-view composition in `crate::image`, and `fib-router`'s hot
/// epoch snapshots. `out` must be at least as long as `addrs` (debug
/// asserted; callers own the public-API contract check).
#[inline]
pub fn slab_batch<A: Address>(
    slab: HotSlabRef<'_>,
    addrs: &[A],
    out: &mut [Option<NextHop>],
    mut batch: impl FnMut(&[A], &mut [Option<NextHop>]),
) {
    debug_assert!(out.len() >= addrs.len(), "output buffer too small");
    let depth = slab.depth;
    let mut miss_addr = [A::default(); HOT_CHUNK];
    let mut miss_out = [None; HOT_CHUNK];
    let mut miss_pos = [0usize; HOT_CHUNK];
    for (chunk_idx, chunk) in addrs.chunks(HOT_CHUNK).enumerate() {
        let base = chunk_idx * HOT_CHUNK;
        let mut misses = 0usize;
        for (i, &addr) in chunk.iter().enumerate() {
            match slab.probe(hot_key(addr, depth)) {
                Some(answer) => out[base + i] = answer,
                None => {
                    miss_addr[misses] = addr;
                    miss_pos[misses] = base + i;
                    misses += 1;
                }
            }
        }
        if misses > 0 {
            batch(&miss_addr[..misses], &mut miss_out[..misses]);
            for i in 0..misses {
                out[miss_pos[i]] = miss_out[i];
            }
        }
    }
}

impl<A: Address, E: FibLookup<A>> FibLookup<A> for HotFib<A, E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    #[inline]
    fn lookup(&self, addr: A) -> Option<NextHop> {
        if self.gate.is_bypassed() {
            // No sampling here: the bypassed scalar path is exactly one
            // relaxed load and a predicted branch in front of the inner
            // walk — anything more (a counter RMW, even one multiply)
            // measurably regresses the fastest engines past the ≤1.1×
            // hot-layout budget. Re-arming is driven by the batch paths'
            // stride sampling; a scalar-only workload that goes bypassed
            // stays bypassed until traffic reaches a batch entry point.
            return self.inner.lookup(addr);
        }
        match self.slab.as_ref().probe(hot_key(addr, self.slab.depth)) {
            Some(answer) => {
                self.gate.record(1, 1);
                answer
            }
            None => {
                self.gate.record(1, 0);
                self.inner.lookup(addr)
            }
        }
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        if self.gate.is_bypassed() {
            self.sampled_bypass_probe(addrs);
            self.inner.lookup_batch(addrs, out);
            return;
        }
        let mut missed = 0u64;
        slab_batch(self.slab.as_ref(), addrs, out, |a, o| {
            missed += a.len() as u64;
            self.inner.lookup_batch(a, o);
        });
        self.gate
            .record(addrs.len() as u64, addrs.len() as u64 - missed);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        if self.gate.is_bypassed() {
            self.sampled_bypass_probe(addrs);
            self.inner.lookup_stream(addrs, out);
            return;
        }
        let mut missed = 0u64;
        slab_batch(self.slab.as_ref(), addrs, out, |a, o| {
            missed += a.len() as u64;
            self.inner.lookup_stream(a, o);
        });
        self.gate
            .record(addrs.len() as u64, addrs.len() as u64 - missed);
    }

    #[inline]
    fn prefetch(&self, addr: A) {
        self.inner.prefetch(addr);
    }

    fn size_bytes(&self) -> usize {
        self.inner.size_bytes() + self.slab.size_bytes()
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        self.inner.lookup_traced(addr, sink)
    }

    fn traces_memory(&self) -> bool {
        self.inner.traces_memory()
    }
}

/// Traffic mass per matched-prefix depth, from heat entries and the
/// control trie: `mass[d]` is the fraction of recorded traffic whose
/// longest-prefix match sits at depth `d`. Feeds
/// [`crate::lambda::barrier_traffic`].
#[must_use]
pub fn depth_mass_from_heat<A: Address>(trie: &BinaryTrie<A>, heat: &[(u64, u64)]) -> Vec<f64> {
    let mut mass = vec![0u64; usize::from(A::WIDTH) + 1];
    let mut total = 0u64;
    for &(key, weight) in heat {
        let (_, depth) = trie.lookup_with_depth(key_addr::<A>(key));
        mass[depth as usize] += weight;
        total += weight;
    }
    if total == 0 {
        return vec![0.0; usize::from(A::WIDTH) + 1];
    }
    mass.into_iter().map(|m| m as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BuildConfig, FibBuild};
    use crate::pdag::PrefixDag;
    use fib_trie::Prefix;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn sample_trie() -> BinaryTrie<u32> {
        let mut t = BinaryTrie::new();
        t.insert("0.0.0.0/0".parse::<Prefix<u32>>().unwrap(), nh(1));
        t.insert("10.0.0.0/8".parse::<Prefix<u32>>().unwrap(), nh(2));
        t.insert("10.1.0.0/16".parse::<Prefix<u32>>().unwrap(), nh(3));
        t.insert("10.1.2.0/24".parse::<Prefix<u32>>().unwrap(), nh(4));
        t.insert("10.1.2.128/25".parse::<Prefix<u32>>().unwrap(), nh(5));
        t
    }

    #[test]
    fn compile_promotes_pure_skips_impure() {
        let trie = sample_trie();
        let cfg = HotConfig {
            depth: 24,
            max_entries: 16,
        };
        // 10.1.3.0/24 block is pure (answer nh(3)); 10.1.2.0/24 is split
        // by the /25.
        let pure_key = hot_key(0x0A01_0300u32, 24);
        let impure_key = hot_key(0x0A01_0200u32, 24);
        let heat = [(pure_key, 100u64), (impure_key, 50)];
        let (slab, stats) = HotSlab::compile(&trie, &heat, &cfg);
        assert_eq!(stats.promoted, 1);
        assert_eq!(stats.impure, 1);
        assert_eq!(stats.dropped, 0);
        assert!((stats.coverage - 100.0 / 150.0).abs() < 1e-12);
        let r = slab.as_ref();
        assert_eq!(r.probe(pure_key), Some(Some(nh(3))));
        assert_eq!(r.probe(impure_key), None);
        assert_eq!(r.probe(hot_key(0x0B00_0000u32, 24)), None);
    }

    #[test]
    fn hotfib_is_extensionally_equal() {
        let trie = sample_trie();
        let cfg = HotConfig {
            depth: 24,
            max_entries: 64,
        };
        // Promote every /24 block under 10.1.0.0/16 plus some cold space.
        let heat: Vec<(u64, u64)> = (0..=255u32)
            .map(|b| (hot_key(0x0A01_0000u32 | (b << 8), 24), 10))
            .chain([(hot_key(0xC0A8_0000u32, 24), 3)])
            .collect();
        let (slab, stats) = HotSlab::compile(&trie, &heat, &cfg);
        assert!(stats.promoted > 0);
        let dag = PrefixDag::build(&trie, &BuildConfig::default());
        let hot = HotFib::new(dag, slab);
        let probes: Vec<u32> = (0..4096u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .chain((0..=255).map(|b| 0x0A01_0000 | (b << 8) | (b & 0xFF)))
            .collect();
        let mut got = vec![None; probes.len()];
        let mut want = vec![None; probes.len()];
        hot.lookup_batch(&probes, &mut got);
        hot.inner().lookup_batch(&probes, &mut want);
        assert_eq!(got, want);
        for &p in &probes {
            assert_eq!(hot.lookup(p), trie.lookup(p), "addr {p:#x}");
        }
        let mut streamed = vec![None; probes.len()];
        hot.lookup_stream(&probes, &mut streamed);
        assert_eq!(streamed, want);
    }

    #[test]
    fn slab_words_roundtrip_and_validate() {
        let trie = sample_trie();
        let cfg = HotConfig {
            depth: 24,
            max_entries: 8,
        };
        let heat = [(hot_key(0x0A01_0300u32, 24), 7u64)];
        let (slab, _) = HotSlab::compile(&trie, &heat, &cfg);
        let mut words = Vec::new();
        slab.write_words(&mut words);
        let back = HotSlab::from_words(&words).unwrap();
        assert_eq!(back, slab);
        let r = HotSlabRef::from_words(&words).unwrap();
        assert_eq!(r.probe(hot_key(0x0A01_0300u32, 24)), Some(Some(nh(3))));
        // Corrupt: occupancy claim.
        let mut bad = words.clone();
        bad[2] += 1;
        assert!(HotSlabRef::from_words(&bad).is_err());
        // Corrupt: key below the depth mask.
        let mut bad = words.clone();
        let slot = bad[8..].iter().position(|&w| w != 0).unwrap() + 8;
        bad[slot] |= 1 << 8;
        assert!(HotSlabRef::from_words(&bad).is_err());
        // Corrupt: truncated payload.
        assert!(HotSlabRef::from_words(&words[..words.len() - 1]).is_err());
        // Corrupt: capacity not a power of two.
        let mut bad = words;
        bad[1] = 3;
        assert!(HotSlabRef::from_words(&bad).is_err());
    }

    #[test]
    fn empty_slab_never_answers() {
        let slab = HotSlab::empty(24);
        assert_eq!(slab.as_ref().probe(hot_key(0x0A000000u32, 24)), None);
        assert_eq!(slab.occupied(), 0);
    }

    #[test]
    fn depth_mass_tracks_matched_depth() {
        let trie = sample_trie();
        let heat = [
            (hot_key(0x0A01_0280u32, 24), 60u64), // matches the /24 (block of the /25's parent)
            (hot_key(0xC000_0000u32, 24), 40),    // falls to the default route
        ];
        let mass = depth_mass_from_heat(&trie, &heat);
        assert!((mass.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((mass[24] - 0.6).abs() < 1e-12);
        assert!((mass[0] - 0.4).abs() < 1e-12);
    }

    /// Builds a HotFib whose slab pins the 10.1.x.0/24 blocks, over the
    /// folded sample trie.
    fn gated_fib() -> HotFib<u32, PrefixDag<u32>> {
        let trie = sample_trie();
        let cfg = HotConfig {
            depth: 24,
            max_entries: 64,
        };
        let heat: Vec<(u64, u64)> = (0..=31u32)
            .map(|b| (hot_key(0x0A01_0000u32 | (b << 8), 24), 10))
            .collect();
        let (slab, _) = HotSlab::compile(&trie, &heat, &cfg);
        let dag = PrefixDag::build(&trie, &BuildConfig::default());
        HotFib::new(dag, slab)
    }

    #[test]
    fn gate_bypasses_on_cold_traffic_and_rearms_on_hot() {
        let hot = gated_fib();
        assert!(!hot.gate_bypassed(), "gate starts in probing mode");
        let threshold = hot.gate_threshold_millis();
        assert!(
            (50..=950).contains(&threshold),
            "threshold {threshold} clamped"
        );
        // All-miss traffic: after one window the probe is bypassed.
        let cold: Vec<u32> = (0..GATE_WINDOW as u32 + 64)
            .map(|i| 0xC000_0000 | i.wrapping_mul(0x9E37_79B9) >> 8)
            .collect();
        let mut out = vec![None; cold.len()];
        hot.lookup_batch(&cold, &mut out);
        assert!(hot.gate_bypassed(), "0% hit rate must bypass the probe");
        // Answers stay bit-identical while bypassed.
        for &addr in cold.iter().take(256) {
            assert_eq!(hot.lookup(addr), hot.inner().lookup(addr));
        }
        // All-hit traffic: sampled probes see a 100% rate and re-arm.
        let warm: Vec<u32> = (0..(GATE_REARM_WINDOW * GATE_SAMPLE) as u32 + 64)
            .map(|i| 0x0A01_0000 | ((i & 31) << 8) | (i & 0xFF))
            .collect();
        let mut out = vec![None; warm.len()];
        hot.lookup_batch(&warm, &mut out);
        assert!(!hot.gate_bypassed(), "100% hit rate must re-arm the probe");
        for &addr in warm.iter().take(256) {
            assert_eq!(hot.lookup(addr), hot.inner().lookup(addr));
        }
    }

    #[test]
    fn gate_scalar_path_bypasses_and_stays_correct() {
        let hot = gated_fib();
        let trie = sample_trie();
        // Scalar cold lookups flip the gate too (batch and scalar share
        // the same window counters).
        for i in 0..(GATE_WINDOW + 128) {
            let addr = 0xC000_0000u32 | (i as u32).wrapping_mul(0x85EB_CA6B) >> 8;
            assert_eq!(hot.lookup(addr), trie.lookup(addr));
        }
        assert!(hot.gate_bypassed());
        // While bypassed, every answer still matches the oracle — both
        // sampled-probe and straight-through lookups.
        for i in 0..4096u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(hot.lookup(addr), trie.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn gate_clone_resets_counters_keeps_threshold() {
        let hot = gated_fib();
        let cold: Vec<u32> = (0..GATE_WINDOW as u32 + 64)
            .map(|i| 0xC000_0000 | i.wrapping_mul(0x9E37_79B9) >> 8)
            .collect();
        let mut out = vec![None; cold.len()];
        hot.lookup_batch(&cold, &mut out);
        assert!(hot.gate_bypassed());
        let cloned = hot.clone();
        assert!(!cloned.gate_bypassed(), "clone starts probing");
        assert_eq!(cloned.gate_threshold_millis(), hot.gate_threshold_millis());
    }

    #[test]
    fn v6_slab_works() {
        let mut t: BinaryTrie<u128> = BinaryTrie::new();
        t.insert(Prefix::new(0x2001u128 << 112, 16), nh(1));
        t.insert(Prefix::new(0x2001_0db8u128 << 96, 32), nh(2));
        let cfg = HotConfig::for_width(128);
        assert_eq!(cfg.depth, 48);
        let addr = 0x2001_0db8_0001u128 << 80;
        let heat = [(hot_key(addr, 48), 5u64)];
        let (slab, stats) = HotSlab::compile(&t, &heat, &cfg);
        assert_eq!(stats.promoted, 1);
        assert_eq!(slab.as_ref().probe_addr(addr | 0xFFFF), Some(Some(nh(2))));
    }
}
