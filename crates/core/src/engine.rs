//! A uniform interface over every FIB representation in the workspace, so
//! the benchmark harnesses and differential tests treat them
//! interchangeably.

use fib_trie::{Address, BinaryTrie, LcTrie, NextHop, ProperTrie, RouteTable};

use crate::multibit::MultibitDag;
use crate::pdag::PrefixDag;
use crate::serialized::SerializedDag;
use crate::xbw::XbwFib;

/// Anything that answers longest-prefix-match queries.
pub trait FibEngine<A: Address> {
    /// Engine name for reports (e.g. `"pDAG"`, `"fib_trie"`).
    fn name(&self) -> &'static str;

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: A) -> Option<NextHop>;

    /// Resident size in bytes of the lookup structure (the number Table 1
    /// and Table 2 report).
    fn size_bytes(&self) -> usize;

    /// Lookup that reports each memory touch as `(byte offset, size)` into
    /// `sink` for cache simulation. Engines without instrumentation run a
    /// plain lookup and report nothing.
    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let _ = sink;
        self.lookup(addr)
    }

    /// Whether [`FibEngine::lookup_traced`] produces a real access stream.
    fn traces_memory(&self) -> bool {
        false
    }
}

impl<A: Address> FibEngine<A> for RouteTable<A> {
    fn name(&self) -> &'static str {
        "tabular"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        RouteTable::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        self.model_size_bits().div_ceil(8)
    }
}

impl<A: Address> FibEngine<A> for BinaryTrie<A> {
    fn name(&self) -> &'static str {
        "binary-trie"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        BinaryTrie::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        BinaryTrie::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        BinaryTrie::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibEngine<A> for ProperTrie<A> {
    fn name(&self) -> &'static str {
        "leaf-pushed"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        ProperTrie::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        ProperTrie::size_bytes(self)
    }
}

impl<A: Address> FibEngine<A> for LcTrie<A> {
    fn name(&self) -> &'static str {
        "fib_trie"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        LcTrie::lookup(self, addr)
    }

    /// Reported under the kernel memory model — the paper compares against
    /// the kernel structure's footprint, not an idealized packed array.
    fn size_bytes(&self) -> usize {
        self.kernel_model_bytes()
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        LcTrie::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibEngine<A> for XbwFib<A> {
    fn name(&self) -> &'static str {
        "XBW-b"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        XbwFib::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        XbwFib::size_bytes(self)
    }
}

impl<A: Address> FibEngine<A> for PrefixDag<A> {
    fn name(&self) -> &'static str {
        "pDAG"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        PrefixDag::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        self.model_size_bits().div_ceil(8)
    }
}

impl<A: Address> FibEngine<A> for SerializedDag<A> {
    fn name(&self) -> &'static str {
        "pDAG-serialized"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        SerializedDag::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        SerializedDag::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        SerializedDag::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibEngine<A> for MultibitDag<A> {
    fn name(&self) -> &'static str {
        "multibit-dag"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        MultibitDag::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        MultibitDag::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        MultibitDag::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xbw::XbwStorage;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn sample_trie() -> BinaryTrie<u32> {
        let mut trie = BinaryTrie::new();
        trie.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), nh(1));
        trie.insert("10.0.0.0/8".parse::<Prefix4>().unwrap(), nh(2));
        trie.insert("10.64.0.0/10".parse::<Prefix4>().unwrap(), nh(3));
        trie
    }

    #[test]
    fn all_engines_agree_via_trait_objects() {
        let trie = sample_trie();
        let table: RouteTable<u32> = trie.iter().collect();
        let proper = ProperTrie::from_trie(&trie);
        let lc = LcTrie::from_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let dag = PrefixDag::from_trie(&trie, 8);
        let ser = SerializedDag::from_dag(&dag);
        let mb = MultibitDag::from_trie(&trie, 4);
        let engines: Vec<&dyn FibEngine<u32>> =
            vec![&table, &trie, &proper, &lc, &xbw, &dag, &ser, &mb];
        for i in 0..4000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            let expected = table.lookup(addr);
            for engine in &engines {
                assert_eq!(
                    engine.lookup(addr),
                    expected,
                    "{} at {addr:#x}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn traced_engines_report_accesses() {
        let trie = sample_trie();
        let dag = PrefixDag::from_trie(&trie, 8);
        let ser = SerializedDag::from_dag(&dag);
        let lc = LcTrie::from_trie(&trie);
        for engine in [&ser as &dyn FibEngine<u32>, &lc, &trie] {
            assert!(engine.traces_memory(), "{}", engine.name());
            let mut count = 0;
            let traced = engine.lookup_traced(0x0A40_0001, &mut |_, _| count += 1);
            assert_eq!(traced, engine.lookup(0x0A40_0001));
            assert!(count > 0, "{} produced no accesses", engine.name());
        }
    }

    #[test]
    fn sizes_are_positive_and_ordered_sanely() {
        let trie = sample_trie();
        let lc = LcTrie::from_trie(&trie);
        let dag = PrefixDag::from_trie(&trie, 4);
        assert!(FibEngine::<u32>::size_bytes(&lc) > 0);
        assert!(FibEngine::<u32>::size_bytes(&dag) > 0);
        // The kernel-modeled LC-trie is the memory hog of the line-up.
        assert!(FibEngine::<u32>::size_bytes(&lc) > FibEngine::<u32>::size_bytes(&dag));
    }
}
