//! The engine trait family: a uniform interface over every FIB
//! representation in the workspace, split along the control/data-plane
//! seam of the paper's §5 router architecture.
//!
//! * [`FibLookup`] — the data-plane surface: single and batched
//!   longest-prefix match, resident size, and the traced-lookup hooks the
//!   cache/SRAM simulators consume. Engines with a flat memory layout
//!   ([`SerializedDag`], [`MultibitDag`], [`LcTrie`]) and the succinct
//!   [`XbwFib`] override [`FibLookup::lookup_batch`] with interleaved
//!   multi-lane walks.
//! * [`FibBuild`] — the control-plane build step: every engine constructs
//!   from the oracle [`BinaryTrie`] under one uniform [`BuildConfig`], so
//!   a router can re-emit any representation from its control FIB.
//! * [`FibUpdate`] — incremental updates with a [`RebuildNeeded`] escape
//!   hatch: structures with native λ-barrier updates ([`PrefixDag`],
//!   [`BinaryTrie`], [`RouteTable`]) apply them in place; static images
//!   decline and let the router schedule a rebuild.
//! * [`FibEngine`] — the legacy umbrella: a blanket supertrait of
//!   [`FibLookup`], kept so existing differential tests and benchmark
//!   harnesses keep compiling unchanged against trait objects.

use fib_trie::{Address, BinaryTrie, LcTrie, NextHop, Prefix, ProperTrie, RouteTable};

use crate::multibit::MultibitDag;
use crate::pdag::PrefixDag;
use crate::serialized::SerializedDag;
use crate::vsdag::{VarStrideDag, VsParams};
use crate::xbw::{XbwFib, XbwStorage};

/// Uniform construction parameters for [`FibBuild`].
///
/// Every engine reads the fields relevant to it and ignores the rest, so
/// one config can drive a whole fleet of representations off the same
/// control FIB.
#[derive(Clone, Copy, Debug)]
pub struct BuildConfig {
    /// Leaf-push barrier for the prefix DAGs; `None` selects the
    /// entropy-derived barrier of Eq. (3).
    pub lambda: Option<u8>,
    /// Stride of the multibit DAG.
    pub stride: u8,
    /// LC-trie fill factor in `(0, 1]`.
    pub fill: f64,
    /// LC-trie maximum stride.
    pub max_stride: u8,
    /// Storage mode of the XBW-b transform.
    pub xbw_storage: XbwStorage,
    /// Widest per-node stride the variable-stride DP may choose.
    pub vs_max_stride: u8,
    /// Variable-stride slot budget as a multiple of the fixed stride-4
    /// plan's pre-dedup slot mass (`f64::INFINITY` disables it).
    pub vs_budget: f64,
}

impl Default for BuildConfig {
    /// The paper's evaluation defaults: λ = 11, byte-wide multibit nodes
    /// would be 8 but the ablation sweet spot is 4, kernel-flavoured
    /// LC-trie parameters, entropy-mode XBW-b.
    fn default() -> Self {
        Self {
            lambda: Some(11),
            stride: 4,
            fill: 0.5,
            max_stride: 12,
            xbw_storage: XbwStorage::Entropy,
            vs_max_stride: 12,
            vs_budget: 0.6,
        }
    }
}

impl BuildConfig {
    /// The variable-stride DP knobs this config implies.
    #[must_use]
    pub fn vs_params(&self) -> VsParams {
        VsParams {
            max_stride: self.vs_max_stride,
            budget: self.vs_budget,
        }
    }
}

impl BuildConfig {
    /// A config with an explicit leaf-push barrier.
    #[must_use]
    pub fn with_lambda(lambda: u8) -> Self {
        Self {
            lambda: Some(lambda),
            ..Self::default()
        }
    }

    /// A config selecting the entropy-derived barrier of Eq. (3).
    #[must_use]
    pub fn entropy_barrier() -> Self {
        Self {
            lambda: None,
            ..Self::default()
        }
    }

    /// Resolves the barrier for a concrete FIB.
    #[must_use]
    pub fn lambda_for<A: Address>(&self, trie: &BinaryTrie<A>) -> u8 {
        match self.lambda {
            Some(l) => l.min(A::WIDTH),
            None => {
                let metrics = crate::entropy::FibEntropy::of_trie(trie);
                crate::lambda::barrier_entropy(metrics.n_leaves, metrics.h0, A::WIDTH)
            }
        }
    }
}

/// Returned by [`FibUpdate`] when a structure cannot absorb an update in
/// place; the owner must rebuild it from the control FIB via [`FibBuild`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RebuildNeeded;

impl std::fmt::Display for RebuildNeeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine requires a rebuild from the control FIB")
    }
}

impl std::error::Error for RebuildNeeded {}

/// The data-plane surface: anything that answers longest-prefix-match
/// queries.
pub trait FibLookup<A: Address> {
    /// Engine name for reports (e.g. `"pDAG"`, `"fib_trie"`).
    fn name(&self) -> &'static str;

    /// Longest-prefix-match lookup.
    fn lookup(&self, addr: A) -> Option<NextHop>;

    /// Batched longest-prefix match: resolves `addrs[i]` into `out[i]`.
    ///
    /// The default implementation is a plain per-address loop; flat-layout
    /// engines override it with interleaved multi-lane walks that overlap
    /// the independent memory fetches of different packets.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
            *slot = self.lookup(*addr);
        }
    }

    /// Hints the prefetcher at the first cache line `addr`'s walk will
    /// touch, without performing the lookup. Engines whose first touch is
    /// pure bit arithmetic on the address (flat root arrays, stride
    /// tables) override this; the default is a no-op.
    ///
    /// This is the software-pipelining hook: issue `prefetch` for packet
    /// `i + k` while packet `i` resolves and the first-touch miss of the
    /// later packet overlaps the walk of the earlier one.
    #[inline]
    fn prefetch(&self, addr: A) {
        let _ = addr;
    }

    /// Software-pipelined batched lookup: same results as
    /// [`FibLookup::lookup_batch`], but engines with a real
    /// [`FibLookup::prefetch`] overlap the next lane group's first-touch
    /// line fetches with the current group's walk. The default forwards
    /// to `lookup_batch`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.lookup_batch(addrs, out);
    }

    /// Resident size in bytes of the lookup structure (the number Table 1
    /// and Table 2 report).
    fn size_bytes(&self) -> usize;

    /// Lookup that reports each memory touch as `(byte offset, size)` into
    /// `sink` for cache simulation. Engines without instrumentation run a
    /// plain lookup and report nothing.
    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let _ = sink;
        self.lookup(addr)
    }

    /// Whether [`FibLookup::lookup_traced`] produces a real access stream.
    fn traces_memory(&self) -> bool {
        false
    }
}

/// The control-plane build step: construct an engine from the oracle trie.
pub trait FibBuild<A: Address>: Sized {
    /// Builds the engine from `trie` under `config`.
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self;

    /// Builds the engine with a measured traffic profile attached.
    ///
    /// `heat` is `(entries, depth)` in the workload `HeatSummary` shape —
    /// MSB-aligned `u64` prefix keys truncated to `depth` bits with hit
    /// counts. Traffic-aware engines (the variable-stride DAG) reshape
    /// their layout around it; everything else ignores it and builds
    /// uniformly, so a router can thread live heat through every rebuild
    /// without knowing which engine it drives.
    fn build_weighted(
        trie: &BinaryTrie<A>,
        config: &BuildConfig,
        heat: Option<(&[(u64, u64)], u8)>,
    ) -> Self {
        let _ = heat;
        Self::build(trie, config)
    }

    /// Whether [`Self::build_weighted`] actually consumes the heat
    /// profile. Routers use this to decide if a fresh traffic interval
    /// warrants a re-layout rebuild (re-striding) or only a hot-slab cut.
    #[must_use]
    fn heat_aware() -> bool {
        false
    }
}

/// Incremental route updates, with an escape hatch for static structures.
pub trait FibUpdate<A: Address> {
    /// Inserts or replaces a route in place, returning the previous
    /// next-hop, or signals that the structure must be rebuilt.
    ///
    /// # Errors
    /// [`RebuildNeeded`] if the engine has no in-place update path.
    fn try_insert(
        &mut self,
        prefix: Prefix<A>,
        next_hop: NextHop,
    ) -> Result<Option<NextHop>, RebuildNeeded>;

    /// Removes a route in place, returning its next-hop if it existed, or
    /// signals that the structure must be rebuilt.
    ///
    /// # Errors
    /// [`RebuildNeeded`] if the engine has no in-place update path.
    fn try_remove(&mut self, prefix: Prefix<A>) -> Result<Option<NextHop>, RebuildNeeded>;

    /// How far the structure has degraded from its freshly built form, in
    /// `[0, 1]`. A router compares this against its rebuild threshold;
    /// engines without a meaningful metric report 0.
    fn degradation(&self) -> f64 {
        0.0
    }
}

/// The legacy umbrella trait: every [`FibLookup`] is a `FibEngine`, so
/// pre-split call sites (`&dyn FibEngine<A>`, `E: FibEngine<A>` bounds)
/// keep working.
pub trait FibEngine<A: Address>: FibLookup<A> {}

impl<A: Address, T: FibLookup<A> + ?Sized> FibEngine<A> for T {}

/// References forward wholesale, so wrappers like [`crate::hot::HotFib`]
/// can compose over a borrowed engine (including `&dyn` trait objects)
/// without taking ownership.
impl<A: Address, E: FibLookup<A> + ?Sized> FibLookup<A> for &E {
    fn name(&self) -> &'static str {
        E::name(self)
    }

    #[inline]
    fn lookup(&self, addr: A) -> Option<NextHop> {
        E::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        E::lookup_batch(self, addrs, out);
    }

    #[inline]
    fn prefetch(&self, addr: A) {
        E::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        E::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        E::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        E::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        E::traces_memory(self)
    }
}

// ---------------------------------------------------------------------
// FibLookup implementations
// ---------------------------------------------------------------------

impl<A: Address> FibLookup<A> for RouteTable<A> {
    fn name(&self) -> &'static str {
        "tabular"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        RouteTable::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        self.model_size_bits().div_ceil(8)
    }
}

impl<A: Address> FibLookup<A> for BinaryTrie<A> {
    fn name(&self) -> &'static str {
        "binary-trie"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        BinaryTrie::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        BinaryTrie::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        BinaryTrie::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for ProperTrie<A> {
    fn name(&self) -> &'static str {
        "leaf-pushed"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        ProperTrie::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        ProperTrie::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        ProperTrie::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for LcTrie<A> {
    fn name(&self) -> &'static str {
        "fib_trie"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        LcTrie::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        LcTrie::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        LcTrie::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        LcTrie::lookup_stream(self, addrs, out);
    }

    /// Reported under the kernel memory model — the paper compares against
    /// the kernel structure's footprint, not an idealized packed array.
    fn size_bytes(&self) -> usize {
        self.kernel_model_bytes()
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        LcTrie::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for XbwFib<A> {
    fn name(&self) -> &'static str {
        "XBW-b"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        XbwFib::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        XbwFib::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        XbwFib::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        XbwFib::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        XbwFib::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        XbwFib::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for PrefixDag<A> {
    fn name(&self) -> &'static str {
        "pDAG"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        PrefixDag::lookup(self, addr)
    }

    fn size_bytes(&self) -> usize {
        self.model_size_bits().div_ceil(8)
    }
}

impl<A: Address> FibLookup<A> for SerializedDag<A> {
    fn name(&self) -> &'static str {
        "pDAG-serialized"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        SerializedDag::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        SerializedDag::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        SerializedDag::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        SerializedDag::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        SerializedDag::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        SerializedDag::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for MultibitDag<A> {
    fn name(&self) -> &'static str {
        "multibit-dag"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        MultibitDag::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        MultibitDag::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        MultibitDag::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        MultibitDag::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        MultibitDag::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        MultibitDag::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

impl<A: Address> FibLookup<A> for VarStrideDag<A> {
    fn name(&self) -> &'static str {
        "vsdag"
    }

    fn lookup(&self, addr: A) -> Option<NextHop> {
        VarStrideDag::lookup(self, addr)
    }

    fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        VarStrideDag::lookup_batch(self, addrs, out);
    }

    fn prefetch(&self, addr: A) {
        VarStrideDag::prefetch(self, addr);
    }

    fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        VarStrideDag::lookup_stream(self, addrs, out);
    }

    fn size_bytes(&self) -> usize {
        VarStrideDag::size_bytes(self)
    }

    fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        VarStrideDag::lookup_traced(self, addr, sink)
    }

    fn traces_memory(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// FibBuild implementations
// ---------------------------------------------------------------------

impl<A: Address> FibBuild<A> for BinaryTrie<A> {
    fn build(trie: &BinaryTrie<A>, _config: &BuildConfig) -> Self {
        trie.clone()
    }
}

impl<A: Address> FibBuild<A> for RouteTable<A> {
    fn build(trie: &BinaryTrie<A>, _config: &BuildConfig) -> Self {
        trie.iter().collect()
    }
}

impl<A: Address> FibBuild<A> for ProperTrie<A> {
    fn build(trie: &BinaryTrie<A>, _config: &BuildConfig) -> Self {
        ProperTrie::from_trie(trie)
    }
}

impl<A: Address> FibBuild<A> for LcTrie<A> {
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self {
        LcTrie::with_params(trie, config.fill, config.max_stride)
    }
}

impl<A: Address> FibBuild<A> for XbwFib<A> {
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self {
        XbwFib::build(trie, config.xbw_storage)
    }
}

impl<A: Address> FibBuild<A> for PrefixDag<A> {
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self {
        PrefixDag::from_trie(trie, config.lambda_for(trie))
    }
}

impl<A: Address> FibBuild<A> for SerializedDag<A> {
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self {
        SerializedDag::from_dag(&PrefixDag::from_trie(trie, config.lambda_for(trie)))
    }
}

impl<A: Address> FibBuild<A> for MultibitDag<A> {
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self {
        MultibitDag::from_trie(trie, config.stride)
    }
}

impl<A: Address> FibBuild<A> for VarStrideDag<A> {
    fn build(trie: &BinaryTrie<A>, config: &BuildConfig) -> Self {
        VarStrideDag::from_trie(trie, config.vs_params())
    }

    fn build_weighted(
        trie: &BinaryTrie<A>,
        config: &BuildConfig,
        heat: Option<(&[(u64, u64)], u8)>,
    ) -> Self {
        VarStrideDag::from_trie_weighted(trie, config.vs_params(), heat)
    }

    fn heat_aware() -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// FibUpdate implementations
// ---------------------------------------------------------------------

impl<A: Address> FibUpdate<A> for BinaryTrie<A> {
    fn try_insert(
        &mut self,
        prefix: Prefix<A>,
        next_hop: NextHop,
    ) -> Result<Option<NextHop>, RebuildNeeded> {
        Ok(self.insert(prefix, next_hop))
    }

    fn try_remove(&mut self, prefix: Prefix<A>) -> Result<Option<NextHop>, RebuildNeeded> {
        Ok(self.remove(prefix))
    }
}

impl<A: Address> FibUpdate<A> for RouteTable<A> {
    fn try_insert(
        &mut self,
        prefix: Prefix<A>,
        next_hop: NextHop,
    ) -> Result<Option<NextHop>, RebuildNeeded> {
        Ok(self.insert(prefix, next_hop))
    }

    fn try_remove(&mut self, prefix: Prefix<A>) -> Result<Option<NextHop>, RebuildNeeded> {
        Ok(self.remove(prefix))
    }
}

impl<A: Address> FibUpdate<A> for PrefixDag<A> {
    fn try_insert(
        &mut self,
        prefix: Prefix<A>,
        next_hop: NextHop,
    ) -> Result<Option<NextHop>, RebuildNeeded> {
        Ok(self.insert(prefix, next_hop))
    }

    fn try_remove(&mut self, prefix: Prefix<A>) -> Result<Option<NextHop>, RebuildNeeded> {
        Ok(self.remove(prefix))
    }

    /// Arena fragmentation: λ-barrier refolds leave free-list holes behind
    /// and the data-plane walk loses locality as they accumulate.
    fn degradation(&self) -> f64 {
        self.fragmentation()
    }
}

/// The static engines decline in-place updates: a router rebuilds them
/// from its control FIB instead.
macro_rules! static_engine_update {
    ($($ty:ident),+) => {$(
        impl<A: Address> FibUpdate<A> for $ty<A> {
            fn try_insert(
                &mut self,
                _prefix: Prefix<A>,
                _next_hop: NextHop,
            ) -> Result<Option<NextHop>, RebuildNeeded> {
                Err(RebuildNeeded)
            }

            fn try_remove(
                &mut self,
                _prefix: Prefix<A>,
            ) -> Result<Option<NextHop>, RebuildNeeded> {
                Err(RebuildNeeded)
            }
        }
    )+};
}

static_engine_update!(
    ProperTrie,
    LcTrie,
    XbwFib,
    SerializedDag,
    MultibitDag,
    VarStrideDag
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xbw::XbwStorage;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn sample_trie() -> BinaryTrie<u32> {
        let mut trie = BinaryTrie::new();
        trie.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), nh(1));
        trie.insert("10.0.0.0/8".parse::<Prefix4>().unwrap(), nh(2));
        trie.insert("10.64.0.0/10".parse::<Prefix4>().unwrap(), nh(3));
        trie
    }

    #[test]
    fn all_engines_agree_via_trait_objects() {
        let trie = sample_trie();
        let table: RouteTable<u32> = trie.iter().collect();
        let proper = ProperTrie::from_trie(&trie);
        let lc = LcTrie::from_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        let dag = PrefixDag::from_trie(&trie, 8);
        let ser = SerializedDag::from_dag(&dag);
        let mb = MultibitDag::from_trie(&trie, 4);
        let engines: Vec<&dyn FibEngine<u32>> =
            vec![&table, &trie, &proper, &lc, &xbw, &dag, &ser, &mb];
        for i in 0..4000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            let expected = table.lookup(addr);
            for engine in &engines {
                assert_eq!(
                    engine.lookup(addr),
                    expected,
                    "{} at {addr:#x}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn batch_agrees_with_scalar_for_every_engine() {
        let trie = sample_trie();
        let table: RouteTable<u32> = trie.iter().collect();
        let proper = ProperTrie::from_trie(&trie);
        let lc = LcTrie::from_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Succinct);
        let dag = PrefixDag::from_trie(&trie, 8);
        let ser = SerializedDag::from_dag(&dag);
        let mb = MultibitDag::from_trie(&trie, 4);
        let engines: Vec<&dyn FibEngine<u32>> =
            vec![&table, &trie, &proper, &lc, &xbw, &dag, &ser, &mb];
        let addrs: Vec<u32> = (0..999u32).map(|i| i.wrapping_mul(0x0101_6B55)).collect();
        let mut out = vec![None; addrs.len()];
        for engine in &engines {
            out.fill(Some(nh(u32::MAX - 1))); // poison: every slot must be written
            engine.lookup_batch(&addrs, &mut out);
            for (a, got) in addrs.iter().zip(&out) {
                assert_eq!(*got, engine.lookup(*a), "{} at {a:#x}", engine.name());
            }
        }
    }

    #[test]
    fn traced_engines_report_accesses() {
        let trie = sample_trie();
        let dag = PrefixDag::from_trie(&trie, 8);
        let ser = SerializedDag::from_dag(&dag);
        let lc = LcTrie::from_trie(&trie);
        let proper = ProperTrie::from_trie(&trie);
        let xbw = XbwFib::build(&trie, XbwStorage::Entropy);
        for engine in [&ser as &dyn FibEngine<u32>, &lc, &trie, &proper, &xbw] {
            assert!(engine.traces_memory(), "{}", engine.name());
            let mut count = 0;
            let traced = engine.lookup_traced(0x0A40_0001, &mut |_, _| count += 1);
            assert_eq!(traced, engine.lookup(0x0A40_0001));
            assert!(count > 0, "{} produced no accesses", engine.name());
        }
    }

    #[test]
    fn sizes_are_positive_and_ordered_sanely() {
        let trie = sample_trie();
        let lc = LcTrie::from_trie(&trie);
        let dag = PrefixDag::from_trie(&trie, 4);
        assert!(FibLookup::<u32>::size_bytes(&lc) > 0);
        assert!(FibLookup::<u32>::size_bytes(&dag) > 0);
        // The kernel-modeled LC-trie is the memory hog of the line-up.
        assert!(FibLookup::<u32>::size_bytes(&lc) > FibLookup::<u32>::size_bytes(&dag));
    }

    #[test]
    fn build_config_drives_every_engine_off_one_control_fib() {
        let trie = sample_trie();
        let config = BuildConfig::with_lambda(6);
        let dag: PrefixDag<u32> = FibBuild::build(&trie, &config);
        assert_eq!(dag.lambda(), 6);
        let ser: SerializedDag<u32> = FibBuild::build(&trie, &config);
        assert_eq!(ser.lambda(), 6);
        let mb: MultibitDag<u32> = FibBuild::build(&trie, &config);
        assert_eq!(mb.stride(), config.stride);
        let lc: LcTrie<u32> = FibBuild::build(&trie, &config);
        let xbw: XbwFib<u32> = FibBuild::build(&trie, &config);
        let table: RouteTable<u32> = FibBuild::build(&trie, &config);
        let proper: ProperTrie<u32> = FibBuild::build(&trie, &config);
        let copy: BinaryTrie<u32> = FibBuild::build(&trie, &config);
        for i in 0..2000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            let expected = trie.lookup(addr);
            for engine in [
                &dag as &dyn FibEngine<u32>,
                &ser,
                &mb,
                &lc,
                &xbw,
                &table,
                &proper,
                &copy,
            ] {
                assert_eq!(engine.lookup(addr), expected, "{}", engine.name());
            }
        }
        // Entropy-barrier configs resolve λ from the FIB itself.
        let auto: PrefixDag<u32> = FibBuild::build(&trie, &BuildConfig::entropy_barrier());
        assert!(auto.lambda() <= 32);
    }

    #[test]
    fn update_capable_engines_apply_in_place_static_ones_decline() {
        let trie = sample_trie();
        let p: Prefix4 = "10.1.0.0/16".parse().unwrap();
        let mut dag = PrefixDag::from_trie(&trie, 8);
        assert_eq!(dag.try_insert(p, nh(7)), Ok(None));
        assert_eq!(dag.try_remove(p), Ok(Some(nh(7))));
        let mut bt = trie.clone();
        assert_eq!(bt.try_insert(p, nh(7)), Ok(None));
        let mut table: RouteTable<u32> = trie.iter().collect();
        assert_eq!(table.try_insert(p, nh(7)), Ok(None));
        let mut ser = SerializedDag::from_dag(&dag);
        assert_eq!(ser.try_insert(p, nh(7)), Err(RebuildNeeded));
        assert_eq!(ser.try_remove(p), Err(RebuildNeeded));
        let mut lc = LcTrie::from_trie(&trie);
        assert_eq!(lc.try_insert(p, nh(7)), Err(RebuildNeeded));
        let mut xbw = XbwFib::build(&trie, XbwStorage::Succinct);
        assert_eq!(xbw.try_remove(p), Err(RebuildNeeded));
    }

    #[test]
    fn pdag_degradation_rises_with_churn_and_resets_on_rebuild() {
        let mut dag = PrefixDag::from_trie(&sample_trie(), 8);
        assert_eq!(FibUpdate::<u32>::degradation(&dag), 0.0);
        // Insert-then-remove below the barrier leaves free-list holes.
        for i in 0..200u32 {
            let p = Prefix4::new(0x0A00_0000 | (i << 8), 28);
            dag.insert(p, nh(4));
        }
        for i in 0..200u32 {
            let p = Prefix4::new(0x0A00_0000 | (i << 8), 28);
            dag.remove(p);
        }
        assert!(
            FibUpdate::<u32>::degradation(&dag) > 0.0,
            "churn must fragment the arena"
        );
        let rebuilt: PrefixDag<u32> = FibBuild::build(dag.control(), &BuildConfig::with_lambda(8));
        assert_eq!(FibUpdate::<u32>::degradation(&rebuilt), 0.0);
    }
}
