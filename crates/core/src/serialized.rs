//! The serialized prefix-DAG blob of Section 5.3.
//!
//! The paper's lookup engines (the Linux kernel module and the FPGA) do
//! not walk the pointer-machine DAG: they consume a flat serialized image
//! in which the first λ trie levels are collapsed into a 2^λ-entry root
//! array (the standard "initial stride" trick of DXR and friends, [61]),
//! and every folded interior node is a record of two tagged 32-bit
//! references. One memory word is touched per hop, which is what makes the
//! SRAM cycle model of `fib-hwsim` faithful.
//!
//! Layout (`8` bytes per element, contiguous):
//!
//! ```text
//! [ RootEntry × 2^λ ][ [u32; 2] × interior-count ]
//! ```
//!
//! Both regions are stored as packed `u64` words — a root entry is
//! `slot | fallback << 32`, an interior record `left | right << 32` — so
//! the whole engine is a flat word string: the owned [`SerializedDag`]
//! and the zero-copy [`SerializedDagRef`] that FIB images borrow run the
//! identical walk over the same encoding.
//!
//! A tagged reference is either `LEAF_TAG | label` (label `0x7FFF_FFFF` is
//! ⊥) or the index of an interior record. Each root entry carries the
//! reference for its λ-bit prefix plus the *fallback label*: the last
//! next-hop on the collapsed top path, which is what a ⊥ leaf resolves to
//! — the serialized counterpart of the DAG's label fall-through.

use std::marker::PhantomData;

use fib_succinct::fnv1a;
use fib_succinct::simd::gather4;
use fib_trie::{Address, Depth, NextHop};

use crate::pdag::{PrefixDag, NONE};

const LEAF_TAG: u32 = 0x8000_0000;
const BOT: u32 = 0x7FFF_FFFF;

/// Number of lookups the gather kernel behind
/// [`SerializedDag::lookup_stream`] walks in lockstep — sized to the
/// 4-wide SIMD gather the dispatch resolves to.
pub const SER_BATCH_LANES: usize = 4;

/// In-flight walks of the rolling-refill kernel behind
/// [`SerializedDag::lookup_batch`]. Each slot owns one walk and takes
/// the next address the moment its walk resolves, overlapping the
/// serial root-entry → node-record dependency chains even when every
/// probe hits cache; eight matches the XBW retune's lane sweep.
pub const SER_REFILL_LANES: usize = 8;

#[inline]
fn entry_slot(word: u64) -> u32 {
    word as u32
}

#[inline]
fn entry_fallback(word: u64) -> u32 {
    (word >> 32) as u32
}

#[inline]
fn record_child(word: u64, bit: bool) -> u32 {
    if bit {
        (word >> 32) as u32
    } else {
        word as u32
    }
}

/// A flat, read-only prefix DAG image with zero-allocation lookup
/// (owned builder; all queries run on the borrowed [`SerializedDagRef`]).
#[derive(Clone, Debug)]
pub struct SerializedDag<A: Address> {
    lambda: u8,
    /// Root entries, one word each: `slot | fallback << 32`.
    entries: Vec<u64>,
    /// Interior records, one word each: `left | right << 32`.
    nodes: Vec<u64>,
    _marker: PhantomData<A>,
}

/// Borrowed zero-copy view of a [`SerializedDag`].
#[derive(Clone, Copy, Debug)]
pub struct SerializedDagRef<'a, A: Address> {
    lambda: u8,
    entries: &'a [u64],
    nodes: &'a [u64],
    _marker: PhantomData<A>,
}

impl<A: Address> SerializedDag<A> {
    /// Serializes `dag`.
    ///
    /// # Panics
    /// Panics if the DAG's λ exceeds 25 (the root array would exceed
    /// 256 MiB — far past any sensible configuration; the paper uses 11).
    #[must_use]
    pub fn from_dag(dag: &PrefixDag<A>) -> Self {
        let lambda = dag.lambda();
        assert!(
            lambda <= 25,
            "root array for λ = {lambda} would be enormous"
        );
        // Compact interior numbering, assigned on first visit.
        let mut ser_idx: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut nodes: Vec<u64> = Vec::new();
        let mut entries = Vec::with_capacity(1usize << lambda);
        for v in 0..(1u64 << lambda) {
            entries.push(Self::walk_top(dag, v, lambda, &mut ser_idx, &mut nodes));
        }
        Self {
            lambda,
            entries,
            nodes,
            _marker: PhantomData,
        }
    }

    /// Walks the top tree along the λ bits of `v`, producing the packed
    /// root entry and serializing the portal's folded subgraph on first
    /// visit.
    fn walk_top(
        dag: &PrefixDag<A>,
        v: u64,
        lambda: u8,
        ser_idx: &mut std::collections::HashMap<u32, u32>,
        nodes: &mut Vec<u64>,
    ) -> u64 {
        let mut idx = dag.root;
        let mut fallback = NONE;
        for depth in 0..lambda {
            if idx == NONE {
                break;
            }
            let node = dag.nodes[idx as usize];
            if node.label != NONE {
                fallback = node.label;
            }
            let bit = (v >> (lambda - 1 - depth)) & 1 == 1;
            idx = if bit { node.right } else { node.left };
        }
        let slot = if idx == NONE {
            LEAF_TAG | BOT
        } else {
            // At λ = depth: idx is the portal (or, when λ = 0, the root
            // itself). Serialize its folded structure.
            Self::encode(dag, idx, ser_idx, nodes)
        };
        u64::from(slot) | (u64::from(fallback) << 32)
    }

    /// Recursively serializes a folded node into a tagged reference.
    fn encode(
        dag: &PrefixDag<A>,
        idx: u32,
        ser_idx: &mut std::collections::HashMap<u32, u32>,
        nodes: &mut Vec<u64>,
    ) -> u32 {
        let node = dag.nodes[idx as usize];
        if node.is_leaf() {
            return LEAF_TAG | if node.label == NONE { BOT } else { node.label };
        }
        if let Some(&existing) = ser_idx.get(&idx) {
            return existing;
        }
        let record = nodes.len() as u32;
        nodes.push(0); // reserve before recursing (shared DAG, no cycles)
        ser_idx.insert(idx, record);
        let left = Self::encode(dag, node.left, ser_idx, nodes);
        let right = Self::encode(dag, node.right, ser_idx, nodes);
        nodes[record as usize] = u64::from(left) | (u64::from(right) << 32);
        record
    }

    /// The collapsed stride λ.
    #[must_use]
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// The borrowed view all queries run on.
    #[must_use]
    #[inline]
    pub fn view(&self) -> SerializedDagRef<'_, A> {
        SerializedDagRef {
            lambda: self.lambda,
            entries: &self.entries,
            nodes: &self.nodes,
            _marker: PhantomData,
        }
    }

    /// The packed root-entry words.
    #[must_use]
    pub fn entry_words(&self) -> &[u64] {
        &self.entries
    }

    /// The packed interior-record words.
    #[must_use]
    pub fn node_words(&self) -> &[u64] {
        &self.nodes
    }

    /// Longest-prefix-match lookup on the flat image.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.view().lookup(addr)
    }

    /// Lookup also returning the number of node records touched after the
    /// root array (Table 2's "depth" for the pDAG engine).
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        self.view().lookup_with_depth(addr)
    }

    /// Batched longest-prefix match: resolves `addrs[i]` into `out[i]`
    /// with [`SER_REFILL_LANES`] rolling-refill walks in flight, so the
    /// per-hop record fetches of independent lookups overlap instead of
    /// one pointer chase serializing the next (see
    /// [`SerializedDagRef::lookup_batch`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_batch(addrs, out);
    }

    /// Prefetches the root-array entry `addr` touches first (see
    /// [`SerializedDagRef::prefetch`]).
    #[inline]
    pub fn prefetch(&self, addr: A) {
        self.view().prefetch(addr);
    }

    /// Software-pipelined batched lookup (see
    /// [`SerializedDagRef::lookup_stream`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_stream(addrs, out);
    }

    /// Lookup reporting every memory touch as `(byte offset, byte size)`
    /// within the blob — the access stream consumed by the cache and SRAM
    /// models of `fib-hwsim`.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        self.view().lookup_traced(addr, sink)
    }

    /// Blob size in bytes: 8 per root entry plus 8 per interior record.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 8 + self.nodes.len() * 8
    }

    /// Number of interior records.
    #[must_use]
    pub fn interior_count(&self) -> usize {
        self.nodes.len()
    }

    /// Encodes the image as a self-contained byte blob with a header and a
    /// checksum — the artifact a control plane would push to line cards.
    ///
    /// Layout (all little-endian): magic `FIBD`, version u16, λ u8,
    /// address width u8, entry count u32, node count u32, entries
    /// (slot u32, fallback u32 each), nodes (left u32, right u32 each),
    /// FNV-1a checksum u64 over everything before it.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.size_bytes() + 8);
        out.extend_from_slice(b"FIBD");
        out.extend_from_slice(&1u16.to_le_bytes());
        out.push(self.lambda);
        out.push(A::WIDTH);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        // The packed words' little-endian bytes are exactly the legacy
        // (slot u32, fallback u32) / (left u32, right u32) layout.
        for w in self.entries.iter().chain(&self.nodes) {
            out.extend_from_slice(&w.to_le_bytes());
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a blob produced by [`Self::to_bytes`], validating the
    /// header, the checksum, and every internal reference.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BlobError> {
        let need = |n: usize| -> Result<(), BlobError> {
            if bytes.len() < n {
                Err(BlobError::Truncated)
            } else {
                Ok(())
            }
        };
        need(16 + 8)?;
        if &bytes[0..4] != b"FIBD" {
            return Err(BlobError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != 1 {
            return Err(BlobError::BadVersion(version));
        }
        let lambda = bytes[6];
        let width = bytes[7];
        if width != A::WIDTH {
            return Err(BlobError::WidthMismatch {
                blob: width,
                expected: A::WIDTH,
            });
        }
        let entry_count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let node_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
        if lambda > 25 || entry_count != 1usize << lambda {
            return Err(BlobError::Inconsistent("entry count does not match λ"));
        }
        let body_end = 16 + entry_count * 8 + node_count * 8;
        need(body_end + 8)?;
        let stored = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().expect("8 bytes"));
        if fnv1a(&bytes[..body_end]) != stored {
            return Err(BlobError::ChecksumMismatch);
        }
        let word_at =
            |pos: usize| u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        let entries: Vec<u64> = (0..entry_count).map(|i| word_at(16 + i * 8)).collect();
        let nodes: Vec<u64> = (0..node_count)
            .map(|i| word_at(16 + entry_count * 8 + i * 8))
            .collect();
        SerializedDagRef::<A>::from_parts(lambda, &entries, &nodes)
            .map_err(BlobError::Inconsistent)?;
        Ok(Self {
            lambda,
            entries,
            nodes,
            _marker: PhantomData,
        })
    }

    /// Average and maximum hop depth over a sample of addresses.
    pub fn depth_stats(&self, addrs: impl IntoIterator<Item = A>) -> (f64, u32) {
        let mut total = 0u64;
        let mut count = 0u64;
        let mut max = 0u32;
        for addr in addrs {
            let (_, hops) = self.lookup_with_depth(addr);
            total += u64::from(hops);
            count += 1;
            max = max.max(hops);
        }
        if count == 0 {
            (0.0, 0)
        } else {
            (total as f64 / count as f64, max)
        }
    }
}

impl<'a, A: Address> SerializedDagRef<'a, A> {
    /// Assembles a view over packed entry and record words, validating
    /// the shape (entry count matches λ) and every tagged reference so
    /// the walk cannot index out of bounds.
    ///
    /// # Errors
    /// A static message naming the structural violation.
    pub fn from_parts(
        lambda: u8,
        entries: &'a [u64],
        nodes: &'a [u64],
    ) -> Result<Self, &'static str> {
        let view = Self::from_parts_trusted(lambda, entries, nodes)?;
        let check_ref = |r: u32| -> Result<(), &'static str> {
            if r & LEAF_TAG == 0 && r as usize >= nodes.len() {
                return Err("reference past node region");
            }
            Ok(())
        };
        for &e in entries {
            check_ref(entry_slot(e))?;
        }
        for &n in nodes {
            check_ref(record_child(n, false))?;
            check_ref(record_child(n, true))?;
        }
        Ok(view)
    }

    /// [`Self::from_parts`] minus the O(n) reference scan — only for
    /// words that already passed a full validation (a loaded image is
    /// immutable, so one scan covers its lifetime). An unvalidated
    /// out-of-range reference would panic on lookup, never corrupt.
    pub fn from_parts_trusted(
        lambda: u8,
        entries: &'a [u64],
        nodes: &'a [u64],
    ) -> Result<Self, &'static str> {
        if lambda > 25 || entries.len() != 1usize << lambda {
            return Err("entry count does not match λ");
        }
        Ok(Self {
            lambda,
            entries,
            nodes,
            _marker: PhantomData,
        })
    }

    /// The pointer range of the borrowed words, for zero-copy assertions
    /// in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.entries.as_ptr() as usize;
        let end = self.nodes.as_ptr() as usize + std::mem::size_of_val(self.nodes);
        start..end
    }

    /// The collapsed stride λ.
    #[must_use]
    pub fn lambda(&self) -> u8 {
        self.lambda
    }

    /// Blob size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * 8 + self.nodes.len() * 8
    }

    /// Longest-prefix-match lookup on the flat image.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.lookup_with_depth(addr).0
    }

    /// Lookup also returning the number of node records touched after the
    /// root array.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        let v = addr.bits(0, self.lambda) as usize;
        let entry = self.entries[v];
        let mut reference = entry_slot(entry);
        let mut depth = self.lambda;
        let mut hops: Depth = 0;
        loop {
            if reference & LEAF_TAG != 0 {
                let label = reference & !LEAF_TAG;
                let result = if label == BOT {
                    let fallback = entry_fallback(entry);
                    (fallback != NONE).then(|| NextHop::new(fallback))
                } else {
                    Some(NextHop::new(label))
                };
                return (result, hops);
            }
            let record = self.nodes[reference as usize];
            reference = record_child(record, addr.bit(depth));
            depth += 1;
            hops += 1;
        }
    }

    /// Batched longest-prefix match (see [`SerializedDag::lookup_batch`]):
    /// a rolling-refill walk with up to [`SER_REFILL_LANES`] node-record
    /// chases in flight. Lookups that resolve at their root-array entry
    /// — the vast majority under uniform keys, where lane bookkeeping
    /// would be pure overhead — are peeled inline by the refill pull
    /// loop at plain scalar-walk cost; only walks that survive into the
    /// record chain occupy a lane, so the serial per-hop fetches of
    /// deep (zipf-popular) lookups overlap instead of one pointer chase
    /// serializing the next.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
        let n = addrs.len();
        let out = &mut out[..n];
        let resolve = |entry: u64, reference: u32| {
            let label = reference & !LEAF_TAG;
            if label == BOT {
                let fallback = entry_fallback(entry);
                (fallback != NONE).then(|| NextHop::new(fallback))
            } else {
                Some(NextHop::new(label))
            }
        };
        let mut entry = [0u64; SER_REFILL_LANES];
        let mut reference = [0u32; SER_REFILL_LANES];
        let mut depth = [0u8; SER_REFILL_LANES];
        // Index into `addrs` each lane is walking; `usize::MAX` = empty.
        let mut job = [usize::MAX; SER_REFILL_LANES];
        let mut live = 0usize;
        let mut next = 0usize;
        while live > 0 || next < n {
            for lane in 0..SER_REFILL_LANES {
                let mut j = job[lane];
                if j != usize::MAX {
                    let r = reference[lane];
                    if r & LEAF_TAG == 0 {
                        reference[lane] =
                            record_child(self.nodes[r as usize], addrs[j].bit(depth[lane]));
                        depth[lane] += 1;
                        continue;
                    }
                    out[j] = resolve(entry[lane], r);
                    job[lane] = usize::MAX;
                    live -= 1;
                    j = usize::MAX;
                }
                if j == usize::MAX {
                    // Pull: resolve entry-level leaves inline, park the
                    // first walk that survives into the record chain.
                    while next < n {
                        let e = self.entries[addrs[next].bits(0, self.lambda) as usize];
                        let r0 = entry_slot(e);
                        let idx = next;
                        next += 1;
                        if r0 & LEAF_TAG != 0 {
                            out[idx] = resolve(e, r0);
                        } else {
                            job[lane] = idx;
                            entry[lane] = e;
                            reference[lane] = r0;
                            depth[lane] = self.lambda;
                            live += 1;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Prefetches the root-array entry `addr` touches first. The entry
    /// index is pure bit arithmetic on the address, so the hint can be
    /// issued a whole pipeline stage before the walk starts.
    #[inline]
    pub fn prefetch(&self, addr: A) {
        fib_succinct::mem::prefetch_index(self.entries, addr.bits(0, self.lambda) as usize);
    }

    /// Software-pipelined batched lookup: identical results to
    /// [`Self::lookup_batch`], but while one [`SER_BATCH_LANES`]-lane
    /// group resolves, the *next* group's root-array lines are already
    /// being prefetched, so its first-touch misses overlap the current
    /// group's walk instead of serializing behind it.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        // Below the residency threshold the whole structure lives in
        // cache and the prefetch stage is pure overhead — identical
        // results either way, so take the rolling-refill batch kernel.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            return self.lookup_batch(addrs, out);
        }
        fib_succinct::mem::pipelined_stream(
            SER_BATCH_LANES,
            addrs,
            out,
            |addr| self.prefetch(addr),
            |chunk, slot| self.resolve_lanes(chunk, slot),
            |addr, slot| *slot = self.lookup(addr),
        );
    }

    /// One lockstep [`SER_BATCH_LANES`]-lane group: the gather kernel of
    /// [`Self::lookup_stream`]'s out-of-cache path. Both slices must be
    /// exactly [`SER_BATCH_LANES`] long.
    #[inline]
    fn resolve_lanes(&self, chunk: &[A], slot: &mut [Option<NextHop>]) {
        // Stage 1: all root-array entries in one SIMD gather (scalar
        // fallback inside `gather4` when AVX2 is absent or forced off).
        let entry = gather4(
            self.entries,
            [
                u64::from(chunk[0].bits(0, self.lambda)),
                u64::from(chunk[1].bits(0, self.lambda)),
                u64::from(chunk[2].bits(0, self.lambda)),
                u64::from(chunk[3].bits(0, self.lambda)),
            ],
        );
        // Stage 2: lockstep node-record walk; a lane parks once it
        // resolves to a leaf reference. Parked lanes keep gathering
        // record 0 (in bounds whenever any lane is live) so each step
        // stays one gather for the whole group.
        let mut reference = [0u32; SER_BATCH_LANES];
        let mut depth = [self.lambda; SER_BATCH_LANES];
        let mut live = 0usize;
        for lane in 0..SER_BATCH_LANES {
            reference[lane] = entry_slot(entry[lane]);
            if reference[lane] & LEAF_TAG == 0 {
                live += 1;
            }
        }
        while live > 0 {
            let mut gidx = [0u64; SER_BATCH_LANES];
            for lane in 0..SER_BATCH_LANES {
                if reference[lane] & LEAF_TAG == 0 {
                    gidx[lane] = u64::from(reference[lane]);
                }
            }
            let records = gather4(self.nodes, gidx);
            for lane in 0..SER_BATCH_LANES {
                if reference[lane] & LEAF_TAG != 0 {
                    continue;
                }
                reference[lane] = record_child(records[lane], chunk[lane].bit(depth[lane]));
                depth[lane] += 1;
                if reference[lane] & LEAF_TAG != 0 {
                    live -= 1;
                }
            }
        }
        for lane in 0..SER_BATCH_LANES {
            let label = reference[lane] & !LEAF_TAG;
            slot[lane] = if label == BOT {
                let fallback = entry_fallback(entry[lane]);
                (fallback != NONE).then(|| NextHop::new(fallback))
            } else {
                Some(NextHop::new(label))
            };
        }
    }

    /// Lookup reporting every memory touch as `(byte offset, byte size)`
    /// within the blob.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let v = addr.bits(0, self.lambda) as usize;
        sink(v as u64 * 8, 8);
        let entry = self.entries[v];
        let node_base = self.entries.len() as u64 * 8;
        let mut reference = entry_slot(entry);
        let mut depth = self.lambda;
        loop {
            if reference & LEAF_TAG != 0 {
                let label = reference & !LEAF_TAG;
                return if label == BOT {
                    let fallback = entry_fallback(entry);
                    (fallback != NONE).then(|| NextHop::new(fallback))
                } else {
                    Some(NextHop::new(label))
                };
            }
            sink(node_base + u64::from(reference) * 8, 8);
            let record = self.nodes[reference as usize];
            reference = record_child(record, addr.bit(depth));
            depth += 1;
        }
    }
}

/// Error decoding a serialized-DAG blob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// Fewer bytes than the header + checksum demand.
    Truncated,
    /// The magic number is not `FIBD`.
    BadMagic,
    /// Unknown format version.
    BadVersion(u16),
    /// The blob was built for a different address width.
    WidthMismatch {
        /// Width recorded in the blob.
        blob: u8,
        /// Width of the requested address type.
        expected: u8,
    },
    /// Checksum over the payload does not match.
    ChecksumMismatch,
    /// Structurally invalid contents.
    Inconsistent(&'static str),
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "blob truncated"),
            Self::BadMagic => write!(f, "not a FIBD blob"),
            Self::BadVersion(v) => write!(f, "unsupported blob version {v}"),
            Self::WidthMismatch { blob, expected } => {
                write!(f, "blob is W={blob}, expected W={expected}")
            }
            Self::ChecksumMismatch => write!(f, "blob checksum mismatch"),
            Self::Inconsistent(what) => write!(f, "inconsistent blob: {what}"),
        }
    }
}

impl std::error::Error for BlobError {}
#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::{BinaryTrie, Prefix4};

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn serialized_matches_dag_across_lambdas() {
        let trie = fig1_trie();
        for lambda in [0u8, 1, 3, 8, 11, 16] {
            let dag = PrefixDag::from_trie(&trie, lambda);
            let ser = SerializedDag::from_dag(&dag);
            assert_eq!(ser.lambda(), lambda);
            for i in 0..3000u32 {
                let addr = i.wrapping_mul(0x9E37_79B9);
                assert_eq!(
                    ser.lookup(addr),
                    dag.lookup(addr),
                    "λ={lambda} addr {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn empty_fib_serializes() {
        let dag = PrefixDag::from_trie(&BinaryTrie::<u32>::new(), 11);
        let ser = SerializedDag::from_dag(&dag);
        assert_eq!(ser.lookup(0), None);
        assert_eq!(ser.lookup(u32::MAX), None);
        assert_eq!(ser.interior_count(), 0);
        assert_eq!(ser.size_bytes(), (1 << 11) * 8);
    }

    #[test]
    fn shared_subtries_are_serialized_once() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for base in 0..64u32 {
            // 64 identical /8-rooted subtries.
            trie.insert(Prefix4::new(base << 26, 8), nh(1));
            trie.insert(Prefix4::new(base << 26 | (1 << 23), 9), nh(2));
        }
        let dag = PrefixDag::from_trie(&trie, 6);
        let ser = SerializedDag::from_dag(&dag);
        let stats = dag.stats();
        assert_eq!(
            ser.interior_count(),
            stats.folded_interior,
            "every distinct folded interior appears exactly once"
        );
    }

    #[test]
    fn traced_lookup_touches_entry_then_nodes() {
        let dag = PrefixDag::from_trie(&fig1_trie(), 2);
        let ser = SerializedDag::from_dag(&dag);
        let mut touches = Vec::new();
        let result = ser.lookup_traced(0x6000_0000, &mut |off, sz| touches.push((off, sz)));
        assert_eq!(result, ser.lookup(0x6000_0000));
        assert!(!touches.is_empty());
        // First touch is the root array entry for the top 2 bits (01 → 1).
        assert_eq!(touches[0], (8, 8));
        // Subsequent touches are within the node region.
        for &(off, _) in &touches[1..] {
            assert!(off >= ser.entries.len() as u64 * 8);
        }
    }

    #[test]
    fn depth_stats_are_bounded_by_width_minus_lambda() {
        let trie = fig1_trie();
        let dag = PrefixDag::from_trie(&trie, 2);
        let ser = SerializedDag::from_dag(&dag);
        let (avg, max) = ser.depth_stats((0..1000u32).map(|i| i.wrapping_mul(0x01DE_B851)));
        assert!(avg <= f64::from(max));
        assert!(max <= 30, "hops after a 2-bit stride cannot exceed W-λ");
    }

    #[test]
    fn blob_roundtrips() {
        let dag = PrefixDag::from_trie(&fig1_trie(), 5);
        let ser = SerializedDag::from_dag(&dag);
        let bytes = ser.to_bytes();
        let back = SerializedDag::<u32>::from_bytes(&bytes).unwrap();
        assert_eq!(back.lambda(), 5);
        for i in 0..2000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(back.lookup(addr), ser.lookup(addr));
        }
    }

    #[test]
    fn blob_rejects_corruption() {
        let dag = PrefixDag::from_trie(&fig1_trie(), 4);
        let ser = SerializedDag::from_dag(&dag);
        let good = ser.to_bytes();

        // Truncation anywhere.
        for cut in [0, 10, good.len() / 2, good.len() - 1] {
            assert!(
                SerializedDag::<u32>::from_bytes(&good[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            SerializedDag::<u32>::from_bytes(&bad),
            Err(BlobError::BadMagic)
        ));
        // Bad version.
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            SerializedDag::<u32>::from_bytes(&bad),
            Err(BlobError::BadVersion(9))
        ));
        // Width mismatch: an IPv4 blob refused by an IPv6 decoder.
        assert!(matches!(
            SerializedDag::<u128>::from_bytes(&good),
            Err(BlobError::WidthMismatch {
                blob: 32,
                expected: 128
            })
        ));
        // Single-bit payload flip breaks the checksum.
        let mut bad = good.clone();
        let mid = 20;
        bad[mid] ^= 0x40;
        assert!(matches!(
            SerializedDag::<u32>::from_bytes(&bad),
            Err(BlobError::ChecksumMismatch) | Err(BlobError::Inconsistent(_))
        ));
    }

    #[test]
    fn batch_lookup_matches_scalar_across_lambdas() {
        let trie = fig1_trie();
        for lambda in [0u8, 2, 5, 11] {
            let ser = SerializedDag::from_dag(&PrefixDag::from_trie(&trie, lambda));
            for n in [0usize, 1, 3, 4, 6, 8, 257] {
                let addrs: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
                let mut out = vec![None; n];
                ser.lookup_batch(&addrs, &mut out);
                for (a, got) in addrs.iter().zip(&out) {
                    assert_eq!(*got, ser.lookup(*a), "λ={lambda} addr {a:#x}");
                }
                // Oversized output buffer: every addressed slot must still
                // be written (the tails of both chunk streams must align).
                let mut big = vec![Some(NextHop::new(u32::MAX - 1)); n + 5];
                ser.lookup_batch(&addrs, &mut big);
                for (a, got) in addrs.iter().zip(&big) {
                    assert_eq!(*got, ser.lookup(*a), "λ={lambda} oversized at {a:#x}");
                }
            }
        }
    }

    #[test]
    fn fallback_label_resolves_bottom_leaves() {
        // Route only above the barrier: folded region is all ⊥, answers
        // must come from the fallback labels.
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/1"), nh(9));
        trie.insert(p("0.0.0.0/16"), nh(3));
        let dag = PrefixDag::from_trie(&trie, 8);
        let ser = SerializedDag::from_dag(&dag);
        assert_eq!(ser.lookup(0x0000_1111), Some(nh(3)));
        assert_eq!(ser.lookup(0x0100_0000), Some(nh(9)));
        assert_eq!(ser.lookup(0x8000_0000), None);
    }
}
