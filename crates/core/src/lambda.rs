//! Leaf-push barrier selection (Equations (2) and (3) of the paper).
//!
//! The barrier λ splits the trie into an uncompressed, fast-to-update top
//! and a folded, entropy-sized bottom. The paper's analysis pins the sweet
//! spot with the Lambert W-function:
//!
//! * Eq. (2): `λ = ⌊W(n·ln δ) / ln 2⌋` — information-theoretic regime,
//! * Eq. (3): `λ = ⌊W(n·H0·ln 2) / ln 2⌋` — entropy regime,
//!
//! and Section 5.1 finds empirically that any λ in ≈ [5, 12] works for real
//! FIBs, settling on λ = 11.

/// The λ the paper uses for all Section 5 measurements.
pub const DEFAULT_LAMBDA: u8 = 11;

/// The principal branch of the Lambert W-function for `z ≥ 0` (where it is
/// single-valued): the solution of `w·e^w = z`.
///
/// Newton iteration with a logarithmic initial guess; converges to machine
/// precision in a handful of steps for the argument ranges the barrier
/// formulas produce.
///
/// # Panics
/// Panics if `z` is negative or not finite.
#[must_use]
pub fn lambert_w(z: f64) -> f64 {
    assert!(
        z.is_finite() && z >= 0.0,
        "lambert_w domain: z ≥ 0, got {z}"
    );
    if z == 0.0 {
        return 0.0;
    }
    // For z ≥ e, w ≈ ln z − ln ln z is a tight start; below, ln(1+z).
    let mut w = if z > std::f64::consts::E {
        let lz = z.ln();
        lz - lz.ln()
    } else {
        (1.0 + z).ln()
    };
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - z;
        // Newton step: f'(w) = e^w (w + 1).
        let step = f / (ew * (w + 1.0));
        w -= step;
        if step.abs() < 1e-14 * (1.0 + w.abs()) {
            break;
        }
    }
    w
}

/// Eq. (2): barrier for the information-theoretic bound of Theorem 1,
/// `λ = ⌊W(n·ln δ)/ln 2⌋`, clamped to `[0, width]`.
#[must_use]
pub fn barrier_info(n: usize, delta: usize, width: u8) -> u8 {
    if n == 0 || delta <= 1 {
        return 0;
    }
    let z = n as f64 * (delta as f64).ln();
    clamp_lambda(lambert_w(z) / std::f64::consts::LN_2, width)
}

/// Eq. (3): barrier for the entropy bound of Theorem 2,
/// `λ = ⌊W(n·H0·ln 2)/ln 2⌋`, clamped to `[0, width]`.
#[must_use]
pub fn barrier_entropy(n: usize, h0: f64, width: u8) -> u8 {
    if n == 0 || h0 <= 0.0 {
        return 0;
    }
    let z = n as f64 * h0 * std::f64::consts::LN_2;
    clamp_lambda(lambert_w(z) / std::f64::consts::LN_2, width)
}

/// Traffic-weighted barrier: extends the uniform choice of Eqs. (2)/(3)
/// with a *measured* access distribution.
///
/// The uniform analysis weights every address equally, so it balances the
/// direct-indexed top table (`2^λ` slots) against the worst-case walk of
/// the compressed bottom. Under real traffic the walk cost below the
/// barrier is paid in proportion to the mass of lookups whose match sits
/// deeper than λ. Starting from the uniform barrier `base`, this raises λ
/// one level at a time while the marginal gain — the traffic fraction
/// still resolving below the candidate barrier — outweighs the marginal
/// table cost `θ·2^λ/n` (the relative growth of the top table per route,
/// the same currency Eq. (2) trades in):
///
/// `λ* = max { λ ≥ base : P[match depth > λ'] ≥ θ·2^λ'/n  ∀ λ' ∈ [base, λ) }`
///
/// `depth_mass[d]` is the fraction of traffic whose longest-prefix match
/// sits at depth `d` (see `crate::hot::depth_mass_from_heat`); `theta`
/// tunes memory-versus-speed (1.0 is neutral; larger values hold λ down).
/// Uniform traffic over a real FIB concentrates mass at ≤ 24, so the rule
/// leaves `base` alone; zipf-skewed deep traffic pushes λ up until the
/// table-growth term wins.
#[must_use]
pub fn barrier_traffic(n: usize, depth_mass: &[f64], base: u8, theta: f64, width: u8) -> u8 {
    if n == 0 || depth_mass.is_empty() {
        return base.min(width);
    }
    let mut lambda = base.min(width);
    while lambda < width {
        // Marginal gain of raising the barrier one level: exactly the
        // expected-walk-depth drop E(λ) − E(λ+1) = P[match depth > λ].
        let gain =
            expected_walk_depth(depth_mass, lambda) - expected_walk_depth(depth_mass, lambda + 1);
        let cost = theta * (2f64.powi(i32::from(lambda) + 1)) / n as f64;
        if gain <= 0.0 || gain < cost {
            break;
        }
        lambda += 1;
    }
    lambda
}

/// Expected traffic-weighted walk depth below a barrier λ:
/// `E(λ) = Σ_d depth_mass[d] · max(0, d − λ)`.
///
/// This is the objective the barrier rules trade against table growth —
/// and, evaluated per *node* instead of once globally, exactly the cost
/// the [`crate::VarStrideDag`] dynamic program minimizes: a single
/// global λ (direct-indexed top, unit strides below) is one point in
/// that DP's search space, so `barrier_traffic` is the degenerate
/// one-decision special case of the per-node stride placement.
///
/// `depth_mass[d]` is the fraction of traffic whose longest-prefix
/// match sits at depth `d` (see [`crate::depth_mass_from_heat`]).
#[must_use]
pub fn expected_walk_depth(depth_mass: &[f64], lambda: u8) -> f64 {
    depth_mass
        .iter()
        .enumerate()
        .skip(usize::from(lambda) + 1)
        .map(|(d, &m)| m.max(0.0) * (d - usize::from(lambda)) as f64)
        .sum()
}

fn clamp_lambda(lambda: f64, width: u8) -> u8 {
    if lambda <= 0.0 {
        0
    } else if lambda >= f64::from(width) {
        width
    } else {
        lambda.floor() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambert_w_fixed_points() {
        // W(0) = 0, W(e) = 1, W(2e²) = 2 approximately… exact checks:
        assert_eq!(lambert_w(0.0), 0.0);
        assert!((lambert_w(std::f64::consts::E) - 1.0).abs() < 1e-12);
        let z = 2.0 * (2.0f64).exp();
        assert!((lambert_w(z) - 2.0).abs() < 1e-12);
        // Definition check across magnitudes.
        for z in [1e-6, 0.1, 1.0, 10.0, 1e3, 1e6, 1e12] {
            let w = lambert_w(z);
            assert!((w * w.exp() - z).abs() / z < 1e-9, "w e^w != z at {z}");
        }
    }

    #[test]
    fn barrier_matches_paper_scale() {
        // For a DFZ-sized FIB the paper lands at λ ≈ 11: with n ≈ 700 K
        // normal-form leaves and H0 ≈ 1–4, Eq. (3) gives λ in [13, 15];
        // the empirically best λ = 11 sits just below, within the flat
        // region of Fig. 5.
        for (n, h0) in [(400_000usize, 1.0f64), (700_000, 2.0), (1_000_000, 4.0)] {
            let l = barrier_entropy(n, h0, 32);
            assert!((10..=17).contains(&l), "λ = {l} for n = {n}, H0 = {h0}");
        }
    }

    #[test]
    fn barrier_grows_with_n_and_entropy() {
        assert!(barrier_entropy(1 << 20, 1.0, 32) >= barrier_entropy(1 << 10, 1.0, 32));
        assert!(barrier_entropy(1 << 20, 4.0, 32) >= barrier_entropy(1 << 20, 0.5, 32));
        assert!(barrier_info(1 << 20, 16, 32) >= barrier_info(1 << 20, 2, 32));
    }

    #[test]
    fn degenerate_inputs_clamp() {
        assert_eq!(barrier_entropy(0, 1.0, 32), 0);
        assert_eq!(barrier_entropy(1000, 0.0, 32), 0);
        assert_eq!(barrier_info(0, 4, 32), 0);
        assert_eq!(barrier_info(1000, 1, 32), 0);
        // Huge n clamps to the address width.
        assert_eq!(barrier_entropy(usize::MAX / 2, 8.0, 32), 32);
    }

    #[test]
    fn traffic_barrier_tracks_depth_mass() {
        let n = 500_000;
        // All mass at depth ≤ 8: nothing to gain, λ stays at base.
        let mut shallow = vec![0.0; 33];
        shallow[8] = 1.0;
        assert_eq!(barrier_traffic(n, &shallow, 11, 1.0, 32), 11);
        // Heavy mass at depth 24: λ climbs toward it, then the 2^λ/n
        // table-growth cost stops the climb before the address width.
        let mut deep = vec![0.0; 33];
        deep[24] = 0.9;
        deep[8] = 0.1;
        let l = barrier_traffic(n, &deep, 11, 1.0, 32);
        assert!(l > 11 && l <= 24, "λ = {l}");
        // Deeper mass never lowers λ, and more mass never lowers it.
        let mut deeper = vec![0.0; 33];
        deeper[28] = 1.0;
        assert!(barrier_traffic(n, &deeper, 11, 1.0, 32) >= l);
        // A bigger θ (memory-tighter) holds λ down.
        assert!(barrier_traffic(n, &deep, 11, 100.0, 32) <= l);
        // Degenerate inputs fall back to base.
        assert_eq!(barrier_traffic(0, &deep, 11, 1.0, 32), 11);
        assert_eq!(barrier_traffic(n, &[], 11, 1.0, 32), 11);
        // Clamped to the width.
        assert_eq!(barrier_traffic(n, &deep, 40, 1.0, 32), 32);
    }

    #[test]
    fn expected_walk_depth_is_the_barrier_objective() {
        let mut dm = vec![0.0; 33];
        dm[8] = 0.25;
        dm[16] = 0.5;
        dm[24] = 0.25;
        // Direct evaluation at a few barriers.
        assert!(
            (expected_walk_depth(&dm, 0) - (0.25 * 8.0 + 0.5 * 16.0 + 0.25 * 24.0)).abs() < 1e-12
        );
        assert!((expected_walk_depth(&dm, 16) - 0.25 * 8.0).abs() < 1e-12);
        assert_eq!(expected_walk_depth(&dm, 24), 0.0);
        // Monotone non-increasing in λ, and each unit step drops by
        // exactly the mass still matching deeper than λ.
        for l in 0u8..32 {
            let (e0, e1) = (expected_walk_depth(&dm, l), expected_walk_depth(&dm, l + 1));
            assert!(e1 <= e0 + 1e-12);
            let deeper: f64 = dm.iter().skip(usize::from(l) + 1).sum();
            assert!((e0 - e1 - deeper).abs() < 1e-12, "λ = {l}");
        }
    }

    #[test]
    fn eq2_equals_eq3_at_max_entropy() {
        // Footnote 2 of the paper: (3) becomes (2) at H0 = lg δ.
        let n = 500_000;
        let delta = 16usize;
        let h0 = (delta as f64).log2();
        assert_eq!(barrier_info(n, delta, 32), barrier_entropy(n, h0, 32));
    }
}
