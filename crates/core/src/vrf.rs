//! Multi-tenant VRF compilation: many logical forwarding tables folded
//! into **one shared, hash-consed prefix-DAG arena**, with a measured
//! cost model placing each table on the engine that serves it best.
//!
//! Production routers hold thousands of VRFs whose FIBs share most of
//! their structure. The paper's trie-folding merges identical subtrees
//! *within* one table; the "Memory size bounds of prefix DAGs" analysis
//! shows the same argument applies *across* tables — a shared subtree
//! collapses to one node regardless of which table points at it. The
//! compiler here exploits exactly that:
//!
//! 1. Every table is folded by the ordinary [`PrefixDag`] compiler
//!    (leaf-pushing below the λ barrier, within-table interning) and
//!    packed by its `write_packed` compacting BFS.
//! 2. A **cross-table canonical interner** re-keys every packed node on
//!    `(left, right, label)` identity, post-order, so structurally
//!    identical subtrees from *different* tables land on one arena slot.
//! 3. A multi-root BFS (the `write_packed` remap, extended to one queue
//!    seeded with every table's root) packs the interned nodes into a
//!    single word arena in the exact two-word [`PrefixDagRef`] record
//!    format — each VRF is served zero-copy by a `PrefixDagRef` with its
//!    own root over the shared words.
//!
//! Not every table belongs in the shared arena. The [`CostModel`] —
//! fitted from BENCH_lookup's measured size/speed points plus live
//! traffic weight from the `HeatSketch` — places each table on one of
//! three engines: the shared arena (charged only its *marginal* unique
//! bytes), a dedicated [`SerializedDag`] (fastest, ~8 ns), or a
//! dedicated entropy-mode [`XbwFib`] (smallest, ~1.3 bits/route). Hot
//! tables land on pdag-serialized, cold tables on xbw-entropy,
//! high-overlap tables stay shared.
//!
//! The whole set ships as one `fibimage/v1` file: a [`sections::VRF_DIR`]
//! directory, the shared [`sections::VRF_PDAG`] arena, and per-table
//! dedicated-engine sections in private id blocks. [`VrfSetRef`]
//! reassembles the zero-copy per-VRF views from a loaded image.

use std::collections::HashMap;

use fib_trie::{Address, BinaryTrie, NextHop};

use crate::engine::{BuildConfig, FibBuild, FibLookup};
use crate::image::{sections, EngineKind, FibImage, ImageError, ImageWriter};
use crate::pdag::{PrefixDag, PrefixDagRef};
use crate::serialized::{SerializedDag, SerializedDagRef};
use crate::vsdag::{VarStrideDag, VarStrideDagRef};
use crate::xbw::{XbwFib, XbwFibRef, XbwStorage};

const NONE: u32 = u32::MAX;

/// Words per [`sections::VRF_DIR`] table record (after the count word).
pub const VRF_DIR_RECORD_WORDS: usize = 6;

/// The engine a VRF table is placed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum VrfEngineChoice {
    /// A root pointer into the shared hash-consed pDAG arena.
    Shared = 0,
    /// A dedicated λ-collapsed serialized DAG (dense flat layout,
    /// lowest latency after vsdag in the v4 cost model).
    Serialized = 1,
    /// A dedicated entropy-mode XBW-b (smallest footprint).
    Xbw = 2,
    /// A dedicated variable-stride multibit DAG (the speed/size middle
    /// ground: near-serialized latency at a fraction of the slots).
    VsDag = 3,
}

impl VrfEngineChoice {
    /// Decodes the directory byte.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Self::Shared),
            1 => Some(Self::Serialized),
            2 => Some(Self::Xbw),
            3 => Some(Self::VsDag),
            _ => None,
        }
    }

    /// Stable lower-case name (reports, `fibc inspect`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Shared => "shared-pdag",
            Self::Serialized => "serialized",
            Self::Xbw => "xbw-entropy",
            Self::VsDag => "vsdag",
        }
    }
}

/// Measured size/speed cost model for per-VRF engine placement.
///
/// Latency and density defaults are the committed BENCH_lookup.json
/// points (schema v4: taz, uniform keys, scalar lookups with stored
/// results): pdag-serialized 7.9 ns at 11.49 bits/route, xbw-entropy
/// 585.3 ns at 1.34 bits/route, the heat-compiled vsdag 7.1 ns at
/// 25.65 bits/route, the shared pDAG walk 37.7 ns with its bytes
/// charged as the *marginal* unique arena bytes the table adds.
/// Placement minimizes `traffic_weight · ns + byte_rent · bytes`.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Measured ns/lookup of a dedicated serialized DAG.
    pub serialized_ns: f64,
    /// Measured density of a dedicated serialized DAG, bits per route.
    pub serialized_bits_per_route: f64,
    /// Measured ns/lookup of a dedicated entropy-mode XBW-b.
    pub xbw_ns: f64,
    /// Measured density of entropy-mode XBW-b, bits per route.
    pub xbw_bits_per_route: f64,
    /// Measured ns/lookup of a dedicated variable-stride DAG.
    pub vsdag_ns: f64,
    /// Measured density of a dedicated variable-stride DAG, bits per
    /// route.
    pub vsdag_bits_per_route: f64,
    /// Measured ns/lookup of the shared packed pDAG walk.
    pub shared_ns: f64,
    /// Memory rent: the cost of one resident byte, in the same units as
    /// one expected nanosecond of lookup latency.
    pub byte_rent: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            serialized_ns: 7.9,
            serialized_bits_per_route: 11.49,
            xbw_ns: 585.3,
            xbw_bits_per_route: 1.34,
            vsdag_ns: 7.1,
            vsdag_bits_per_route: 25.65,
            shared_ns: 37.7,
            byte_rent: 1e-4,
        }
    }
}

impl CostModel {
    /// The placement cost of `choice` for a table with `routes` routes,
    /// `marginal_shared_bytes` of arena bytes unique to it, and a
    /// normalized traffic weight in `[0, 1]`.
    #[must_use]
    pub fn cost(
        &self,
        choice: VrfEngineChoice,
        routes: u64,
        marginal_shared_bytes: u64,
        traffic_weight: f64,
    ) -> f64 {
        let (ns, bytes) = match choice {
            VrfEngineChoice::Shared => (self.shared_ns, marginal_shared_bytes as f64),
            VrfEngineChoice::Serialized => (
                self.serialized_ns,
                routes as f64 * self.serialized_bits_per_route / 8.0,
            ),
            VrfEngineChoice::Xbw => (self.xbw_ns, routes as f64 * self.xbw_bits_per_route / 8.0),
            VrfEngineChoice::VsDag => (
                self.vsdag_ns,
                routes as f64 * self.vsdag_bits_per_route / 8.0,
            ),
        };
        traffic_weight * ns + self.byte_rent * bytes
    }

    /// Picks the cheapest engine for one table. Hot tables (large
    /// `traffic_weight`) land on serialized, cold low-overlap tables on
    /// xbw-entropy, high-overlap tables on the shared arena.
    #[must_use]
    pub fn place(
        &self,
        routes: u64,
        marginal_shared_bytes: u64,
        traffic_weight: f64,
    ) -> VrfEngineChoice {
        let mut best = VrfEngineChoice::Shared;
        let mut best_cost = self.cost(best, routes, marginal_shared_bytes, traffic_weight);
        for choice in [
            VrfEngineChoice::Serialized,
            VrfEngineChoice::Xbw,
            VrfEngineChoice::VsDag,
        ] {
            let c = self.cost(choice, routes, marginal_shared_bytes, traffic_weight);
            if c < best_cost {
                best = choice;
                best_cost = c;
            }
        }
        best
    }
}

/// Placement policy for [`compile_vrf_set`].
#[derive(Clone, Debug)]
pub enum VrfPolicy {
    /// Every table on the shared arena — the pure-dedup configuration the
    /// memory benchmarks measure.
    Shared,
    /// Cost-model placement. `weights` are per-table traffic weights
    /// parallel to the input tables (normalized internally; empty means
    /// uniform).
    Auto {
        /// Per-table traffic weights (e.g. live `HeatSketch` mass).
        weights: Vec<f64>,
    },
    /// Explicit placement, one choice per input table — operator
    /// overrides and deterministic tests bypass the cost model.
    Pinned {
        /// Per-table engine choices, parallel to the input tables.
        choices: Vec<VrfEngineChoice>,
    },
}

/// One logical table handed to the compiler.
pub struct VrfTable<'t, A: Address> {
    /// VRF id (unique within the set).
    pub id: u32,
    /// The table's control FIB.
    pub trie: &'t BinaryTrie<A>,
}

/// Aggregate dedup statistics of a compiled set.
#[derive(Clone, Copy, Debug, Default)]
pub struct VrfSetStats {
    /// Logical tables in the set.
    pub tables: usize,
    /// Tables placed on the shared arena.
    pub shared_tables: usize,
    /// Σ over shared tables of nodes reachable from their roots — what
    /// independent canonical compiles would have stored.
    pub total_nodes: u64,
    /// Unique nodes in the shared arena after cross-table interning.
    pub unique_nodes: u64,
    /// Shared arena footprint (16 bytes per unique node).
    pub arena_bytes: u64,
    /// Dedicated per-table engine footprints, summed.
    pub dedicated_bytes: u64,
    /// Σ over *all* tables of their standalone packed-pDAG image bytes —
    /// the independent-compilation baseline.
    pub independent_bytes: u64,
}

impl VrfSetStats {
    /// `total_nodes / unique_nodes`: how many tables each arena node
    /// serves on average (1.0 = no cross-table sharing).
    #[must_use]
    pub fn sharing_ratio(&self) -> f64 {
        if self.unique_nodes == 0 {
            1.0
        } else {
            self.total_nodes as f64 / self.unique_nodes as f64
        }
    }

    /// Resident bytes of the whole set (arena + dedicated engines).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.arena_bytes + self.dedicated_bytes
    }

    /// Bytes saved versus compiling every table independently.
    #[must_use]
    pub fn bytes_saved(&self) -> u64 {
        self.independent_bytes.saturating_sub(self.resident_bytes())
    }
}

/// One compiled table of a [`CompiledVrfSet`].
pub struct CompiledVrf<A: Address> {
    /// VRF id.
    pub id: u32,
    /// Engine placement.
    pub choice: VrfEngineChoice,
    /// Root index into the shared arena ([`VrfEngineChoice::Shared`]
    /// only; `u32::MAX` otherwise, or for an empty table).
    pub root: u32,
    /// Routes in the table.
    pub routes: u64,
    /// Nodes reachable from `root` in the shared arena (0 for dedicated
    /// placements).
    pub reachable_nodes: u64,
    /// This table's standalone packed-pDAG node count — the
    /// independent-compilation baseline recorded in the directory.
    pub solo_nodes: u64,
    /// The dedicated engine, when placed off the shared arena.
    pub serialized: Option<SerializedDag<A>>,
    /// The dedicated engine, when placed off the shared arena.
    pub xbw: Option<XbwFib<A>>,
    /// The dedicated engine, when placed off the shared arena.
    pub vsdag: Option<VarStrideDag<A>>,
}

/// A compiled multi-tenant set: the shared arena, per-table roots and
/// dedicated engines, and dedup statistics.
pub struct CompiledVrfSet<A: Address> {
    /// The shared hash-consed arena, two packed words per node (the
    /// [`PrefixDagRef`] record format).
    pub arena: Vec<u64>,
    /// Per-table results, sorted by VRF id.
    pub tables: Vec<CompiledVrf<A>>,
    /// Aggregate dedup statistics.
    pub stats: VrfSetStats,
}

impl<A: Address> CompiledVrfSet<A> {
    /// The compiled table for `vrf`, if present.
    #[must_use]
    pub fn table(&self, vrf: u32) -> Option<&CompiledVrf<A>> {
        let i = self.tables.binary_search_by_key(&vrf, |t| t.id).ok()?;
        self.tables.get(i)
    }

    /// VRF-keyed longest-prefix match against the compiled set.
    #[must_use]
    pub fn lookup(&self, vrf: u32, addr: A) -> Option<NextHop> {
        let table = self.table(vrf)?;
        match table.choice {
            VrfEngineChoice::Shared => {
                PrefixDagRef::<A>::from_parts_trusted(&self.arena, table.root)
                    .ok()?
                    .lookup(addr)
            }
            VrfEngineChoice::Serialized => table.serialized.as_ref()?.lookup(addr),
            VrfEngineChoice::Xbw => table.xbw.as_ref()?.lookup(addr),
            VrfEngineChoice::VsDag => table.vsdag.as_ref()?.lookup(addr),
        }
    }
}

/// Cross-table canonical interner: one slot per distinct
/// `(left, right, label)` triple, in first-interned order.
struct ArenaInterner {
    map: HashMap<(u32, u32, u32), u32>,
    nodes: Vec<(u32, u32, u32)>,
}

impl ArenaInterner {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
        }
    }

    fn intern(&mut self, left: u32, right: u32, label: u32) -> u32 {
        if let Some(&id) = self.map.get(&(left, right, label)) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.map.insert((left, right, label), id);
        self.nodes.push((left, right, label));
        id
    }

    /// Interns every node of one table's packed pDAG, post-order, and
    /// returns the table's canonical root. `memo` maps the table's local
    /// node indices to canonical ids. Recursion depth is bounded by the
    /// address width (packed pDAGs are depth-bounded DAGs).
    fn intern_packed(&mut self, words: &[u64], root: u32) -> u32 {
        if root == NONE {
            return NONE;
        }
        let n = words.len() / 2;
        let mut memo = vec![NONE; n];
        self.intern_packed_at(words, root, &mut memo)
    }

    fn intern_packed_at(&mut self, words: &[u64], idx: u32, memo: &mut [u32]) -> u32 {
        if memo[idx as usize] != NONE {
            return memo[idx as usize];
        }
        let children = words[2 * idx as usize];
        let label = words[2 * idx as usize + 1] as u32;
        let (l, r) = (children as u32, (children >> 32) as u32);
        let cl = if l == NONE {
            NONE
        } else {
            self.intern_packed_at(words, l, memo)
        };
        let cr = if r == NONE {
            NONE
        } else {
            self.intern_packed_at(words, r, memo)
        };
        let id = self.intern(cl, cr, label);
        memo[idx as usize] = id;
        id
    }
}

/// Multi-root compacting BFS over the interner's nodes — `write_packed`'s
/// remap extended to one queue seeded with every table's root. Returns
/// the arena words (two per node) and each root remapped.
fn pack_arena(nodes: &[(u32, u32, u32)], roots: &[u32]) -> (Vec<u64>, Vec<u32>) {
    let mut remap = vec![NONE; nodes.len()];
    let mut order: Vec<u32> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for &root in roots {
        if root != NONE && remap[root as usize] == NONE {
            remap[root as usize] = order.len() as u32;
            order.push(root);
            queue.push_back(root);
        }
    }
    while let Some(idx) = queue.pop_front() {
        let (l, r, _) = nodes[idx as usize];
        for child in [l, r] {
            if child != NONE && remap[child as usize] == NONE {
                remap[child as usize] = order.len() as u32;
                order.push(child);
                queue.push_back(child);
            }
        }
    }
    let mut words = Vec::with_capacity(order.len() * 2);
    for &idx in &order {
        let (l, r, label) = nodes[idx as usize];
        let ml = if l == NONE { NONE } else { remap[l as usize] };
        let mr = if r == NONE { NONE } else { remap[r as usize] };
        words.push(u64::from(ml) | (u64::from(mr) << 32));
        words.push(u64::from(label));
    }
    let packed_roots = roots
        .iter()
        .map(|&r| if r == NONE { NONE } else { remap[r as usize] })
        .collect();
    (words, packed_roots)
}

/// Nodes reachable from `root` over packed arena words.
fn reachable_count(words: &[u64], root: u32) -> u64 {
    if root == NONE {
        return 0;
    }
    let n = words.len() / 2;
    let mut seen = vec![false; n];
    let mut stack = vec![root];
    seen[root as usize] = true;
    let mut count = 0u64;
    while let Some(idx) = stack.pop() {
        count += 1;
        let children = words[2 * idx as usize];
        for child in [children as u32, (children >> 32) as u32] {
            if child != NONE && !seen[child as usize] {
                seen[child as usize] = true;
                stack.push(child);
            }
        }
    }
    count
}

/// Compiles `tables` into one shared arena plus dedicated engines per the
/// placement policy. Tables are sorted by id in the result; ids must be
/// unique.
///
/// # Panics
/// Panics if two tables share an id, or if `VrfPolicy::Auto` weights are
/// non-empty with a length different from `tables`.
#[must_use]
pub fn compile_vrf_set<A: Address>(
    tables: &[VrfTable<'_, A>],
    config: &BuildConfig,
    policy: &VrfPolicy,
) -> CompiledVrfSet<A> {
    // Pair each table with its traffic weight, then sort by id.
    let weights: Vec<f64> = match policy {
        VrfPolicy::Shared | VrfPolicy::Pinned { .. } => vec![0.0; tables.len()],
        VrfPolicy::Auto { weights } if weights.is_empty() => {
            vec![1.0 / tables.len().max(1) as f64; tables.len()]
        }
        VrfPolicy::Auto { weights } => {
            assert_eq!(weights.len(), tables.len(), "one weight per table");
            let total: f64 = weights.iter().sum();
            if total > 0.0 {
                weights.iter().map(|w| w / total).collect()
            } else {
                vec![1.0 / tables.len().max(1) as f64; tables.len()]
            }
        }
    };
    let mut indexed: Vec<(usize, &VrfTable<'_, A>)> = tables.iter().enumerate().collect();
    indexed.sort_by_key(|(_, t)| t.id);
    for pair in indexed.windows(2) {
        assert!(
            pair[0].1.id != pair[1].1.id,
            "duplicate VRF id {}",
            pair[0].1.id
        );
    }

    // Fold and pack every table with the ordinary single-table compiler.
    let packed: Vec<(Vec<u64>, u32)> = indexed
        .iter()
        .map(|(_, t)| PrefixDag::build(t.trie, config).write_packed())
        .collect();

    // Pass 1: trial cross-table interning in id order, recording each
    // table's marginal node contribution for the cost model.
    let mut trial = ArenaInterner::new();
    let marginal_nodes: Vec<u64> = packed
        .iter()
        .map(|(words, root)| {
            let before = trial.nodes.len();
            trial.intern_packed(words, *root);
            (trial.nodes.len() - before) as u64
        })
        .collect();

    // Placement.
    let model = CostModel::default();
    let choices: Vec<VrfEngineChoice> = match policy {
        VrfPolicy::Shared => vec![VrfEngineChoice::Shared; indexed.len()],
        VrfPolicy::Pinned { choices } => {
            assert_eq!(choices.len(), tables.len(), "one choice per table");
            indexed.iter().map(|(orig, _)| choices[*orig]).collect()
        }
        VrfPolicy::Auto { .. } => indexed
            .iter()
            .enumerate()
            .map(|(pos, (orig, t))| {
                model.place(
                    t.trie.len() as u64,
                    marginal_nodes[pos] * 16,
                    weights[*orig],
                )
            })
            .collect(),
    };

    // Pass 2: final interning over shared-placement tables only.
    let mut interner = ArenaInterner::new();
    let canon_roots: Vec<u32> = packed
        .iter()
        .zip(&choices)
        .map(|((words, root), choice)| match choice {
            VrfEngineChoice::Shared => interner.intern_packed(words, *root),
            _ => NONE,
        })
        .collect();
    let (arena, packed_roots) = pack_arena(&interner.nodes, &canon_roots);

    // Assemble per-table results and statistics.
    let mut stats = VrfSetStats {
        tables: indexed.len(),
        unique_nodes: (arena.len() / 2) as u64,
        arena_bytes: arena.len() as u64 * 8,
        ..VrfSetStats::default()
    };
    let mut out_tables = Vec::with_capacity(indexed.len());
    for (pos, (_, t)) in indexed.iter().enumerate() {
        let choice = choices[pos];
        let solo_nodes = (packed[pos].0.len() / 2) as u64;
        stats.independent_bytes += solo_nodes * 16;
        let (root, reachable, serialized, xbw, vsdag) = match choice {
            VrfEngineChoice::Shared => {
                let root = packed_roots[pos];
                let reachable = reachable_count(&arena, root);
                stats.shared_tables += 1;
                stats.total_nodes += reachable;
                (root, reachable, None, None, None)
            }
            VrfEngineChoice::Serialized => {
                let dag = SerializedDag::build(t.trie, config);
                stats.dedicated_bytes += dag.size_bytes() as u64;
                (NONE, 0, Some(dag), None, None)
            }
            VrfEngineChoice::Xbw => {
                let fib = XbwFib::build(t.trie, XbwStorage::Entropy);
                stats.dedicated_bytes += fib.size_bytes() as u64;
                (NONE, 0, None, Some(fib), None)
            }
            VrfEngineChoice::VsDag => {
                let dag = VarStrideDag::from_trie(t.trie, config.vs_params());
                stats.dedicated_bytes += dag.size_bytes() as u64;
                (NONE, 0, None, None, Some(dag))
            }
        };
        out_tables.push(CompiledVrf {
            id: t.id,
            choice,
            root,
            routes: t.trie.len() as u64,
            reachable_nodes: reachable,
            solo_nodes,
            serialized,
            xbw,
            vsdag,
        });
    }
    CompiledVrfSet {
        arena,
        tables: out_tables,
        stats,
    }
}

// ---------------------------------------------------------------------
// Image encoding
// ---------------------------------------------------------------------

/// First section id of the table at directory index `index`.
#[must_use]
pub fn vrf_section_base(index: usize) -> u32 {
    sections::VRF_TABLE_BASE + index as u32 * sections::VRF_TABLE_STRIDE
}

/// Slot offset of a canonical engine section id inside a table's private
/// id block: params at 0, payload sections at 1.. in their codec order.
fn vrf_section_slot(id: u32) -> u32 {
    match id {
        sections::PARAMS => 0,
        sections::SER_ENTRIES | sections::XBW_SI | sections::VS_NODES => 1,
        sections::SER_NODES | sections::XBW_SA | sections::VS_SLOTS => 2,
        sections::XBW_LABELS => 3,
        other => {
            debug_assert!(false, "unexpected dedicated-engine section {other:#x}");
            4
        }
    }
}

/// Serializes a compiled set into one `fibimage/v1` blob: `VRF_DIR`
/// directory, shared `VRF_PDAG` arena, and the dedicated engines'
/// sections remapped into per-table id blocks.
///
/// # Errors
/// [`ImageError::Unsupported`] if a dedicated engine configuration has
/// no image encoding.
pub fn write_vrf_image<A: Address>(
    set: &CompiledVrfSet<A>,
    epoch: u64,
) -> Result<Vec<u8>, ImageError> {
    let route_count: u64 = set.tables.iter().map(|t| t.routes).sum();
    let mut writer = ImageWriter::new::<A>(EngineKind::VrfSet, route_count, epoch);
    writer.set_claimed_size_bytes(set.stats.resident_bytes());
    writer.section(
        sections::PARAMS,
        &[
            set.tables.len() as u64,
            set.stats.unique_nodes,
            set.stats.total_nodes,
        ],
    );
    writer.section_with(sections::VRF_DIR, |out| {
        out.push(set.tables.len() as u64);
        for t in &set.tables {
            out.push(u64::from(t.id) | (u64::from(t.choice as u8) << 32));
            out.push(u64::from(t.root));
            out.push(t.routes);
            out.push(t.reachable_nodes);
            out.push(t.solo_nodes);
            out.push(0);
        }
    });
    writer.section(sections::VRF_PDAG, &set.arena);
    for (index, t) in set.tables.iter().enumerate() {
        let base = vrf_section_base(index);
        let mut sub = ImageWriter::new::<A>(EngineKind::VrfSet, t.routes, epoch);
        match t.choice {
            VrfEngineChoice::Shared => continue,
            VrfEngineChoice::Serialized => {
                let dag = t
                    .serialized
                    .as_ref()
                    .ok_or(ImageError::Malformed("serialized placement without engine"))?;
                crate::image::ImageCodec::<A>::write_sections(dag, &mut sub)?;
            }
            VrfEngineChoice::Xbw => {
                let fib = t
                    .xbw
                    .as_ref()
                    .ok_or(ImageError::Malformed("xbw placement without engine"))?;
                crate::image::ImageCodec::<A>::write_sections(fib, &mut sub)?;
            }
            VrfEngineChoice::VsDag => {
                let dag = t
                    .vsdag
                    .as_ref()
                    .ok_or(ImageError::Malformed("vsdag placement without engine"))?;
                crate::image::ImageCodec::<A>::write_sections(dag, &mut sub)?;
            }
        }
        writer.import_remapped(sub, |id| base + vrf_section_slot(id));
    }
    Ok(writer.finish())
}

// ---------------------------------------------------------------------
// Zero-copy view
// ---------------------------------------------------------------------

/// The per-table zero-copy engine view inside a VRF image.
#[derive(Clone, Copy, Debug)]
pub enum VrfEngineRef<'a, A: Address> {
    /// Root over the shared arena.
    Shared(PrefixDagRef<'a, A>),
    /// Dedicated serialized DAG.
    Serialized(SerializedDagRef<'a, A>),
    /// Dedicated entropy-mode XBW-b.
    Xbw(XbwFibRef<'a, A>),
    /// Dedicated variable-stride DAG.
    VsDag(VarStrideDagRef<'a, A>),
}

impl<A: Address> VrfEngineRef<'_, A> {
    /// Longest-prefix match against this table.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        match self {
            Self::Shared(v) => v.lookup(addr),
            Self::Serialized(v) => v.lookup(addr),
            Self::Xbw(v) => v.lookup(addr),
            Self::VsDag(v) => v.lookup(addr),
        }
    }

    /// Placement of this table.
    #[must_use]
    pub fn choice(&self) -> VrfEngineChoice {
        match self {
            Self::Shared(_) => VrfEngineChoice::Shared,
            Self::Serialized(_) => VrfEngineChoice::Serialized,
            Self::Xbw(_) => VrfEngineChoice::Xbw,
            Self::VsDag(_) => VrfEngineChoice::VsDag,
        }
    }
}

/// One table of a [`VrfSetRef`].
#[derive(Clone, Copy, Debug)]
pub struct VrfTableRef<'a, A: Address> {
    /// VRF id.
    pub id: u32,
    /// Routes recorded in the directory.
    pub routes: u64,
    /// Reachable shared-arena nodes recorded in the directory.
    pub reachable_nodes: u64,
    /// Standalone packed-pDAG node count recorded in the directory.
    pub solo_nodes: u64,
    /// The table's engine view.
    pub engine: VrfEngineRef<'a, A>,
}

/// Zero-copy VRF-keyed view over a loaded [`EngineKind::VrfSet`] image.
pub struct VrfSetRef<'a, A: Address> {
    tables: Vec<VrfTableRef<'a, A>>,
    unique_nodes: u64,
}

impl<'a, A: Address> VrfSetRef<'a, A> {
    /// Assembles the view, validating the directory (ids strictly
    /// ascending, roots in range, dedicated sections present) and the
    /// shared arena's child references.
    ///
    /// # Errors
    /// Any [`ImageError`]; hostile images fail loudly, never panic.
    pub fn from_image(image: &'a FibImage) -> Result<Self, ImageError> {
        image.expect::<A>(EngineKind::VrfSet)?;
        let dir = image.section(sections::VRF_DIR)?;
        let arena = image.section(sections::VRF_PDAG)?;
        let count = *dir.first().ok_or(ImageError::Malformed("vrf dir empty"))? as usize;
        if dir.len() != 1 + count * VRF_DIR_RECORD_WORDS {
            return Err(ImageError::Malformed("vrf dir length"));
        }
        // One full child-range scan over the shared arena covers every
        // shared table; per-table views are then assembled trusted.
        PrefixDagRef::<A>::from_parts(arena, if arena.is_empty() { NONE } else { 0 })
            .map_err(ImageError::Malformed)?;
        let n_nodes = (arena.len() / 2) as u64;
        let mut tables = Vec::with_capacity(count);
        let mut prev_id: Option<u32> = None;
        for (index, record) in dir[1..].chunks_exact(VRF_DIR_RECORD_WORDS).enumerate() {
            let id = record[0] as u32;
            if prev_id.is_some_and(|p| p >= id) {
                return Err(ImageError::Malformed("vrf ids not strictly ascending"));
            }
            prev_id = Some(id);
            let choice = u8::try_from(record[0] >> 32)
                .ok()
                .and_then(VrfEngineChoice::from_u8)
                .ok_or(ImageError::Malformed("vrf engine choice"))?;
            let root = record[1] as u32;
            let engine = match choice {
                VrfEngineChoice::Shared => {
                    if root != NONE && u64::from(root) >= n_nodes {
                        return Err(ImageError::Malformed("vrf root out of range"));
                    }
                    VrfEngineRef::Shared(
                        PrefixDagRef::from_parts_trusted(arena, root)
                            .map_err(ImageError::Malformed)?,
                    )
                }
                VrfEngineChoice::Serialized => {
                    let base = vrf_section_base(index);
                    let params = image.section(base)?;
                    let lambda =
                        u8::try_from(*params.first().ok_or(ImageError::Malformed("vrf params"))?)
                            .map_err(|_| ImageError::Malformed("λ out of range"))?;
                    VrfEngineRef::Serialized(
                        SerializedDagRef::from_parts(
                            lambda,
                            image.section(base + 1)?,
                            image.section(base + 2)?,
                        )
                        .map_err(ImageError::Malformed)?,
                    )
                }
                VrfEngineChoice::Xbw => {
                    let base = vrf_section_base(index);
                    let params = image.section(base)?;
                    if params.len() < 2 {
                        return Err(ImageError::Malformed("vrf params"));
                    }
                    VrfEngineRef::Xbw(XbwFibRef::from_parts(
                        params[0],
                        params[1],
                        image.section(base + 1)?,
                        image.section(base + 2)?,
                        image.section(base + 3)?,
                    )?)
                }
                VrfEngineChoice::VsDag => {
                    let base = vrf_section_base(index);
                    let params = image.section(base)?;
                    if params.len() < 3 {
                        return Err(ImageError::Malformed("vrf params"));
                    }
                    let vs_root = u32::try_from(params[0])
                        .map_err(|_| ImageError::Malformed("vsdag root out of range"))?;
                    let node_count = usize::try_from(params[1])
                        .map_err(|_| ImageError::Malformed("vsdag node count out of range"))?;
                    let n_slots = usize::try_from(params[2])
                        .map_err(|_| ImageError::Malformed("vsdag slot count out of range"))?;
                    let nodes = image.section(base + 1)?;
                    if nodes.len() != node_count {
                        return Err(ImageError::Malformed("vsdag node directory length"));
                    }
                    VrfEngineRef::VsDag(
                        VarStrideDagRef::from_parts(
                            nodes,
                            image.section(base + 2)?,
                            n_slots,
                            vs_root,
                        )
                        .map_err(ImageError::Malformed)?,
                    )
                }
            };
            tables.push(VrfTableRef {
                id,
                routes: record[2],
                reachable_nodes: record[3],
                solo_nodes: record[4],
                engine,
            });
        }
        Ok(Self {
            tables,
            unique_nodes: n_nodes,
        })
    }

    /// Number of tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the set holds no tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// All tables, sorted by VRF id.
    #[must_use]
    pub fn tables(&self) -> &[VrfTableRef<'a, A>] {
        &self.tables
    }

    /// The table for `vrf`, if present.
    #[must_use]
    #[inline]
    pub fn table(&self, vrf: u32) -> Option<&VrfTableRef<'a, A>> {
        let i = self.tables.binary_search_by_key(&vrf, |t| t.id).ok()?;
        self.tables.get(i)
    }

    /// VRF-keyed longest-prefix match. Unknown VRFs answer `None` (no
    /// table, no routes).
    #[must_use]
    #[inline]
    pub fn lookup(&self, vrf: u32, addr: A) -> Option<NextHop> {
        self.table(vrf)?.engine.lookup(addr)
    }

    /// Unique nodes in the shared arena.
    #[must_use]
    pub fn unique_nodes(&self) -> u64 {
        self.unique_nodes
    }

    /// Recomputes aggregate dedup statistics from the directory.
    #[must_use]
    pub fn stats(&self) -> VrfSetStats {
        let mut stats = VrfSetStats {
            tables: self.tables.len(),
            unique_nodes: self.unique_nodes,
            arena_bytes: self.unique_nodes * 16,
            ..VrfSetStats::default()
        };
        for t in &self.tables {
            stats.independent_bytes += t.solo_nodes * 16;
            match t.engine {
                VrfEngineRef::Shared(_) => {
                    stats.shared_tables += 1;
                    stats.total_nodes += t.reachable_nodes;
                }
                VrfEngineRef::Serialized(v) => {
                    stats.dedicated_bytes += FibLookup::<A>::size_bytes(&v) as u64;
                }
                VrfEngineRef::Xbw(v) => {
                    stats.dedicated_bytes += FibLookup::<A>::size_bytes(&v) as u64;
                }
                VrfEngineRef::VsDag(v) => {
                    stats.dedicated_bytes += FibLookup::<A>::size_bytes(&v) as u64;
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn base_table() -> BinaryTrie<u32> {
        let mut t = BinaryTrie::new();
        t.insert(p("0.0.0.0/0"), nh(1));
        t.insert(p("10.0.0.0/8"), nh(2));
        t.insert(p("10.1.0.0/16"), nh(3));
        t.insert(p("192.168.0.0/16"), nh(2));
        t.insert(p("192.168.7.0/24"), nh(1));
        t
    }

    #[test]
    fn identical_tables_share_everything() {
        let t = base_table();
        let tables = [
            VrfTable { id: 1, trie: &t },
            VrfTable { id: 2, trie: &t },
            VrfTable { id: 9, trie: &t },
        ];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        assert_eq!(set.stats.tables, 3);
        assert_eq!(
            set.stats.unique_nodes, set.tables[0].reachable_nodes,
            "3 identical tables intern to one table's worth of nodes"
        );
        assert!((set.stats.sharing_ratio() - 3.0).abs() < 1e-9);
        // All three roots are literally the same arena index.
        assert_eq!(set.tables[0].root, set.tables[1].root);
        assert_eq!(set.tables[1].root, set.tables[2].root);
    }

    #[test]
    fn compiled_set_matches_oracle() {
        let t1 = base_table();
        let mut t2 = base_table();
        t2.insert(p("10.2.0.0/16"), nh(4));
        t2.remove(p("192.168.7.0/24"));
        let tables = [VrfTable { id: 1, trie: &t1 }, VrfTable { id: 2, trie: &t2 }];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        for i in 0..4096u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(set.lookup(1, addr), t1.lookup(addr), "vrf 1 addr {addr:#x}");
            assert_eq!(set.lookup(2, addr), t2.lookup(addr), "vrf 2 addr {addr:#x}");
        }
        assert_eq!(set.lookup(7, 0), None, "unknown VRF answers None");
    }

    #[test]
    fn empty_table_compiles_and_answers_none() {
        let t1 = base_table();
        let empty: BinaryTrie<u32> = BinaryTrie::new();
        let tables = [
            VrfTable { id: 1, trie: &t1 },
            VrfTable {
                id: 2,
                trie: &empty,
            },
        ];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        assert_eq!(set.lookup(2, 0x0A00_0001), None);
        assert_eq!(set.lookup(1, 0x0A00_0001), Some(nh(2)));
    }

    #[test]
    fn image_roundtrip_preserves_answers_and_stats() {
        let t1 = base_table();
        let mut t2 = base_table();
        t2.insert(p("172.16.0.0/12"), nh(5));
        let tables = [
            VrfTable { id: 3, trie: &t1 },
            VrfTable { id: 11, trie: &t2 },
        ];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        let bytes = write_vrf_image(&set, 42).unwrap();
        let image = FibImage::from_bytes(&bytes).unwrap();
        assert_eq!(image.engine().unwrap(), EngineKind::VrfSet);
        assert_eq!(image.epoch(), 42);
        let view = VrfSetRef::<u32>::from_image(&image).unwrap();
        assert_eq!(view.len(), 2);
        for i in 0..4096u32 {
            let addr = i.wrapping_mul(0x85EB_CA6B);
            assert_eq!(view.lookup(3, addr), t1.lookup(addr));
            assert_eq!(view.lookup(11, addr), t2.lookup(addr));
        }
        let stats = view.stats();
        assert_eq!(stats.tables, 2);
        assert_eq!(stats.unique_nodes, set.stats.unique_nodes);
        assert_eq!(stats.total_nodes, set.stats.total_nodes);
        assert!(stats.sharing_ratio() > 1.0, "overlapping tables share");
    }

    #[test]
    fn cost_model_places_hot_on_serialized_cold_on_xbw() {
        let model = CostModel::default();
        let routes = 40_000u64;
        // Hot table: latency dominates → serialized.
        assert_eq!(
            model.place(routes, 16 * 12_000, 0.25),
            VrfEngineChoice::Serialized
        );
        // Cold, low overlap (big marginal arena cost) → xbw-entropy.
        assert_eq!(
            model.place(routes, 16 * 12_000, 0.0005),
            VrfEngineChoice::Xbw
        );
        // Cold-ish, near-total overlap (tiny marginal bytes) → shared.
        assert_eq!(model.place(routes, 16 * 40, 0.01), VrfEngineChoice::Shared);
    }

    #[test]
    fn auto_policy_dedicated_engines_roundtrip() {
        let t1 = base_table();
        let mut t2 = base_table();
        t2.insert(p("10.9.0.0/16"), nh(6));
        let t3 = base_table();
        let tables = [
            VrfTable { id: 1, trie: &t1 },
            VrfTable { id: 2, trie: &t2 },
            VrfTable { id: 3, trie: &t3 },
        ];
        // Extreme weights force one hot dedicated table; with v4 cost
        // defaults the latency-dominated pick is vsdag (7.1 ns beats
        // serialized's 7.9 and this table is too small for its
        // bits/route premium to matter). Tiny tables otherwise stay
        // shared (marginal bytes are small).
        let set = compile_vrf_set(
            &tables,
            &BuildConfig::default(),
            &VrfPolicy::Auto {
                weights: vec![0.98, 0.01, 0.01],
            },
        );
        assert_eq!(set.tables[0].choice, VrfEngineChoice::VsDag);
        let bytes = write_vrf_image(&set, 0).unwrap();
        let image = FibImage::from_bytes(&bytes).unwrap();
        let view = VrfSetRef::<u32>::from_image(&image).unwrap();
        for i in 0..2048u32 {
            let addr = i.wrapping_mul(0xC2B2_AE35);
            assert_eq!(view.lookup(1, addr), t1.lookup(addr));
            assert_eq!(view.lookup(2, addr), t2.lookup(addr));
            assert_eq!(view.lookup(3, addr), t3.lookup(addr));
        }
    }

    #[test]
    fn pinned_vsdag_placement_roundtrips() {
        let t1 = base_table();
        let mut t2 = base_table();
        t2.insert(p("172.16.0.0/12"), nh(5));
        let tables = [VrfTable { id: 1, trie: &t1 }, VrfTable { id: 2, trie: &t2 }];
        let set = compile_vrf_set(
            &tables,
            &BuildConfig::default(),
            &VrfPolicy::Pinned {
                choices: vec![VrfEngineChoice::VsDag, VrfEngineChoice::Shared],
            },
        );
        assert_eq!(set.tables[0].choice, VrfEngineChoice::VsDag);
        assert!(set.tables[0].vsdag.is_some());
        let bytes = write_vrf_image(&set, 9).unwrap();
        let image = FibImage::from_bytes(&bytes).unwrap();
        let view = VrfSetRef::<u32>::from_image(&image).unwrap();
        assert_eq!(view.tables()[0].engine.choice(), VrfEngineChoice::VsDag);
        for i in 0..4096u32 {
            let addr = i.wrapping_mul(0x85EB_CA6B);
            assert_eq!(set.lookup(1, addr), t1.lookup(addr));
            assert_eq!(view.lookup(1, addr), t1.lookup(addr));
            assert_eq!(view.lookup(2, addr), t2.lookup(addr));
        }
        assert_eq!(crate::lint::lint_bytes(&bytes), Vec::new());
    }

    #[test]
    fn v6_set_compiles_and_roundtrips() {
        let mut t1: BinaryTrie<u128> = BinaryTrie::new();
        let p6 = |s: &str| s.parse::<fib_trie::Prefix6>().unwrap();
        t1.insert(p6("2001:db8::/32"), nh(1));
        t1.insert(p6("2001:db8:7::/48"), nh(2));
        let mut t2 = t1.clone();
        t2.insert(p6("2001:db8:9::/48"), nh(3));
        let tables = [VrfTable { id: 5, trie: &t1 }, VrfTable { id: 6, trie: &t2 }];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        let bytes = write_vrf_image(&set, 0).unwrap();
        let image = FibImage::from_bytes(&bytes).unwrap();
        let view = VrfSetRef::<u128>::from_image(&image).unwrap();
        let probe: u128 = "2001:db8:9::1"
            .parse::<std::net::Ipv6Addr>()
            .unwrap()
            .into();
        assert_eq!(view.lookup(5, probe), Some(nh(1)));
        assert_eq!(view.lookup(6, probe), Some(nh(3)));
    }

    #[test]
    fn vrf_image_rejects_plain_view_dispatch() {
        let t = base_table();
        let tables = [VrfTable { id: 1, trie: &t }];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        let bytes = write_vrf_image(&set, 0).unwrap();
        let image = FibImage::from_bytes(&bytes).unwrap();
        assert!(matches!(
            crate::image::any_view::<u32>(&image),
            Err(ImageError::Unsupported(_))
        ));
    }
}
