//! Deep structural analysis of `fibimage/v1` files — the engine behind
//! `fibc lint`.
//!
//! The load path ([`FibImage::from_bytes`] + the per-engine `view`
//! constructors) validates what it must to serve lookups safely:
//! header sanity, checksum, section bounds, child ranges. This module
//! goes further, re-deriving redundant structure from the raw words and
//! cross-checking it against the stored directories — on purpose
//! *independently* of the loader, so a bug in the loader's parse cannot
//! hide the same bug here:
//!
//! * section-table hygiene: duplicate ids, payloads overlapping each
//!   other or the header/table blocks;
//! * prefix-DAG shape: children in range, acyclicity (it is a *DAG*
//!   claim), and reachability of every packed node from the root;
//! * wavelet-tree shape: child tags valid, child indices strictly
//!   decreasing (the builder pushes children first — any other order
//!   can loop a descent);
//! * rank directories: every `S_I`/wavelet-node plain bit vector's
//!   line counts, intra-line prefix counts, select samples, and tail
//!   padding recomputed from the data bits
//!   ([`fib_succinct::RsBitVecRef::audit`]) — the showcase class,
//!   because a corrupted count word passes every size check the loader
//!   makes and then silently misroutes;
//! * variable-stride DAG shape: every directory entry's stride within
//!   the legal `[1, 16]` band and the slot spans tiling the slot table
//!   contiguously (base words re-derived from the running stride sum, so
//!   a corrupted base or a truncated slot section is named, not just
//!   refused);
//! * routes payload: prefix lengths and address widths within family;
//! * hot-slab payload: the [`sections::HOT_SLAB`] parse invariants plus
//!   semantic cross-validation — every pinned `(block, next hop)` entry
//!   is re-derived from the routes payload (block purity *and* answer)
//!   and, independently, compared against the engine view's own lookup;
//! * header claims: route count vs the routes payload, prefix count vs
//!   the engine's own parameters, the resident-size claim vs the actual
//!   payload bytes.
//!
//! Every issue carries a stable kebab-case `code` so tooling (and the
//! corpus tests) can assert on classes, not message strings.

use fib_succinct::{IntVecRef, RrrVecRef, RsBitVecRef};
use fib_trie::Address;

use crate::hot::{key_addr, HotSlabRef};
use crate::image::{any_view, sections, EngineKind, FibImage, ImageError, SectionEntry};
use crate::FibLookup;

/// Word-size of the header and the alignment unit of section payloads.
const BLOCK_WORDS: usize = 8;
/// The packed prefix-DAG's null child reference.
const PDAG_NONE: u32 = u32::MAX;

/// One structural finding in a FIB image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintIssue {
    /// Stable kebab-case class code (what tests and tooling match on).
    pub code: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for LintIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

fn issue(code: &'static str, detail: impl Into<String>) -> LintIssue {
    LintIssue {
        code,
        detail: detail.into(),
    }
}

/// Maps a load-path error to its stable lint code.
#[must_use]
pub fn load_error_code(e: &ImageError) -> &'static str {
    match e {
        ImageError::Io(_) => "image-io",
        ImageError::Truncated => "image-truncated",
        ImageError::BadMagic => "image-bad-magic",
        ImageError::BadVersion(_) => "image-bad-version",
        ImageError::FamilyMismatch { .. } => "image-family-mismatch",
        ImageError::EngineMismatch { .. } => "image-engine-mismatch",
        ImageError::UnknownEngine(_) => "image-unknown-engine",
        ImageError::ChecksumMismatch => "image-checksum-mismatch",
        ImageError::MissingSection(_) => "image-missing-section",
        ImageError::Malformed(_) => "image-malformed",
        ImageError::Unsupported(_) => "image-unsupported",
    }
}

/// Lints raw image bytes: load errors become a single typed issue, a
/// loadable image gets the full deep pass of [`lint_image`].
#[must_use]
pub fn lint_bytes(bytes: &[u8]) -> Vec<LintIssue> {
    match FibImage::from_bytes(bytes) {
        Ok(image) => lint_image(&image),
        Err(e) => vec![issue(load_error_code(&e), e.to_string())],
    }
}

/// Runs every deep pass over an already-loaded image. Returns all
/// issues found (an empty vector is a clean bill).
#[must_use]
pub fn lint_image(image: &FibImage) -> Vec<LintIssue> {
    let mut issues = Vec::new();
    header_pass(image, &mut issues);
    sections_pass(image, &mut issues);
    routes_pass(image, &mut issues);
    match image.engine() {
        Ok(EngineKind::PrefixDag) => pdag_pass(image, &mut issues),
        Ok(EngineKind::Xbw) => xbw_pass(image, &mut issues),
        Ok(EngineKind::VrfSet) => vrf_pass(image, &mut issues),
        Ok(EngineKind::VsDag) => vsdag_pass(image, &mut issues),
        // serialized / multibit / lctrie structure is fully covered by
        // their validating views, exercised in view_pass below.
        Ok(_) | Err(_) => {}
    }
    view_pass(image, &mut issues);
    match image.family() {
        4 => hot_slab_pass::<u32>(image, &mut issues),
        6 => hot_slab_pass::<u128>(image, &mut issues),
        _ => {}
    }
    issues
}

// ---------------------------------------------------------------------
// Generic passes
// ---------------------------------------------------------------------

fn header_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    if !matches!(image.family(), 4 | 6) {
        issues.push(issue(
            "image-bad-family",
            format!("family byte is {}, expected 4 or 6", image.family()),
        ));
    }
    if let Err(e) = image.engine() {
        issues.push(issue("image-unknown-engine", e.to_string()));
    }
}

/// Padded word range a section occupies (payloads are block-aligned and
/// block-padded by the writer).
fn padded_range(e: &SectionEntry) -> (usize, usize) {
    (
        e.offset,
        e.offset + e.len.div_ceil(BLOCK_WORDS) * BLOCK_WORDS,
    )
}

fn sections_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let table = image.section_table();
    let table_blocks = (table.len() * 2).div_ceil(BLOCK_WORDS) * BLOCK_WORDS;
    let payload_base = BLOCK_WORDS + table_blocks;
    for (i, a) in table.iter().enumerate() {
        if a.offset < payload_base {
            issues.push(issue(
                "section-in-header",
                format!(
                    "section {:#x} starts at word {} inside the header/table (payloads begin at {payload_base})",
                    a.id, a.offset
                ),
            ));
        }
        for b in &table[i + 1..] {
            if b.id == a.id {
                issues.push(issue(
                    "section-duplicate",
                    format!("section id {:#x} appears more than once", a.id),
                ));
            }
            let (a0, a1) = padded_range(a);
            let (b0, b1) = padded_range(b);
            if a0 < b1 && b0 < a1 && a.len > 0 && b.len > 0 {
                issues.push(issue(
                    "section-overlap",
                    format!(
                        "sections {:#x} (words {a0}..{a1}) and {:#x} (words {b0}..{b1}) overlap",
                        a.id, b.id
                    ),
                ));
            }
        }
    }
}

fn routes_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let Ok(words) = image.section(sections::ROUTES) else {
        return;
    };
    if words.len() % 3 != 0 {
        issues.push(issue(
            "routes-malformed",
            format!(
                "routes section is {} words, not a multiple of 3",
                words.len()
            ),
        ));
        return;
    }
    let width: u32 = if image.family() == 4 { 32 } else { 128 };
    for (i, route) in words.chunks_exact(3).enumerate() {
        let addr = (u128::from(route[0]) << 64) | u128::from(route[1]);
        let len = (route[2] & 0xFF) as u8;
        if u32::from(len) > width {
            issues.push(issue(
                "routes-malformed",
                format!("route {i}: prefix length {len} exceeds family width {width}"),
            ));
        }
        if width < 128 && addr >> width != 0 {
            issues.push(issue(
                "routes-malformed",
                format!("route {i}: address has bits above the family width"),
            ));
        }
    }
    let count = (words.len() / 3) as u64;
    if count != image.route_count() {
        issues.push(issue(
            "route-count-mismatch",
            format!(
                "header claims {} routes, routes section carries {count}",
                image.route_count()
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// Prefix-DAG: in-range children, acyclicity, reachability
// ---------------------------------------------------------------------

fn pdag_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let (Ok(params), Ok(nodes)) = (
        image.section(sections::PARAMS),
        image.section(sections::PDAG_NODES),
    ) else {
        return; // view_pass reports the missing section
    };
    if nodes.len() % 2 != 0 {
        issues.push(issue(
            "image-malformed",
            "pdag node section has an odd word count",
        ));
        return;
    }
    let n = nodes.len() / 2;
    let Some(root) = params.first().and_then(|&r| u32::try_from(r).ok()) else {
        issues.push(issue("image-malformed", "pdag params lack a root"));
        return;
    };
    if root != PDAG_NONE && root as usize >= n {
        issues.push(issue(
            "pdag-root-out-of-range",
            format!("root {root} with only {n} packed nodes"),
        ));
        return;
    }
    let child = |i: usize, right: bool| -> u32 {
        let w = nodes[2 * i];
        if right {
            (w >> 32) as u32
        } else {
            w as u32
        }
    };
    let mut out_of_range = 0usize;
    for i in 0..n {
        for r in [false, true] {
            let c = child(i, r);
            if c != PDAG_NONE && c as usize >= n {
                out_of_range += 1;
            }
        }
    }
    if out_of_range > 0 {
        issues.push(issue(
            "pdag-child-out-of-range",
            format!("{out_of_range} child reference(s) point past the {n} packed nodes"),
        ));
        return; // range violations make the walks below meaningless
    }
    if root == PDAG_NONE {
        if n > 0 {
            issues.push(issue(
                "pdag-unreachable",
                format!("root is ⊥ but {n} nodes are packed"),
            ));
        }
        return;
    }
    // Iterative 3-color DFS: gray-hit ⇒ cycle; white-after ⇒ unreachable.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    // (node, next child to expand: 0 = left, 1 = right, 2 = retire)
    let mut stack: Vec<(u32, u8)> = vec![(root, 0)];
    color[root as usize] = GRAY;
    let mut cycle = false;
    while let Some((node, branch)) = stack.pop() {
        if branch == 2 {
            color[node as usize] = BLACK;
            continue;
        }
        stack.push((node, branch + 1));
        let c = child(node as usize, branch == 1);
        if c == PDAG_NONE {
            continue;
        }
        match color[c as usize] {
            GRAY if !cycle => {
                issues.push(issue(
                    "pdag-cycle",
                    format!("node {c} is its own ancestor (edge from node {node})"),
                ));
                cycle = true;
            }
            WHITE => {
                color[c as usize] = GRAY;
                stack.push((c, 0));
            }
            _ => {}
        }
    }
    let unreached = color.iter().filter(|&&c| c == WHITE).count();
    if unreached > 0 {
        issues.push(issue(
            "pdag-unreachable",
            format!("{unreached} of {n} packed nodes unreachable from the root"),
        ));
    }
}

// ---------------------------------------------------------------------
// XBW-b: rank-directory audits, wavelet shape, string agreement
// ---------------------------------------------------------------------

fn xbw_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let (Ok(params), Ok(si_words), Ok(sa_words)) = (
        image.section(sections::PARAMS),
        image.section(sections::XBW_SI),
        image.section(sections::XBW_SA),
    ) else {
        return; // view_pass reports the missing section
    };
    if params.len() < 4 {
        issues.push(issue("image-malformed", "xbw params section too short"));
        return;
    }
    let (si_kind, sa_kind) = (params[0], params[1]);
    if params[2] != image.prefix_count() {
        issues.push(issue(
            "prefix-count-mismatch",
            format!(
                "header claims {} leaves, xbw params record {}",
                image.prefix_count(),
                params[2]
            ),
        ));
    }
    let si_ones = match si_kind {
        0 => match RsBitVecRef::from_words(si_words) {
            Ok((view, _)) => {
                if let Err(e) = view.audit() {
                    issues.push(issue(
                        "rank-directory-mismatch",
                        format!("S_I rank directory: {}", e.0),
                    ));
                }
                Some(view.count_ones())
            }
            Err(e) => {
                issues.push(issue("view-malformed", format!("S_I: {}", e.0)));
                None
            }
        },
        1 => match RrrVecRef::from_words(si_words) {
            Ok((view, _)) => Some(view.count_ones()),
            Err(e) => {
                issues.push(issue("view-malformed", format!("S_I (rrr): {}", e.0)));
                None
            }
        },
        k => {
            issues.push(issue(
                "image-malformed",
                format!("unknown S_I storage kind {k}"),
            ));
            None
        }
    };
    let sa_len = match sa_kind {
        0 => match IntVecRef::from_words(sa_words) {
            Ok((view, _)) => Some(view.len()),
            Err(e) => {
                issues.push(issue("view-malformed", format!("S_α: {}", e.0)));
                None
            }
        },
        1 => wavelet_pass(sa_words, issues),
        k => {
            issues.push(issue(
                "image-malformed",
                format!("unknown S_α storage kind {k}"),
            ));
            None
        }
    };
    if let (Some(ones), Some(len)) = (si_ones, sa_len) {
        if ones != len {
            issues.push(issue(
                "xbw-leaf-count-mismatch",
                format!("S_I has {ones} leaves but S_α holds {len} symbols"),
            ));
        }
    }
}

/// Raw re-parse of a serialized wavelet tree: meta block, 4-word node
/// table, per-node payloads. Deliberately does not go through
/// `WaveletTreeRef::from_words` first — the point is to name *which*
/// invariant a corrupt table breaks, where the loader only refuses.
/// Returns the sequence length when the shape is sound enough to know it.
fn wavelet_pass(words: &[u64], issues: &mut Vec<LintIssue>) -> Option<usize> {
    let before = issues.len();
    if words.len() < BLOCK_WORDS {
        issues.push(issue("view-malformed", "wavelet run shorter than its meta"));
        return None;
    }
    let len = words[0] as usize;
    let n_nodes = words[1] as usize;
    let root = words[2];
    let backing = words[4];
    if backing > 1 {
        issues.push(issue(
            "view-malformed",
            format!("wavelet backing code {backing} unknown"),
        ));
        return None;
    }
    let table_end = n_nodes
        .checked_mul(4)
        .and_then(|t| BLOCK_WORDS.checked_add(t));
    if table_end.is_none_or(|end| end > words.len()) {
        issues.push(issue("view-malformed", "wavelet node table truncated"));
        return None;
    }
    let unpack = |w: u64| -> (u64, u64) { (w >> 62, w & ((1u64 << 62) - 1)) };
    let (root_tag, root_val) = unpack(root);
    match root_tag {
        1 if root_val as usize >= n_nodes => {
            issues.push(issue(
                "wavelet-root-out-of-range",
                format!("root node {root_val} with only {n_nodes} nodes"),
            ));
        }
        3 => issues.push(issue("wavelet-child-tag", "root has an invalid tag")),
        _ => {}
    }
    for idx in 0..n_nodes {
        let rec = &words[BLOCK_WORDS + idx * 4..BLOCK_WORDS + idx * 4 + 4];
        for (side, &packed) in ["left", "right"].iter().zip(&rec[..2]) {
            let (tag, val) = unpack(packed);
            match tag {
                3 => issues.push(issue(
                    "wavelet-child-tag",
                    format!("node {idx}: {side} child has an invalid tag"),
                )),
                1 if val as usize >= idx => issues.push(issue(
                    "wavelet-child-no-decrease",
                    format!(
                        "node {idx}: {side} child {val} does not strictly decrease — \
                         a descent through it could revisit or loop"
                    ),
                )),
                _ => {}
            }
        }
        // Audit each node's payload; the rank directories inside the
        // wavelet are exactly as able to misroute as the top-level S_I.
        let payload_off = rec[2] as usize;
        let Some(payload) = words.get(payload_off..) else {
            issues.push(issue(
                "view-malformed",
                format!("node {idx}: payload offset {payload_off} out of range"),
            ));
            continue;
        };
        if backing == 0 {
            match RsBitVecRef::from_words(payload) {
                Ok((view, _)) => {
                    if let Err(e) = view.audit() {
                        issues.push(issue(
                            "rank-directory-mismatch",
                            format!("wavelet node {idx}: {}", e.0),
                        ));
                    }
                }
                Err(e) => issues.push(issue(
                    "view-malformed",
                    format!("wavelet node {idx}: {}", e.0),
                )),
            }
        } else if let Err(e) = RrrVecRef::from_words(payload) {
            issues.push(issue(
                "view-malformed",
                format!("wavelet node {idx} (rrr): {}", e.0),
            ));
        }
    }
    (issues.len() == before).then_some(len)
}

// ---------------------------------------------------------------------
// Variable-stride DAG: stride bounds + slot-table coverage
// ---------------------------------------------------------------------

/// Legal stride band for a vsdag directory entry.
const VS_MAX_STRIDE: u64 = 16;

/// Deep pass over a [`EngineKind::VsDag`] image. Re-derives the slot
/// layout from the raw directory words — independently of
/// [`crate::VarStrideDagRef`]'s load validation — so a corrupt image the
/// view refuses still yields the *named* class of damage:
///
/// * `vsdag-stride-out-of-range` — a directory entry's stride field is
///   outside `[1, 16]`; the builder can never emit one, so this is
///   always corruption (the corpus pins exactly this mutation);
/// * `vsdag-slot-coverage` — the per-node spans `2^stride` do not tile
///   the slot table contiguously: a base word off the running sum, a
///   span past the declared slot count, or a slot section holding fewer
///   words than the declared slots need (truncation).
fn vsdag_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let (Ok(params), Ok(nodes), Ok(slots)) = (
        image.section(sections::PARAMS),
        image.section(sections::VS_NODES),
        image.section(sections::VS_SLOTS),
    ) else {
        return; // view_pass reports the missing section
    };
    if params.len() < 3 {
        issues.push(issue("image-malformed", "vsdag params section too short"));
        return;
    }
    let n_slots = params[2];
    if slots.len() as u64 != n_slots.div_ceil(2) {
        issues.push(issue(
            "vsdag-slot-coverage",
            format!(
                "slot section holds {} words, the declared {n_slots} slots need {}",
                slots.len(),
                n_slots.div_ceil(2)
            ),
        ));
    }
    let mut expected_base = 0u64;
    for (i, &node) in nodes.iter().enumerate() {
        let stride = node >> 32;
        let base = u64::from(node as u32);
        if stride == 0 || stride > VS_MAX_STRIDE {
            issues.push(issue(
                "vsdag-stride-out-of-range",
                format!("node {i}: stride field {stride} outside [1, {VS_MAX_STRIDE}]"),
            ));
            return; // span accounting below is meaningless now
        }
        if base != expected_base {
            issues.push(issue(
                "vsdag-slot-coverage",
                format!(
                    "node {i}: slot base {base} breaks the contiguous tiling (expected {expected_base})"
                ),
            ));
            return;
        }
        expected_base += 1u64 << stride;
        if expected_base > n_slots {
            issues.push(issue(
                "vsdag-slot-coverage",
                format!("node {i}: span ends at slot {expected_base}, past the declared {n_slots}"),
            ));
            return;
        }
    }
    if expected_base != n_slots {
        issues.push(issue(
            "vsdag-slot-coverage",
            format!("node spans tile {expected_base} slots, the image declares {n_slots}"),
        ));
    }
}

// ---------------------------------------------------------------------
// VRF set: directory hygiene, shared-arena shape, dedicated sections
// ---------------------------------------------------------------------

/// Deep pass over a [`EngineKind::VrfSet`] image. Re-derives the
/// directory and shared-arena invariants from the raw words —
/// independently of [`crate::vrf::VrfSetRef`]'s own load validation —
/// then assembles the validating set view per family so every dedicated
/// engine's structure gets its usual load-path scrutiny too.
fn vrf_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let Ok(dir) = image.section(sections::VRF_DIR) else {
        issues.push(issue(
            "vrf-dir-malformed",
            "vrfset image lacks a VRF_DIR section",
        ));
        return;
    };
    let Ok(arena) = image.section(sections::VRF_PDAG) else {
        issues.push(issue(
            "vrf-dir-malformed",
            "vrfset image lacks the shared VRF_PDAG arena",
        ));
        return;
    };
    let Some(&count) = dir.first() else {
        issues.push(issue("vrf-dir-malformed", "directory has no count word"));
        return;
    };
    let count = count as usize;
    if dir.len() != 1 + count * crate::vrf::VRF_DIR_RECORD_WORDS {
        issues.push(issue(
            "vrf-dir-malformed",
            format!(
                "directory is {} words; {count} tables need {}",
                dir.len(),
                1 + count * crate::vrf::VRF_DIR_RECORD_WORDS
            ),
        ));
        return;
    }
    if arena.len() % 2 != 0 {
        issues.push(issue(
            "vrf-arena-malformed",
            "shared arena has an odd word count",
        ));
        return;
    }
    let n_nodes = arena.len() / 2;
    let mut out_of_range = 0usize;
    for node in arena.chunks_exact(2) {
        for child in [node[0] as u32, (node[0] >> 32) as u32] {
            if child != PDAG_NONE && child as usize >= n_nodes {
                out_of_range += 1;
            }
        }
    }
    if out_of_range > 0 {
        issues.push(issue(
            "vrf-arena-malformed",
            format!("{out_of_range} arena child reference(s) point past the {n_nodes} nodes"),
        ));
    }
    let mut prev_id: Option<u32> = None;
    let mut route_sum = 0u64;
    for (index, record) in dir[1..]
        .chunks_exact(crate::vrf::VRF_DIR_RECORD_WORDS)
        .enumerate()
    {
        let id = record[0] as u32;
        if prev_id.is_some_and(|p| p >= id) {
            issues.push(issue(
                "vrf-dir-malformed",
                format!("table {index}: id {id} does not strictly ascend"),
            ));
        }
        prev_id = Some(id);
        route_sum += record[2];
        let choice = u8::try_from(record[0] >> 32)
            .ok()
            .and_then(crate::vrf::VrfEngineChoice::from_u8);
        let Some(choice) = choice else {
            issues.push(issue(
                "vrf-dir-malformed",
                format!(
                    "table {index} (vrf {id}): unknown engine choice {:#x}",
                    record[0] >> 32
                ),
            ));
            continue;
        };
        match choice {
            crate::vrf::VrfEngineChoice::Shared => {
                let root = record[1] as u32;
                if root != PDAG_NONE && root as usize >= n_nodes {
                    issues.push(issue(
                        "vrf-root-out-of-range",
                        format!(
                            "table {index} (vrf {id}): root {root} with only {n_nodes} arena nodes"
                        ),
                    ));
                }
                if record[3] > n_nodes as u64 {
                    issues.push(issue(
                        "vrf-dir-malformed",
                        format!(
                            "table {index} (vrf {id}): claims {} reachable nodes of {n_nodes}",
                            record[3]
                        ),
                    ));
                }
            }
            crate::vrf::VrfEngineChoice::Serialized
            | crate::vrf::VrfEngineChoice::Xbw
            | crate::vrf::VrfEngineChoice::VsDag => {
                let base = crate::vrf::vrf_section_base(index);
                // Params plus payload sections: serialized and vsdag
                // carry two payloads, xbw three.
                let slots = if choice == crate::vrf::VrfEngineChoice::Xbw {
                    4
                } else {
                    3
                };
                for slot in 0..slots {
                    if image.section(base + slot).is_err() {
                        issues.push(issue(
                            "vrf-dangling-section",
                            format!(
                                "table {index} (vrf {id}, {}): section {:#x} missing",
                                choice.name(),
                                base + slot
                            ),
                        ));
                    }
                }
            }
        }
    }
    if route_sum != image.route_count() {
        issues.push(issue(
            "route-count-mismatch",
            format!(
                "header claims {} routes, directory tables sum to {route_sum}",
                image.route_count()
            ),
        ));
    }
    if !issues.is_empty() {
        return; // view assembly below would only repeat the findings
    }
    // Validating view assembly + the size-claim drift check the plain
    // engines get from view_pass.
    let view_size = match image.family() {
        4 => crate::vrf::VrfSetRef::<u32>::from_image(image).map(|v| v.stats().resident_bytes()),
        _ => crate::vrf::VrfSetRef::<u128>::from_image(image).map(|v| v.stats().resident_bytes()),
    };
    match view_size {
        Err(e) => issues.push(issue("view-malformed", e.to_string())),
        Ok(resident) => {
            let claimed = image.claimed_size_bytes();
            let drift = claimed.abs_diff(resident);
            if drift > resident / 2 + 1024 {
                issues.push(issue(
                    "size-claim-drift",
                    format!(
                        "header claims {claimed} resident bytes, the set view accounts {resident}"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// View assembly + size-claim drift
// ---------------------------------------------------------------------

fn view_pass(image: &FibImage, issues: &mut Vec<LintIssue>) {
    if image.engine().is_err() || !matches!(image.family(), 4 | 6) {
        return; // already reported; a view cannot be built
    }
    if image.engine() == Ok(EngineKind::VrfSet) {
        return; // VRF-keyed; vrf_pass assembles and sizes the set view
    }
    let view_size = match image.family() {
        4 => match any_view::<u32>(image) {
            Ok(view) => FibLookup::<u32>::size_bytes(&view),
            Err(e) => {
                issues.push(issue("view-malformed", e.to_string()));
                return;
            }
        },
        _ => match any_view::<u128>(image) {
            Ok(view) => FibLookup::<u128>::size_bytes(&view),
            Err(e) => {
                issues.push(issue("view-malformed", e.to_string()));
                return;
            }
        },
    };
    // A hot slab rides along in the resident-size claim (it is served,
    // not decoded away); parse failures are hot_slab_pass's to report.
    let view_size = view_size
        + match image.hot_slab() {
            Ok(Some(slab)) => slab.size_bytes(),
            _ => 0,
        };
    // The header's resident-size claim must track the engine's actual
    // view accounting. Small images carry fixed serialization overhead
    // (select directories, node tables, block padding) that the resident
    // estimate legitimately omits, so the tolerance is 50 % plus an
    // absolute 1 KiB of slack — enough that only a corrupted or
    // dishonest claim fires, not format overheads.
    let claimed = image.claimed_size_bytes() as usize;
    let drift = claimed.abs_diff(view_size);
    if drift > view_size / 2 + 1024 {
        issues.push(issue(
            "size-claim-drift",
            format!("header claims {claimed} resident bytes, the view accounts {view_size}"),
        ));
    }
}

// ---------------------------------------------------------------------
// Hot slab: parse hygiene + entry/next-hop cross-validation
// ---------------------------------------------------------------------

/// Deep pass over an optional [`sections::HOT_SLAB`] payload.
///
/// Hygiene first: the section must satisfy every [`HotSlabRef`] parse
/// invariant (`hot-slab-malformed`) and its block depth must fit the
/// image family's address width. Then semantics: a slab answer is a
/// *claim* that one next hop covers an entire depth-`D` address block,
/// so each pinned entry is re-derived from the routes payload — the
/// block must still be pure (`hot-slab-impure-block`) and resolve to the
/// stored hop (`hot-slab-answer-mismatch`) — and, independently of the
/// routes, checked against the engine view's own lookup of the block
/// base (`hot-slab-answer-mismatch` again): a slab that disagrees with
/// the structure it fronts would short-circuit lookups to wrong hops.
fn hot_slab_pass<A: Address>(image: &FibImage, issues: &mut Vec<LintIssue>) {
    let Ok(words) = image.section(sections::HOT_SLAB) else {
        return; // the section is optional
    };
    let slab = match HotSlabRef::from_words(words) {
        Ok(slab) => slab,
        Err(e) => {
            issues.push(issue("hot-slab-malformed", e.0));
            return;
        }
    };
    if slab.depth() > A::WIDTH {
        issues.push(issue(
            "hot-slab-malformed",
            format!(
                "slab depth {} exceeds family width {}",
                slab.depth(),
                A::WIDTH
            ),
        ));
        return;
    }
    let routes = image.routes::<A>().ok();
    let view = any_view::<A>(image).ok();
    for (key, hop) in slab.entries() {
        let base: A = key_addr(key);
        if let Some(trie) = &routes {
            match trie.block_resolution(base, slab.depth()) {
                None => issues.push(issue(
                    "hot-slab-impure-block",
                    format!(
                        "slab block {key:#018x}/{} spans more than one answer in the routes payload",
                        slab.depth()
                    ),
                )),
                Some(want) if want != hop => issues.push(issue(
                    "hot-slab-answer-mismatch",
                    format!(
                        "slab block {key:#018x}/{} pins {hop:?}, routes resolve {want:?}",
                        slab.depth()
                    ),
                )),
                Some(_) => {}
            }
        }
        if let Some(view) = &view {
            let want = view.lookup(base);
            if want != hop {
                issues.push(issue(
                    "hot-slab-answer-mismatch",
                    format!(
                        "slab block {key:#018x}/{} pins {hop:?}, the engine view answers {want:?}",
                        slab.depth()
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::write_image;
    use crate::{BuildConfig, FibBuild, PrefixDag, SerializedDag};
    use fib_trie::{BinaryTrie, NextHop, Prefix};

    fn small_fib() -> BinaryTrie<u32> {
        let mut trie = BinaryTrie::new();
        for (i, (addr, len)) in [
            (0x0A00_0000u32, 8u8),
            (0x0A01_0000, 16),
            (0x0A01_0100, 24),
            (0xC0A8_0000, 16),
            (0x8000_0000, 1),
        ]
        .iter()
        .enumerate()
        {
            trie.insert(Prefix::new(*addr, *len), NextHop::new(i as u32 % 3));
        }
        trie
    }

    fn repair_checksum(mut bytes: Vec<u8>) -> Vec<u8> {
        bytes[56..64].fill(0);
        let checksum = fib_succinct::fnv1a(&bytes);
        bytes[56..64].copy_from_slice(&checksum.to_le_bytes());
        bytes
    }

    #[test]
    fn honest_images_lint_clean() {
        let trie = small_fib();
        let ser: SerializedDag<u32> = FibBuild::build(&trie, &BuildConfig::default());
        let bytes = write_image(&ser, Some(&trie), 1).unwrap();
        assert_eq!(lint_bytes(&bytes), Vec::new());
    }

    #[test]
    fn load_errors_become_typed_issues() {
        let issues = lint_bytes(&[0u8; 16]);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].code, "image-bad-magic");
    }

    #[test]
    fn pdag_cycle_and_unreachable_are_detected() {
        let trie = small_fib();
        let dag: PrefixDag<u32> = FibBuild::build(&trie, &BuildConfig::default());
        let good = write_image(&dag, None, 0).unwrap();
        let image = FibImage::from_bytes(&good).unwrap();
        let entry = image
            .section_table()
            .iter()
            .find(|e| e.id == sections::PDAG_NODES)
            .copied()
            .unwrap();
        assert!(entry.len >= 4, "need at least two packed nodes");

        // Point the last node's left child back at the root: a cycle.
        let mut bad = good.clone();
        let last = (entry.offset + entry.len - 2) * 8;
        bad[last..last + 4].copy_from_slice(&0u32.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(issues.iter().any(|i| i.code == "pdag-cycle"), "{issues:?}");

        // Cut the root's children: the rest of the pack goes unreachable.
        let mut bad = good;
        let root_word = entry.offset * 8;
        bad[root_word..root_word + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(
            issues.iter().any(|i| i.code == "pdag-unreachable"),
            "{issues:?}"
        );
    }

    #[test]
    fn issue_renders_code_colon_detail() {
        let i = issue("some-code", "what happened");
        assert_eq!(i.to_string(), "some-code: what happened");
    }

    #[test]
    fn vrf_images_lint_clean_and_catch_bad_roots() {
        use crate::vrf::{compile_vrf_set, write_vrf_image, VrfPolicy, VrfTable};
        let t1 = small_fib();
        let mut t2 = small_fib();
        t2.insert(Prefix::new(0x0B00_0000, 8), NextHop::new(1));
        let tables = [VrfTable { id: 1, trie: &t1 }, VrfTable { id: 2, trie: &t2 }];
        let set = compile_vrf_set(&tables, &BuildConfig::default(), &VrfPolicy::Shared);
        let good = write_vrf_image(&set, 5).unwrap();
        assert_eq!(lint_bytes(&good), Vec::new());

        // Point table 1's root past the arena.
        let image = FibImage::from_bytes(&good).unwrap();
        let entry = image
            .section_table()
            .iter()
            .find(|e| e.id == sections::VRF_DIR)
            .copied()
            .unwrap();
        let root_word = (entry.offset + 1 + crate::vrf::VRF_DIR_RECORD_WORDS + 1) * 8;
        let mut bad = good.clone();
        bad[root_word..root_word + 8].copy_from_slice(&0xFFFF_FFF0u64.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(
            issues.iter().any(|i| i.code == "vrf-root-out-of-range"),
            "{issues:?}"
        );

        // Shrink the directory's count word: length no longer matches.
        let mut bad = good;
        let count_word = entry.offset * 8;
        bad[count_word..count_word + 8].copy_from_slice(&7u64.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(
            issues.iter().any(|i| i.code == "vrf-dir-malformed"),
            "{issues:?}"
        );
    }

    #[test]
    fn vsdag_images_lint_clean_and_name_their_damage() {
        use crate::vsdag::{VarStrideDag, VsParams};
        let trie = small_fib();
        let dag = VarStrideDag::from_trie(&trie, VsParams::default());
        let good = write_image(&dag, Some(&trie), 1).unwrap();
        assert_eq!(lint_bytes(&good), Vec::new());

        let image = FibImage::from_bytes(&good).unwrap();
        let entry = image
            .section_table()
            .iter()
            .find(|e| e.id == sections::VS_NODES)
            .copied()
            .unwrap();

        // Blow the first node's stride field out of the legal band.
        let mut bad = good.clone();
        let stride_bytes = entry.offset * 8 + 4;
        bad[stride_bytes..stride_bytes + 4].copy_from_slice(&0x3Fu32.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(
            issues.iter().any(|i| i.code == "vsdag-stride-out-of-range"),
            "{issues:?}"
        );

        // Shrink the slot section's declared length: truncation.
        let slots_pos = image
            .section_table()
            .iter()
            .position(|e| e.id == sections::VS_SLOTS)
            .unwrap();
        let len_word = (8 + slots_pos * 2 + 1) * 8;
        let mut bad = good;
        let packed = u64::from_le_bytes(bad[len_word..len_word + 8].try_into().unwrap());
        let shrunk = (packed & 0xFFFF_FFFF) | ((packed >> 32).saturating_sub(1) << 32);
        bad[len_word..len_word + 8].copy_from_slice(&shrunk.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(
            issues.iter().any(|i| i.code == "vsdag-slot-coverage"),
            "{issues:?}"
        );
    }

    #[test]
    fn vrf_dangling_dedicated_section_is_detected() {
        use crate::vrf::{compile_vrf_set, vrf_section_base, write_vrf_image, VrfPolicy, VrfTable};
        let t1 = small_fib();
        let t2 = small_fib();
        let tables = [VrfTable { id: 1, trie: &t1 }, VrfTable { id: 2, trie: &t2 }];
        // An extreme weight forces table 0 onto a dedicated engine.
        let set = compile_vrf_set(
            &tables,
            &BuildConfig::default(),
            &VrfPolicy::Auto {
                weights: vec![0.99, 0.01],
            },
        );
        assert!(
            set.tables[0].choice != crate::vrf::VrfEngineChoice::Shared,
            "weight 0.99 must place table 0 off the shared arena"
        );
        let good = write_vrf_image(&set, 0).unwrap();
        assert_eq!(lint_bytes(&good), Vec::new());

        // Rename the dedicated params section in the section table: the
        // directory now references a section that is not there.
        let image = FibImage::from_bytes(&good).unwrap();
        let table_pos = image
            .section_table()
            .iter()
            .position(|e| e.id == vrf_section_base(0))
            .unwrap();
        let id_word = (8 + table_pos * 2) * 8;
        let mut bad = good;
        bad[id_word..id_word + 8].copy_from_slice(&0x0FFFu64.to_le_bytes());
        let issues = lint_bytes(&repair_checksum(bad));
        assert!(
            issues.iter().any(|i| i.code == "vrf-dangling-section"),
            "{issues:?}"
        );
    }
}
