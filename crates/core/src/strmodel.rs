//! Trie-folding as a compressed string self-index (§4.2 and Fig. 4).
//!
//! The size theorems of the paper are proven in a *string model*: a string
//! of `n = 2^w` symbols is written onto the leaves of a complete binary
//! trie of depth `w`, the trie is folded with barrier λ, and the resulting
//! DAG is compared against `n·lg δ` (Theorem 1: ≤ `4·n·lg δ + o(n)` with
//! the Eq. (2) barrier) and `n·H0` (Theorem 2: ≤ `(6 + 2·lg(1/H0) +
//! 2·lg lg δ)·H0·n + o(n)` with the Eq. (3) barrier).
//!
//! [`FoldedString`] realizes that model directly on top of [`PrefixDag`]:
//! `get(i)` is a lookup on the key `i`, and — because prefix DAGs support
//! updates — `set(i, s)` works too, making this a *dynamic* compressed
//! string self-index, which the paper notes is the first pointer-machine
//! structure of its kind.

use fib_trie::{BinaryTrie, NextHop, Prefix};

use crate::pdag::{DagStats, PrefixDag};

/// A string of small symbols stored as a folded complete binary trie.
#[derive(Clone)]
pub struct FoldedString {
    dag: PrefixDag<u32>,
    width: u8,
    len: usize,
}

impl FoldedString {
    /// Folds `symbols` (length must be a power of two in `[1, 2^25]`) with
    /// leaf-push barrier `lambda`.
    ///
    /// # Panics
    /// Panics if the length is not a power of two in range.
    #[must_use]
    pub fn new(symbols: &[u16], lambda: u8) -> Self {
        let len = symbols.len();
        assert!(
            len.is_power_of_two() && len <= (1 << 25),
            "length {len} must be a power of two ≤ 2^25"
        );
        let width = len.trailing_zeros() as u8;
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for (i, &sym) in symbols.iter().enumerate() {
            let key = if width == 0 {
                0
            } else {
                (i as u32) << (32 - u32::from(width))
            };
            trie.insert(Prefix::new(key, width), NextHop::new(u32::from(sym)));
        }
        Self {
            dag: PrefixDag::from_trie(&trie, lambda.min(width)),
            width,
            len,
        }
    }

    /// Folds with the Eq. (3) barrier computed from the symbol entropy.
    #[must_use]
    pub fn with_entropy_barrier(symbols: &[u16]) -> Self {
        let mut counts = std::collections::HashMap::new();
        for &s in symbols {
            *counts.entry(s).or_insert(0u64) += 1;
        }
        let freqs: Vec<u64> = counts.values().copied().collect();
        let h0 = fib_succinct::shannon_entropy(&freqs);
        let width = symbols.len().trailing_zeros() as u8;
        let lambda = crate::lambda::barrier_entropy(symbols.len(), h0, width);
        Self::new(symbols, lambda)
    }

    /// String length `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty (never true: length ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree depth `w = lg n`.
    #[must_use]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Random access: the symbol at position `i` (Fig. 4's example: the
    /// third character is fetched by looking up the key `2 = 010₂`).
    ///
    /// # Panics
    /// Panics in debug builds if `i >= len()`.
    /// Release builds elide the check on the packet path.
    #[must_use]
    pub fn get(&self, i: usize) -> u16 {
        debug_assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let key = if self.width == 0 {
            0
        } else {
            (i as u32) << (32 - u32::from(self.width))
        };
        let nh = self
            .dag
            .lookup(key)
            .expect("complete string: every position has a symbol"); // fibcheck: allow(hot-path): completeness is a construction invariant of StrModel
        nh.index() as u16
    }

    /// Rewrites position `i` — a block update in the paper's terms,
    /// O(w + 2^(w−λ)).
    pub fn set(&mut self, i: usize, symbol: u16) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let key = if self.width == 0 {
            0
        } else {
            (i as u32) << (32 - u32::from(self.width))
        };
        self.dag.insert(
            Prefix::new(key, self.width),
            NextHop::new(u32::from(symbol)),
        );
    }

    /// Folded-structure counters.
    #[must_use]
    pub fn stats(&self) -> DagStats {
        self.dag.stats()
    }

    /// Size in bits under the paper's §4.2 memory model.
    #[must_use]
    pub fn model_size_bits(&self) -> usize {
        self.dag.model_size_bits()
    }

    /// The barrier in use.
    #[must_use]
    pub fn lambda(&self) -> u8 {
        self.dag.lambda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_string(s: &str) -> Vec<u16> {
        s.bytes().map(u16::from).collect()
    }

    #[test]
    fn fig4_bananaba() {
        // Fig. 4: "bananaba" folds to 3 leaves (b, a, n) and the third
        // character is read back via key 010₂.
        let fs = FoldedString::new(&sym_string("bananaba"), 0);
        assert_eq!(fs.len(), 8);
        assert_eq!(fs.width(), 3);
        for (i, expected) in "bananaba".bytes().enumerate() {
            assert_eq!(fs.get(i), u16::from(expected), "position {i}");
        }
        let stats = fs.stats();
        assert_eq!(stats.folded_leaves, 3, "{stats:?}");
        // Distinct interiors: (b,a), (n,a), ((b,a),(n,a)), ((n,a),(b,a)),
        // and the root — 5.
        assert_eq!(stats.folded_interior, 5, "{stats:?}");
    }

    #[test]
    fn constant_string_collapses_to_one_leaf() {
        let fs = FoldedString::new(&vec![7u16; 1024], 0);
        let stats = fs.stats();
        assert_eq!(stats.folded_leaves, 1);
        assert_eq!(stats.folded_interior, 0);
        assert_eq!(fs.get(512), 7);
    }

    #[test]
    fn periodic_string_folds_logarithmically() {
        // "abababab…": one distinct subtrie per level → O(w) interiors.
        let symbols: Vec<u16> = (0..4096).map(|i| (i % 2) as u16).collect();
        let fs = FoldedString::new(&symbols, 0);
        let stats = fs.stats();
        assert_eq!(stats.folded_leaves, 2);
        assert_eq!(stats.folded_interior, 12, "one interior per level");
        assert_eq!(fs.get(1000), 0);
        assert_eq!(fs.get(1001), 1);
    }

    #[test]
    fn get_matches_source_across_lambdas() {
        let symbols: Vec<u16> = (0..512u32)
            .map(|i| ((i.wrapping_mul(2_654_435_761)) % 5) as u16)
            .collect();
        for lambda in [0u8, 3, 6, 9] {
            let fs = FoldedString::new(&symbols, lambda);
            for (i, &s) in symbols.iter().enumerate() {
                assert_eq!(fs.get(i), s, "λ={lambda} position {i}");
            }
        }
    }

    #[test]
    fn set_rewrites_one_position() {
        let mut fs = FoldedString::new(&sym_string("bananaba"), 2);
        fs.set(2, u16::from(b'x'));
        assert_eq!(fs.get(2), u16::from(b'x'));
        assert_eq!(fs.get(1), u16::from(b'a'));
        assert_eq!(fs.get(3), u16::from(b'a'));
        // Setting back restores the original fold.
        fs.set(2, u16::from(b'n'));
        for (i, expected) in "bananaba".bytes().enumerate() {
            assert_eq!(fs.get(i), u16::from(expected));
        }
    }

    #[test]
    fn single_symbol_string() {
        let fs = FoldedString::new(&[42], 0);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.width(), 0);
        assert_eq!(fs.get(0), 42);
    }

    #[test]
    fn entropy_barrier_is_reasonable() {
        let symbols: Vec<u16> = (0..(1 << 14)).map(|i| (i % 3) as u16).collect();
        let fs = FoldedString::with_entropy_barrier(&symbols);
        assert!(fs.lambda() <= 14);
        assert_eq!(fs.get(4), 1);
    }

    #[test]
    fn random_string_stays_below_theorem1_bound() {
        // Theorem 1: with the Eq. (2) barrier, size ≤ 4·n·lg δ + o(n).
        let n = 1 << 14;
        let delta = 4u64;
        let mut x = 0x1357_9BDF_2468_ACE0u64;
        let symbols: Vec<u16> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % delta) as u16
            })
            .collect();
        let width = 14u8;
        let lambda = crate::lambda::barrier_info(n, delta as usize, width);
        let fs = FoldedString::new(&symbols, lambda);
        let bound = 4.0 * n as f64 * (delta as f64).log2();
        let measured = fs.model_size_bits() as f64;
        assert!(
            measured <= bound * 1.05 + 10_000.0,
            "Theorem 1 violated: {measured} bits > {bound}"
        );
    }
}
