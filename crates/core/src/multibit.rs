//! Multibit prefix DAGs — the paper's §7 future-work direction,
//! implemented: *"Multibit prefix DAGs also offer an intriguing future
//! research direction, for their potential to reduce storage space as well
//! as improving lookup time from O(W) to O(log W)."*
//!
//! The leaf-pushed normal form is re-chunked into stride-`s` supernodes
//! (each consuming `s` address bits through a 2^s-way slot array, with
//! leaves duplicated into every slot they cover — controlled prefix
//! expansion), and the supernodes are hash-consed exactly like the binary
//! prefix DAG. Lookup reads `⌈W/s⌉` slots worst case; sharing still
//! applies because identical stride-aligned subtries collapse to one
//! node.
//!
//! The stride trades lookup depth against sharing: wider nodes mean fewer
//! hops but fewer identical subtries and more slot duplication. The
//! `ablation` harness sweeps it.
//!
//! Slot arrays are stored as packed `u64` words (two tagged 32-bit slots
//! per word; every node's array is word-aligned because 2^s is even), so
//! the engine is one flat word string shared verbatim by the owned
//! [`MultibitDag`] and the zero-copy [`MultibitDagRef`] a FIB image
//! borrows.
//!
//! This structure is static (rebuild on update); incremental multibit
//! folding is genuinely open research beyond the paper.

use std::collections::HashMap;
use std::marker::PhantomData;

use fib_succinct::simd::gather4_u32;
use fib_succinct::storage::get_u32 as slot_at;
use fib_trie::{Address, BinaryTrie, Depth, NextHop, ProperNode, ProperTrie};

const LEAF_TAG: u32 = 0x8000_0000;
const BOT: u32 = 0x7FFF_FFFF;

/// Number of lookups [`MultibitDag::lookup_batch`] walks in lockstep.
pub const MB_BATCH_LANES: usize = 4;

/// A hash-consed multibit (stride-`s`) prefix DAG (owned builder; queries
/// run on the borrowed [`MultibitDagRef`]).
#[derive(Clone, Debug)]
pub struct MultibitDag<A: Address> {
    stride: u8,
    /// Slot arrays, 2^stride tagged references each, flattened and packed
    /// two per word.
    words: Vec<u64>,
    /// Number of slots (tagged references) stored in `words`.
    n_slots: usize,
    /// Tagged reference to the root.
    root: u32,
    node_count: usize,
    _marker: PhantomData<A>,
}

/// Borrowed zero-copy view of a [`MultibitDag`].
#[derive(Clone, Copy, Debug)]
pub struct MultibitDagRef<'a, A: Address> {
    stride: u8,
    words: &'a [u64],
    n_slots: usize,
    root: u32,
    _marker: PhantomData<A>,
}

impl<A: Address> MultibitDag<A> {
    /// Folds `trie` with the given stride (1 ≤ stride ≤ 16; stride 1 is
    /// the binary prefix DAG with λ = 0, wider strides trade sharing for
    /// depth).
    ///
    /// # Panics
    /// Panics if `stride` is outside `[1, 16]`.
    #[must_use]
    pub fn from_trie(trie: &BinaryTrie<A>, stride: u8) -> Self {
        assert!((1..=16).contains(&stride), "stride {stride} out of [1, 16]");
        let proper = ProperTrie::from_trie(trie);
        let mut builder = Builder {
            stride,
            width: 1usize << stride,
            slots: Vec::new(),
            interner: HashMap::new(),
            proper: &proper,
        };
        let root = builder.encode(proper.root_idx());
        let node_count = builder.interner.len();
        let n_slots = builder.slots.len();
        // Pack two tagged 32-bit slots per word; 2^stride is even, so
        // every node's slot array starts on a word boundary.
        let mut words = Vec::with_capacity(n_slots.div_ceil(2));
        for pair in builder.slots.chunks(2) {
            let lo = u64::from(pair[0]);
            let hi = pair.get(1).map_or(0, |&s| u64::from(s));
            words.push(lo | (hi << 32));
        }
        Self {
            stride,
            words,
            n_slots,
            root,
            node_count,
            _marker: PhantomData,
        }
    }

    /// The stride `s`.
    #[must_use]
    pub fn stride(&self) -> u8 {
        self.stride
    }

    /// Number of distinct supernodes after folding.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Footprint in bytes: 4 bytes per slot.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.n_slots * 4
    }

    /// The borrowed view all queries run on.
    #[must_use]
    #[inline]
    pub fn view(&self) -> MultibitDagRef<'_, A> {
        MultibitDagRef {
            stride: self.stride,
            words: &self.words,
            n_slots: self.n_slots,
            root: self.root,
            _marker: PhantomData,
        }
    }

    /// The packed slot words (two tagged references per word).
    #[must_use]
    pub fn slot_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of slots (tagged references).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// The tagged root reference.
    #[must_use]
    pub fn root_ref(&self) -> u32 {
        self.root
    }

    /// Longest-prefix-match lookup in `⌈W/s⌉` slot reads worst case.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.view().lookup(addr)
    }

    /// Lookup also returning the number of slot reads.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        self.view().lookup_with_depth(addr)
    }

    /// Batched longest-prefix match: resolves `addrs[i]` into `out[i]`,
    /// stepping [`MB_BATCH_LANES`] walks in lockstep so each round issues
    /// one independent slot read per lane — the stride-`s` counterpart of
    /// [`crate::SerializedDag::lookup_batch`].
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_batch(addrs, out);
    }

    /// Prefetches the first-level slot `addr` will read (see
    /// [`MultibitDagRef::prefetch`]).
    #[inline]
    pub fn prefetch(&self, addr: A) {
        self.view().prefetch(addr);
    }

    /// Software-pipelined batched lookup (see
    /// [`MultibitDagRef::lookup_stream`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.view().lookup_stream(addrs, out);
    }

    /// Lookup reporting each slot read as `(byte offset, size)` for the
    /// cache and SRAM models.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        self.view().lookup_traced(addr, sink)
    }

    /// Average and maximum slot reads over the address space, weighting
    /// each slot by the address fraction it covers.
    #[must_use]
    pub fn depth_stats(&self) -> (f64, u32) {
        // The DAG is small; walk it treating shared nodes per-path. Use an
        // iterative stack over (ref, hops, fraction).
        let mut avg = 0.0;
        let mut max = 0u32;
        let width = 1usize << self.stride;
        let mut stack = vec![(self.root, 0u32, 1.0f64)];
        while let Some((reference, hops, frac)) = stack.pop() {
            if reference & LEAF_TAG != 0 {
                avg += f64::from(hops) * frac;
                max = max.max(hops);
                continue;
            }
            let child_frac = frac / width as f64;
            let base = reference as usize * width;
            for slot in 0..width {
                stack.push((slot_at(&self.words, base + slot), hops + 1, child_frac));
            }
        }
        (avg, max)
    }
}

impl<'a, A: Address> MultibitDagRef<'a, A> {
    /// Assembles a view over packed slot words, validating that every
    /// interior reference's slot array lies inside the arena so the walk
    /// cannot index out of bounds.
    ///
    /// # Errors
    /// A static message naming the structural violation.
    pub fn from_parts(
        stride: u8,
        words: &'a [u64],
        n_slots: usize,
        root: u32,
    ) -> Result<Self, &'static str> {
        let view = Self::from_parts_trusted(stride, words, n_slots, root)?;
        let n_nodes = n_slots >> stride;
        let check_ref = |r: u32| -> Result<(), &'static str> {
            if r & LEAF_TAG == 0 && r as usize >= n_nodes {
                return Err("reference past slot region");
            }
            Ok(())
        };
        check_ref(root)?;
        for j in 0..n_slots {
            check_ref(slot_at(words, j))?;
        }
        Ok(view)
    }

    /// [`Self::from_parts`] minus the O(n) slot scan — only for words
    /// that already passed a full validation (a loaded image is
    /// immutable, so one scan covers its lifetime).
    pub fn from_parts_trusted(
        stride: u8,
        words: &'a [u64],
        n_slots: usize,
        root: u32,
    ) -> Result<Self, &'static str> {
        if !(1..=16).contains(&stride) {
            return Err("stride out of [1, 16]");
        }
        if n_slots.div_ceil(2) != words.len() {
            return Err("slot count does not match word count");
        }
        if n_slots % (1usize << stride) != 0 {
            return Err("slot count not a multiple of the node width");
        }
        Ok(Self {
            stride,
            words,
            n_slots,
            root,
            _marker: PhantomData,
        })
    }

    /// The pointer range of the borrowed words, for zero-copy assertions
    /// in tests.
    #[must_use]
    pub fn payload_ptr_range(&self) -> std::ops::Range<usize> {
        let start = self.words.as_ptr() as usize;
        start..start + std::mem::size_of_val(self.words)
    }

    /// The stride `s`.
    #[must_use]
    pub fn stride(&self) -> u8 {
        self.stride
    }

    /// Footprint in bytes: 4 bytes per slot.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.n_slots * 4
    }

    /// Longest-prefix-match lookup in `⌈W/s⌉` slot reads worst case.
    #[must_use]
    #[inline]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.lookup_with_depth(addr).0
    }

    /// Lookup also returning the number of slot reads.
    #[must_use]
    pub fn lookup_with_depth(&self, addr: A) -> (Option<NextHop>, Depth) {
        let mut reference = self.root;
        let mut offset = 0u8;
        let mut hops: Depth = 0;
        loop {
            if reference & LEAF_TAG != 0 {
                let label = reference & !LEAF_TAG;
                return ((label != BOT).then(|| NextHop::new(label)), hops);
            }
            // Final chunk may be narrower than the stride.
            let take = self.stride.min(A::WIDTH - offset);
            debug_assert!(take > 0, "walked past the address width");
            // Slots are indexed by a full stride; a narrower final chunk
            // cannot occur because expansion stops at leaf-tagged refs at
            // depth W (proper tries never descend past W).
            let slot = addr.bits(offset, take) << (self.stride - take);
            reference = slot_at(
                self.words,
                reference as usize * (1 << self.stride) + slot as usize,
            );
            offset += take;
            hops += 1;
        }
    }

    /// Batched longest-prefix match (see [`MultibitDag::lookup_batch`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
                                                                      // Trim so the exact-chunk remainders of both slices stay aligned
                                                                      // when the caller hands in an oversized output buffer.
        let out = &mut out[..addrs.len()];
        // A cache-resident table has no misses for the lockstep walk (or
        // its gathers) to overlap — lane bookkeeping is pure overhead
        // there, so small tables walk scalar, like the stream path's
        // prefetch gate below.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        let mut chunks = addrs.chunks_exact(MB_BATCH_LANES);
        let mut outs = out.chunks_exact_mut(MB_BATCH_LANES);
        for (chunk, slot_out) in (&mut chunks).zip(&mut outs) {
            self.resolve_lanes(chunk, slot_out);
        }
        for (addr, slot) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.lookup(*addr);
        }
    }

    /// Prefetches the first-level slot `addr` will read: the slot index
    /// under the root is pure bit arithmetic on the address, so the hint
    /// needs no memory access at all.
    #[inline]
    pub fn prefetch(&self, addr: A) {
        if self.root & LEAF_TAG != 0 {
            return;
        }
        let take = self.stride.min(A::WIDTH);
        let slot = addr.bits(0, take) << (self.stride - take);
        let index = self.root as usize * (1usize << self.stride) + slot as usize;
        // Two tagged slots per packed word.
        fib_succinct::mem::prefetch_index(self.words, index / 2);
    }

    /// Software-pipelined batched lookup: identical results to
    /// [`Self::lookup_batch`], with the next [`MB_BATCH_LANES`]-lane
    /// group's first-level slot lines prefetched while the current group
    /// walks.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_stream(&self, addrs: &[A], out: &mut [Option<NextHop>]) {
        // Below the residency threshold the whole structure lives in
        // cache and the prefetch stage is pure overhead — identical
        // results either way, so take the plain interleaved path.
        if self.size_bytes() < fib_succinct::mem::PREFETCH_WORTHWHILE_BYTES {
            return self.lookup_batch(addrs, out);
        }
        fib_succinct::mem::pipelined_stream(
            MB_BATCH_LANES,
            addrs,
            out,
            |addr| self.prefetch(addr),
            |chunk, slot| self.resolve_lanes(chunk, slot),
            |addr, slot| *slot = self.lookup(addr),
        );
    }

    /// One lockstep [`MB_BATCH_LANES`]-lane group: the shared kernel of
    /// [`Self::lookup_batch`] and [`Self::lookup_stream`]. Both slices
    /// must be exactly [`MB_BATCH_LANES`] long.
    #[inline]
    fn resolve_lanes(&self, chunk: &[A], slot_out: &mut [Option<NextHop>]) {
        let width = 1u64 << self.stride;
        let mut reference = [self.root; MB_BATCH_LANES];
        let mut offset = [0u8; MB_BATCH_LANES];
        let mut live = reference.iter().filter(|&&r| r & LEAF_TAG == 0).count();
        // Each step gathers all four lanes' stride-table slots in one
        // SIMD gather over the packed-u32 word array (scalar fallback
        // inside `gather4_u32`); parked lanes re-read slot 0.
        while live > 0 {
            let mut take = [0u8; MB_BATCH_LANES];
            let mut gidx = [0u64; MB_BATCH_LANES];
            for lane in 0..MB_BATCH_LANES {
                if reference[lane] & LEAF_TAG != 0 {
                    continue;
                }
                take[lane] = self.stride.min(A::WIDTH - offset[lane]);
                let slot = chunk[lane].bits(offset[lane], take[lane]) << (self.stride - take[lane]);
                gidx[lane] = u64::from(reference[lane]) * width + u64::from(slot);
            }
            let slots = gather4_u32(self.words, gidx);
            for lane in 0..MB_BATCH_LANES {
                if reference[lane] & LEAF_TAG != 0 {
                    continue;
                }
                reference[lane] = slots[lane];
                offset[lane] += take[lane];
                if reference[lane] & LEAF_TAG != 0 {
                    live -= 1;
                }
            }
        }
        for lane in 0..MB_BATCH_LANES {
            let label = reference[lane] & !LEAF_TAG;
            slot_out[lane] = (label != BOT).then(|| NextHop::new(label));
        }
    }

    /// Lookup reporting each slot read as `(byte offset, size)` for the
    /// cache and SRAM models.
    pub fn lookup_traced(&self, addr: A, sink: &mut dyn FnMut(u64, u32)) -> Option<NextHop> {
        let mut reference = self.root;
        let mut offset = 0u8;
        loop {
            if reference & LEAF_TAG != 0 {
                let label = reference & !LEAF_TAG;
                return (label != BOT).then(|| NextHop::new(label));
            }
            let take = self.stride.min(A::WIDTH - offset);
            let slot = addr.bits(offset, take) << (self.stride - take);
            let index = reference as usize * (1 << self.stride) + slot as usize;
            sink(index as u64 * 4, 4);
            reference = slot_at(self.words, index);
            offset += take;
        }
    }
}

struct Builder<'a, A: Address> {
    stride: u8,
    width: usize,
    slots: Vec<u32>,
    interner: HashMap<Box<[u32]>, u32>,
    proper: &'a ProperTrie<A>,
}

impl<A: Address> Builder<'_, A> {
    /// Encodes the proper-trie node `idx` as a tagged reference.
    fn encode(&mut self, idx: u32) -> u32 {
        match *self.proper.node(idx) {
            ProperNode::Leaf(label) => LEAF_TAG | label.map_or(BOT, |nh| nh.index()),
            ProperNode::Internal { .. } => {
                let mut children = Vec::with_capacity(self.width);
                for slot in 0..self.width {
                    children.push(self.encode_slot(idx, slot as u32));
                }
                let key: Box<[u32]> = children.into_boxed_slice();
                if let Some(&existing) = self.interner.get(&key) {
                    return existing;
                }
                let node = (self.slots.len() / self.width) as u32;
                self.slots.extend_from_slice(&key);
                self.interner.insert(key, node);
                node
            }
        }
    }

    /// Walks `stride` bits (MSB-first bits of `slot`) down from `idx`,
    /// duplicating early leaves into the slot (controlled prefix
    /// expansion).
    fn encode_slot(&mut self, mut idx: u32, slot: u32) -> u32 {
        for depth in 0..self.stride {
            match *self.proper.node(idx) {
                ProperNode::Leaf(label) => {
                    return LEAF_TAG | label.map_or(BOT, |nh| nh.index());
                }
                ProperNode::Internal { left, right } => {
                    let bit = (slot >> (self.stride - 1 - depth)) & 1 == 1;
                    idx = if bit { right } else { left };
                }
            }
        }
        self.encode(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn fig1_trie() -> BinaryTrie<u32> {
        [
            (p("0.0.0.0/0"), nh(2)),
            (p("0.0.0.0/1"), nh(3)),
            (p("0.0.0.0/2"), nh(3)),
            (p("32.0.0.0/3"), nh(2)),
            (p("64.0.0.0/2"), nh(2)),
            (p("96.0.0.0/3"), nh(1)),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn equivalence_across_strides() {
        let trie = fig1_trie();
        for stride in [1u8, 2, 3, 4, 5, 8, 11, 16] {
            let mb = MultibitDag::from_trie(&trie, stride);
            for i in 0..3000u32 {
                let addr = i.wrapping_mul(0x9E37_79B9);
                assert_eq!(
                    mb.lookup(addr),
                    trie.lookup(addr),
                    "s={stride} addr {addr:#x}"
                );
            }
        }
    }

    #[test]
    fn stride_one_matches_binary_dag_node_count() {
        // Stride 1 is a binary DAG over the normal form: its interior
        // count equals the λ=0 PrefixDag's folded interiors.
        let trie = fig1_trie();
        let mb = MultibitDag::from_trie(&trie, 1);
        let dag = crate::pdag::PrefixDag::from_trie(&trie, 0);
        assert_eq!(mb.node_count(), dag.stats().folded_interior);
    }

    #[test]
    fn deeper_strides_reduce_depth() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(0));
        for i in 0..512u32 {
            trie.insert(Prefix4::new(i << 15, 17), nh(1 + i % 3));
        }
        let (d1, m1) = MultibitDag::from_trie(&trie, 1).depth_stats();
        let (d4, m4) = MultibitDag::from_trie(&trie, 4).depth_stats();
        let (d8, m8) = MultibitDag::from_trie(&trie, 8).depth_stats();
        assert!(d4 < d1 && d8 < d4, "avg depth must fall: {d1} {d4} {d8}");
        assert!(m4 <= m1 && m8 <= m4, "max depth must fall: {m1} {m4} {m8}");
        assert!(m8 <= 3, "17-bit prefixes in ≤3 byte-wide hops, got {m8}");
    }

    #[test]
    fn identical_subtries_share_across_strides() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        for base in 0..32u32 {
            trie.insert(Prefix4::new(base << 27, 5), nh(1));
            trie.insert(Prefix4::new(base << 27 | (1 << 26), 6), nh(2));
        }
        // All 32 /5-subtries are identical; with stride 5 the level below
        // the root must be one shared node (or leaf refs).
        let mb = MultibitDag::from_trie(&trie, 5);
        assert!(
            mb.node_count() <= 3,
            "expected heavy sharing, got {} nodes",
            mb.node_count()
        );
    }

    #[test]
    fn bottom_resolves_to_none() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("128.0.0.0/1"), nh(1));
        for stride in [1u8, 4, 7] {
            let mb = MultibitDag::from_trie(&trie, stride);
            assert_eq!(mb.lookup(0x0000_0001), None, "s={stride}");
            assert_eq!(mb.lookup(0xF000_0000), Some(nh(1)), "s={stride}");
        }
    }

    #[test]
    fn empty_fib() {
        let mb = MultibitDag::from_trie(&BinaryTrie::<u32>::new(), 4);
        assert_eq!(mb.lookup(42), None);
        assert_eq!(mb.node_count(), 0);
        assert_eq!(mb.size_bytes(), 0);
    }

    #[test]
    fn host_routes_at_full_width() {
        let mut trie: BinaryTrie<u32> = BinaryTrie::new();
        trie.insert(p("0.0.0.0/0"), nh(1));
        trie.insert(p("10.0.0.1/32"), nh(2));
        for stride in [3u8, 8, 16] {
            let mb = MultibitDag::from_trie(&trie, stride);
            assert_eq!(mb.lookup(0x0A00_0001), Some(nh(2)), "s={stride}");
            assert_eq!(mb.lookup(0x0A00_0002), Some(nh(1)), "s={stride}");
            let (_, max) = mb.depth_stats();
            assert!(max <= 32u32.div_ceil(u32::from(stride)));
        }
    }

    #[test]
    fn traced_lookup_matches_plain() {
        let trie = fig1_trie();
        let mb = MultibitDag::from_trie(&trie, 4);
        let mut touches = 0;
        let result = mb.lookup_traced(0x6000_0000, &mut |_, _| touches += 1);
        assert_eq!(result, mb.lookup(0x6000_0000));
        let (_, hops) = mb.lookup_with_depth(0x6000_0000);
        assert_eq!(touches, hops);
    }

    #[test]
    fn batch_lookup_matches_scalar_across_strides() {
        let trie = fig1_trie();
        for stride in [1u8, 3, 4, 8] {
            let mb = MultibitDag::from_trie(&trie, stride);
            for n in [0usize, 2, 4, 5, 9, 64] {
                let addrs: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
                let mut out = vec![None; n];
                mb.lookup_batch(&addrs, &mut out);
                for (a, got) in addrs.iter().zip(&out) {
                    assert_eq!(*got, mb.lookup(*a), "s={stride} addr {a:#x}");
                }
                // Oversized output buffer: every addressed slot must still
                // be written (the tails of both chunk streams must align).
                let mut big = vec![Some(NextHop::new(u32::MAX - 1)); n + 5];
                mb.lookup_batch(&addrs, &mut big);
                for (a, got) in addrs.iter().zip(&big) {
                    assert_eq!(*got, mb.lookup(*a), "s={stride} oversized at {a:#x}");
                }
            }
        }
    }

    #[test]
    fn ipv6_multibit() {
        let mut trie: BinaryTrie<u128> = BinaryTrie::new();
        let p1: fib_trie::Prefix6 = "2001:db8::/32".parse().unwrap();
        trie.insert(p1, nh(1));
        let mb = MultibitDag::from_trie(&trie, 8);
        let a: u128 = "2001:db8::1".parse::<std::net::Ipv6Addr>().unwrap().into();
        assert_eq!(mb.lookup(a), Some(nh(1)));
        let (_, max) = mb.depth_stats();
        assert!(max <= 5, "a /32 route needs ≤ 4 byte-hops, got {max}");
    }
}
