//! Differential churn: a `Router<PrefixDag>` and an independent oracle
//! trie absorb the same BGP-style update feed; every published epoch
//! snapshot must agree with the oracle on a fixed lookup trace, including
//! the epochs cut while a degradation-triggered background rebuild was in
//! flight and the first epoch after its journal replay.

use fib_core::{BuildConfig, PrefixDag, SerializedDag};
use fib_router::{Router, RouterConfig};
use fib_trie::BinaryTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::updates::{bgp_sequence, UpdateOp};
use fib_workload::{traces, FibSpec};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

fn assert_snapshot_matches_oracle<E>(
    snapshot: &fib_router::EpochSnapshot<E>,
    oracle: &BinaryTrie<u32>,
    trace: &[u32],
) where
    E: fib_core::FibLookup<u32>,
{
    let mut batched = vec![None; trace.len()];
    snapshot.lookup_batch(trace, &mut batched);
    for (&addr, &got) in trace.iter().zip(&batched) {
        assert_eq!(
            got,
            oracle.lookup(addr),
            "epoch {} diverges from the oracle at {addr:#010x}",
            snapshot.epoch()
        );
    }
}

#[test]
fn pdag_router_tracks_oracle_through_bgp_churn_and_rebuild() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(15_000).generate(&mut rng(1));
    let updates = bgp_sequence(&mut rng(2), &base, 12_000);
    let trace = traces::uniform::<u32, _>(&mut rng(3), 1_500);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None, // published explicitly every batch below
        // Low threshold so the BGP feed provably crosses it mid-test.
        degradation_threshold: 0.002,
        background_rebuild: true,
    };
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(base.clone(), config);
    let mut oracle = base;

    assert_snapshot_matches_oracle(&router.snapshot(), &oracle, &trace);

    let mut saw_rebuild_in_flight = false;
    let mut epochs_checked = 0usize;
    for (i, op) in updates.iter().enumerate() {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                router.withdraw(p);
            }
        }
        saw_rebuild_in_flight |= router.rebuild_in_flight();
        // Publish (and differentially check) every 500 updates — some of
        // these epochs are cut while the background re-fold is running.
        if (i + 1) % 500 == 0 {
            let snapshot = router.publish();
            assert_snapshot_matches_oracle(&snapshot, &oracle, &trace);
            epochs_checked += 1;
        }
    }
    // Drain any still-running rebuild and verify its journal replay.
    router.finish_rebuild(true);
    let last = router.publish();
    assert_snapshot_matches_oracle(&last, &oracle, &trace);

    let stats = router.stats();
    assert_eq!(stats.updates, 12_000);
    assert!(epochs_checked >= 24);
    assert!(
        saw_rebuild_in_flight,
        "the degradation policy never started a background rebuild"
    );
    assert!(
        stats.background_rebuilds >= 1,
        "no background rebuild completed: {stats:?}"
    );
    assert_eq!(
        stats.declined, 0,
        "pDAG must absorb every update in place: {stats:?}"
    );
    assert_eq!(stats.in_place, stats.updates);
}

#[test]
fn static_engine_router_matches_oracle_at_every_publish() {
    // The serialized image has no in-place path: every epoch is a fresh
    // re-emit of the control FIB — the snapshot lifecycle the follow-up
    // papers assume. Smaller feed; each publish costs a full rebuild.
    let base: BinaryTrie<u32> = FibSpec::dfz_like(4_000).generate(&mut rng(4));
    let updates = bgp_sequence(&mut rng(5), &base, 2_000);
    let trace = traces::uniform::<u32, _>(&mut rng(6), 800);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: Some(250),
        degradation_threshold: 0.25,
        background_rebuild: false,
    };
    let mut router: Router<u32, SerializedDag<u32>> = Router::new(base.clone(), config);
    let mut oracle = base;
    for op in &updates {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                router.withdraw(p);
            }
        }
    }
    let snapshot = router.publish();
    assert_snapshot_matches_oracle(&snapshot, &oracle, &trace);
    let stats = router.stats();
    assert_eq!(stats.in_place, 0);
    assert!(stats.rebuilds >= 8, "{stats:?}");
}
