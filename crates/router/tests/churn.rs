//! Differential churn: a `Router<PrefixDag>` and an independent oracle
//! trie absorb the same BGP-style update feed; every published epoch
//! snapshot must agree with the oracle on a fixed lookup trace, including
//! the epochs cut while a degradation-triggered background rebuild was in
//! flight and the first epoch after its journal replay.

use fib_core::{BuildConfig, PrefixDag, SerializedDag};
use fib_router::{Router, RouterConfig};
use fib_trie::BinaryTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::updates::{bgp_sequence, UpdateOp};
use fib_workload::{traces, FibSpec};

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

fn assert_snapshot_matches_oracle<E>(
    snapshot: &fib_router::EpochSnapshot<E>,
    oracle: &BinaryTrie<u32>,
    trace: &[u32],
) where
    E: fib_core::ImageCodec<u32>,
{
    let mut batched = vec![None; trace.len()];
    snapshot.lookup_batch(trace, &mut batched);
    for (&addr, &got) in trace.iter().zip(&batched) {
        assert_eq!(
            got,
            oracle.lookup(addr),
            "epoch {} diverges from the oracle at {addr:#010x}",
            snapshot.epoch()
        );
    }
}

#[test]
fn pdag_router_tracks_oracle_through_bgp_churn_and_rebuild() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(15_000).generate(&mut rng(1));
    let updates = bgp_sequence(&mut rng(2), &base, 12_000);
    let trace = traces::uniform::<u32, _>(&mut rng(3), 1_500);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None, // published explicitly every batch below
        // Low threshold so the BGP feed provably crosses it mid-test.
        degradation_threshold: 0.002,
        background_rebuild: true,
    };
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(base.clone(), config);
    let mut oracle = base;

    assert_snapshot_matches_oracle(&router.snapshot(), &oracle, &trace);

    let mut saw_rebuild_in_flight = false;
    let mut epochs_checked = 0usize;
    for (i, op) in updates.iter().enumerate() {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                router.withdraw(p);
            }
        }
        saw_rebuild_in_flight |= router.rebuild_in_flight();
        // Publish (and differentially check) every 500 updates — some of
        // these epochs are cut while the background re-fold is running.
        if (i + 1) % 500 == 0 {
            let snapshot = router.publish();
            assert_snapshot_matches_oracle(&snapshot, &oracle, &trace);
            epochs_checked += 1;
        }
    }
    // Drain any still-running rebuild and verify its journal replay.
    router.finish_rebuild(true);
    let last = router.publish();
    assert_snapshot_matches_oracle(&last, &oracle, &trace);

    let stats = router.stats();
    assert_eq!(stats.updates, 12_000);
    assert!(epochs_checked >= 24);
    assert!(
        saw_rebuild_in_flight,
        "the degradation policy never started a background rebuild"
    );
    assert!(
        stats.background_rebuilds >= 1,
        "no background rebuild completed: {stats:?}"
    );
    assert_eq!(
        stats.declined, 0,
        "pDAG must absorb every update in place: {stats:?}"
    );
    assert_eq!(stats.in_place, stats.updates);
}

#[test]
fn static_engine_router_matches_oracle_at_every_publish() {
    // The serialized image has no in-place path: every epoch is a fresh
    // re-emit of the control FIB — the snapshot lifecycle the follow-up
    // papers assume. Smaller feed; each publish costs a full rebuild.
    let base: BinaryTrie<u32> = FibSpec::dfz_like(4_000).generate(&mut rng(4));
    let updates = bgp_sequence(&mut rng(5), &base, 2_000);
    let trace = traces::uniform::<u32, _>(&mut rng(6), 800);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: Some(250),
        degradation_threshold: 0.25,
        background_rebuild: false,
    };
    let mut router: Router<u32, SerializedDag<u32>> = Router::new(base.clone(), config);
    let mut oracle = base;
    for op in &updates {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                router.withdraw(p);
            }
        }
    }
    let snapshot = router.publish();
    assert_snapshot_matches_oracle(&snapshot, &oracle, &trace);
    let stats = router.stats();
    assert_eq!(stats.in_place, 0);
    assert!(stats.rebuilds >= 8, "{stats:?}");
}

// ---------------------------------------------------------------------
// Warm restart: spool, journal replay, and the differential guarantee
// ---------------------------------------------------------------------

fn spool_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fib-spool-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");
    dir
}

/// The tentpole differential test: a router that crashed and warm-restarted
/// must answer exactly like one that never died — both on the snapshot it
/// comes back serving (the last spilled epoch image) and, after one
/// publish, on the full control state including journal-replayed updates.
#[test]
fn warm_restart_answers_identically_to_a_router_that_never_died() {
    let dir = spool_dir("pdag");
    let base: BinaryTrie<u32> = FibSpec::dfz_like(6_000).generate(&mut rng(21));
    let updates = bgp_sequence(&mut rng(22), &base, 3_000);
    let trace = traces::uniform::<u32, _>(&mut rng(23), 1_200);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None,
        degradation_threshold: 0.25,
        background_rebuild: false,
    };
    // The reference router lives through everything.
    let mut survivor: Router<u32, PrefixDag<u32>> = Router::new(base.clone(), config);
    // The victim spools, crashes after unpublished updates, and restarts.
    let mut victim: Router<u32, PrefixDag<u32>> = Router::new(base, config);
    victim.enable_spool(&dir).expect("spool arms");
    assert!(victim.spool_error().is_none());

    let (published_part, journaled_part) = updates.split_at(2_000);
    for op in published_part {
        match *op {
            UpdateOp::Announce(p, nh) => {
                survivor.announce(p, nh);
                victim.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                survivor.withdraw(p);
                victim.withdraw(p);
            }
        }
    }
    survivor.publish();
    victim.publish(); // spills epoch 1 + resets the journal
    let spilled_epoch = victim.epoch();
    for op in journaled_part {
        match *op {
            UpdateOp::Announce(p, nh) => {
                survivor.announce(p, nh);
                victim.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                survivor.withdraw(p);
                victim.withdraw(p);
            }
        }
    }
    // The survivor's *published* snapshot is still the pre-crash epoch;
    // record its answers before anything else happens.
    let survivor_published: Vec<Option<fib_trie::NextHop>> = {
        let snap = survivor.snapshot();
        trace.iter().map(|&a| snap.lookup(a)).collect()
    };
    drop(victim); // crash: the journal tail was never published or spilled

    let restarted: Router<u32, PrefixDag<u32>> =
        Router::warm_restart(&dir, config).expect("warm restart");
    // (a) It comes back serving the last spilled image, zero-copy.
    let snap = restarted.snapshot();
    assert!(snap.is_image_backed(), "restart must serve the image");
    assert_eq!(snap.epoch(), spilled_epoch);
    for (&addr, expected) in trace.iter().zip(&survivor_published) {
        assert_eq!(
            snap.lookup(addr),
            *expected,
            "image-backed snapshot diverges at {addr:#010x}"
        );
    }
    // (b) The journal replay restored every post-spill update into the
    // control FIB.
    assert_eq!(
        restarted.stats().replayed,
        journaled_part.len() as u64,
        "every journaled op must replay"
    );
    let survivor_routes: std::collections::BTreeMap<_, _> = survivor.control().iter().collect();
    let restarted_routes: std::collections::BTreeMap<_, _> = restarted.control().iter().collect();
    assert_eq!(survivor_routes, restarted_routes, "control FIBs diverge");
    // (c) After one publish, the restarted router equals the survivor's
    // fresh publish — the full differential guarantee.
    let mut restarted = restarted;
    let snap_r = restarted.publish();
    assert!(!snap_r.is_image_backed());
    let snap_s = survivor.publish();
    for &addr in &trace {
        assert_eq!(
            snap_r.lookup(addr),
            snap_s.lookup(addr),
            "restarted router diverges at {addr:#010x}"
        );
    }
    // The restart spilled nothing yet beyond what publish just wrote.
    assert!(restarted.spool_error().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted newest image must not take the router down: warm restart
/// falls back to the next-newest valid image (and skips the journal,
/// which no longer bridges the gap).
#[test]
fn warm_restart_skips_corrupt_images() {
    let dir = spool_dir("fallback");
    let base: BinaryTrie<u32> = FibSpec::dfz_like(2_000).generate(&mut rng(31));
    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None,
        degradation_threshold: 0.25,
        background_rebuild: false,
    };
    let mut router: Router<u32, SerializedDag<u32>> = Router::new(base, config);
    router.enable_spool(&dir).expect("spool arms");
    let first_epoch = router.epoch();
    router.announce("203.0.113.0/24".parse().unwrap(), fib_trie::NextHop::new(9));
    router.publish();
    let second_epoch = router.epoch();
    assert!(second_epoch > first_epoch);
    drop(router);

    // Flip one byte in the newest image: its checksum dies.
    let newest = dir.join(format!("epoch-{second_epoch:016x}.img"));
    let mut bytes = std::fs::read(&newest).expect("newest image");
    bytes[200] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("corrupt newest");

    let restarted: Router<u32, SerializedDag<u32>> =
        Router::warm_restart(&dir, config).expect("fallback restart");
    let snap = restarted.snapshot();
    assert!(snap.is_image_backed());
    assert_eq!(snap.epoch(), first_epoch, "fell back to the older image");
    // The fallback serves the *older* forwarding state consistently.
    assert_eq!(
        snap.lookup(0xCB00_7101u32),
        restarted.control().lookup(0xCB00_7101)
    );

    // Regression: after the fallback, the stale journal (stamped with the
    // corrupt image's newer epoch) must be restamped, so updates accepted
    // post-restart survive a SECOND crash instead of being skipped as
    // unbridgeable.
    let mut restarted = restarted;
    restarted.announce(
        "198.51.100.0/24".parse().unwrap(),
        fib_trie::NextHop::new(77),
    );
    drop(restarted);
    let twice: Router<u32, SerializedDag<u32>> =
        Router::warm_restart(&dir, config).expect("second restart");
    assert_eq!(
        twice.stats().replayed,
        1,
        "post-fallback update must replay"
    );
    assert_eq!(
        twice.control().lookup(0xC633_6401u32),
        Some(fib_trie::NextHop::new(77))
    );

    // And with every image gone, restart reports a typed failure.
    let empty = spool_dir("empty");
    assert!(matches!(
        Router::<u32, SerializedDag<u32>>::warm_restart(&empty, config),
        Err(fib_router::RestartError::NoValidImage)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

/// IPv6 churn: the router tracks the oracle through a u128 update feed —
/// the satellite coverage the IPv4-only suite was missing.
#[test]
fn ipv6_router_tracks_oracle_through_churn() {
    let mut base: BinaryTrie<u128> = BinaryTrie::new();
    base.insert(
        "::/0".parse::<fib_trie::Prefix6>().unwrap(),
        fib_trie::NextHop::new(1),
    );
    let mut r = rng(41);
    for i in 0..2_000u64 {
        let addr = (0x2001_0db8u128 << 96) | (u128::from(i) << 70);
        base.insert(
            fib_trie::Prefix::new(addr, 48),
            fib_trie::NextHop::new((i % 7) as u32),
        );
    }
    let updates = fib_workload::updates::random_sequence::<u128, _>(&mut r, 3_000, 9);
    let trace = traces::uniform::<u128, _>(&mut rng(42), 800);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(16),
        publish_every: None,
        degradation_threshold: 0.05,
        background_rebuild: true,
    };
    let mut router: Router<u128, PrefixDag<u128>> = Router::new(base.clone(), config);
    let mut oracle = base;
    for (i, op) in updates.iter().enumerate() {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                router.withdraw(p);
            }
        }
        if (i + 1) % 500 == 0 {
            let snapshot = router.publish();
            let mut out = vec![None; trace.len()];
            snapshot.lookup_batch(&trace, &mut out);
            for (&addr, &got) in trace.iter().zip(&out) {
                assert_eq!(got, oracle.lookup(addr), "IPv6 epoch {}", snapshot.epoch());
            }
        }
    }
    router.finish_rebuild(true);
    let last = router.publish();
    for &addr in &trace {
        assert_eq!(last.lookup(addr), oracle.lookup(addr), "{addr:#034x}");
    }
    assert_eq!(router.stats().updates, 3_000);
}
