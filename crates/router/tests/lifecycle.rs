//! Spool lifecycle integration: crash-consistent retention, journal
//! folding, health transitions under injected I/O faults, and
//! bit-rot scrubbing — all over the deterministic in-memory [`FaultFs`].

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use fib_core::PrefixDag;
use fib_router::spoolfs::{FaultFs, SpoolFs};
use fib_router::{scan_spool, Router, RouterConfig, SpoolConfig, SpoolHealth};
use fib_trie::{BinaryTrie, NextHop, Prefix};
use fib_workload::rng::Xoshiro256;
use fib_workload::updates::{bgp_sequence, UpdateOp};
use fib_workload::{traces, FibSpec};

const DIR: &str = "/spool";

fn base(seed: u64, n: usize) -> BinaryTrie<u32> {
    FibSpec::dfz_like(n).generate(&mut Xoshiro256::seed_from_u64(seed))
}

fn updates(seed: u64, fib: &BinaryTrie<u32>, n: usize) -> Vec<UpdateOp<u32>> {
    bgp_sequence(&mut Xoshiro256::seed_from_u64(seed), fib, n)
}

fn apply(router: &mut Router<u32, PrefixDag<u32>>, ops: &[UpdateOp<u32>]) {
    for op in ops {
        match *op {
            UpdateOp::Announce(p, nh) => router.announce(p, nh),
            UpdateOp::Withdraw(p) => router.withdraw(p),
        }
    }
}

fn config() -> RouterConfig {
    RouterConfig {
        publish_every: Some(16),
        // Deterministic op counts: no scheduler-dependent rebuild thread.
        background_rebuild: false,
        ..RouterConfig::default()
    }
}

fn spool_cfg() -> SpoolConfig {
    SpoolConfig {
        keep: 2,
        retry_base: Duration::from_millis(1),
        retry_max: Duration::from_millis(8),
        max_retries: 4,
        ..SpoolConfig::default()
    }
}

#[test]
fn retention_bounds_epoch_images_and_sweeps_tmp_files() {
    let fs = FaultFs::new(11);
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let control = base(1, 300);
    let ops = updates(2, &control, 200);
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(control, config());
    router
        .enable_spool_with(Arc::clone(&shared), DIR, spool_cfg())
        .expect("spool dir");
    apply(&mut router, &ops);
    assert!(router.spool_health().expect("armed").is_healthy());
    assert!(router.stats().spills >= 3, "publishes must checkpoint");

    let status = scan_spool(shared.as_ref(), Path::new(DIR)).expect("scan");
    assert!(
        status.images.len() <= spool_cfg().keep + 1,
        "retention must keep newest + K, found {} images",
        status.images.len()
    );
    assert!(status.journal_bridges, "journal must apply on newest image");
    assert_eq!(status.verdict(), "ok");
    assert!(
        fs.paths()
            .iter()
            .all(|p| p.extension().is_none_or(|e| e != "tmp")),
        "no temp files may survive a spill"
    );
}

#[test]
fn journal_folds_into_a_fresh_image_at_the_size_threshold() {
    let fs = FaultFs::new(12);
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let control = base(3, 300);
    let ops = updates(4, &control, 120);
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(
        control,
        RouterConfig {
            publish_every: None, // folding is the only checkpoint trigger
            background_rebuild: false,
            ..RouterConfig::default()
        },
    );
    let cfg = SpoolConfig {
        journal_fold_bytes: 24 * 8, // fold after ~8 records
        ..spool_cfg()
    };
    router
        .enable_spool_with(Arc::clone(&shared), DIR, cfg)
        .expect("spool dir");
    apply(&mut router, &ops);

    assert!(router.spool_health().expect("armed").is_healthy());
    assert!(
        router.stats().spills >= 5,
        "fold threshold must force periodic spills: {}",
        router.stats().spills
    );
    let status = scan_spool(shared.as_ref(), Path::new(DIR)).expect("scan");
    assert!(
        status.journal_records <= 9,
        "journal must stay folded, found {} records",
        status.journal_records
    );
    assert_eq!(status.verdict(), "ok");
}

#[test]
fn journal_append_failure_degrades_health_and_retry_heals() {
    let fs = FaultFs::new(14);
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let control = base(5, 200);
    let ops = updates(6, &control, 80);
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(control, config());
    router
        .enable_spool_with(Arc::clone(&shared), DIR, spool_cfg())
        .expect("spool dir");
    assert!(router.spool_health().expect("armed").is_healthy());

    // Every op from here fails: the next journaled update must land in
    // Degraded (never a panic, never silently dropped health).
    let gate = fs.op_count();
    fs.reconfigure(|c| c.fail_ops = Some((gate + 1, u64::MAX)));
    router.announce(Prefix::new(0x0A00_0000u32, 8), NextHop::new(99));
    match router.spool_health().expect("armed") {
        SpoolHealth::Degraded { error, .. } => {
            assert!(error.contains("injected"), "error must carry the cause")
        }
        other => panic!("expected Degraded after append failure, got {other}"),
    }
    assert!(router.spool_error().is_some());

    // Fault cleared: the backoff schedule retries a re-spill from inside
    // the normal update path and health returns to Healthy.
    fs.reconfigure(|c| c.fail_ops = None);
    apply(&mut router, &ops);
    assert!(
        router.spool_health().expect("armed").is_healthy(),
        "retry must heal after the fault clears: {:?}",
        router.spool_health()
    );
    assert!(router.health().spool_recoveries >= 1);

    // The healed spool is fully recoverable: reboot the durable state
    // and compare answers against the live control plane.
    let boot: Arc<dyn SpoolFs> = Arc::new(fs.durable_clone());
    let recovered =
        Router::<u32, PrefixDag<u32>>::warm_restart_with(boot, DIR, config(), spool_cfg())
            .expect("warm restart");
    let trace = traces::uniform::<u32, _>(&mut Xoshiro256::seed_from_u64(7), 512);
    for &addr in &trace {
        assert_eq!(
            recovered.control().lookup(addr),
            router.control().lookup(addr),
            "recovered FIB diverges at {addr:#010x}"
        );
    }
}

#[test]
fn scrub_quarantines_bit_rot_with_typed_reason_and_respills() {
    let fs = FaultFs::new(15);
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let control = base(8, 300);
    let ops = updates(9, &control, 64);
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(control, config());
    router
        .enable_spool_with(Arc::clone(&shared), DIR, spool_cfg())
        .expect("spool dir");
    apply(&mut router, &ops);

    let before = scan_spool(shared.as_ref(), Path::new(DIR)).expect("scan");
    let newest = before.images.first().expect("at least one image");
    // Cosmic ray: one bit deep inside the newest image's payload.
    assert!(fs.flip_bit(&newest.path, (newest.bytes / 2) * 8 + 3));

    let moved = router.scrub_spool();
    assert_eq!(moved, 1, "exactly the rotted image is quarantined");
    assert_eq!(router.health().quarantined, 1);

    let after = scan_spool(shared.as_ref(), Path::new(DIR)).expect("scan");
    assert_eq!(after.quarantined, 1);
    assert!(
        !after.quarantine_reasons.is_empty(),
        "quarantine must carry a typed reason file"
    );
    // The scrub re-spilled the current epoch, so the spool still serves
    // a warm restart.
    assert_eq!(after.verdict(), "ok");
    let boot: Arc<dyn SpoolFs> = Arc::new(fs.durable_clone());
    Router::<u32, PrefixDag<u32>>::warm_restart_with(boot, DIR, config(), spool_cfg())
        .expect("warm restart after scrub");
}

#[test]
fn enospc_exhausts_retries_into_suspended_then_resume_heals() {
    let fs = FaultFs::new(16);
    let shared: Arc<dyn SpoolFs> = Arc::new(fs.clone());
    let control = base(10, 200);
    let ops = updates(11, &control, 120);
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(control, config());
    router
        .enable_spool_with(Arc::clone(&shared), DIR, spool_cfg())
        .expect("spool dir");
    assert!(router.spool_health().expect("armed").is_healthy());

    // The disk fills for good; the retry budget must exhaust into
    // Suspended (no infinite retry storm) while forwarding continues.
    fs.reconfigure(|c| c.enospc_after_bytes = Some(0));
    apply(&mut router, &ops);
    assert!(
        matches!(router.spool_health(), Some(SpoolHealth::Suspended { .. })),
        "expected Suspended, got {:?}",
        router.spool_health()
    );

    // Operator frees space and resumes: one call re-spills and heals.
    fs.reconfigure(|c| c.enospc_after_bytes = None);
    assert_eq!(router.resume_spool(), Some(SpoolHealth::Healthy));
    assert!(router.health().spool_recoveries >= 1);
    let status = scan_spool(shared.as_ref(), Path::new(DIR)).expect("scan");
    assert_eq!(status.verdict(), "ok");
}
