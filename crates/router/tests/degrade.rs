//! Rebuild-panic containment: a deliberately panicking engine build
//! must never take the control plane down. Inline rebuilds, background
//! rebuild threads (the historical `join().expect` escalation path),
//! and publish-time materialization all degrade to serving the last
//! good epoch with the panic recorded in [`Router::health`], and a
//! later successful build restores freshness.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use fib_core::{
    BuildConfig, EngineKind, FibBuild, FibImage, FibLookup, FibUpdate, ImageCodec, ImageError,
    ImageWriter, PrefixDag, RebuildNeeded,
};
use fib_router::{Router, RouterConfig};
use fib_trie::{BinaryTrie, NextHop, Prefix};
use fib_workload::rng::Xoshiro256;
use fib_workload::{traces, FibSpec};

/// When set, [`Flaky::build`] panics — simulating a rebuild bug.
static PANIC_BUILD: AtomicBool = AtomicBool::new(false);
/// When set, in-place updates decline, forcing the router stale so the
/// next publish must materialize (and hit the panicking build).
static FORCE_REBUILD: AtomicBool = AtomicBool::new(false);
/// The toggles above are process globals; tests touching them must not
/// interleave.
static TOGGLES: Mutex<()> = Mutex::new(());

/// A [`PrefixDag`] whose build panics on demand.
#[derive(Clone)]
struct Flaky(PrefixDag<u32>);

impl FibLookup<u32> for Flaky {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        self.0.lookup(addr)
    }
    fn size_bytes(&self) -> usize {
        self.0.size_bytes()
    }
}

impl FibBuild<u32> for Flaky {
    fn build(trie: &BinaryTrie<u32>, config: &BuildConfig) -> Self {
        // ordering: Relaxed — a test toggle, no data published across it.
        if PANIC_BUILD.load(Ordering::Relaxed) {
            panic!("deliberate rebuild panic (degrade test)");
        }
        Flaky(PrefixDag::build(trie, config))
    }
}

impl FibUpdate<u32> for Flaky {
    fn try_insert(
        &mut self,
        prefix: Prefix<u32>,
        next_hop: NextHop,
    ) -> Result<Option<NextHop>, RebuildNeeded> {
        // ordering: Relaxed — a test toggle, no data published across it.
        if FORCE_REBUILD.load(Ordering::Relaxed) {
            return Err(RebuildNeeded);
        }
        self.0.try_insert(prefix, next_hop)
    }
    fn try_remove(&mut self, prefix: Prefix<u32>) -> Result<Option<NextHop>, RebuildNeeded> {
        // ordering: Relaxed — a test toggle, no data published across it.
        if FORCE_REBUILD.load(Ordering::Relaxed) {
            return Err(RebuildNeeded);
        }
        self.0.try_remove(prefix)
    }
    fn degradation(&self) -> f64 {
        self.0.degradation()
    }
}

impl ImageCodec<u32> for Flaky {
    const ENGINE: EngineKind = <PrefixDag<u32> as ImageCodec<u32>>::ENGINE;
    type Ref<'i> = <PrefixDag<u32> as ImageCodec<u32>>::Ref<'i>;
    fn write_sections(&self, writer: &mut ImageWriter) -> Result<(), ImageError> {
        self.0.write_sections(writer)
    }
    fn view(image: &FibImage) -> Result<Self::Ref<'_>, ImageError> {
        <PrefixDag<u32> as ImageCodec<u32>>::view(image)
    }
    fn resident_size_bytes(&self) -> usize {
        self.0.resident_size_bytes()
    }
}

fn base(seed: u64) -> BinaryTrie<u32> {
    FibSpec::dfz_like(400).generate(&mut Xoshiro256::seed_from_u64(seed))
}

fn assert_serves_control(router: &mut Router<u32, Flaky>, trace: &[u32]) {
    let snapshot = router.publish();
    for &addr in trace {
        assert_eq!(
            snapshot.lookup(addr),
            router.control().lookup(addr),
            "snapshot diverges from control at {addr:#010x}"
        );
    }
}

#[test]
fn inline_rebuild_panic_is_contained_and_a_later_build_recovers() {
    let _guard = TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    PANIC_BUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    FORCE_REBUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle

    let trace = traces::uniform::<u32, _>(&mut Xoshiro256::seed_from_u64(3), 256);
    let mut router: Router<u32, Flaky> = Router::new(
        base(1),
        RouterConfig {
            publish_every: None,
            background_rebuild: false,
            ..RouterConfig::default()
        },
    );
    assert_serves_control(&mut router, &trace);

    PANIC_BUILD.store(true, Ordering::Relaxed); // ordering: Relaxed — test toggle
    router.start_rebuild();
    let health = router.health();
    assert_eq!(health.rebuild_panics, 1, "panic must be recorded");
    assert!(
        health
            .last_rebuild_panic
            .as_deref()
            .is_some_and(|m| m.contains("deliberate rebuild panic")),
        "panic message must survive: {:?}",
        health.last_rebuild_panic
    );
    // The old engine keeps serving and updates keep applying in place.
    router.announce(Prefix::new(0x0A00_0000u32, 8), NextHop::new(42));
    assert_serves_control(&mut router, &trace);

    PANIC_BUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    router.start_rebuild();
    assert_eq!(router.health().rebuild_panics, 1, "no new panics");
    assert_serves_control(&mut router, &trace);
}

#[test]
fn background_rebuild_panic_does_not_propagate_through_join() {
    let _guard = TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    PANIC_BUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    FORCE_REBUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle

    let trace = traces::uniform::<u32, _>(&mut Xoshiro256::seed_from_u64(4), 256);
    let mut router: Router<u32, Flaky> = Router::new(
        base(2),
        RouterConfig {
            publish_every: None,
            background_rebuild: true,
            ..RouterConfig::default()
        },
    );

    PANIC_BUILD.store(true, Ordering::Relaxed); // ordering: Relaxed — test toggle
    router.start_rebuild();
    // Before the fix this join escalated the worker's panic into the
    // caller; now it must contain it and report through health.
    assert!(
        !router.finish_rebuild(true),
        "panicked build installs nothing"
    );
    assert_eq!(router.health().rebuild_panics, 1);
    assert_serves_control(&mut router, &trace);

    PANIC_BUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    router.start_rebuild();
    assert!(router.finish_rebuild(true), "healthy build must install");
    assert_eq!(router.health().rebuild_panics, 1, "no new panics");
    assert_serves_control(&mut router, &trace);
}

#[test]
fn publish_serves_stale_epoch_while_builds_panic_then_heals() {
    let _guard = TOGGLES.lock().unwrap_or_else(|p| p.into_inner());
    PANIC_BUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    FORCE_REBUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle

    let trace = traces::uniform::<u32, _>(&mut Xoshiro256::seed_from_u64(5), 256);
    let mut router: Router<u32, Flaky> = Router::new(
        base(6),
        RouterConfig {
            publish_every: None,
            background_rebuild: false,
            ..RouterConfig::default()
        },
    );
    assert_serves_control(&mut router, &trace);
    let before = router.publish();

    // Updates decline in place (stale), and every rebuild panics: the
    // next publish must keep serving the previous epoch, flagged stale.
    FORCE_REBUILD.store(true, Ordering::Relaxed); // ordering: Relaxed — test toggle
    PANIC_BUILD.store(true, Ordering::Relaxed); // ordering: Relaxed — test toggle
    let victim = Prefix::new(0xC0A8_0000u32, 16);
    router.announce(victim, NextHop::new(7));
    let during = router.publish();
    assert!(router.health().serving_stale, "health must flag staleness");
    assert!(router.health().rebuild_panics >= 1);
    for &addr in &trace {
        assert_eq!(
            during.lookup(addr),
            before.lookup(addr),
            "stale snapshot must equal the last good epoch at {addr:#010x}"
        );
    }

    // Builds work again: the next publish folds the pending update in
    // and clears the staleness flag.
    FORCE_REBUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    PANIC_BUILD.store(false, Ordering::Relaxed); // ordering: Relaxed — test toggle
    assert_serves_control(&mut router, &trace);
    assert!(!router.health().serving_stale);
    assert_eq!(
        router.publish().lookup(0xC0A8_0101),
        router.control().lookup(0xC0A8_0101),
        "the update accepted during the outage must be served after recovery"
    );
}
