//! Concurrent churn: forwarding threads serve lookups off wait-free
//! [`fib_router::DataPlane`] readers while the control plane absorbs a
//! BGP feed, publishes epochs, crosses a degradation-triggered background
//! rebuild, and finally dies and warm-restarts — asserting that no reader
//! ever observes a torn snapshot:
//!
//! * **generation/epoch monotonicity** — a reader never sees an older
//!   epoch after a newer one;
//! * **oracle agreement** — every lookup a reader performs matches the
//!   control-plane oracle *as of the epoch the reader was served*, so a
//!   snapshot can never mix routes from two epochs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use fib_core::{BuildConfig, PrefixDag, SerializedDag};
use fib_router::{Router, RouterConfig};
use fib_trie::BinaryTrie;
use fib_workload::rng::{Rng, Xoshiro256};
use fib_workload::updates::{bgp_sequence, UpdateOp};
use fib_workload::FibSpec;

fn rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed)
}

/// Oracle states keyed by epoch: the writer records `control.clone()`
/// *before* publishing that epoch, so any reader that sees epoch `e` is
/// guaranteed to find `oracle[e]` present (the map insert
/// happens-before the snapshot publication).
type EpochOracles = Arc<Mutex<HashMap<u64, BinaryTrie<u32>>>>;

fn reader_thread<E>(
    mut plane: fib_router::DataPlane<E>,
    oracles: EpochOracles,
    stop: Arc<AtomicBool>,
    seed: u64,
) -> std::thread::JoinHandle<(u64, u64)>
where
    E: fib_core::ImageCodec<u32> + Send + Sync + 'static,
{
    std::thread::spawn(move || {
        let mut r = rng(seed);
        let mut last_epoch = 0u64;
        let mut checked = 0u64;
        let mut epochs_seen = 0u64;
        let mut addrs = [0u32; 32];
        let mut out = [None; 32];
        while !stop.load(SeqCst) {
            let snap = std::sync::Arc::clone(plane.current());
            let epoch = snap.epoch();
            assert!(
                epoch >= last_epoch,
                "torn publication order: epoch {epoch} after {last_epoch}"
            );
            if epoch != last_epoch {
                epochs_seen += 1;
            }
            last_epoch = epoch;
            for slot in &mut addrs {
                *slot = r.random::<u32>();
            }
            snap.lookup_stream(&addrs, &mut out);
            // Compare against the oracle for *this* epoch. The map is a
            // test fixture; the lock is on the checker, not the router.
            let oracles = oracles.lock().unwrap();
            let oracle = oracles
                .get(&epoch)
                .unwrap_or_else(|| panic!("reader saw unpublished epoch {epoch}"));
            for (&addr, &got) in addrs.iter().zip(&out) {
                assert_eq!(
                    got,
                    oracle.lookup(addr),
                    "epoch {epoch} snapshot diverges at {addr:#010x}"
                );
                checked += 1;
            }
        }
        (checked, epochs_seen)
    })
}

#[test]
fn forwarding_threads_never_observe_torn_snapshots_under_churn() {
    let base: BinaryTrie<u32> = FibSpec::dfz_like(8_000).generate(&mut rng(1));
    let updates = bgp_sequence(&mut rng(2), &base, 8_000);

    let config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None,
        degradation_threshold: 0.002, // provably crossed mid-feed
        background_rebuild: true,
    };
    let mut router: Router<u32, PrefixDag<u32>> = Router::new(base.clone(), config);

    let oracles: EpochOracles = Arc::new(Mutex::new(HashMap::new()));
    oracles.lock().unwrap().insert(0, base.clone());
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..2)
        .map(|i| {
            reader_thread(
                router.data_plane(),
                Arc::clone(&oracles),
                Arc::clone(&stop),
                100 + i,
            )
        })
        .collect();

    let mut oracle = base;
    let mut saw_rebuild = false;
    for (i, op) in updates.iter().enumerate() {
        match *op {
            UpdateOp::Announce(p, nh) => {
                oracle.insert(p, nh);
                router.announce(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                oracle.remove(p);
                router.withdraw(p);
            }
        }
        saw_rebuild |= router.rebuild_in_flight();
        if i % 500 == 499 {
            // Record the oracle for the epoch about to be cut, then
            // publish it. Readers move over at their own pace.
            oracles
                .lock()
                .unwrap()
                .insert(router.epoch() + 1, oracle.clone());
            router.publish();
        }
    }
    oracles
        .lock()
        .unwrap()
        .insert(router.epoch() + 1, oracle.clone());
    router.publish();
    assert!(saw_rebuild, "degradation threshold never tripped");

    // Let the readers chew on the final epoch too.
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, SeqCst);
    let mut total_checked = 0;
    for handle in readers {
        let (checked, epochs_seen) = handle.join().expect("reader panicked");
        assert!(checked > 0, "reader did no work");
        assert!(epochs_seen > 0, "reader never saw a publish");
        total_checked += checked;
    }
    assert!(total_checked > 1_000, "suspiciously little verification");
}

#[test]
fn forwarding_threads_survive_a_warm_restart_cycle() {
    let dir = std::env::temp_dir().join(format!("fib-spool-conc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create spool dir");

    let base: BinaryTrie<u32> = FibSpec::dfz_like(3_000).generate(&mut rng(7));
    let config = RouterConfig {
        publish_every: None,
        ..RouterConfig::default()
    };

    // Phase 1: a spooling router serves readers, absorbs updates, dies.
    let expected_final: BinaryTrie<u32> = {
        let mut victim: Router<u32, SerializedDag<u32>> = Router::new(base.clone(), config);
        victim.enable_spool(&dir).expect("spool arms");
        let oracles: EpochOracles = Arc::new(Mutex::new(HashMap::new()));
        oracles.lock().unwrap().insert(victim.epoch(), base.clone());
        let stop = Arc::new(AtomicBool::new(false));
        let reader = reader_thread(
            victim.data_plane(),
            Arc::clone(&oracles),
            Arc::clone(&stop),
            1000,
        );
        let mut oracle = base.clone();
        for op in bgp_sequence(&mut rng(8), &base, 1_500) {
            match op {
                UpdateOp::Announce(p, nh) => {
                    oracle.insert(p, nh);
                    victim.announce(p, nh);
                }
                UpdateOp::Withdraw(p) => {
                    oracle.remove(p);
                    victim.withdraw(p);
                }
            }
        }
        oracles
            .lock()
            .unwrap()
            .insert(victim.epoch() + 1, oracle.clone());
        victim.publish();
        std::thread::sleep(std::time::Duration::from_millis(10));
        stop.store(true, SeqCst);
        let (checked, _) = reader.join().expect("reader panicked");
        assert!(checked > 0);
        oracle
        // victim dropped here: crash.
    };

    // Phase 2: warm restart; fresh readers serve the restored (image-
    // backed) snapshot immediately and must agree with the pre-crash
    // control state.
    let restarted: Router<u32, SerializedDag<u32>> =
        Router::warm_restart(&dir, config).expect("restart comes up");
    assert!(restarted.snapshot().is_image_backed());
    let restart_epoch = restarted.epoch();

    let oracles: EpochOracles = Arc::new(Mutex::new(HashMap::new()));
    oracles
        .lock()
        .unwrap()
        .insert(restart_epoch, expected_final.clone());
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|i| {
            reader_thread(
                restarted.data_plane(),
                Arc::clone(&oracles),
                Arc::clone(&stop),
                2000 + i,
            )
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(25));
    stop.store(true, SeqCst);
    for handle in readers {
        let (checked, _) = handle.join().expect("post-restart reader panicked");
        assert!(checked > 0, "post-restart reader did no work");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
