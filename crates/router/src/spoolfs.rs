//! The spool's filesystem seam: every byte the persistence layer moves
//! goes through [`SpoolFs`], so the same shipping protocol code runs on
//! the real disk ([`StdFs`]) and under a seeded, deterministic fault
//! injector ([`FaultFs`]) that can fail any operation, fill the disk,
//! tear unsynced tails, corrupt reads, and freeze the on-disk state at
//! an arbitrary crash point for restart testing.
//!
//! # Durability model
//!
//! [`FaultFs`] models the guarantees the write protocol is allowed to
//! rely on — and nothing more:
//!
//! * File **content** is durable only up to the last [`SpoolFile::sync`].
//!   At a crash, everything past the synced prefix is at the mercy of
//!   the configured [`TailPolicy`]: dropped outright, kept, or torn at a
//!   seeded offset with a possible bit of garbage in the surviving
//!   unsynced span (what a half-written sector looks like).
//! * **Namespace** operations (`create`, `rename`, `remove_file`) are
//!   atomic and durable immediately — the ext4-style simplification.
//!   `rename` never leaves a mixed state, but it happily renames a file
//!   whose *content* is still volatile: exactly the torn-image failure
//!   the temp-file + fsync + rename protocol must prevent.
//! * A crashed filesystem fails every subsequent operation, so the
//!   owner's degradation path (not its happy path) is what runs after.
//!
//! Time is virtual under [`FaultFs`] — one millisecond per observed
//! operation (including [`SpoolFs::now`] itself), so backoff/retry
//! schedules become deterministic, enumerable behavior.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An open spool file: sequential appends plus explicit durability.
pub trait SpoolFile: Send {
    /// Appends `buf` at the end of the file.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Forces everything written so far onto stable storage. Data not
    /// synced when the process (or the fault injector) crashes may be
    /// lost or torn.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem surface the spool lifecycle is written against.
///
/// Deliberately small: the crash-consistency argument in
/// [`crate::lifecycle`] only has to reason about these nine operations.
pub trait SpoolFs: Send + Sync {
    /// `mkdir -p`.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// The entries of `path`, as full paths, sorted (deterministic).
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Whole-file read.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Current file length in bytes.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn file_len(&self, path: &Path) -> io::Result<u64>;

    /// Creates (or truncates) a file for writing.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>>;

    /// Opens a file for appending, creating it if absent.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>>;

    /// Atomically renames `from` to `to` (replacing `to`).
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    /// The underlying (or injected) I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists (file or directory).
    fn exists(&self, path: &Path) -> bool;

    /// A monotonic clock: real time on [`StdFs`], one virtual
    /// millisecond per observed operation on [`FaultFs`] (so retry
    /// backoff is deterministic under test).
    fn now(&self) -> Duration;

    /// Age of a file (now minus last write), when known.
    fn age(&self, path: &Path) -> Option<Duration>;
}

// ---------------------------------------------------------------------
// StdFs — the zero-cost production implementation
// ---------------------------------------------------------------------

/// The production [`SpoolFs`]: thin forwarding onto `std::fs`, with
/// [`SpoolFile::sync`] mapped to `File::sync_data`.
#[derive(Debug)]
pub struct StdFs {
    epoch: std::time::Instant,
}

impl Default for StdFs {
    fn default() -> Self {
        Self {
            epoch: std::time::Instant::now(),
        }
    }
}

impl StdFs {
    /// A fresh handle (its [`SpoolFs::now`] clock starts at zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

struct StdFile {
    file: std::fs::File,
}

impl SpoolFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(&mut self.file, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl SpoolFs for StdFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = std::fs::read_dir(path)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        out.sort();
        Ok(out)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        Ok(Box::new(StdFile {
            file: std::fs::File::create(path)?,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        Ok(Box::new(StdFile {
            file: std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(path)?,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn age(&self, path: &Path) -> Option<Duration> {
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
    }
}

// ---------------------------------------------------------------------
// FaultFs — seeded, deterministic, in-memory fault injection
// ---------------------------------------------------------------------

/// What happens to each file's unsynced tail when [`FaultFs`] crashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TailPolicy {
    /// Everything past the synced prefix is lost — the adversarial
    /// floor a correct protocol must survive.
    #[default]
    Drop,
    /// Unsynced data happens to survive intact (the lucky case; also a
    /// legal outcome the protocol must accept).
    Keep,
    /// A seeded prefix of the unsynced span survives, possibly with one
    /// flipped bit in it — a half-written sector.
    Torn,
}

/// Knobs of the deterministic fault injector. All fields compose; a
/// default config injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Fail every fallible operation whose 1-based index lies in
    /// `[start, end)` with an injected I/O error, then recover — a
    /// transient outage.
    pub fail_ops: Option<(u64, u64)>,
    /// After this many cumulative written bytes, every write fails with
    /// an injected ENOSPC until faults are cleared — a full disk.
    pub enospc_after_bytes: Option<u64>,
    /// Crash (freeze durable state, fail everything after) just before
    /// executing the operation with this 1-based index.
    pub crash_at_op: Option<u64>,
    /// Tail semantics applied to unsynced data at the crash.
    pub tail: TailPolicy,
    /// Flip one seeded bit in the payload returned by the N-th
    /// [`SpoolFs::read`] (1-based) — read-side media corruption. The
    /// stored bytes are untouched.
    pub corrupt_read_nth: Option<u64>,
}

#[derive(Clone, Debug, Default)]
struct MemFile {
    data: Vec<u8>,
    /// Durable prefix length: bytes [0, synced) survive a crash intact.
    synced: usize,
    /// Virtual write timestamp (for [`SpoolFs::age`]).
    wtime_ms: u64,
}

#[derive(Clone, Debug, Default)]
struct MemState {
    /// Path → file id. Identity survives renames, like an inode.
    namespace: BTreeMap<PathBuf, u64>,
    files: BTreeMap<u64, MemFile>,
    dirs: Vec<PathBuf>,
    next_id: u64,
    ops: u64,
    reads: u64,
    written: u64,
    clock_ms: u64,
    crashed: bool,
    rng: u64,
    cfg: FaultConfig,
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

impl MemState {
    fn rng_next(&mut self) -> u64 {
        // SplitMix64 — self-contained, stable across platforms.
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The fallible-operation gate: advances virtual time, counts the
    /// op, and applies every armed fault in a fixed order.
    fn gate(&mut self, write_bytes: u64) -> io::Result<()> {
        self.clock_ms += 1;
        if self.crashed {
            return Err(injected("filesystem crashed"));
        }
        self.ops += 1;
        let op = self.ops;
        if self.cfg.crash_at_op == Some(op) {
            self.crash();
            return Err(injected("crash point reached"));
        }
        if let Some((start, end)) = self.cfg.fail_ops {
            if op >= start && op < end {
                return Err(injected("transient I/O failure"));
            }
        }
        if write_bytes > 0 {
            if let Some(limit) = self.cfg.enospc_after_bytes {
                if self.written + write_bytes > limit {
                    return Err(injected("ENOSPC, device full"));
                }
            }
            self.written += write_bytes;
        }
        Ok(())
    }

    /// Freezes the durable state: applies the tail policy to every
    /// file's unsynced span, then fails everything from here on.
    fn crash(&mut self) {
        self.crashed = true;
        // Deterministic order: iterate ids (BTreeMap), not hash order.
        let ids: Vec<u64> = self.files.keys().copied().collect();
        let tail = self.cfg.tail;
        for id in ids {
            let (synced, len) = {
                let f = &self.files[&id];
                (f.synced, f.data.len())
            };
            let keep = match tail {
                TailPolicy::Drop => synced,
                TailPolicy::Keep => len,
                TailPolicy::Torn => {
                    let span = (len - synced) as u64;
                    synced + usize::try_from(self.rng_next() % (span + 1)).unwrap_or(0)
                }
            };
            let flip = if tail == TailPolicy::Torn && keep > synced {
                // Half the time, one bit of the surviving unsynced span
                // is garbage.
                let coin = self.rng_next();
                let span = (keep - synced) as u64;
                let byte = synced + usize::try_from(self.rng_next() % span).unwrap_or(0);
                let bit = self.rng_next() % 8;
                (coin & 1 == 0).then_some((byte, bit as u8))
            } else {
                None
            };
            let f = self.files.get_mut(&id).expect("id listed above");
            f.data.truncate(keep);
            if let Some((byte, bit)) = flip {
                f.data[byte] ^= 1 << bit;
            }
            f.synced = f.data.len();
        }
    }

    fn id_of(&self, path: &Path) -> io::Result<u64> {
        self.namespace
            .get(path)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }
}

/// The deterministic in-memory fault-injection filesystem. Cheap to
/// clone *as a handle* (shared state); [`FaultFs::durable_clone`] is
/// the deep copy that models a reboot.
#[derive(Debug, Default)]
pub struct FaultFs {
    state: Arc<Mutex<MemState>>,
}

impl Clone for FaultFs {
    fn clone(&self) -> Self {
        Self {
            state: Arc::clone(&self.state),
        }
    }
}

impl FaultFs {
    /// A fault-free in-memory filesystem with the given RNG seed (the
    /// seed only matters once torn tails or read corruption are armed).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, FaultConfig::default())
    }

    /// A filesystem with faults armed from the start.
    #[must_use]
    pub fn with_config(seed: u64, cfg: FaultConfig) -> Self {
        Self {
            state: Arc::new(Mutex::new(MemState {
                rng: seed ^ 0xA076_1D64_78BD_642F,
                cfg,
                ..MemState::default()
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().expect("spoolfs state poisoned")
    }

    /// Fallible operations executed so far (the crash-point space).
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Whether the injector has crashed.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Crashes immediately (freezes durable state per the tail policy).
    pub fn crash_now(&self) {
        self.lock().crash();
    }

    /// Mutates the fault config in place (e.g. to clear a transient
    /// fault, or arm a new one mid-run).
    pub fn reconfigure(&self, f: impl FnOnce(&mut FaultConfig)) {
        f(&mut self.lock().cfg);
    }

    /// Flips one bit of a file's stored bytes — direct media
    /// corruption, for scrub/quarantine tests. Returns whether the
    /// target existed and was long enough.
    pub fn flip_bit(&self, path: &Path, bit_index: u64) -> bool {
        let mut s = self.lock();
        let Ok(id) = s.id_of(path) else { return false };
        let f = s.files.get_mut(&id).expect("namespace maps to file");
        let byte = usize::try_from(bit_index / 8).unwrap_or(usize::MAX);
        if byte >= f.data.len() {
            return false;
        }
        f.data[byte] ^= 1 << (bit_index % 8);
        true
    }

    /// A deep copy holding only what a reboot would find: if this
    /// filesystem already crashed, its frozen durable state; otherwise
    /// the crash (tail policy applied to unsynced spans) is simulated
    /// on the copy. The clone starts alive, fault-free, with the clock
    /// carried over.
    #[must_use]
    pub fn durable_clone(&self) -> Self {
        let mut copy = self.lock().clone();
        if !copy.crashed {
            copy.crash();
        }
        copy.crashed = false;
        copy.cfg = FaultConfig::default();
        copy.ops = 0;
        copy.reads = 0;
        Self {
            state: Arc::new(Mutex::new(copy)),
        }
    }

    /// FNV-1a fingerprint of the durable state (paths + surviving
    /// bytes) — what the crash harness counts distinct crash states by.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let s = self.lock();
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
            }
        };
        for (path, id) in &s.namespace {
            eat(path.to_string_lossy().as_bytes());
            let f = &s.files[id];
            // A reboot only sees the durable prefix.
            eat(&f.data[..f.synced.min(f.data.len())]);
            eat(&[0xFF]);
        }
        h
    }

    /// The paths currently in the namespace (tests inspect layouts).
    #[must_use]
    pub fn paths(&self) -> Vec<PathBuf> {
        self.lock().namespace.keys().cloned().collect()
    }
}

struct MemSpoolFile {
    state: Arc<Mutex<MemState>>,
    id: u64,
}

impl SpoolFile for MemSpoolFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock().expect("spoolfs state poisoned");
        s.gate(buf.len() as u64)?;
        let clock = s.clock_ms;
        let f = s
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))?;
        f.data.extend_from_slice(buf);
        f.wtime_ms = clock;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut s = self.state.lock().expect("spoolfs state poisoned");
        s.gate(0)?;
        let f = s
            .files
            .get_mut(&self.id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file removed"))?;
        f.synced = f.data.len();
        Ok(())
    }
}

impl SpoolFs for FaultFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.gate(0)?;
        let path = path.to_path_buf();
        if !s.dirs.contains(&path) {
            s.dirs.push(path);
        }
        Ok(())
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut s = self.lock();
        s.gate(0)?;
        Ok(s.namespace
            .keys()
            .filter(|p| p.parent() == Some(path))
            .cloned()
            .collect())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.lock();
        s.gate(0)?;
        s.reads += 1;
        let id = s.id_of(path)?;
        let mut data = s.files[&id].data.clone();
        if s.cfg.corrupt_read_nth == Some(s.reads) && !data.is_empty() {
            let bit = s.rng_next() % (data.len() as u64 * 8);
            data[usize::try_from(bit / 8).expect("in range")] ^= 1 << (bit % 8);
        }
        Ok(data)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let mut s = self.lock();
        s.gate(0)?;
        let id = s.id_of(path)?;
        Ok(s.files[&id].data.len() as u64)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        let mut s = self.lock();
        s.gate(0)?;
        let clock = s.clock_ms;
        let id = s.next_id;
        s.next_id += 1;
        s.files.insert(
            id,
            MemFile {
                wtime_ms: clock,
                ..MemFile::default()
            },
        );
        if let Some(old) = s.namespace.insert(path.to_path_buf(), id) {
            s.files.remove(&old);
        }
        Ok(Box::new(MemSpoolFile {
            state: Arc::clone(&self.state),
            id,
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn SpoolFile>> {
        let mut s = self.lock();
        s.gate(0)?;
        let id = match s.namespace.get(path) {
            Some(&id) => id,
            None => {
                let clock = s.clock_ms;
                let id = s.next_id;
                s.next_id += 1;
                s.files.insert(
                    id,
                    MemFile {
                        wtime_ms: clock,
                        ..MemFile::default()
                    },
                );
                s.namespace.insert(path.to_path_buf(), id);
                id
            }
        };
        Ok(Box::new(MemSpoolFile {
            state: Arc::clone(&self.state),
            id,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.gate(0)?;
        let id = s.id_of(from)?;
        s.namespace.remove(from);
        if let Some(old) = s.namespace.insert(to.to_path_buf(), id) {
            if old != id {
                s.files.remove(&old);
            }
        }
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.lock();
        s.gate(0)?;
        let id = s.id_of(path)?;
        s.namespace.remove(path);
        s.files.remove(&id);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.lock();
        s.namespace.contains_key(path) || s.dirs.iter().any(|d| d == path)
    }

    fn now(&self) -> Duration {
        // Observation advances virtual time, so an owner polling a
        // backoff deadline makes progress even while it skips real
        // operations.
        let mut s = self.lock();
        s.clock_ms += 1;
        Duration::from_millis(s.clock_ms)
    }

    fn age(&self, path: &Path) -> Option<Duration> {
        let s = self.lock();
        let id = *s.namespace.get(path)?;
        Some(Duration::from_millis(
            s.clock_ms.saturating_sub(s.files[&id].wtime_ms),
        ))
    }
}

impl StdFs {
    /// Shared handle as a trait object (the common way the router takes
    /// it).
    #[must_use]
    pub fn shared() -> Arc<dyn SpoolFs> {
        Arc::new(Self::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn std_roundtrip_and_rename() {
        let dir = std::env::temp_dir().join(format!("fib-spoolfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = StdFs::new();
        fs.create_dir_all(&dir).unwrap();
        let tmp = dir.join("a.tmp");
        let fin = dir.join("a.img");
        let mut f = fs.create(&tmp).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        fs.rename(&tmp, &fin).unwrap();
        assert_eq!(fs.read(&fin).unwrap(), b"hello");
        assert!(!fs.exists(&tmp));
        assert_eq!(fs.read_dir(&dir).unwrap(), vec![fin.clone()]);
        fs.remove_file(&fin).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_fs_mirrors_a_real_fs_when_no_faults_armed() {
        let fs = FaultFs::new(7);
        fs.create_dir_all(&p("/s")).unwrap();
        let mut f = fs.create(&p("/s/x.tmp")).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync().unwrap();
        fs.rename(&p("/s/x.tmp"), &p("/s/x")).unwrap();
        assert_eq!(fs.read(&p("/s/x")).unwrap(), b"abc");
        assert_eq!(fs.file_len(&p("/s/x")).unwrap(), 3);
        assert_eq!(fs.read_dir(&p("/s")).unwrap(), vec![p("/s/x")]);
        let mut g = fs.open_append(&p("/s/x")).unwrap();
        g.write_all(b"de").unwrap();
        assert_eq!(fs.read(&p("/s/x")).unwrap(), b"abcde");
    }

    #[test]
    fn crash_drops_unsynced_tail_and_fails_everything_after() {
        let fs = FaultFs::new(1);
        let mut f = fs.create(&p("/j")).unwrap();
        f.write_all(b"durable!").unwrap();
        f.sync().unwrap();
        f.write_all(b"volatile").unwrap();
        fs.crash_now();
        assert!(f.sync().is_err(), "post-crash ops must fail");
        assert!(fs.read(&p("/j")).is_err());
        let boot = fs.durable_clone();
        assert_eq!(boot.read(&p("/j")).unwrap(), b"durable!");
    }

    #[test]
    fn rename_carries_volatile_content_into_the_crash() {
        // The torn-image scenario: rename before sync, then crash — the
        // final name exists, its content does not.
        let fs = FaultFs::new(2);
        let mut f = fs.create(&p("/e.tmp")).unwrap();
        f.write_all(b"image-bytes").unwrap(); // never synced
        fs.rename(&p("/e.tmp"), &p("/e.img")).unwrap();
        fs.crash_now();
        let boot = fs.durable_clone();
        assert_eq!(boot.read(&p("/e.img")).unwrap(), b"", "tail dropped");
    }

    #[test]
    fn crash_at_op_is_deterministic_and_distinct() {
        let run = |crash_at: u64| {
            let fs = FaultFs::with_config(
                9,
                FaultConfig {
                    crash_at_op: Some(crash_at),
                    ..FaultConfig::default()
                },
            );
            let mut wrote = 0;
            for i in 0..4u8 {
                let Ok(mut f) = fs.create(&p(&format!("/f{i}"))) else {
                    break;
                };
                if f.write_all(&[i; 16]).is_err() || f.sync().is_err() {
                    break;
                }
                wrote += 1;
            }
            (wrote, fs.fingerprint())
        };
        let (w3, fp3) = run(3);
        let (w3b, fp3b) = run(3);
        assert_eq!((w3, fp3), (w3b, fp3b), "same crash point, same state");
        let (_, fp7) = run(7);
        assert_ne!(fp3, fp7, "different crash points differ");
        assert!(w3 < 4);
    }

    #[test]
    fn enospc_and_transient_windows_inject_then_recover() {
        let fs = FaultFs::with_config(
            3,
            FaultConfig {
                fail_ops: Some((2, 4)),
                ..FaultConfig::default()
            },
        );
        let mut f = fs.create(&p("/x")).unwrap(); // op 1
        assert!(f.write_all(b"a").is_err()); // op 2: injected
        assert!(f.write_all(b"a").is_err()); // op 3: injected
        f.write_all(b"a").unwrap(); // op 4: recovered
        let fs = FaultFs::with_config(
            3,
            FaultConfig {
                enospc_after_bytes: Some(4),
                ..FaultConfig::default()
            },
        );
        let mut f = fs.create(&p("/y")).unwrap();
        f.write_all(b"1234").unwrap();
        assert!(f.write_all(b"5").is_err(), "disk full");
        fs.reconfigure(|c| c.enospc_after_bytes = None);
        f.write_all(b"5").unwrap();
    }

    #[test]
    fn read_corruption_flips_exactly_one_transient_bit() {
        let fs = FaultFs::with_config(
            4,
            FaultConfig {
                corrupt_read_nth: Some(1),
                ..FaultConfig::default()
            },
        );
        let mut f = fs.create(&p("/c")).unwrap();
        f.write_all(&[0u8; 32]).unwrap();
        f.sync().unwrap();
        let corrupt = fs.read(&p("/c")).unwrap();
        assert_eq!(corrupt.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        let clean = fs.read(&p("/c")).unwrap();
        assert_eq!(clean, vec![0u8; 32], "stored bytes untouched");
    }

    #[test]
    fn virtual_clock_advances_on_observation() {
        let fs = FaultFs::new(5);
        let a = fs.now();
        let b = fs.now();
        assert!(b > a);
    }
}
