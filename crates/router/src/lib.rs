//! A control/data-plane router core around the compressed FIB engines.
//!
//! The paper's §5 system model is a software router with two planes: a
//! slow control CPU that absorbs BGP churn into an uncompressed oracle
//! and applies λ-barrier updates to the folded structure, and a fast data
//! plane that answers millions of lookups per second against an immutable
//! compressed image, periodically re-emitted (arXiv:1402.1194 makes the
//! split explicit; the prefix-DAG memory-bound follow-up assumes the
//! snapshot lifecycle outright). This crate is that seam:
//!
//! * [`Router`] — control plane (oracle [`fib_trie::BinaryTrie`] + update
//!   journal) and data plane (`Arc`-swapped [`EpochSnapshot`]s) over any
//!   engine implementing the `fib-core` trait family. Engines with
//!   in-place updates ([`fib_core::FibUpdate`]) absorb churn directly;
//!   static images are rebuilt from the oracle at publish time. A
//!   degradation policy (pDAG arena fragmentation from λ-barrier refolds)
//!   triggers compacting rebuilds, on a background thread when configured,
//!   with the journal replayed onto the fresh engine before it goes live.
//! * [`DataPlane`] — the cloneable reader handle forwarding threads hold;
//!   snapshot fetches take a lock only long enough to clone an `Arc`,
//!   lookups are lock-free.
//! * [`ShardedRouter`] — 256 first-byte shards, each an independent
//!   [`Router`], with fan-out updates and a bucketed batch-lookup path.
//!
//! ```
//! use fib_core::PrefixDag;
//! use fib_router::{Router, RouterConfig};
//! use fib_trie::{BinaryTrie, NextHop, Prefix4};
//!
//! let mut control: BinaryTrie<u32> = BinaryTrie::new();
//! control.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), NextHop::new(1));
//! control.insert("10.0.0.0/8".parse::<Prefix4>().unwrap(), NextHop::new(2));
//!
//! let mut router: Router<u32, PrefixDag<u32>> =
//!     Router::new(control, RouterConfig::default());
//! router.announce("10.1.0.0/16".parse().unwrap(), NextHop::new(3));
//! let snapshot = router.publish();
//!
//! let mut out = [None; 2];
//! snapshot.lookup_batch(&[0x0A01_0203u32, 0x0B00_0001], &mut out);
//! assert_eq!(out, [Some(NextHop::new(3)), Some(NextHop::new(1))]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod router;
mod sharded;

pub use router::{DataPlane, EpochSnapshot, RestartError, Router, RouterConfig, RouterStats};
pub use sharded::{ShardedRouter, SHARD_BITS, SHARD_COUNT};
