//! A control/data-plane router core around the compressed FIB engines.
//!
//! The paper's §5 system model is a software router with two planes: a
//! slow control CPU that absorbs BGP churn into an uncompressed oracle
//! and applies λ-barrier updates to the folded structure, and a fast data
//! plane that answers millions of lookups per second against an immutable
//! compressed image, periodically re-emitted (arXiv:1402.1194 makes the
//! split explicit; the prefix-DAG memory-bound follow-up assumes the
//! snapshot lifecycle outright). This crate is that seam:
//!
//! * [`Router`] — control plane (oracle [`fib_trie::BinaryTrie`] + update
//!   journal) and data plane ([`EpochSnapshot`]s published through a
//!   wait-free [`SnapCell`]) over any engine implementing the `fib-core`
//!   trait family. Engines with in-place updates
//!   ([`fib_core::FibUpdate`]) absorb churn directly; static images are
//!   rebuilt from the oracle at publish time. A degradation policy (pDAG
//!   arena fragmentation from λ-barrier refolds) triggers compacting
//!   rebuilds, on a background thread when configured, with the journal
//!   replayed onto the fresh engine before it goes live.
//! * [`SnapCell`] — home-grown single-writer snapshot publication:
//!   `AtomicPtr` + generation counter + hazard-slot deferred
//!   reclamation. The reader fast path is one atomic load; no reader
//!   ever blocks on a lock.
//! * [`DataPlane`] — the cloneable reader handle forwarding threads
//!   hold: a cached snapshot refreshed on a generation bump.
//! * [`Forwarder`] / [`UpdateBus`] (module [`runtime`]) — the multi-core
//!   forwarding runtime: N worker threads with private traffic sources
//!   and per-worker stats (packets, drops, ns/lookup histogram with
//!   p50/p99), plus the MPSC bus the control plane drains.
//! * [`ShardedRouter`] — 256 first-byte shards, each an independent
//!   [`Router`], with fan-out updates and an allocation-free, wait-free
//!   bucketed batch-lookup handle ([`ShardedDataPlane`]).
//! * [`VrfSetRouter`] (module [`vrf`]) — the multi-tenant control plane:
//!   per-VRF oracles compiled into one cross-table-deduped
//!   [`fib_core::CompiledVrfSet`], published atomically with per-VRF
//!   epochs, plus [`VrfDataPlane`] with a VRF-bucketed, allocation-free
//!   mixed batch path and staleness-checked background rebuilds.
//!
//! ```
//! use fib_core::PrefixDag;
//! use fib_router::{Router, RouterConfig};
//! use fib_trie::{BinaryTrie, NextHop, Prefix4};
//!
//! let mut control: BinaryTrie<u32> = BinaryTrie::new();
//! control.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), NextHop::new(1));
//! control.insert("10.0.0.0/8".parse::<Prefix4>().unwrap(), NextHop::new(2));
//!
//! let mut router: Router<u32, PrefixDag<u32>> =
//!     Router::new(control, RouterConfig::default());
//! router.announce("10.1.0.0/16".parse().unwrap(), NextHop::new(3));
//! let snapshot = router.publish();
//!
//! let mut out = [None; 2];
//! snapshot.lookup_batch(&[0x0A01_0203u32, 0x0B00_0001], &mut out);
//! assert_eq!(out, [Some(NextHop::new(3)), Some(NextHop::new(1))]);
//! ```

// `deny` rather than `forbid`: the `snapcell` module carries the crate's
// only `#[allow]` — the AtomicPtr publication + hazard-slot reclamation
// that makes packet-path snapshot reads lock-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod lifecycle;
mod router;
pub mod runtime;
mod sharded;
pub mod shim;
pub mod snapcell;
pub mod spoolfs;
pub mod vrf;

pub use lifecycle::{
    scan_spool, SpoolConfig, SpoolHealth, SpoolImageStatus, SpoolMutant, SpoolStatus,
};
pub use router::{
    DataPlane, EpochSnapshot, RestartError, Router, RouterConfig, RouterHealth, RouterStats,
};
pub use runtime::{
    aggregate, AddressSource, Forwarder, ForwarderConfig, LatencyHistogram, PacingMode,
    RouteUpdate, UpdateBus, UpdateReceiver, WorkerReport,
};
pub use sharded::{ShardedDataPlane, ShardedRouter, SHARD_BITS, SHARD_COUNT};
pub use snapcell::{SnapCell, SnapReader};
pub use spoolfs::{FaultConfig, FaultFs, SpoolFile, SpoolFs, StdFs, TailPolicy};
pub use vrf::{
    VrfBatchScratch, VrfDataPlane, VrfInstallError, VrfRebuild, VrfRebuildJob, VrfSetRouter,
    VrfSnapshot,
};
