//! Durable-spool lifecycle: the crash-consistent write protocol, the
//! journal format, the health state machine that replaces one-strike
//! breakage, quarantine for corrupt images, and the offline status scan.
//!
//! # Write protocol
//!
//! Every epoch image lands via **temp file → `fsync` → atomic rename**,
//! so the final `epoch-*.img` name only ever points at durable, complete
//! bytes; a crash mid-spill leaves at worst a stray `.tmp` the next
//! retention pass sweeps. The journal that bridges updates since the
//! last spill is reset *after* the image rename: until the new image is
//! durable, the old journal (stamped with the previous epoch) still
//! covers every acknowledged update, and replay is idempotent
//! (per-prefix last-writer-wins), so the overlap is harmless. Retention
//! runs last and only ever deletes images older than the configured
//! keep set — at every instant the newest durable image plus a journal
//! that applies on top of it exist on disk.
//!
//! # Journal format (`FIBJRNL2`)
//!
//! Header: magic (8) + base epoch (8). Records are 24 bytes: tag (1),
//! prefix length (1), FNV-folded checksum (2), next-hop (4), address
//! (16). The per-record checksum is what lets replay stop at a torn or
//! bit-flipped tail instead of applying garbage — `FIBJRNL1` had only a
//! length sanity check, which random bytes pass 1 time in 5 for IPv4.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::spoolfs::{SpoolFile, SpoolFs};

/// On-disk journal record size: op (1) + prefix length (1) + checksum
/// (2) + next-hop (4) + address (16).
pub(crate) const JOURNAL_RECORD: usize = 24;
/// Journal header: magic (8) + base epoch (8).
pub(crate) const JOURNAL_HEADER: usize = 16;
pub(crate) const JOURNAL_MAGIC: &[u8; 8] = b"FIBJRNL2";

/// Folds FNV-1a over a record's non-checksum bytes down to 16 bits.
fn record_checksum(rec: &[u8; JOURNAL_RECORD]) -> u16 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for (i, &b) in rec.iter().enumerate() {
        if i == 2 || i == 3 {
            continue; // the checksum's own slot
        }
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16
}

/// Encodes one journal record (checksum stamped).
pub(crate) fn encode_record(tag: u8, len: u8, nh: u32, addr: u128) -> [u8; JOURNAL_RECORD] {
    let mut rec = [0u8; JOURNAL_RECORD];
    rec[0] = tag;
    rec[1] = len;
    rec[4..8].copy_from_slice(&nh.to_le_bytes());
    rec[8..24].copy_from_slice(&addr.to_le_bytes());
    let sum = record_checksum(&rec);
    rec[2..4].copy_from_slice(&sum.to_le_bytes());
    rec
}

/// Decodes one journal record, verifying its checksum. Returns
/// `(tag, len, nh, addr)`, or `None` for a torn/corrupt record (replay
/// must stop there). The [`SpoolMutant::ReplayPastTail`] protocol
/// mutant skips the verification — the bug the checksum exists to make
/// detectable.
pub(crate) fn decode_record(rec: &[u8], mutant: SpoolMutant) -> Option<(u8, u8, u32, u128)> {
    let rec: &[u8; JOURNAL_RECORD] = rec.try_into().ok()?;
    if mutant != SpoolMutant::ReplayPastTail {
        let stored = u16::from_le_bytes([rec[2], rec[3]]);
        if stored != record_checksum(rec) {
            return None;
        }
    }
    let nh = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
    let addr = u128::from_le_bytes(rec[8..24].try_into().expect("16 bytes"));
    Some((rec[0], rec[1], nh, addr))
}

/// Seeded persistence-protocol bugs for the crash-recovery harness's
/// mutation-kill pass. [`SpoolMutant::None`] in production; the others
/// must each be caught by the `crates/check` crash enumeration.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpoolMutant {
    /// The correct protocol.
    #[default]
    None,
    /// Never fsync — images and journal records ride on luck.
    SkipFsync,
    /// Rename the temp image into place *before* syncing its bytes, so
    /// the durable name can point at volatile content.
    RenameBeforeSync,
    /// Replay journal records without checksum/width validation and do
    /// not stop at the first bad record.
    ReplayPastTail,
}

/// Spool lifecycle policy.
#[derive(Clone, Copy, Debug)]
pub struct SpoolConfig {
    /// Checkpoint images retained *in addition to* the newest one
    /// (retention keeps `keep + 1` epoch images total).
    pub keep: usize,
    /// When the on-disk journal exceeds this many bytes, the router
    /// folds it into a fresh image at the next update (a publish).
    pub journal_fold_bytes: u64,
    /// First retry backoff after a persistence failure.
    pub retry_base: Duration,
    /// Backoff ceiling for the exponential schedule.
    pub retry_max: Duration,
    /// Consecutive failed retries before the spool suspends (manual
    /// [`resume`](crate::Router::resume_spool) required).
    pub max_retries: u32,
    /// Protocol mutant under test ([`SpoolMutant::None`] in production).
    #[doc(hidden)]
    pub mutant: SpoolMutant,
}

impl Default for SpoolConfig {
    fn default() -> Self {
        Self {
            keep: 2,
            journal_fold_bytes: 1 << 20,
            retry_base: Duration::from_millis(100),
            retry_max: Duration::from_secs(10),
            max_retries: 6,
            mutant: SpoolMutant::None,
        }
    }
}

/// Spool persistence health, as seen by operators. Forwarding never
/// stops in any state — what degrades is durability, not lookups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpoolHealth {
    /// Appends and spills are landing.
    Healthy,
    /// A persistence operation failed; retries are scheduled with
    /// exponential backoff. Updates made while degraded are *not*
    /// journaled — recovery re-spills the full current epoch instead.
    Degraded {
        /// Consecutive failures so far.
        retries: u32,
        /// Current backoff delay before the next retry.
        backoff: Duration,
        /// The most recent failure.
        error: String,
    },
    /// Retries exhausted; the spool stays down until
    /// [`resume`](crate::Router::resume_spool) is called (e.g. after an
    /// operator frees disk space).
    Suspended {
        /// The failure that exhausted the retry budget.
        error: String,
    },
}

impl SpoolHealth {
    /// Whether the spool is accepting writes.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        matches!(self, Self::Healthy)
    }
}

impl std::fmt::Display for SpoolHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Healthy => f.write_str("healthy"),
            Self::Degraded {
                retries, backoff, ..
            } => {
                write!(f, "degraded (retries {retries}, backoff {backoff:?})")
            }
            Self::Suspended { error } => write!(f, "suspended ({error})"),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum HealthPhase {
    Healthy,
    Degraded,
    Suspended,
}

/// The retry/backoff state machine behind [`SpoolHealth`].
#[derive(Debug)]
pub(crate) struct HealthState {
    phase: HealthPhase,
    retries: u32,
    backoff: Duration,
    /// Virtual-clock deadline of the next retry attempt.
    next_retry: Duration,
    last_error: Option<String>,
    /// Degraded/Suspended → Healthy transitions (re-spill verified).
    pub(crate) recoveries: u64,
}

impl HealthState {
    pub(crate) fn new() -> Self {
        Self {
            phase: HealthPhase::Healthy,
            retries: 0,
            backoff: Duration::ZERO,
            next_retry: Duration::ZERO,
            last_error: None,
            recoveries: 0,
        }
    }

    pub(crate) fn view(&self) -> SpoolHealth {
        match self.phase {
            HealthPhase::Healthy => SpoolHealth::Healthy,
            HealthPhase::Degraded => SpoolHealth::Degraded {
                retries: self.retries,
                backoff: self.backoff,
                error: self.last_error.clone().unwrap_or_default(),
            },
            HealthPhase::Suspended => SpoolHealth::Suspended {
                error: self.last_error.clone().unwrap_or_default(),
            },
        }
    }

    pub(crate) fn is_healthy(&self) -> bool {
        self.phase == HealthPhase::Healthy
    }

    pub(crate) fn is_suspended(&self) -> bool {
        self.phase == HealthPhase::Suspended
    }

    /// Records a persistence failure at virtual time `now`: bumps the
    /// exponential backoff, suspends past the retry budget.
    pub(crate) fn note_failure(&mut self, cfg: &SpoolConfig, now: Duration, error: String) {
        self.retries = self.retries.saturating_add(1);
        self.last_error = Some(error);
        if self.retries > cfg.max_retries {
            self.phase = HealthPhase::Suspended;
            return;
        }
        let shift = self.retries.saturating_sub(1).min(20);
        self.backoff = cfg.retry_max.min(cfg.retry_base.saturating_mul(1 << shift));
        self.next_retry = now + self.backoff;
        self.phase = HealthPhase::Degraded;
    }

    /// Records a successful persistence operation: an unhealthy spool
    /// counts a recovery and returns to `Healthy`.
    pub(crate) fn note_success(&mut self) {
        if self.phase != HealthPhase::Healthy {
            self.recoveries += 1;
        }
        self.phase = HealthPhase::Healthy;
        self.retries = 0;
        self.backoff = Duration::ZERO;
        self.last_error = None;
    }

    /// Whether a degraded spool's backoff has elapsed (a retry is due).
    pub(crate) fn retry_due(&self, now: Duration) -> bool {
        self.phase == HealthPhase::Degraded && now >= self.next_retry
    }

    /// Operator re-arm: a suspended (or degraded) spool becomes
    /// immediately retryable with a fresh retry budget.
    pub(crate) fn resume(&mut self) {
        if self.phase != HealthPhase::Healthy {
            self.phase = HealthPhase::Degraded;
            self.retries = 0;
            self.backoff = Duration::ZERO;
            self.next_retry = Duration::ZERO;
        }
    }
}

/// Durable-spool state: where epoch images are spilled, the update
/// journal bridging the gap since the last spill, and the health
/// machine deciding whether writes are attempted at all.
pub(crate) struct Spool {
    pub(crate) fs: Arc<dyn SpoolFs>,
    pub(crate) dir: PathBuf,
    pub(crate) cfg: SpoolConfig,
    journal: Option<Box<dyn SpoolFile>>,
    /// Epoch the journal's records apply on top of.
    pub(crate) journal_epoch: u64,
    /// Bytes in the journal file (header included).
    pub(crate) journal_bytes: u64,
    /// Newest epoch with a spilled image.
    pub(crate) last_spilled: Option<u64>,
    pub(crate) health: HealthState,
    /// Images moved to quarantine by this router (restart + scrub).
    pub(crate) quarantined: u64,
}

pub(crate) fn image_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch:016x}.img"))
}

pub(crate) fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.log")
}

/// Parses `epoch-{hex}.img` names back to their epoch.
pub(crate) fn parse_image_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("epoch-")?.strip_suffix(".img")?;
    u64::from_str_radix(hex, 16).ok()
}

impl Spool {
    /// Arms a spool on `dir`. Only directory creation is fallible here;
    /// journal/image write failures later degrade health instead.
    pub(crate) fn arm(fs: Arc<dyn SpoolFs>, dir: PathBuf, cfg: SpoolConfig) -> io::Result<Self> {
        fs.create_dir_all(&dir)?;
        Ok(Self {
            fs,
            dir,
            cfg,
            journal: None,
            journal_epoch: 0,
            journal_bytes: 0,
            last_spilled: None,
            health: HealthState::new(),
            quarantined: 0,
        })
    }

    /// Truncates the journal and stamps it with the epoch its future
    /// records apply on top of.
    pub(crate) fn reset_journal(&mut self, epoch: u64) -> io::Result<()> {
        let mut f = self.fs.create(&journal_path(&self.dir))?;
        f.write_all(JOURNAL_MAGIC)?;
        f.write_all(&epoch.to_le_bytes())?;
        if self.cfg.mutant != SpoolMutant::SkipFsync {
            f.sync()?;
        }
        self.journal = Some(f);
        self.journal_epoch = epoch;
        self.journal_bytes = JOURNAL_HEADER as u64;
        Ok(())
    }

    /// Re-opens an existing journal in append mode (warm restart).
    pub(crate) fn open_journal_append(&mut self, epoch: u64) -> io::Result<()> {
        let path = journal_path(&self.dir);
        let f = self.fs.open_append(&path)?;
        self.journal = Some(f);
        self.journal_epoch = epoch;
        self.journal_bytes = self.fs.file_len(&path).unwrap_or(0);
        Ok(())
    }

    /// Appends one record and makes it durable. The caller routes the
    /// error through the health machine.
    pub(crate) fn append(&mut self, rec: &[u8; JOURNAL_RECORD]) -> io::Result<()> {
        let f = self
            .journal
            .as_mut()
            .ok_or_else(|| io::Error::other("journal not armed"))?;
        f.write_all(rec)?;
        if self.cfg.mutant != SpoolMutant::SkipFsync {
            f.sync()?;
        }
        self.journal_bytes += JOURNAL_RECORD as u64;
        Ok(())
    }

    /// Whether the journal has outgrown the fold threshold (time to
    /// compact it into a fresh image).
    pub(crate) fn wants_fold(&self) -> bool {
        self.journal_bytes > self.cfg.journal_fold_bytes + JOURNAL_HEADER as u64
    }

    /// Lands `bytes` as the durable image of `epoch` via the
    /// crash-consistent protocol (temp file → fsync → rename), then
    /// resets the journal onto the new base and prunes old checkpoints.
    pub(crate) fn spill(&mut self, epoch: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("epoch-{epoch:016x}.tmp"));
        let fin = image_path(&self.dir, epoch);
        let mut f = self.fs.create(&tmp)?;
        f.write_all(bytes)?;
        // The mutant that renames first keeps the handle and syncs only
        // at the very end — after the journal reset that the durable
        // image was supposed to license. A crash in between leaves the
        // final name pointing at volatile bytes with the bridging
        // journal already gone: exactly the torn-image data loss the
        // correct order makes impossible.
        let mut late_sync: Option<Box<dyn SpoolFile>> = None;
        match self.cfg.mutant {
            SpoolMutant::None | SpoolMutant::ReplayPastTail => {
                f.sync()?;
                drop(f);
                self.fs.rename(&tmp, &fin)?;
            }
            SpoolMutant::SkipFsync => {
                drop(f);
                self.fs.rename(&tmp, &fin)?;
            }
            SpoolMutant::RenameBeforeSync => {
                self.fs.rename(&tmp, &fin)?;
                late_sync = Some(f);
            }
        }
        self.last_spilled = Some(epoch);
        self.reset_journal(epoch)?;
        self.retention();
        if let Some(mut f) = late_sync {
            f.sync()?;
        }
        Ok(())
    }

    /// Prunes epoch images beyond the newest `keep + 1` and sweeps
    /// stray `.tmp` files. Best-effort: a retention failure never
    /// degrades health (the spool is *over*-complete, not broken).
    pub(crate) fn retention(&mut self) {
        let Ok(entries) = self.fs.read_dir(&self.dir) else {
            return;
        };
        let mut epochs: Vec<u64> = Vec::new();
        for path in &entries {
            if let Some(epoch) = parse_image_name(path) {
                epochs.push(epoch);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                let _ = self.fs.remove_file(path);
            }
        }
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        for &old in epochs.iter().skip(self.cfg.keep + 1) {
            let _ = self.fs.remove_file(&image_path(&self.dir, old));
        }
    }
}

/// Moves a failed-validation image into `dir/quarantine/` and writes a
/// `<name>.reason` file holding the typed lint code plus detail, so an
/// operator (or `fibc spool-status`) can see *why* without re-linting.
pub(crate) fn quarantine_image(
    fs: &dyn SpoolFs,
    dir: &Path,
    path: &Path,
    code: &str,
    detail: &str,
) -> io::Result<PathBuf> {
    let qdir = dir.join("quarantine");
    fs.create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::other("image path has no file name"))?;
    let dest = qdir.join(name);
    fs.rename(path, &dest)?;
    let mut reason_name = name.to_os_string();
    reason_name.push(".reason");
    let mut reason = fs.create(&qdir.join(reason_name))?;
    reason.write_all(format!("{code}: {detail}\n").as_bytes())?;
    reason.sync()?;
    Ok(dest)
}

/// One image's entry in a [`SpoolStatus`] report.
#[derive(Clone, Debug)]
pub struct SpoolImageStatus {
    /// Image file path.
    pub path: PathBuf,
    /// Epoch parsed from the file name.
    pub epoch: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Lint verdicts (`code: detail`); empty means clean.
    pub issues: Vec<String>,
}

/// Offline report of a spool directory's state — what
/// `fibc spool-status` prints and the serve loop's health ticker reads.
#[derive(Clone, Debug, Default)]
pub struct SpoolStatus {
    /// Every `epoch-*.img` found, newest first.
    pub images: Vec<SpoolImageStatus>,
    /// Total bytes across epoch images.
    pub image_bytes: u64,
    /// Newest epoch whose image lints clean.
    pub newest_valid_epoch: Option<u64>,
    /// Age of the newest valid image, when the filesystem knows it.
    pub newest_age: Option<Duration>,
    /// Journal base epoch (`None`: missing or bad header).
    pub journal_epoch: Option<u64>,
    /// Checksum-valid journal records.
    pub journal_records: u64,
    /// Journal bytes past the last valid record (torn tail).
    pub journal_torn_bytes: u64,
    /// Whether the journal applies on top of the newest valid image.
    pub journal_bridges: bool,
    /// Quarantined images (reason files excluded from the count).
    pub quarantined: usize,
    /// `file: code` lines from quarantine reason files.
    pub quarantine_reasons: Vec<String>,
}

impl SpoolStatus {
    /// A coarse health verdict derivable offline: `ok` when the newest
    /// image lints clean and the journal bridges onto it.
    #[must_use]
    pub fn verdict(&self) -> &'static str {
        if self.newest_valid_epoch.is_some() && self.journal_bridges {
            "ok"
        } else if self.newest_valid_epoch.is_some() {
            "stale-journal"
        } else {
            "no-valid-image"
        }
    }
}

impl std::fmt::Display for SpoolStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spool {}: {} images ({} KiB), newest valid epoch {}, age {}, journal +{} recs{}, quarantine {}",
            self.verdict(),
            self.images.len(),
            self.image_bytes / 1024,
            self.newest_valid_epoch
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            self.newest_age
                .map_or_else(|| "-".to_string(), |a| format!("{}s", a.as_secs())),
            self.journal_records,
            if self.journal_torn_bytes > 0 {
                " (torn tail)"
            } else {
                ""
            },
            self.quarantined,
        )
    }
}

/// Scans a spool directory read-only: lints every image, decodes the
/// journal, and counts quarantine. Never mutates the spool.
///
/// # Errors
/// Only when the directory itself cannot be listed; per-file problems
/// land in the report instead.
pub fn scan_spool(fs: &dyn SpoolFs, dir: &Path) -> io::Result<SpoolStatus> {
    let mut status = SpoolStatus::default();
    let entries = fs.read_dir(dir)?;
    for path in &entries {
        let Some(epoch) = parse_image_name(path) else {
            continue;
        };
        let bytes = fs.read(path).unwrap_or_default();
        let issues: Vec<String> = fib_core::lint::lint_bytes(&bytes)
            .into_iter()
            .map(|i| i.to_string())
            .collect();
        status.image_bytes += bytes.len() as u64;
        status.images.push(SpoolImageStatus {
            path: path.clone(),
            epoch,
            bytes: bytes.len() as u64,
            issues,
        });
    }
    status.images.sort_by_key(|i| std::cmp::Reverse(i.epoch));
    if let Some(best) = status.images.iter().find(|i| i.issues.is_empty()) {
        status.newest_valid_epoch = Some(best.epoch);
        status.newest_age = fs.age(&best.path);
    }

    if let Ok(buf) = fs.read(&journal_path(dir)) {
        if buf.len() >= JOURNAL_HEADER && &buf[..8] == JOURNAL_MAGIC {
            let epoch = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
            status.journal_epoch = Some(epoch);
            let body = &buf[JOURNAL_HEADER..];
            let mut consumed = 0usize;
            for rec in body.chunks_exact(JOURNAL_RECORD) {
                if decode_record(rec, SpoolMutant::None).is_none() {
                    break;
                }
                status.journal_records += 1;
                consumed += JOURNAL_RECORD;
            }
            status.journal_torn_bytes = (body.len() - consumed) as u64;
            status.journal_bridges = status
                .newest_valid_epoch
                .is_some_and(|newest| epoch <= newest);
        }
    }

    let qdir = dir.join("quarantine");
    if fs.exists(&qdir) {
        if let Ok(qentries) = fs.read_dir(&qdir) {
            for path in &qentries {
                if path.extension().is_some_and(|e| e == "reason") {
                    let reason = fs
                        .read(path)
                        .ok()
                        .and_then(|b| String::from_utf8(b).ok())
                        .unwrap_or_default();
                    let stem = path.file_stem().unwrap_or_default().to_string_lossy();
                    status
                        .quarantine_reasons
                        .push(format!("{stem}: {}", reason.trim()));
                } else {
                    status.quarantined += 1;
                }
            }
        }
    }
    Ok(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spoolfs::FaultFs;

    #[test]
    fn record_roundtrip_and_checksum_rejects_flips() {
        let rec = encode_record(b'A', 24, 7, 0x0A00_0000);
        assert_eq!(
            decode_record(&rec, SpoolMutant::None),
            Some((b'A', 24, 7, 0x0A00_0000))
        );
        for bit in 0..(JOURNAL_RECORD * 8) {
            let mut bad = rec;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                decode_record(&bad, SpoolMutant::None),
                None,
                "bit {bit} flip must be caught"
            );
        }
        // The mutant is blind to the same flip.
        let mut bad = rec;
        bad[20] ^= 0x40;
        assert!(decode_record(&bad, SpoolMutant::ReplayPastTail).is_some());
    }

    #[test]
    fn health_machine_backs_off_exponentially_then_suspends() {
        let cfg = SpoolConfig {
            retry_base: Duration::from_millis(10),
            retry_max: Duration::from_millis(50),
            max_retries: 3,
            ..SpoolConfig::default()
        };
        let mut h = HealthState::new();
        assert!(h.is_healthy());
        let mut now = Duration::from_millis(100);
        h.note_failure(&cfg, now, "boom".into());
        let SpoolHealth::Degraded { backoff, .. } = h.view() else {
            panic!("expected degraded");
        };
        assert_eq!(backoff, Duration::from_millis(10));
        assert!(!h.retry_due(now), "backoff not elapsed yet");
        now += Duration::from_millis(10);
        assert!(h.retry_due(now));
        h.note_failure(&cfg, now, "boom".into());
        let SpoolHealth::Degraded { backoff, .. } = h.view() else {
            panic!("expected degraded");
        };
        assert_eq!(backoff, Duration::from_millis(20), "doubled");
        h.note_failure(&cfg, now, "boom".into());
        h.note_failure(&cfg, now, "boom".into());
        assert!(h.is_suspended(), "4th failure > max_retries 3");
        h.resume();
        assert!(h.retry_due(now), "resume makes a retry immediately due");
        h.note_success();
        assert!(h.is_healthy());
        assert_eq!(h.recoveries, 1);
    }

    #[test]
    fn retention_keeps_newest_plus_k_and_sweeps_tmp() {
        let fs = Arc::new(FaultFs::new(11));
        let dir = PathBuf::from("/spool");
        let cfg = SpoolConfig {
            keep: 1,
            ..SpoolConfig::default()
        };
        let mut spool = Spool::arm(fs.clone(), dir.clone(), cfg).unwrap();
        for epoch in 1..=4u64 {
            spool.spill(epoch, &[0xAB; 32]).unwrap();
        }
        let left: Vec<u64> = fs
            .paths()
            .iter()
            .filter_map(|p| parse_image_name(p))
            .collect();
        assert_eq!(left, vec![3, 4], "newest + 1 checkpoint survive");
        assert!(
            !fs.paths()
                .iter()
                .any(|p| p.extension().is_some_and(|e| e == "tmp")),
            "no stray temp files"
        );
        assert_eq!(spool.journal_epoch, 4);
    }

    #[test]
    fn quarantine_moves_image_and_writes_typed_reason() {
        let fs = FaultFs::new(12);
        let dir = PathBuf::from("/spool");
        fs.create_dir_all(&dir).unwrap();
        let img = image_path(&dir, 9);
        let mut f = fs.create(&img).unwrap();
        f.write_all(b"junk").unwrap();
        f.sync().unwrap();
        drop(f);
        let dest = quarantine_image(&fs, &dir, &img, "image-bad-magic", "not a fibimage").unwrap();
        assert!(!fs.exists(&img));
        assert!(fs.exists(&dest));
        let reason = fs
            .read(&dir.join("quarantine/epoch-0000000000000009.img.reason"))
            .unwrap();
        assert_eq!(reason, b"image-bad-magic: not a fibimage\n");
        let status = scan_spool(&fs, &dir).unwrap();
        assert_eq!(status.quarantined, 1);
        assert_eq!(
            status.quarantine_reasons,
            vec!["epoch-0000000000000009.img: image-bad-magic: not a fibimage".to_string()]
        );
    }
}
