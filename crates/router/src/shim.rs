//! Synchronization shim: the trait family that lets the `SnapCell` and
//! `UpdateBus` protocol cores run unchanged on either real `std::sync`
//! primitives or the `fib-check` model checker's instrumented replacements.
//!
//! The protocol code in [`crate::snapcell`] and [`crate::runtime`] is generic
//! over [`Shim`]; the production aliases instantiate it with [`RealShim`]
//! (plain std atomics, `Box::into_raw` pointers), while `fib-check` provides a
//! `ModelShim` whose every operation is a scheduling point of a deterministic
//! DFS explorer. Keeping one source for both sides is the point: the code the
//! model checker exhaustively explores *is* the code the router ships.

pub use std::sync::atomic::Ordering;

/// A `u64` atomic cell (generation counters, hazard announcements).
pub trait AtomU64: Send + Sync {
    /// A cell initialized to `value`.
    fn new(value: u64) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store.
    fn store(&self, value: u64, order: Ordering);
    /// Atomic fetch-add; returns the previous value.
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64;
}

/// An atomic cell holding a copyable pointer-like token (the published
/// snapshot slot).
pub trait AtomCell<P: Copy>: Send + Sync {
    /// A cell initialized to `value`.
    fn new(value: P) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> P;
    /// Atomic swap; returns the previous value.
    fn swap(&self, value: P, order: Ordering) -> P;
}

/// A mutex. The model side turns `lock` into a scheduling point and checks
/// for deadlock; the real side is `std::sync::Mutex`.
pub trait MutexLike<T>: Send + Sync {
    /// The RAII guard `lock` returns.
    type Guard<'a>: std::ops::DerefMut<Target = T>
    where
        Self: 'a,
        T: 'a;
    /// A mutex around `value`.
    fn new(value: T) -> Self;
    /// Blocks until the mutex is held.
    fn lock(&self) -> Self::Guard<'_>;
    /// Direct access through exclusive ownership (no locking needed).
    fn get_mut(&mut self) -> &mut T;
}

/// The shim: a family of synchronization primitives plus a tiny heap for the
/// snapshot cells the writer allocates and defers reclamation of. The model
/// implementation backs `Ptr` with slab indices so use-after-free and leaks
/// are detected structurally, without any real dangling pointers.
pub trait Shim: Sized + 'static {
    /// The `u64` atomic family member.
    type AtomicU64: AtomU64;
    /// The pointer-cell family member, holding a [`Shim::Ptr`].
    type Cell<V: Send + Sync + 'static>: AtomCell<Self::Ptr<V>>;
    /// The mutex family member.
    type Mutex<T: Send>: MutexLike<T>;
    /// Pointer-like handle to a heap cell holding a `V`.
    type Ptr<V: Send + Sync + 'static>: Copy + Eq + Send;

    /// Moves `value` onto the shim heap, returning its handle.
    fn alloc<V: Send + Sync + 'static>(value: V) -> Self::Ptr<V>;
    /// Reclaim a cell. On the model side, freeing twice or reading after free
    /// is reported as a violation rather than being undefined behavior.
    fn free<V: Send + Sync + 'static>(ptr: Self::Ptr<V>);
    /// Clone the value out of a live cell.
    fn read<V: Clone + Send + Sync + 'static>(ptr: Self::Ptr<V>) -> V;
}

impl AtomU64 for std::sync::atomic::AtomicU64 {
    fn new(value: u64) -> Self {
        std::sync::atomic::AtomicU64::new(value)
    }
    fn load(&self, order: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::load(self, order)
    }
    fn store(&self, value: u64, order: Ordering) {
        std::sync::atomic::AtomicU64::store(self, value, order)
    }
    fn fetch_add(&self, delta: u64, order: Ordering) -> u64 {
        std::sync::atomic::AtomicU64::fetch_add(self, delta, order)
    }
}

impl<T: Send> MutexLike<T> for std::sync::Mutex<T> {
    type Guard<'a>
        = std::sync::MutexGuard<'a, T>
    where
        Self: 'a,
        T: 'a;
    fn new(value: T) -> Self {
        std::sync::Mutex::new(value)
    }
    fn lock(&self) -> Self::Guard<'_> {
        self.lock().expect("shim mutex poisoned")
    }
    fn get_mut(&mut self) -> &mut T {
        self.get_mut().expect("shim mutex poisoned")
    }
}
