//! The multi-core forwarding runtime: N worker threads serving lookups
//! off wait-free snapshot readers, an MPSC update bus draining into the
//! control plane, and per-worker statistics (packets, drops, ns/lookup
//! histogram).
//!
//! The shape follows the paper's §5 software router: one control CPU
//! absorbs churn and periodically publishes an immutable compressed
//! image; every other core runs a tight forward loop — refill a batch
//! from its traffic source, pick up the current snapshot (one atomic
//! generation check via [`SnapCell`]), resolve the batch through the
//! engine's software-pipelined [`lookup_stream`] path, record latency.
//! Workers never take a lock and never contend with each other; the only
//! cross-core traffic on the packet path is the generation counter line,
//! which is read-shared until the (rare) publish invalidates it.
//!
//! [`lookup_stream`]: fib_core::FibLookup::lookup_stream

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fib_core::ImageCodec;
use fib_trie::{Address, NextHop, Prefix};
use fib_workload::{HeatMap, HeatSketch};

use crate::router::{EpochSnapshot, Router};
use crate::shim::{MutexLike, Shim};
use crate::snapcell::{RealShim, SnapCell};

// ---------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------

/// Number of power-of-two buckets; bucket 47 tops out at 2^47/16 ns ≈ 2.4
/// hours per lookup, far beyond anything observable.
const HIST_BUCKETS: usize = 48;
/// Fixed-point scale: histogram values are in 1/16 ns, so sub-nanosecond
/// per-lookup latencies (large batches on small engines) stay resolvable.
const HIST_SCALE: f64 = 16.0;

/// A log₂-bucketed ns/lookup histogram: fixed size, merge-friendly, no
/// allocation on the record path.
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records `count` lookups that each took `ns_per_lookup`.
    pub fn record(&mut self, ns_per_lookup: f64, count: u64) {
        let fixed = (ns_per_lookup * HIST_SCALE).max(1.0) as u64;
        let bucket = (63 - fixed.leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[bucket] += count;
        self.count += count;
    }

    /// Total recorded lookups.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds, as the geometric
    /// midpoint of the bucket holding that rank; 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket b covers fixed-point [2^b, 2^{b+1}): midpoint 1.5·2^b.
                return (1.5 * (1u64 << bucket) as f64) / HIST_SCALE;
            }
        }
        unreachable!("rank within count")
    }

    /// Median ns/lookup.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th-percentile ns/lookup.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------
// Worker reports
// ---------------------------------------------------------------------

/// What one forwarding worker did during a run.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index within the pool.
    pub worker: usize,
    /// Lookups performed.
    pub packets: u64,
    /// Packets dropped by open-loop pacing (arrivals the worker could not
    /// keep up with once its queue overflowed). Always 0 in closed loop.
    pub drops: u64,
    /// Batches processed.
    pub batches: u64,
    /// Lookups that matched a route.
    pub matched: u64,
    /// Snapshot refreshes observed (publication generation bumps).
    pub refreshes: u64,
    /// First epoch served.
    pub first_epoch: u64,
    /// Last epoch served.
    pub last_epoch: u64,
    /// Whether a later batch ever saw an *older* epoch than an earlier
    /// one — must stay `false`; the churn tests assert it.
    pub epoch_regressed: bool,
    /// Wall-clock the worker actually ran.
    pub elapsed: Duration,
    /// Per-batch ns/lookup distribution.
    pub hist: LatencyHistogram,
}

impl WorkerReport {
    fn new(worker: usize) -> Self {
        Self {
            worker,
            packets: 0,
            drops: 0,
            batches: 0,
            matched: 0,
            refreshes: 0,
            first_epoch: u64::MAX,
            last_epoch: 0,
            epoch_regressed: false,
            elapsed: Duration::ZERO,
            hist: LatencyHistogram::default(),
        }
    }

    /// Throughput in million lookups per second over the worker's run.
    #[must_use]
    pub fn mlookups_per_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.packets as f64 / secs / 1e6
        }
    }
}

/// Sums a pool's reports into aggregate throughput plus a merged
/// latency histogram.
#[must_use]
pub fn aggregate(reports: &[WorkerReport]) -> (f64, LatencyHistogram) {
    let mut hist = LatencyHistogram::default();
    let mut mlps = 0.0;
    for r in reports {
        hist.merge(&r.hist);
        mlps += r.mlookups_per_s();
    }
    (mlps, hist)
}

// ---------------------------------------------------------------------
// Pacing and configuration
// ---------------------------------------------------------------------

/// How workers source load.
#[derive(Clone, Copy, Debug)]
pub enum PacingMode {
    /// Closed loop: the next batch starts the moment the previous one
    /// finishes — measures capacity.
    Closed,
    /// Open loop: packets arrive at `rate_pps` per worker regardless of
    /// service speed; arrivals beyond `queue` outstanding packets are
    /// dropped — measures behavior under offered load.
    Open {
        /// Arrival rate per worker, packets per second.
        rate_pps: u64,
        /// Queue capacity before arrivals drop.
        queue: u64,
    },
}

/// Forwarder pool parameters.
#[derive(Clone, Copy, Debug)]
pub struct ForwarderConfig {
    /// Number of forwarding threads.
    pub threads: usize,
    /// Lookups per batch (the unit of snapshot pickup and timing).
    pub batch: usize,
    /// How long the pool runs.
    pub duration: Duration,
    /// Closed or open loop.
    pub pacing: PacingMode,
}

impl Default for ForwarderConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            batch: 256,
            duration: Duration::from_millis(250),
            pacing: PacingMode::Closed,
        }
    }
}

/// A worker's traffic source: fills `buf` with exactly `n` addresses.
/// Blanket-implemented for closures, so any generator (uniform, Zipf,
/// bursty — see `fib_workload::loadgen`) plugs in without this crate
/// depending on the workload crate.
pub trait AddressSource<A>: Send {
    /// Replaces `buf`'s contents with the next `n` addresses.
    fn fill(&mut self, buf: &mut Vec<A>, n: usize);
}

impl<A, F> AddressSource<A> for F
where
    F: FnMut(&mut Vec<A>, usize) + Send,
{
    fn fill(&mut self, buf: &mut Vec<A>, n: usize) {
        self(buf, n);
    }
}

// ---------------------------------------------------------------------
// The forwarder pool
// ---------------------------------------------------------------------

/// A multi-core forwarding runtime over a [`SnapCell`]: spawns
/// [`ForwarderConfig::threads`] workers, each owning a wait-free snapshot
/// reader and a private traffic source, and joins them after the
/// configured duration (or [`Forwarder::stop`]).
#[derive(Debug, Default)]
pub struct Forwarder {
    stop: AtomicBool,
}

impl Forwarder {
    /// A pool handle (reusable across runs).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Asks an in-flight [`Forwarder::run`] (on another thread) to wind
    /// down before its duration elapses.
    pub fn stop(&self) {
        // ordering: Relaxed — a pure shutdown flag: no data is published
        // through it, workers only need to observe it eventually, and the
        // scope join below synchronizes everything at the end of `run`.
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Runs the pool to completion against `cell`, building each worker's
    /// traffic source with `make_source(worker_index)`. Blocks until all
    /// workers finish; returns one report per worker.
    ///
    /// # Panics
    /// Panics if a worker thread panicked.
    pub fn run<A, E, S>(
        &self,
        cell: &SnapCell<EpochSnapshot<E>>,
        config: &ForwarderConfig,
        make_source: impl Fn(usize) -> S + Sync,
    ) -> Vec<WorkerReport>
    where
        A: Address + Send + Sync,
        E: ImageCodec<A> + Send + Sync,
        S: AddressSource<A>,
    {
        self.run_inner(cell, config, make_source, None)
    }

    /// [`Self::run`] with traffic sampling: each worker records every
    /// looked-up address into its own lock-free sketch of `heat`
    /// (worker `i` owns sketch `i % heat.workers()`, so sizing the map
    /// for `config.threads` keeps the sketches contention-free). The
    /// control plane merges the sketches at publish time
    /// ([`crate::Router::publish_hot`]).
    ///
    /// # Panics
    /// Panics if a worker thread panicked.
    pub fn run_sampled<A, E, S>(
        &self,
        cell: &SnapCell<EpochSnapshot<E>>,
        config: &ForwarderConfig,
        make_source: impl Fn(usize) -> S + Sync,
        heat: &HeatMap,
    ) -> Vec<WorkerReport>
    where
        A: Address + Send + Sync,
        E: ImageCodec<A> + Send + Sync,
        S: AddressSource<A>,
    {
        self.run_inner(cell, config, make_source, Some(heat))
    }

    fn run_inner<A, E, S>(
        &self,
        cell: &SnapCell<EpochSnapshot<E>>,
        config: &ForwarderConfig,
        make_source: impl Fn(usize) -> S + Sync,
        heat: Option<&HeatMap>,
    ) -> Vec<WorkerReport>
    where
        A: Address + Send + Sync,
        E: ImageCodec<A> + Send + Sync,
        S: AddressSource<A>,
    {
        // ordering: Relaxed — reset before any worker spawns; the spawn
        // itself is the synchronization point that makes it visible.
        self.stop.store(false, Ordering::Relaxed);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.threads.max(1))
                .map(|worker| {
                    let source = make_source(worker);
                    let sketch = heat.map(|h| h.sketch(worker % h.workers()));
                    scope.spawn(move || self.worker_loop(cell, config, worker, source, sketch))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("forwarding worker panicked"))
                .collect()
        })
    }

    fn worker_loop<A, E, S>(
        &self,
        cell: &SnapCell<EpochSnapshot<E>>,
        config: &ForwarderConfig,
        worker: usize,
        mut source: S,
        sketch: Option<&HeatSketch>,
    ) -> WorkerReport
    where
        A: Address,
        E: ImageCodec<A> + Send + Sync + 'static,
        S: AddressSource<A>,
    {
        let mut reader = cell.reader();
        let mut report = WorkerReport::new(worker);
        let mut last_gen = reader.generation();
        let batch = config.batch.max(1);
        let mut buf: Vec<A> = Vec::with_capacity(batch);
        let mut out: Vec<Option<NextHop>> = vec![None; batch];
        let start = Instant::now();
        loop {
            let elapsed = start.elapsed();
            // ordering: Relaxed — shutdown-flag poll; seeing the store one
            // batch late is fine and no data rides on this load.
            if elapsed >= config.duration || self.stop.load(Ordering::Relaxed) {
                report.elapsed = elapsed;
                break;
            }
            // Pacing: how many packets are due right now?
            let due = match config.pacing {
                PacingMode::Closed => batch as u64,
                PacingMode::Open { rate_pps, queue } => {
                    let arrived = (elapsed.as_secs_f64() * rate_pps as f64) as u64;
                    let mut backlog = arrived.saturating_sub(report.packets + report.drops);
                    if backlog == 0 {
                        std::hint::spin_loop();
                        continue;
                    }
                    if backlog > queue {
                        // The queue overflowed while we were busy: the
                        // excess arrivals were never enqueued.
                        report.drops += backlog - queue;
                        backlog = queue;
                    }
                    backlog.min(batch as u64)
                }
            };
            let n = due as usize;
            source.fill(&mut buf, n);
            debug_assert_eq!(buf.len(), n, "source must fill exactly n");
            let snap = reader.get();
            let epoch = snap.epoch();
            if epoch < report.last_epoch {
                report.epoch_regressed = true;
            }
            report.first_epoch = report.first_epoch.min(epoch);
            report.last_epoch = report.last_epoch.max(epoch);
            let t0 = Instant::now();
            snap.lookup_stream(&buf, &mut out[..n]);
            let dt = t0.elapsed().as_nanos() as f64;
            // Sample heat outside the timed window: the sketch is this
            // worker's own, so the records are uncontended fetch-adds.
            if let Some(sketch) = sketch {
                for &addr in &buf[..n] {
                    sketch.record(addr);
                }
            }
            let gen = reader.generation();
            if gen != last_gen {
                report.refreshes += 1;
                last_gen = gen;
            }
            report.packets += n as u64;
            report.batches += 1;
            report.matched += out[..n].iter().filter(|o| o.is_some()).count() as u64;
            report.hist.record(dt / n as f64, n as u64);
        }
        report
    }
}

// ---------------------------------------------------------------------
// The update bus
// ---------------------------------------------------------------------

/// One control-plane change in flight on the update bus.
#[derive(Clone, Copy, Debug)]
pub enum RouteUpdate<A: Address> {
    /// Insert or replace a route.
    Announce(Prefix<A>, NextHop),
    /// Remove a route.
    Withdraw(Prefix<A>),
}

/// Shared state of one [`BusSenderCore`]/[`BusReceiverCore`] pair.
struct BusState<T> {
    queue: VecDeque<T>,
    rx_alive: bool,
}

/// The cloneable producer half of the generic MPSC bus the update plane
/// rides on. Generic over the [`Shim`] so the `fib-check` model checker
/// can exhaustively explore the send/drain interleavings of the *same*
/// queue the production [`UpdateBus`] alias uses.
pub struct BusSenderCore<T: Send + 'static, S: Shim> {
    inner: Arc<S::Mutex<BusState<T>>>,
}

/// The single-consumer half: the control plane polls it with
/// [`BusReceiverCore::try_recv`]; dropping it hangs up the bus.
pub struct BusReceiverCore<T: Send + 'static, S: Shim> {
    inner: Arc<S::Mutex<BusState<T>>>,
}

/// A connected sender/receiver pair over shim `S`.
#[must_use]
pub fn bus_channel_core<T: Send + 'static, S: Shim>() -> (BusSenderCore<T, S>, BusReceiverCore<T, S>)
{
    let inner = Arc::new(S::Mutex::new(BusState {
        queue: VecDeque::new(),
        rx_alive: true,
    }));
    (
        BusSenderCore {
            inner: Arc::clone(&inner),
        },
        BusReceiverCore { inner },
    )
}

impl<T: Send + 'static, S: Shim> BusSenderCore<T, S> {
    /// Enqueues `value`; `false` if the receiver hung up.
    pub fn send(&self, value: T) -> bool {
        let mut state = self.inner.lock();
        if !state.rx_alive {
            return false;
        }
        state.queue.push_back(value);
        true
    }
}

impl<T: Send + 'static, S: Shim> Clone for BusSenderCore<T, S> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static, S: Shim> BusReceiverCore<T, S> {
    /// Dequeues the oldest pending value, if any (non-blocking).
    pub fn try_recv(&self) -> Option<T> {
        self.inner.lock().queue.pop_front()
    }
}

impl<T: Send + 'static, S: Shim> Drop for BusReceiverCore<T, S> {
    fn drop(&mut self) {
        let mut state = self.inner.lock();
        state.rx_alive = false;
        state.queue.clear();
    }
}

/// The cloneable producer half of the MPSC update bus: BGP sessions,
/// CLIs, test drivers — anything that generates churn — send updates
/// here; the control-plane thread drains them into its [`Router`] with
/// [`Router::drain_updates`].
#[derive(Clone)]
pub struct UpdateBus<A: Address + Send + 'static> {
    tx: BusSenderCore<RouteUpdate<A>, RealShim>,
}

/// The control plane's receiving half of the update bus.
pub struct UpdateReceiver<A: Address + Send + 'static> {
    rx: BusReceiverCore<RouteUpdate<A>, RealShim>,
}

impl<A: Address + Send + 'static> UpdateBus<A> {
    /// A connected bus: the sender handle plus the receiver the control
    /// plane owns.
    #[must_use]
    pub fn channel() -> (Self, UpdateReceiver<A>) {
        let (tx, rx) = bus_channel_core();
        (Self { tx }, UpdateReceiver { rx })
    }

    /// Queues an announce; `false` if the control plane hung up.
    pub fn announce(&self, prefix: Prefix<A>, next_hop: NextHop) -> bool {
        self.tx.send(RouteUpdate::Announce(prefix, next_hop))
    }

    /// Queues a withdraw; `false` if the control plane hung up.
    pub fn withdraw(&self, prefix: Prefix<A>) -> bool {
        self.tx.send(RouteUpdate::Withdraw(prefix))
    }
}

impl<A: Address + Send + 'static> std::fmt::Debug for UpdateBus<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateBus").finish_non_exhaustive()
    }
}

impl<A: Address + Send + 'static> std::fmt::Debug for UpdateReceiver<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpdateReceiver").finish_non_exhaustive()
    }
}

impl<A, E> Router<A, E>
where
    A: Address + Send + Sync + 'static,
    E: fib_core::FibLookup<A>
        + fib_core::FibBuild<A>
        + fib_core::FibUpdate<A>
        + ImageCodec<A>
        + Clone
        + Send
        + Sync
        + 'static,
{
    /// Drains every update currently queued on the bus into the control
    /// plane (non-blocking) and returns how many were applied. Publishing
    /// follows the router's normal policy ([`crate::RouterConfig::
    /// publish_every`] or an explicit [`Router::publish`]).
    pub fn drain_updates(&mut self, rx: &UpdateReceiver<A>) -> usize {
        let mut applied = 0;
        while let Some(update) = rx.rx.try_recv() {
            match update {
                RouteUpdate::Announce(p, nh) => self.announce(p, nh),
                RouteUpdate::Withdraw(p) => self.withdraw(p),
            }
            applied += 1;
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_core::SerializedDag;
    use fib_trie::{BinaryTrie, Prefix4};

    use crate::router::RouterConfig;

    fn base_fib() -> BinaryTrie<u32> {
        let mut t = BinaryTrie::new();
        t.insert("0.0.0.0/0".parse::<Prefix4>().unwrap(), NextHop::new(1));
        t.insert("10.0.0.0/8".parse::<Prefix4>().unwrap(), NextHop::new(2));
        t.insert("10.64.0.0/10".parse::<Prefix4>().unwrap(), NextHop::new(3));
        t
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_plausible() {
        let mut h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(50.0, 1);
        }
        for _ in 0..10 {
            h.record(900.0, 1);
        }
        assert_eq!(h.count(), 100);
        let (p50, p99) = (h.p50(), h.p99());
        assert!((32.0..=96.0).contains(&p50), "p50 = {p50}");
        assert!((512.0..=1536.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        // Sub-nanosecond values stay resolvable.
        let mut tiny = LatencyHistogram::default();
        tiny.record(0.25, 4);
        assert!(tiny.p50() > 0.0 && tiny.p50() < 1.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        a.record(10.0, 5);
        let mut b = LatencyHistogram::default();
        b.record(1000.0, 5);
        a.merge(&b);
        assert_eq!(a.count(), 10);
        assert!(a.p99() > 500.0);
    }

    #[test]
    fn closed_loop_pool_serves_and_reports() {
        let router: Router<u32, SerializedDag<u32>> = Router::new(
            base_fib(),
            RouterConfig {
                publish_every: None,
                ..RouterConfig::default()
            },
        );
        let pool = Forwarder::new();
        let config = ForwarderConfig {
            threads: 2,
            batch: 64,
            duration: Duration::from_millis(40),
            pacing: PacingMode::Closed,
        };
        let reports = pool.run(router.snap_cell(), &config, |worker| {
            let mut x = 0x9E37_79B9u32.wrapping_mul(worker as u32 + 1);
            move |buf: &mut Vec<u32>, n: usize| {
                buf.clear();
                for _ in 0..n {
                    x = x.wrapping_mul(0x0101_6B55).wrapping_add(1);
                    buf.push(x);
                }
            }
        });
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.packets > 0, "worker {} did nothing", r.worker);
            assert_eq!(r.drops, 0, "closed loop never drops");
            assert_eq!(r.matched, r.packets, "default route matches all");
            assert!(!r.epoch_regressed);
            assert!(r.hist.count() == r.packets);
        }
        let (mlps, hist) = aggregate(&reports);
        assert!(mlps > 0.0);
        assert!(hist.p99() >= hist.p50());
    }

    #[test]
    fn sampled_pool_feeds_a_hot_publish() {
        let mut router: Router<u32, SerializedDag<u32>> = Router::new(
            base_fib(),
            RouterConfig {
                publish_every: None,
                ..RouterConfig::default()
            },
        );
        let pool = Forwarder::new();
        let config = ForwarderConfig {
            threads: 2,
            batch: 64,
            duration: Duration::from_millis(30),
            pacing: PacingMode::Closed,
        };
        let heat = fib_workload::HeatMap::new(config.threads, 24, 4096);
        let reports = pool.run_sampled(
            router.snap_cell(),
            &config,
            |worker| {
                let mut x = 0x9E37_79B9u32.wrapping_mul(worker as u32 + 1);
                move |buf: &mut Vec<u32>, n: usize| {
                    buf.clear();
                    for _ in 0..n {
                        x = x.wrapping_mul(0x0101_6B55).wrapping_add(1);
                        // Concentrate on 10.64/10 so hot blocks emerge.
                        buf.push(0x0A40_0000 | (x & 0x003F_FFFF));
                    }
                }
            },
            &heat,
        );
        let packets: u64 = reports.iter().map(|r| r.packets).sum();
        assert!(packets > 0);
        let merged = heat.merged();
        assert_eq!(
            merged.total() + merged.missed(),
            packets,
            "every looked-up address was sampled (or counted as missed)"
        );
        let (snap, summary, stats) = router.publish_hot(&heat, &fib_core::HotConfig::for_width(32));
        assert_eq!(summary.total() + summary.missed(), packets);
        assert!(stats.promoted > 0, "concentrated traffic pinned blocks");
        let slab = snap.hot_slab().expect("hot publish attaches the slab");
        assert!(slab.occupied() > 0);
        // The hot snapshot keeps answering exactly like the control FIB.
        for i in 0..2048u32 {
            let addr = 0x0A40_0000 | i.wrapping_mul(0x9E37);
            assert_eq!(snap.lookup(addr), router.control().lookup(addr));
        }
    }

    #[test]
    fn open_loop_pacing_drops_when_oversubscribed() {
        let router: Router<u32, SerializedDag<u32>> = Router::new(
            base_fib(),
            RouterConfig {
                publish_every: None,
                ..RouterConfig::default()
            },
        );
        let pool = Forwarder::new();
        // An absurd offered load with a tiny queue: drops must appear,
        // and accounting must stay consistent (arrivals ≈ served+dropped).
        let config = ForwarderConfig {
            threads: 1,
            batch: 32,
            duration: Duration::from_millis(30),
            pacing: PacingMode::Open {
                rate_pps: 2_000_000_000,
                queue: 64,
            },
        };
        let reports = pool.run(router.snap_cell(), &config, |_| {
            let mut x = 1u32;
            move |buf: &mut Vec<u32>, n: usize| {
                buf.clear();
                for _ in 0..n {
                    x = x.wrapping_mul(0x0101_6B55).wrapping_add(1);
                    buf.push(x);
                }
            }
        });
        let r = &reports[0];
        assert!(r.drops > 0, "2 Gpps into one core must drop");
        assert!(r.packets > 0);
    }

    #[test]
    fn update_bus_drains_into_the_control_plane() {
        let mut router: Router<u32, SerializedDag<u32>> = Router::new(
            base_fib(),
            RouterConfig {
                publish_every: None,
                ..RouterConfig::default()
            },
        );
        let (bus, rx) = UpdateBus::channel();
        let bus2 = bus.clone();
        assert!(bus.announce("192.168.0.0/16".parse().unwrap(), NextHop::new(7)));
        assert!(bus2.withdraw("10.64.0.0/10".parse().unwrap()));
        assert_eq!(router.drain_updates(&rx), 2);
        router.publish();
        assert_eq!(
            router.snapshot().lookup(0xC0A8_0001u32),
            Some(NextHop::new(7))
        );
        assert_eq!(
            router.snapshot().lookup(0x0A40_0001u32),
            Some(NextHop::new(2)),
            "withdrawn /10 falls back to /8"
        );
        assert_eq!(router.drain_updates(&rx), 0, "bus is empty");
    }
}
