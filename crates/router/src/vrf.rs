//! Multi-tenant VRF runtime: per-VRF control oracles, one compiled
//! shared-arena set, wait-free publication, and VRF-keyed batched
//! lookups.
//!
//! The single-table [`crate::Router`] pairs one oracle with one engine.
//! A provider-edge box runs hundreds of logical tables whose FIBs are
//! mostly identical, so [`VrfSetRouter`] pairs a *map* of oracles with
//! one [`CompiledVrfSet`] — every publish recompiles the set through the
//! cross-table dedup compiler and swaps it in atomically through the
//! same [`SnapCell`] machinery the single-table router uses. Readers
//! ([`VrfDataPlane`]) therefore see all tables move in lock-step: one
//! atomic load observes a consistent fleet, never VRF 7 from epoch 4
//! next to VRF 9 from epoch 5.
//!
//! Epochs are tracked at two grains: the *set* epoch counts publishes,
//! and each VRF carries the set epoch at which its table last changed —
//! so a reader can tell "the fleet moved" apart from "my VRF moved".
//!
//! Batched lookups bucket a mixed `(vrf, addr)` stream by VRF id so each
//! run goes through its table's engine batch path (the shared arena's
//! interleaved walk, or a dedicated engine's lanes). The scratch the
//! bucketing needs is caller-owned ([`VrfBatchScratch`]): steady-state
//! forwarding does not allocate.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use fib_core::{
    compile_vrf_set, BuildConfig, CompiledVrfSet, FibLookup, PrefixDagRef, VrfEngineChoice,
    VrfPolicy,
};
use fib_trie::{Address, BinaryTrie, NextHop, Prefix};

use crate::snapcell::{SnapCell, SnapReader};

/// An immutable, published multi-tenant forwarding state: the compiled
/// set plus set- and per-VRF epochs.
pub struct VrfSnapshot<A: Address> {
    set: CompiledVrfSet<A>,
    epoch: u64,
    /// `(vrf id, set epoch at which this table last changed)`, sorted by
    /// id — parallel to `set.tables`.
    vrf_epochs: Vec<(u32, u64)>,
}

impl<A: Address> VrfSnapshot<A> {
    /// The set epoch (counts publishes; 0 = initial empty state).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The compiled set this snapshot serves from.
    #[must_use]
    pub fn set(&self) -> &CompiledVrfSet<A> {
        &self.set
    }

    /// The set epoch at which `vrf`'s table last changed, or `None` for
    /// an unknown VRF.
    #[must_use]
    pub fn vrf_epoch(&self, vrf: u32) -> Option<u64> {
        let i = self
            .vrf_epochs
            .binary_search_by_key(&vrf, |&(id, _)| id)
            .ok()?;
        Some(self.vrf_epochs[i].1)
    }

    /// VRF-keyed longest-prefix match. Unknown VRFs answer `None`.
    #[must_use]
    #[inline]
    pub fn lookup(&self, vrf: u32, addr: A) -> Option<NextHop> {
        self.set.lookup(vrf, addr)
    }

    /// Resolves a mixed `(vrf, addr)` batch, answers in input order.
    ///
    /// Keys are bucketed by VRF id so every run flows through its
    /// table's engine *batch* path instead of ping-ponging between
    /// tables per packet. All working memory lives in `scratch`; after
    /// its vectors have grown to the steady batch size this path does
    /// not allocate.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `keys`.
    pub fn lookup_batch(
        &self,
        keys: &[(u32, A)],
        out: &mut [Option<NextHop>],
        scratch: &mut VrfBatchScratch<A>,
    ) {
        assert!(out.len() >= keys.len(), "output buffer too small");
        scratch.order.clear();
        scratch.order.extend(0..keys.len() as u32);
        scratch.order.sort_unstable_by_key(|&i| keys[i as usize].0);
        let mut start = 0usize;
        while start < scratch.order.len() {
            let vrf = keys[scratch.order[start] as usize].0;
            let mut end = start + 1;
            while end < scratch.order.len() && keys[scratch.order[end] as usize].0 == vrf {
                end += 1;
            }
            let run = &scratch.order[start..end];
            scratch.addrs.clear();
            scratch
                .addrs
                .extend(run.iter().map(|&i| keys[i as usize].1));
            scratch.hops.clear();
            scratch.hops.resize(run.len(), None);
            self.run_table(vrf, &scratch.addrs, &mut scratch.hops);
            for (&i, &hop) in run.iter().zip(scratch.hops.iter()) {
                out[i as usize] = hop;
            }
            start = end;
        }
    }

    /// One bucketed run against a single table's engine batch path.
    fn run_table(&self, vrf: u32, addrs: &[A], hops: &mut [Option<NextHop>]) {
        let Some(table) = self.set.table(vrf) else {
            hops.fill(None);
            return;
        };
        match table.choice {
            VrfEngineChoice::Shared => {
                match PrefixDagRef::<A>::from_parts_trusted(&self.set.arena, table.root) {
                    Ok(view) => view.lookup_batch(addrs, hops),
                    Err(_) => hops.fill(None),
                }
            }
            VrfEngineChoice::Serialized => match &table.serialized {
                Some(dag) => dag.lookup_batch(addrs, hops),
                None => hops.fill(None),
            },
            VrfEngineChoice::Xbw => match &table.xbw {
                Some(fib) => fib.lookup_batch(addrs, hops),
                None => hops.fill(None),
            },
            VrfEngineChoice::VsDag => match &table.vsdag {
                Some(dag) => dag.lookup_batch(addrs, hops),
                None => hops.fill(None),
            },
        }
    }
}

/// Caller-owned working memory for [`VrfSnapshot::lookup_batch`]. Reuse
/// one per worker; it grows to the batch size once and is then stable.
#[derive(Default)]
pub struct VrfBatchScratch<A: Address> {
    order: Vec<u32>,
    addrs: Vec<A>,
    hops: Vec<Option<NextHop>>,
}

impl<A: Address> VrfBatchScratch<A> {
    /// An empty scratch (vectors grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self {
            order: Vec::new(),
            addrs: Vec::new(),
            hops: Vec::new(),
        }
    }
}

/// A finished background recompilation, ready to install.
pub struct VrfRebuild<A: Address + Send + Sync + 'static> {
    set: CompiledVrfSet<A>,
    basis_version: u64,
    dirty: BTreeSet<u32>,
}

/// A cloned control state handed to a background thread: run
/// [`VrfRebuildJob::run`] anywhere, then hand the result back to
/// [`VrfSetRouter::install`].
pub struct VrfRebuildJob<A: Address + Send + Sync + 'static> {
    oracles: Vec<(u32, BinaryTrie<A>)>,
    config: BuildConfig,
    policy: VrfPolicy,
    basis_version: u64,
    dirty: BTreeSet<u32>,
}

impl<A: Address + Send + Sync + 'static> VrfRebuildJob<A> {
    /// Compiles the captured fleet. CPU-heavy; designed to run off the
    /// control thread.
    #[must_use]
    pub fn run(self) -> VrfRebuild<A> {
        let tables: Vec<fib_core::VrfTable<'_, A>> = self
            .oracles
            .iter()
            .map(|(id, trie)| fib_core::VrfTable { id: *id, trie })
            .collect();
        // A fixed weight vector goes stale when tables come and go;
        // fall back to uniform weights rather than panic in the
        // compiler's shape check.
        let policy = match &self.policy {
            VrfPolicy::Auto { weights } if !weights.is_empty() && weights.len() != tables.len() => {
                VrfPolicy::Auto {
                    weights: Vec::new(),
                }
            }
            other => other.clone(),
        };
        let set = compile_vrf_set(&tables, &self.config, &policy);
        VrfRebuild {
            set,
            basis_version: self.basis_version,
            dirty: self.dirty,
        }
    }
}

/// Why a finished rebuild could not be installed.
#[derive(Debug, PartialEq, Eq)]
pub enum VrfInstallError {
    /// The control plane changed after the rebuild was begun; installing
    /// it would silently drop those updates. Begin a fresh rebuild.
    Stale {
        /// Version the rebuild was cut at.
        built: u64,
        /// Version the control plane is at now.
        current: u64,
    },
}

impl std::fmt::Display for VrfInstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Stale { built, current } => write!(
                f,
                "rebuild is stale: built at control version {built}, control is at {current}"
            ),
        }
    }
}

impl std::error::Error for VrfInstallError {}

/// The multi-tenant control plane: per-VRF oracles, recompiled into one
/// shared-arena set at publish time.
pub struct VrfSetRouter<A: Address + Send + Sync + 'static> {
    oracles: BTreeMap<u32, BinaryTrie<A>>,
    /// VRFs whose oracle changed since the last publish.
    dirty: BTreeSet<u32>,
    config: BuildConfig,
    policy: VrfPolicy,
    /// Mutation counter (every control change bumps it) — the staleness
    /// basis for background rebuilds.
    version: u64,
    epoch: u64,
    vrf_epochs: BTreeMap<u32, u64>,
    cell: SnapCell<VrfSnapshot<A>>,
}

impl<A: Address + Send + Sync + 'static> VrfSetRouter<A> {
    /// An empty router (no tables) with the given build configuration
    /// and placement policy. Epoch 0 is published immediately so readers
    /// always have a snapshot.
    #[must_use]
    pub fn new(config: BuildConfig, policy: VrfPolicy) -> Self {
        let set = compile_vrf_set::<A>(&[], &config, &VrfPolicy::Shared);
        let initial = Arc::new(VrfSnapshot {
            set,
            epoch: 0,
            vrf_epochs: Vec::new(),
        });
        Self {
            oracles: BTreeMap::new(),
            dirty: BTreeSet::new(),
            config,
            policy,
            version: 0,
            epoch: 0,
            vrf_epochs: BTreeMap::new(),
            cell: SnapCell::new(initial),
        }
    }

    /// Number of logical tables.
    #[must_use]
    pub fn tables(&self) -> usize {
        self.oracles.len()
    }

    /// The control oracle of `vrf`, if present.
    #[must_use]
    pub fn oracle(&self, vrf: u32) -> Option<&BinaryTrie<A>> {
        self.oracles.get(&vrf)
    }

    /// Installs (or replaces) a whole table.
    pub fn insert_vrf(&mut self, vrf: u32, table: BinaryTrie<A>) {
        self.oracles.insert(vrf, table);
        self.touch(vrf);
    }

    /// Removes a table. Returns whether it existed.
    pub fn remove_vrf(&mut self, vrf: u32) -> bool {
        let existed = self.oracles.remove(&vrf).is_some();
        if existed {
            // A removal is a fleet change: the next publish must
            // recompile even though the id no longer has an oracle.
            self.touch(vrf);
        }
        existed
    }

    /// Announces a route in `vrf` (creating the table if new). Returns
    /// the previous next-hop for that exact prefix.
    pub fn announce(&mut self, vrf: u32, prefix: Prefix<A>, next_hop: NextHop) -> Option<NextHop> {
        let prev = self
            .oracles
            .entry(vrf)
            .or_default()
            .insert(prefix, next_hop);
        self.touch(vrf);
        prev
    }

    /// Withdraws a route from `vrf`. Returns the removed next-hop.
    pub fn withdraw(&mut self, vrf: u32, prefix: Prefix<A>) -> Option<NextHop> {
        let removed = self.oracles.get_mut(&vrf).and_then(|t| t.remove(prefix));
        if removed.is_some() {
            self.touch(vrf);
        }
        removed
    }

    fn touch(&mut self, vrf: u32) {
        self.dirty.insert(vrf);
        self.version += 1;
    }

    /// Recompiles the fleet and publishes a new epoch. A publish with no
    /// control changes since the last one reuses the published snapshot
    /// (no recompile, no epoch bump).
    pub fn publish(&mut self) -> Arc<VrfSnapshot<A>> {
        if self.dirty.is_empty() && self.epoch > 0 {
            return self.cell.load();
        }
        let job = self.begin_rebuild();
        let rebuild = job.run();
        match self.install(rebuild) {
            Ok(snapshot) => snapshot,
            // Unreachable: nothing can touch `self` between begin and
            // install on one `&mut self` call.
            Err(e) => unreachable!("inline rebuild stale: {e}"),
        }
    }

    /// Captures the control state for an off-thread recompile. The
    /// router keeps serving and absorbing updates meanwhile; a rebuild
    /// begun before further updates is rejected at install time.
    #[must_use]
    pub fn begin_rebuild(&self) -> VrfRebuildJob<A> {
        VrfRebuildJob {
            oracles: self
                .oracles
                .iter()
                .map(|(id, t)| (*id, t.clone()))
                .collect(),
            config: self.config,
            policy: self.policy.clone(),
            basis_version: self.version,
            dirty: self.dirty.clone(),
        }
    }

    /// Installs a finished rebuild as the next epoch.
    ///
    /// # Errors
    /// [`VrfInstallError::Stale`] when the control plane changed after
    /// the rebuild was begun — the updates would otherwise be dropped.
    pub fn install(
        &mut self,
        rebuild: VrfRebuild<A>,
    ) -> Result<Arc<VrfSnapshot<A>>, VrfInstallError> {
        if rebuild.basis_version != self.version {
            return Err(VrfInstallError::Stale {
                built: rebuild.basis_version,
                current: self.version,
            });
        }
        self.epoch += 1;
        for &vrf in &rebuild.dirty {
            self.vrf_epochs.insert(vrf, self.epoch);
        }
        self.dirty.clear();
        // Drop epoch bookkeeping for ids no longer in the fleet.
        let live: BTreeSet<u32> = rebuild.set.tables.iter().map(|t| t.id).collect();
        self.vrf_epochs.retain(|id, _| live.contains(id));
        let vrf_epochs: Vec<(u32, u64)> = rebuild
            .set
            .tables
            .iter()
            .map(|t| {
                (
                    t.id,
                    self.vrf_epochs.get(&t.id).copied().unwrap_or(self.epoch),
                )
            })
            .collect();
        let snapshot = Arc::new(VrfSnapshot {
            set: rebuild.set,
            epoch: self.epoch,
            vrf_epochs,
        });
        self.cell.publish(Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// A wait-free reader handle for a forwarding worker.
    #[must_use]
    pub fn reader(&self) -> VrfDataPlane<A> {
        VrfDataPlane {
            reader: self.cell.reader(),
        }
    }

    /// The set epoch of the latest publish.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A cloneable packet-path handle: caches the current snapshot, refreshes
/// on a generation bump with one atomic load.
pub struct VrfDataPlane<A: Address + Send + Sync + 'static> {
    reader: SnapReader<VrfSnapshot<A>>,
}

impl<A: Address + Send + Sync + 'static> VrfDataPlane<A> {
    /// The current snapshot (cached; refreshed when the router publishes).
    pub fn snapshot(&mut self) -> &Arc<VrfSnapshot<A>> {
        self.reader.get()
    }

    /// VRF-keyed longest-prefix match against the current snapshot.
    #[inline]
    pub fn lookup(&mut self, vrf: u32, addr: A) -> Option<NextHop> {
        self.reader.get().lookup(vrf, addr)
    }

    /// Mixed-VRF batched lookup against the current snapshot (see
    /// [`VrfSnapshot::lookup_batch`]).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `keys`.
    pub fn lookup_batch(
        &mut self,
        keys: &[(u32, A)],
        out: &mut [Option<NextHop>],
        scratch: &mut VrfBatchScratch<A>,
    ) {
        self.reader.get().lookup_batch(keys, out, scratch);
    }
}

impl<A: Address + Send + Sync + 'static> Clone for VrfDataPlane<A> {
    fn clone(&self) -> Self {
        Self {
            reader: self.reader.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn two_vrf_router() -> VrfSetRouter<u32> {
        let mut router = VrfSetRouter::new(BuildConfig::default(), VrfPolicy::Shared);
        for vrf in [1, 2] {
            router.announce(vrf, p("0.0.0.0/0"), nh(1));
            router.announce(vrf, p("10.0.0.0/8"), nh(2));
        }
        router.announce(2, p("10.7.0.0/16"), nh(7));
        router
    }

    #[test]
    fn publish_and_lookup_match_the_oracles() {
        let mut router = two_vrf_router();
        let snapshot = router.publish();
        assert_eq!(snapshot.epoch(), 1);
        for i in 0..2048u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            for vrf in [1, 2] {
                assert_eq!(
                    snapshot.lookup(vrf, addr),
                    router.oracle(vrf).unwrap().lookup(addr),
                    "vrf {vrf} addr {addr:#x}"
                );
            }
        }
        assert_eq!(snapshot.lookup(9, 0x0A00_0001), None, "unknown VRF");
    }

    #[test]
    fn per_vrf_epochs_bump_only_for_changed_tables() {
        let mut router = two_vrf_router();
        let first = router.publish();
        assert_eq!(first.vrf_epoch(1), Some(1));
        assert_eq!(first.vrf_epoch(2), Some(1));
        router.announce(2, p("10.8.0.0/16"), nh(8));
        let second = router.publish();
        assert_eq!(second.epoch(), 2);
        assert_eq!(second.vrf_epoch(1), Some(1), "vrf 1 did not change");
        assert_eq!(second.vrf_epoch(2), Some(2), "vrf 2 changed");
        // No-op publish reuses the snapshot.
        let third = router.publish();
        assert_eq!(third.epoch(), 2);
    }

    #[test]
    fn batch_bucketing_matches_scalar_answers() {
        let mut router = two_vrf_router();
        // A third table on a dedicated engine exercises the non-shared
        // run path too.
        let mut hot = BinaryTrie::new();
        hot.insert(p("0.0.0.0/0"), nh(3));
        hot.insert(p("172.16.0.0/12"), nh(4));
        router.insert_vrf(7, hot);
        let router = {
            let mut r = VrfSetRouter::new(
                BuildConfig::default(),
                VrfPolicy::Auto {
                    weights: vec![0.005, 0.005, 0.99],
                },
            );
            for (vrf, oracle) in [1, 2, 7].iter().zip([
                router.oracle(1).unwrap().clone(),
                router.oracle(2).unwrap().clone(),
                router.oracle(7).unwrap().clone(),
            ]) {
                r.insert_vrf(*vrf, oracle);
            }
            r
        };
        let mut router = router;
        let snapshot = router.publish();
        let keys: Vec<(u32, u32)> = (0..1024u32)
            .map(|i| {
                let vrf = [1u32, 2, 7, 42][(i % 4) as usize];
                (vrf, i.wrapping_mul(0x85EB_CA6B))
            })
            .collect();
        let mut out = vec![None; keys.len()];
        let mut scratch = VrfBatchScratch::new();
        snapshot.lookup_batch(&keys, &mut out, &mut scratch);
        for (&(vrf, addr), &got) in keys.iter().zip(&out) {
            assert_eq!(got, snapshot.lookup(vrf, addr), "vrf {vrf} addr {addr:#x}");
        }
        // Reuse the same scratch: second batch must be just as right.
        snapshot.lookup_batch(&keys[..100], &mut out[..100], &mut scratch);
        for (&(vrf, addr), &got) in keys[..100].iter().zip(&out[..100]) {
            assert_eq!(got, snapshot.lookup(vrf, addr));
        }
    }

    #[test]
    fn background_rebuild_installs_and_rejects_stale() {
        let mut router = two_vrf_router();
        router.publish();
        router.announce(1, p("10.9.0.0/16"), nh(9));
        let job = router.begin_rebuild();
        let rebuild = job.run();
        let snapshot = router.install(rebuild).expect("no interleaved updates");
        assert_eq!(snapshot.epoch(), 2);
        assert_eq!(snapshot.lookup(1, 0x0A09_0001), Some(nh(9)));

        // An update between begin and install makes the rebuild stale.
        let job = router.begin_rebuild();
        router.announce(2, p("10.10.0.0/16"), nh(10));
        let rebuild = job.run();
        match router.install(rebuild) {
            Err(VrfInstallError::Stale { built, current }) => assert!(built < current),
            Ok(_) => panic!("stale rebuild must be rejected"),
        }
        // The dropped rebuild lost nothing: a fresh publish carries the
        // interleaved update.
        let snapshot = router.publish();
        assert_eq!(snapshot.lookup(2, 0x0A0A_0001), Some(nh(10)));
    }

    #[test]
    fn readers_see_new_epochs_and_removed_vrfs() {
        let mut router = two_vrf_router();
        router.publish();
        let mut plane = router.reader();
        assert_eq!(plane.lookup(2, 0x0A07_0001), Some(nh(7)));
        router.remove_vrf(2);
        router.publish();
        assert_eq!(plane.lookup(2, 0x0A07_0001), None, "removed VRF vanishes");
        assert_eq!(plane.snapshot().epoch(), 2);
        let mut sibling = plane.clone();
        assert_eq!(sibling.lookup(1, 0x0A00_0001), Some(nh(2)));
    }
}
