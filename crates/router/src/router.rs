//! The single-shard router core: a control plane driving epoch-snapshotted
//! data-plane engines, with optional FIB-image persistence and warm
//! restart.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::lifecycle::{
    decode_record, encode_record, image_path, journal_path, parse_image_name, quarantine_image,
    Spool, SpoolConfig, SpoolHealth, SpoolMutant, JOURNAL_HEADER, JOURNAL_MAGIC, JOURNAL_RECORD,
};
use crate::snapcell::{SnapCell, SnapReader};
use crate::spoolfs::{SpoolFs, StdFs};

use fib_core::{
    slab_batch, write_image, BuildConfig, FibBuild, FibImage, FibLookup, FibUpdate, HotConfig,
    HotSlab, HotStats, ImageCodec, ImageError,
};
use fib_trie::{Address, BinaryTrie, NextHop, Prefix};
use fib_workload::{HeatMap, HeatSummary};

/// Policy knobs of a [`Router`].
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// How data-plane engines are (re)built from the control FIB. The
    /// λ barrier in here is the paper's update-cost/size dial: it decides
    /// both how expensive in-place pDAG updates are and how much work a
    /// full re-fold costs.
    pub build: BuildConfig,
    /// Auto-publish a new epoch snapshot after this many updates
    /// (`None` = only on explicit [`Router::publish`] calls).
    pub publish_every: Option<usize>,
    /// When the working engine's [`FibUpdate::degradation`] exceeds this,
    /// the router schedules a compacting rebuild. pDAG degradation is
    /// arena fragmentation from λ-barrier refolds.
    pub degradation_threshold: f64,
    /// Run scheduled rebuilds on a background thread (the control CPU of
    /// the paper's software router) instead of inline.
    pub background_rebuild: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            build: BuildConfig::default(),
            publish_every: Some(1024),
            degradation_threshold: 0.25,
            background_rebuild: true,
        }
    }
}

/// What a published snapshot serves from: an owned engine (the normal
/// path) or a loaded FIB image whose zero-copy view answers lookups (the
/// warm-restart path, until the first rebuild replaces it).
enum SnapEngine<E> {
    Owned(E),
    Image(Arc<FibImage>),
}

impl<E> std::fmt::Debug for SnapEngine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Owned(_) => f.write_str("SnapEngine::Owned"),
            Self::Image(img) => write!(f, "SnapEngine::Image(epoch {})", img.epoch()),
        }
    }
}

/// An immutable data-plane image: the engine state the router published at
/// one epoch. Handed out as an [`Arc`], so packet-path readers keep a
/// consistent view for as long as they hold it while the control plane
/// swaps newer epochs in behind them.
#[derive(Debug)]
pub struct EpochSnapshot<E> {
    epoch: u64,
    routes: usize,
    engine: SnapEngine<E>,
    /// Traffic-pinned hot blocks consulted before the engine walk
    /// ([`Router::publish_hot`] attaches one; plain publishes carry none).
    hot: Option<HotSlab>,
}

impl<E> EpochSnapshot<E> {
    /// Monotonic epoch counter (0 = the initial build).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of routes in the control FIB when this epoch was cut.
    #[must_use]
    pub fn routes(&self) -> usize {
        self.routes
    }

    /// The underlying owned engine, or `None` when this snapshot serves
    /// straight from a loaded FIB image (a warm-restarted router before
    /// its first publish).
    #[must_use]
    pub fn engine(&self) -> Option<&E> {
        match &self.engine {
            SnapEngine::Owned(e) => Some(e),
            SnapEngine::Image(_) => None,
        }
    }

    /// Whether lookups are served from a borrowed FIB image.
    #[must_use]
    pub fn is_image_backed(&self) -> bool {
        matches!(self.engine, SnapEngine::Image(_))
    }

    /// The traffic-pinned hot slab this epoch serves from, if the
    /// publish attached one (see [`Router::publish_hot`]).
    #[must_use]
    pub fn hot_slab(&self) -> Option<&HotSlab> {
        self.hot.as_ref()
    }

    /// Longest-prefix-match on the snapshot.
    ///
    /// # Panics
    /// Panics if an image-backed snapshot's image stopped validating —
    /// impossible for images installed by [`Router::warm_restart`], which
    /// validates before publishing.
    #[must_use]
    pub fn lookup<A: Address>(&self, addr: A) -> Option<NextHop>
    where
        E: ImageCodec<A>,
    {
        if let Some(slab) = &self.hot {
            if let Some(answer) = slab.as_ref().probe_addr(addr) {
                return answer;
            }
        }
        match &self.engine {
            SnapEngine::Owned(e) => e.lookup(addr),
            // The image passed a full E::view at restart and is immutable,
            // so the per-lookup view skips the O(n) reference scans.
            SnapEngine::Image(img) => E::view_prevalidated(img)
                .expect("validated at restart")
                .lookup(addr),
        }
    }

    /// Batched longest-prefix-match on the snapshot (the image view is
    /// assembled once per batch).
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`, or as [`Self::lookup`].
    pub fn lookup_batch<A: Address>(&self, addrs: &[A], out: &mut [Option<NextHop>])
    where
        E: ImageCodec<A>,
    {
        if let Some(slab) = &self.hot {
            assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
            match &self.engine {
                SnapEngine::Owned(e) => slab_batch(slab.as_ref(), addrs, out, |a, o| {
                    e.lookup_batch(a, o);
                }),
                SnapEngine::Image(img) => {
                    let view = E::view_prevalidated(img).expect("validated at restart");
                    slab_batch(slab.as_ref(), addrs, out, |a, o| view.lookup_batch(a, o));
                }
            }
            return;
        }
        match &self.engine {
            SnapEngine::Owned(e) => e.lookup_batch(addrs, out),
            SnapEngine::Image(img) => E::view_prevalidated(img)
                .expect("validated at restart")
                .lookup_batch(addrs, out),
        }
    }

    /// Software-pipelined batched lookup on the snapshot (see
    /// [`FibLookup::lookup_stream`]): the engine prefetches the next lane
    /// group's first cache lines while the current group resolves.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`, or as [`Self::lookup`].
    pub fn lookup_stream<A: Address>(&self, addrs: &[A], out: &mut [Option<NextHop>])
    where
        E: ImageCodec<A>,
    {
        if let Some(slab) = &self.hot {
            assert!(out.len() >= addrs.len(), "output buffer too small"); // fibcheck: allow(hot-path): documented once-per-batch contract, not per-packet
            match &self.engine {
                SnapEngine::Owned(e) => slab_batch(slab.as_ref(), addrs, out, |a, o| {
                    e.lookup_stream(a, o);
                }),
                SnapEngine::Image(img) => {
                    let view = E::view_prevalidated(img).expect("validated at restart");
                    slab_batch(slab.as_ref(), addrs, out, |a, o| view.lookup_stream(a, o));
                }
            }
            return;
        }
        match &self.engine {
            SnapEngine::Owned(e) => e.lookup_stream(addrs, out),
            SnapEngine::Image(img) => E::view_prevalidated(img)
                .expect("validated at restart")
                .lookup_stream(addrs, out),
        }
    }
}

/// A cloneable reader handle onto a router's published snapshot — what a
/// forwarding thread owns. The packet path is **lock-free**: while no new
/// epoch has been published, [`DataPlane::current`] is one atomic
/// generation-counter load returning the cached snapshot; after a publish
/// the refresh goes through the hazard-slot protocol of
/// [`SnapCell`](crate::SnapCell), still without ever blocking on a lock.
///
/// The handle caches state, so the methods take `&mut self`: each
/// forwarding thread owns its own (cheap) clone instead of sharing one
/// behind a reference.
#[derive(Debug)]
pub struct DataPlane<E: Send + Sync + 'static> {
    reader: SnapReader<EpochSnapshot<E>>,
}

impl<E: Send + Sync + 'static> Clone for DataPlane<E> {
    fn clone(&self) -> Self {
        Self {
            reader: self.reader.clone(),
        }
    }
}

impl<E: Send + Sync + 'static> DataPlane<E> {
    /// The currently published snapshot, as a borrowed handle (the
    /// wait-free fast path — no `Arc` refcount traffic while the
    /// generation is unchanged).
    #[must_use]
    pub fn current(&mut self) -> &Arc<EpochSnapshot<E>> {
        self.reader.get()
    }

    /// The currently published snapshot, as an owned `Arc` (compatibility
    /// shape; prefer [`Self::current`] on the packet path).
    #[must_use]
    pub fn snapshot(&mut self) -> Arc<EpochSnapshot<E>> {
        Arc::clone(self.reader.get())
    }

    /// The publication generation of the snapshot [`Self::current`] would
    /// return (monotonic; starts at 1).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.reader.generation()
    }
}

/// Counters describing what a [`Router`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Updates accepted by the control plane.
    pub updates: u64,
    /// Updates the working engine absorbed in place.
    pub in_place: u64,
    /// Updates the working engine declined ([`fib_core::RebuildNeeded`]).
    pub declined: u64,
    /// Epoch snapshots published.
    pub epochs: u64,
    /// Full engine rebuilds (inline and background).
    pub rebuilds: u64,
    /// Rebuilds that ran on a background thread.
    pub background_rebuilds: u64,
    /// Journal entries replayed onto freshly rebuilt engines (or, after a
    /// warm restart, onto the restored control FIB).
    pub replayed: u64,
    /// Epoch images spilled to the spool directory.
    pub spills: u64,
}

/// One journaled control-plane change awaiting replay onto a rebuilt
/// engine.
#[derive(Clone, Copy, Debug)]
enum JournalOp<A: Address> {
    Announce(Prefix<A>, NextHop),
    Withdraw(Prefix<A>),
}

struct RebuildJob<E> {
    handle: JoinHandle<E>,
}

/// Why a warm restart could not come up.
#[derive(Debug)]
pub enum RestartError {
    /// The spool directory holds no loadable image with a routes section.
    NoValidImage,
    /// Filesystem failure scanning the spool.
    Io(String),
    /// The newest image failed to decode for the requested engine.
    Image(ImageError),
    /// Every candidate failed validation; the message is the typed lint
    /// reason the last one was quarantined with.
    Quarantined(String),
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoValidImage => write!(f, "no valid FIB image in the spool directory"),
            Self::Io(e) => write!(f, "spool i/o error: {e}"),
            Self::Image(e) => write!(f, "spool image error: {e}"),
            Self::Quarantined(reason) => write!(f, "all spool images quarantined; last: {reason}"),
        }
    }
}

impl std::error::Error for RestartError {}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "engine build panicked".to_string())
}

/// Encodes a journal op into its durable record form.
fn record_of<A: Address>(op: &JournalOp<A>) -> [u8; JOURNAL_RECORD] {
    let (tag, prefix, nh) = match op {
        JournalOp::Announce(p, nh) => (b'A', p, nh.index()),
        JournalOp::Withdraw(p) => (b'W', p, 0),
    };
    encode_record(tag, prefix.len(), nh, prefix.addr().to_u128())
}

/// A point-in-time health report: spool persistence state, rebuild-panic
/// bookkeeping, and whether the data plane is serving a stale epoch.
/// Forwarding never stops in any of these states — the report describes
/// what *durability and freshness* guarantees currently hold.
#[derive(Clone, Debug, Default)]
pub struct RouterHealth {
    /// Spool persistence health (`None`: no spool armed).
    pub spool: Option<SpoolHealth>,
    /// Degraded/Suspended → Healthy transitions (each one re-spilled and
    /// re-verified the newest epoch).
    pub spool_recoveries: u64,
    /// Images this router moved to `spool/quarantine/` (restart + scrub).
    pub quarantined: u64,
    /// Engine builds (inline or background) that panicked and were
    /// contained instead of propagating.
    pub rebuild_panics: u64,
    /// Message of the most recent contained build panic.
    pub last_rebuild_panic: Option<String>,
    /// The published snapshot no longer reflects the control FIB because
    /// the last attempt to materialize an engine panicked; the router
    /// keeps serving the last good epoch.
    pub serving_stale: bool,
}

/// A software router split along the paper's §5 architecture: a slow
/// control plane owning the oracle [`BinaryTrie`] plus an update journal,
/// and a fast data plane serving immutable, `Arc`-swapped epoch snapshots
/// of a compressed engine.
///
/// Updates flow control-first: every change lands in the control FIB, then
/// the router tries the engine's in-place path ([`FibUpdate`]). Engines
/// with λ-barrier updates (the prefix DAG) absorb them directly; static
/// images decline and are rebuilt from the control FIB at the next
/// [`publish`](Self::publish). When in-place churn degrades the working
/// engine past [`RouterConfig::degradation_threshold`], a compacting
/// rebuild is scheduled — on a background thread when configured — and the
/// journal bridges the gap: operations accepted while the rebuild runs are
/// replayed onto the new engine before it is published.
///
/// With a spool enabled ([`Self::enable_spool`]), every published epoch is
/// also spilled as a `fibimage/v1` file and every accepted update is
/// journaled to disk, so [`Self::warm_restart`] can bring a dead router
/// back in image-load time: the data plane serves the zero-copy image view
/// immediately while the owned engine is rebuilt lazily at the next
/// publish.
///
/// The engine bound includes [`ImageCodec`] unconditionally (not just on
/// the spool methods) because [`EpochSnapshot::lookup`] must be able to
/// dispatch into an image-backed snapshot: which variant a snapshot holds
/// is a runtime property, so the capability has to be part of the type.
/// Every Table 2 engine implements the codec; an engine without one can
/// still serve as a plain [`FibLookup`] data plane outside the router.
pub struct Router<A: Address, E: Send + Sync + 'static> {
    config: RouterConfig,
    control: BinaryTrie<A>,
    /// The engine updates apply to. `None` after a warm restart: the data
    /// plane serves the loaded image and the owned engine is built on the
    /// next publish.
    working: Option<E>,
    /// The working engine no longer reflects `control` (static engine
    /// declined an update); it must be rebuilt before the next publish.
    stale: bool,
    /// Ops applied to `control` since the in-flight rebuild started.
    journal: Vec<JournalOp<A>>,
    rebuild: Option<RebuildJob<E>>,
    published: SnapCell<EpochSnapshot<E>>,
    epoch: u64,
    since_publish: usize,
    stats: RouterStats,
    spool: Option<Spool>,
    /// Contained engine-build panics (inline and background).
    rebuild_panics: u64,
    last_rebuild_panic: Option<String>,
    /// Set after a build panic: no new rebuilds are scheduled until a
    /// build succeeds again (prevents a panic storm on a poisoned
    /// control state).
    rebuild_suspended: bool,
    /// The published snapshot lags the control FIB because materializing
    /// a fresh engine panicked at the last publish.
    serving_stale: bool,
    /// The last merged traffic interval, in `HeatSummary` entry shape.
    /// Threaded into every engine (re)build so heat-aware engines (the
    /// variable-stride DAG) re-stride their layout for measured traffic;
    /// heat-blind engines ignore it.
    heat_profile: Option<(Vec<(u64, u64)>, u8)>,
}

impl<A, E> Router<A, E>
where
    A: Address + Send + Sync + 'static,
    E: FibLookup<A> + FibBuild<A> + FibUpdate<A> + ImageCodec<A> + Clone + Send + Sync + 'static,
{
    /// Builds the initial engine from `control` and publishes epoch 0.
    #[must_use]
    pub fn new(control: BinaryTrie<A>, config: RouterConfig) -> Self {
        let working = E::build(&control, &config.build);
        let snapshot = Arc::new(EpochSnapshot {
            epoch: 0,
            routes: control.len(),
            engine: SnapEngine::Owned(working.clone()),
            hot: None,
        });
        Self {
            config,
            control,
            working: Some(working),
            stale: false,
            journal: Vec::new(),
            rebuild: None,
            published: SnapCell::new(snapshot),
            epoch: 0,
            since_publish: 0,
            stats: RouterStats {
                epochs: 1,
                ..RouterStats::default()
            },
            spool: None,
            rebuild_panics: 0,
            last_rebuild_panic: None,
            rebuild_suspended: false,
            serving_stale: false,
            heat_profile: None,
        }
    }

    /// Runs `E::build_weighted` with panics contained: a panicking build
    /// becomes an `Err` carrying the panic message instead of unwinding
    /// into the control plane.
    fn build_caught(
        control: &BinaryTrie<A>,
        build: &BuildConfig,
        heat: Option<&(Vec<(u64, u64)>, u8)>,
    ) -> Result<E, String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            E::build_weighted(control, build, heat.map(|(e, d)| (e.as_slice(), *d)))
        }))
        .map_err(|p| panic_message(&*p))
    }

    fn note_rebuild_panic(&mut self, msg: String) {
        self.rebuild_panics += 1;
        self.last_rebuild_panic = Some(msg);
        self.rebuild_suspended = true;
    }

    /// Rebuilds a router from the newest valid epoch image in `dir` plus
    /// journal replay — the warm-restart path.
    ///
    /// The published snapshot serves lookups **directly from the loaded
    /// image** (zero-copy view), so forwarding resumes in image-load time
    /// instead of engine-rebuild time. The control FIB is restored from
    /// the image's routes section; journaled updates recorded after the
    /// spill are replayed onto it (they reach the data plane at the next
    /// [`publish`](Self::publish), exactly like any other pending update).
    /// Images that fail validation are moved to `spool/quarantine/` with
    /// a typed reason file; images built for another engine or address
    /// family are skipped in place.
    ///
    /// # Errors
    /// [`RestartError`] when the directory cannot be scanned or holds no
    /// valid image for this engine and address family.
    pub fn warm_restart(dir: impl AsRef<Path>, config: RouterConfig) -> Result<Self, RestartError> {
        Self::warm_restart_with(StdFs::shared(), dir, config, SpoolConfig::default())
    }

    /// [`Self::warm_restart`] over an explicit filesystem and spool
    /// policy — the seam the crash-recovery harness drives with a
    /// [`FaultFs`](crate::spoolfs::FaultFs) frozen at an arbitrary crash
    /// point.
    ///
    /// # Errors
    /// [`RestartError`] when the directory cannot be scanned or holds no
    /// valid image for this engine and address family.
    pub fn warm_restart_with(
        fs: Arc<dyn SpoolFs>,
        dir: impl AsRef<Path>,
        config: RouterConfig,
        spool_cfg: SpoolConfig,
    ) -> Result<Self, RestartError> {
        let dir = dir.as_ref();
        let entries = fs
            .read_dir(dir)
            .map_err(|e| RestartError::Io(format!("{}: {e}", dir.display())))?;
        let mut candidates: Vec<(u64, PathBuf)> = entries
            .iter()
            .filter_map(|path| parse_image_name(path).map(|epoch| (epoch, path.clone())))
            .collect();
        candidates.sort_by_key(|&(epoch, _)| std::cmp::Reverse(epoch));
        if candidates.is_empty() {
            return Err(RestartError::NoValidImage);
        }
        let mut quarantined = 0u64;
        let mut last_error: Option<RestartError> = None;
        let mut picked: Option<(u64, FibImage)> = None;
        for (epoch, path) in &candidates {
            let bytes = match fs.read(path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    last_error = Some(RestartError::Io(e.to_string()));
                    continue;
                }
            };
            // Full lint (container + deep passes): anything it flags is
            // evidence of corruption, so the file is moved aside with a
            // typed reason rather than silently skipped and re-tripped-over
            // at every future restart.
            let issues = fib_core::lint::lint_bytes(&bytes);
            if let Some(first) = issues.first() {
                if quarantine_image(fs.as_ref(), dir, path, first.code, &first.detail).is_ok() {
                    quarantined += 1;
                }
                last_error = Some(RestartError::Quarantined(first.to_string()));
                continue;
            }
            let image = match FibImage::from_bytes(&bytes) {
                Ok(image) => image,
                Err(e) => {
                    last_error = Some(RestartError::Image(e));
                    continue;
                }
            };
            // A lint-clean image that this engine cannot view belongs to a
            // different engine/family: honest data, wrong consumer — skip
            // it in place.
            if let Err(e) = E::view(&image) {
                last_error = Some(RestartError::Image(e));
                continue;
            }
            if !image.has_routes() {
                last_error = Some(RestartError::Image(ImageError::MissingSection(
                    fib_core::image::sections::ROUTES,
                )));
                continue;
            }
            picked = Some((*epoch, image));
            break;
        }
        let Some((epoch, image)) = picked else {
            return Err(last_error.unwrap_or(RestartError::NoValidImage));
        };
        let mut control = image.routes::<A>().map_err(RestartError::Image)?;

        // Journal replay: records apply on top of their stamped epoch.
        // journal_epoch ≤ image epoch is safe regardless of newer (corrupt,
        // quarantined) image files: per-prefix last-writer-wins makes
        // records a newer image already includes idempotent. A journal
        // stamped *newer* than the image we restored cannot bridge the gap
        // and is ignored (and restamped below). Replay stops at the first
        // record whose checksum or address-width guard fails — a torn or
        // bit-flipped tail (the ReplayPastTail mutant disables exactly
        // these stops).
        let mutant = spool_cfg.mutant;
        let mut replayed = 0u64;
        let jpath = journal_path(dir);
        let mut journal_epoch = epoch;
        if let Ok(buf) = fs.read(&jpath) {
            if buf.len() >= JOURNAL_HEADER && &buf[..8] == JOURNAL_MAGIC {
                journal_epoch = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
                if journal_epoch <= epoch {
                    for rec in buf[JOURNAL_HEADER..].chunks_exact(JOURNAL_RECORD) {
                        let Some((tag, len, nh, addr)) = decode_record(rec, mutant) else {
                            break;
                        };
                        if mutant == SpoolMutant::ReplayPastTail {
                            let len = len.min(A::WIDTH);
                            let addr = if A::WIDTH < 128 {
                                addr & ((1u128 << A::WIDTH) - 1)
                            } else {
                                addr
                            };
                            let prefix = Prefix::new(A::from_u128(addr), len);
                            if tag == b'W' {
                                control.remove(prefix);
                            } else {
                                control.insert(prefix, NextHop::new(nh));
                            }
                            replayed += 1;
                            continue;
                        }
                        if len > A::WIDTH {
                            break; // torn or corrupt tail
                        }
                        if A::WIDTH < 128 && addr >> A::WIDTH != 0 {
                            break;
                        }
                        let prefix = Prefix::new(A::from_u128(addr), len);
                        match tag {
                            b'A' => {
                                control.insert(prefix, NextHop::new(nh));
                            }
                            b'W' => {
                                control.remove(prefix);
                            }
                            _ => break,
                        }
                        replayed += 1;
                    }
                }
            }
        }

        let routes = image.route_count() as usize;
        let image = Arc::new(image);
        let snapshot = Arc::new(EpochSnapshot {
            epoch,
            routes,
            engine: SnapEngine::Image(Arc::clone(&image)),
            hot: None,
        });
        let mut spool = Spool::arm(Arc::clone(&fs), dir.to_path_buf(), spool_cfg)
            .map_err(|e| RestartError::Io(format!("{}: {e}", dir.display())))?;
        spool.last_spilled = Some(epoch);
        spool.quarantined = quarantined;
        // Restamp the journal unless it already applies on top of the
        // restored image. A *newer* header (we fell back past a corrupt
        // image) would make a second crash ignore everything appended
        // from here on; an *older* one holds only records the image
        // already includes. Either way the records on disk are dead
        // weight relative to `epoch`, so start clean. (The normal
        // journal_epoch == epoch case re-opens the file in append mode:
        // its records are in `control` but in no image yet.)
        let rearm =
            if journal_epoch != epoch || fs.file_len(&jpath).unwrap_or(0) < JOURNAL_HEADER as u64 {
                spool.reset_journal(epoch)
            } else {
                spool.open_journal_append(journal_epoch)
            };
        if let Err(e) = rearm {
            let now = fs.now();
            let cfg = spool.cfg;
            spool.health.note_failure(&cfg, now, e.to_string());
        }
        let mut router = Self {
            config,
            control,
            working: None,
            stale: replayed > 0,
            journal: Vec::new(),
            rebuild: None,
            published: SnapCell::new(snapshot),
            epoch,
            since_publish: usize::try_from(replayed).unwrap_or(usize::MAX),
            stats: RouterStats {
                epochs: 1,
                replayed,
                ..RouterStats::default()
            },
            spool: None,
            rebuild_panics: 0,
            last_rebuild_panic: None,
            rebuild_suspended: false,
            serving_stale: false,
            heat_profile: None,
        };
        router.spool = Some(spool);
        Ok(router)
    }

    /// Arms FIB-image persistence: every published epoch is spilled to
    /// `dir` as a `fibimage/v1` file (routes section included) and every
    /// accepted update is appended to `dir/journal.log`. The current
    /// state is spilled immediately, so a crash right after this call is
    /// already recoverable via [`Self::warm_restart`].
    ///
    /// # Errors
    /// Only directory creation can fail hard; any later write failure
    /// degrades [`Self::health`] instead of returning an error.
    pub fn enable_spool(&mut self, dir: impl Into<PathBuf>) -> std::io::Result<()> {
        self.enable_spool_with(StdFs::shared(), dir, SpoolConfig::default())
    }

    /// [`Self::enable_spool`] over an explicit filesystem and spool
    /// policy (retention depth, fold threshold, retry schedule).
    ///
    /// # Errors
    /// Only directory creation can fail hard; any later write failure
    /// degrades [`Self::health`] instead of returning an error.
    pub fn enable_spool_with(
        &mut self,
        fs: Arc<dyn SpoolFs>,
        dir: impl Into<PathBuf>,
        cfg: SpoolConfig,
    ) -> std::io::Result<()> {
        let mut spool = Spool::arm(fs, dir.into(), cfg)?;
        spool.journal_epoch = self.epoch;
        self.spool = Some(spool);
        // Base spill: image + journal header for the *current* epoch.
        self.spill_current(false);
        Ok(())
    }

    /// `Some(error)` while spool persistence is degraded or suspended
    /// (forwarding continues; durability is catching up or down); `None`
    /// while the spool is healthy or absent.
    #[must_use]
    pub fn spool_error(&self) -> Option<String> {
        match self.spool.as_ref().map(|s| s.health.view()) {
            None | Some(SpoolHealth::Healthy) => None,
            Some(SpoolHealth::Degraded { error, .. } | SpoolHealth::Suspended { error }) => {
                Some(error)
            }
        }
    }

    /// Spool persistence health (`None`: no spool armed).
    #[must_use]
    pub fn spool_health(&self) -> Option<SpoolHealth> {
        self.spool.as_ref().map(|s| s.health.view())
    }

    /// A point-in-time health report: spool state, recoveries,
    /// quarantine count, contained rebuild panics, staleness.
    #[must_use]
    pub fn health(&self) -> RouterHealth {
        RouterHealth {
            spool: self.spool.as_ref().map(|s| s.health.view()),
            spool_recoveries: self.spool.as_ref().map_or(0, |s| s.health.recoveries),
            quarantined: self.spool.as_ref().map_or(0, |s| s.quarantined),
            rebuild_panics: self.rebuild_panics,
            last_rebuild_panic: self.last_rebuild_panic.clone(),
            serving_stale: self.serving_stale,
        }
    }

    /// Operator re-arm after a suspended (or degraded) spool's root
    /// cause is fixed (disk freed, volume remounted): resets the retry
    /// budget and immediately attempts a recovery re-spill of the
    /// current epoch. Returns the resulting health (`None`: no spool).
    pub fn resume_spool(&mut self) -> Option<SpoolHealth> {
        self.spool.as_mut()?.health.resume();
        self.try_spool_recovery();
        self.spool_health()
    }

    /// Background scrub: lints every epoch image in the spool and moves
    /// failures to `spool/quarantine/` with typed reasons. If the
    /// current epoch's own image was among the casualties, it is
    /// re-spilled. Returns how many images were quarantined.
    pub fn scrub_spool(&mut self) -> usize {
        let Some(spool) = &self.spool else {
            return 0;
        };
        let fs = Arc::clone(&spool.fs);
        let dir = spool.dir.clone();
        let Ok(entries) = fs.read_dir(&dir) else {
            return 0;
        };
        let mut moved = 0usize;
        for path in &entries {
            if parse_image_name(path).is_none() {
                continue;
            }
            let Ok(bytes) = fs.read(path) else {
                continue;
            };
            let issues = fib_core::lint::lint_bytes(&bytes);
            if let Some(first) = issues.first() {
                if quarantine_image(fs.as_ref(), &dir, path, first.code, &first.detail).is_ok() {
                    moved += 1;
                }
            }
        }
        let spool = self.spool.as_mut().expect("checked above");
        spool.quarantined += moved as u64;
        // The scrub may have eaten the image backing the current epoch;
        // restore full recoverability right away.
        let lost_current = spool
            .last_spilled
            .is_some_and(|epoch| !fs.exists(&image_path(&dir, epoch)));
        if lost_current {
            self.spill_current(true);
        }
        moved
    }

    /// Journals one accepted update, routing failures through the health
    /// machine: a healthy spool appends (and durably syncs) the record; a
    /// degraded spool whose backoff elapsed attempts a recovery re-spill
    /// instead; a suspended spool does nothing.
    fn spool_append(&mut self, op: &JournalOp<A>) {
        let Some(spool) = self.spool.as_mut() else {
            return;
        };
        if spool.health.is_suspended() {
            return;
        }
        if spool.health.is_healthy() {
            let rec = record_of(op);
            let now = spool.fs.now();
            if let Err(e) = spool.append(&rec) {
                let cfg = spool.cfg;
                spool.health.note_failure(&cfg, now, e.to_string());
            }
            return;
        }
        let now = spool.fs.now();
        if spool.health.retry_due(now) {
            self.try_spool_recovery();
        }
    }

    /// One recovery attempt for a degraded/resumed spool: re-spill the
    /// *current* epoch (updates accepted while degraded were never
    /// journaled, so only a fresh full image re-establishes durability),
    /// which also resets the journal onto the new base. Success flips
    /// health back to `Healthy`.
    fn try_spool_recovery(&mut self) {
        if self.spool.is_none() {
            return;
        }
        self.spill_current(true);
    }

    /// Spills the current control state + working engine as the current
    /// epoch's image via the crash-consistent protocol, restamping the
    /// journal and pruning old checkpoints. `force` re-spills even when
    /// this epoch is already on disk (the recovery path: the on-disk
    /// image may predate updates lost while degraded). No-op without a
    /// spool; failures degrade health.
    fn spill_current(&mut self, force: bool) {
        let Some(spool) = &self.spool else {
            return;
        };
        if !force && (!spool.health.is_healthy() || spool.last_spilled == Some(self.epoch)) {
            return;
        }
        if spool.health.is_suspended() {
            return;
        }
        // The spilled engine must reflect `control` exactly; materialize
        // it if needed (same rule publish applies).
        if self.stale || self.working.is_none() {
            match Self::build_caught(
                &self.control,
                &self.config.build,
                self.heat_profile.as_ref(),
            ) {
                Ok(engine) => {
                    self.working = Some(engine);
                    self.stale = false;
                    self.stats.rebuilds += 1;
                    self.rebuild_suspended = false;
                }
                Err(msg) => {
                    self.note_rebuild_panic(msg);
                    return;
                }
            }
        }
        let engine = self.working.as_ref().expect("just materialized");
        let bytes = write_image(engine, Some(&self.control), self.epoch);
        let spool = self.spool.as_mut().expect("checked above");
        let now = spool.fs.now();
        let outcome = bytes
            .map_err(|e| std::io::Error::other(e.to_string()))
            .and_then(|bytes| spool.spill(self.epoch, &bytes));
        match outcome {
            Ok(()) => {
                spool.health.note_success();
                self.stats.spills += 1;
            }
            Err(e) => {
                let cfg = spool.cfg;
                spool.health.note_failure(&cfg, now, e.to_string());
            }
        }
    }

    /// The control-plane oracle.
    #[must_use]
    pub fn control(&self) -> &BinaryTrie<A> {
        &self.control
    }

    /// Number of live routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.control.len()
    }

    /// Whether the FIB holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.control.is_empty()
    }

    /// Epoch of the currently published snapshot.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Whether a background rebuild is currently in flight.
    #[must_use]
    pub fn rebuild_in_flight(&self) -> bool {
        self.rebuild.is_some()
    }

    /// A reader handle for forwarding threads (lock-free snapshot reads).
    #[must_use]
    pub fn data_plane(&self) -> DataPlane<E> {
        DataPlane {
            reader: self.published.reader(),
        }
    }

    /// The publication cell itself, for runtimes that want to register
    /// readers directly (see [`crate::Forwarder`]).
    #[must_use]
    pub fn snap_cell(&self) -> &SnapCell<EpochSnapshot<E>> {
        &self.published
    }

    /// The currently published snapshot (control-path read; forwarding
    /// threads should hold a [`DataPlane`]).
    #[must_use]
    pub fn snapshot(&self) -> Arc<EpochSnapshot<E>> {
        self.published.load()
    }

    /// Convenience lookup on the published snapshot. Forwarding threads
    /// should hold a [`DataPlane`] instead and amortize the snapshot fetch
    /// over whole batches.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.snapshot().lookup(addr)
    }

    /// Announces (inserts or replaces) a route.
    pub fn announce(&mut self, prefix: Prefix<A>, next_hop: NextHop) {
        self.control.insert(prefix, next_hop);
        let op = JournalOp::Announce(prefix, next_hop);
        self.spool_append(&op);
        if self.rebuild.is_some() {
            self.journal.push(op);
        }
        self.apply_to_working(|w| w.try_insert(prefix, next_hop).map(|_| ()));
        self.after_update();
    }

    /// Withdraws a route.
    pub fn withdraw(&mut self, prefix: Prefix<A>) {
        self.control.remove(prefix);
        let op = JournalOp::Withdraw(prefix);
        self.spool_append(&op);
        if self.rebuild.is_some() {
            self.journal.push(op);
        }
        self.apply_to_working(|w| w.try_remove(prefix).map(|_| ()));
        self.after_update();
    }

    /// Runs an in-place update against the working engine, tracking the
    /// stale flag and counters. A missing engine (warm restart) counts as
    /// declined.
    fn apply_to_working(&mut self, f: impl FnOnce(&mut E) -> Result<(), fib_core::RebuildNeeded>) {
        if self.stale {
            self.stats.declined += 1;
            return;
        }
        match self.working.as_mut() {
            Some(w) => match f(w) {
                Ok(()) => self.stats.in_place += 1,
                Err(_) => {
                    self.stale = true;
                    self.stats.declined += 1;
                }
            },
            None => {
                self.stale = true;
                self.stats.declined += 1;
            }
        }
    }

    fn after_update(&mut self) {
        self.stats.updates += 1;
        self.since_publish += 1;
        // Harvest a completed background rebuild eagerly (a cheap
        // `is_finished` probe): the compacted engine replaces the working
        // one right away and the journal stays bounded even for callers
        // that stream updates and rarely publish.
        if self.rebuild.is_some() {
            self.finish_rebuild(false);
        }
        // λ-barrier-aware maintenance: in-place updates are cheap, but
        // refolds fragment the arena; past the threshold, schedule a
        // compacting rebuild while the working engine keeps serving.
        if !self.stale
            && !self.rebuild_suspended
            && self.rebuild.is_none()
            && self
                .working
                .as_ref()
                .is_some_and(|w| w.degradation() > self.config.degradation_threshold)
        {
            self.start_rebuild();
        }
        if let Some(every) = self.config.publish_every {
            if self.since_publish >= every {
                self.publish();
                return;
            }
        }
        // Journal compaction: once the on-disk journal outgrows the fold
        // threshold, cut an epoch — the spill writes a fresh image that
        // subsumes every journaled record and resets the journal onto it.
        if self
            .spool
            .as_ref()
            .is_some_and(|s| s.health.is_healthy() && s.wants_fold())
        {
            self.publish();
        }
    }

    /// Schedules a full rebuild from the control FIB: on a background
    /// thread when [`RouterConfig::background_rebuild`] is set (journaling
    /// subsequent updates for replay), inline otherwise.
    pub fn start_rebuild(&mut self) {
        if self.rebuild.is_some() {
            return;
        }
        if self.config.background_rebuild {
            let control = self.control.clone();
            let build = self.config.build;
            let heat = self.heat_profile.clone();
            self.journal.clear();
            self.rebuild = Some(RebuildJob {
                handle: std::thread::spawn(move || {
                    E::build_weighted(
                        &control,
                        &build,
                        heat.as_ref().map(|(e, d)| (e.as_slice(), *d)),
                    )
                }),
            });
        } else {
            match Self::build_caught(
                &self.control,
                &self.config.build,
                self.heat_profile.as_ref(),
            ) {
                Ok(engine) => {
                    self.working = Some(engine);
                    self.stale = false;
                    self.stats.rebuilds += 1;
                    self.rebuild_suspended = false;
                }
                // An inline compaction that panicked is contained: the
                // old working engine keeps serving.
                Err(msg) => self.note_rebuild_panic(msg),
            }
        }
    }

    /// Harvests a finished background rebuild, replaying the journal onto
    /// the new engine. With `block`, waits for an unfinished one. Returns
    /// whether a rebuilt engine was installed.
    ///
    /// A rebuild thread that panicked is contained here: the panic is
    /// recorded in [`Self::health`], further rebuilds are suspended until
    /// a build succeeds, and the router keeps serving the last good
    /// epoch — the panic never propagates into the control plane.
    pub fn finish_rebuild(&mut self, block: bool) -> bool {
        let finished = match &self.rebuild {
            Some(job) => block || job.handle.is_finished(),
            None => false,
        };
        if !finished {
            return false;
        }
        let job = self.rebuild.take().expect("checked above");
        let mut fresh = match job.handle.join() {
            Ok(engine) => engine,
            Err(p) => {
                self.note_rebuild_panic(panic_message(&*p));
                self.journal.clear();
                return false;
            }
        };
        // Bring the rebuilt engine up to date with the control FIB.
        let mut replayed = 0u64;
        let mut replay_ok = true;
        for op in &self.journal {
            let applied = match *op {
                JournalOp::Announce(p, nh) => fresh.try_insert(p, nh).is_ok(),
                JournalOp::Withdraw(p) => fresh.try_remove(p).is_ok(),
            };
            if applied {
                replayed += 1;
            } else {
                replay_ok = false;
                break;
            }
        }
        // Only an installed engine counts toward the rebuild stats; a
        // background build whose replay failed is discarded.
        if replay_ok {
            self.working = Some(fresh);
            self.stats.rebuilds += 1;
            self.stats.background_rebuilds += 1;
            self.stats.replayed += replayed;
        } else {
            // A static engine cannot replay; fold the journal in by
            // rebuilding from the (already up-to-date) control FIB.
            match Self::build_caught(
                &self.control,
                &self.config.build,
                self.heat_profile.as_ref(),
            ) {
                Ok(engine) => {
                    self.working = Some(engine);
                    self.stats.rebuilds += 1;
                }
                Err(msg) => {
                    self.note_rebuild_panic(msg);
                    self.journal.clear();
                    return false;
                }
            }
        }
        self.stale = false;
        self.journal.clear();
        self.rebuild_suspended = false;
        true
    }

    /// Cuts and publishes a new epoch snapshot reflecting the control FIB
    /// exactly as of this call, spilling it to the spool when armed.
    ///
    /// If the working engine went stale (static engine under churn) or is
    /// absent (warm restart), it is (re)built first — preferring a
    /// finished background rebuild plus journal replay over a
    /// from-scratch build. A still-running background rebuild is only
    /// waited on when correctness requires it.
    ///
    /// A build that panics is contained: the router keeps serving the
    /// last good epoch, flags [`RouterHealth::serving_stale`], and
    /// retries at the next publish.
    pub fn publish(&mut self) -> Arc<EpochSnapshot<E>> {
        self.publish_with(None)
    }

    /// Merges a forwarding pool's per-worker heat sketches and cuts a
    /// *hot* epoch: the hottest pure address blocks of the sampled
    /// traffic are compiled into a [`HotSlab`] (against the control FIB
    /// as of this call) and attached to the published snapshot, whose
    /// lookups consult the slab before the engine walk. The merged
    /// traffic profile also re-tunes the build config's λ barrier via
    /// [`fib_core::lambda::barrier_traffic`], so subsequent rebuilds
    /// fold for the traffic actually seen, and the sketches are reset so
    /// the next publish interval samples fresh. For a heat-aware engine
    /// ([`FibBuild::heat_aware`], e.g. the variable-stride DAG) the
    /// profile is retained and the publish *re-strides*: the engine is
    /// rebuilt through [`FibBuild::build_weighted`] so the new epoch's
    /// layout matches the live traffic.
    ///
    /// Returns the snapshot, the merged interval summary, and the slab
    /// compilation stats.
    ///
    /// # Panics
    /// Panics if `hot_config` is out of range for the address family
    /// (see [`HotSlab::compile`]).
    pub fn publish_hot(
        &mut self,
        heat: &HeatMap,
        hot_config: &HotConfig,
    ) -> (Arc<EpochSnapshot<E>>, HeatSummary, HotStats) {
        let summary = heat.merged();
        heat.reset();
        let (slab, stats) = HotSlab::compile(&self.control, summary.entries(), hot_config);
        let mass = fib_core::depth_mass_from_heat(&self.control, summary.entries());
        let base = self.config.build.lambda_for(&self.control);
        self.config.build.lambda = Some(fib_core::lambda::barrier_traffic(
            self.control.len(),
            &mass,
            base,
            1.0,
            A::WIDTH,
        ));
        if !summary.entries().is_empty() {
            self.heat_profile = Some((summary.entries().to_vec(), summary.depth()));
            // A heat-aware engine lays its structure out around the
            // profile, so the fresh interval demands a re-stride: mark
            // the working engine stale and let the publish below rebuild
            // it through `build_weighted`. Heat-blind engines would
            // rebuild into an identical layout — skip the churn.
            if E::heat_aware() {
                self.stale = true;
            }
        }
        let snapshot = self.publish_with(Some(slab));
        (snapshot, summary, stats)
    }

    /// The shared publish path: [`Self::publish`] attaches no slab; a
    /// hot publish always cuts a fresh epoch (its slab is new state even
    /// when no route changed), a plain one reuses an unchanged snapshot.
    fn publish_with(&mut self, hot: Option<HotSlab>) -> Arc<EpochSnapshot<E>> {
        if self.rebuild.is_some() {
            // Harvest if done; block only if the working engine is stale
            // and the snapshot would otherwise diverge from control.
            self.finish_rebuild(self.stale);
        }
        // No-op publish: nothing changed since the last epoch, so reuse
        // the published snapshot instead of cloning the engine again —
        // `ShardedRouter::publish_all` hits this on every untouched
        // shard, as does a freshly warm-restarted router with no pending
        // journal (whose snapshot keeps serving the image and whose owned
        // engine stays unbuilt).
        if self.since_publish == 0 && !self.stale && hot.is_none() {
            return self.snapshot();
        }
        if self.stale || self.working.is_none() {
            match Self::build_caught(
                &self.control,
                &self.config.build,
                self.heat_profile.as_ref(),
            ) {
                Ok(engine) => {
                    self.working = Some(engine);
                    self.stale = false;
                    self.stats.rebuilds += 1;
                    self.rebuild_suspended = false;
                }
                Err(msg) => {
                    // Graceful degradation: keep serving the last good
                    // epoch, surface the panic through health, and retry
                    // the materialization at the next publish (auto-
                    // publish cadence bounds the retry rate).
                    self.note_rebuild_panic(msg);
                    self.serving_stale = true;
                    self.stale = true;
                    self.since_publish = 0;
                    return self.snapshot();
                }
            }
        }
        self.serving_stale = false;
        self.epoch += 1;
        self.since_publish = 0;
        self.stats.epochs += 1;
        let snapshot = Arc::new(EpochSnapshot {
            epoch: self.epoch,
            routes: self.control.len(),
            engine: SnapEngine::Owned(self.working.as_ref().expect("materialized").clone()),
            hot,
        });
        self.published.publish(Arc::clone(&snapshot));
        self.spill_current(false);
        snapshot
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use fib_core::{PrefixDag, SerializedDag};
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn base_fib() -> BinaryTrie<u32> {
        let mut t = BinaryTrie::new();
        t.insert(p("0.0.0.0/0"), nh(1));
        t.insert(p("10.0.0.0/8"), nh(2));
        t.insert(p("10.64.0.0/10"), nh(3));
        t
    }

    fn config() -> RouterConfig {
        RouterConfig {
            publish_every: None,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn initial_snapshot_matches_control() {
        let router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        let snap = router.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.routes(), 3);
        for i in 0..2000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(snap.lookup(addr), router.control().lookup(addr));
        }
    }

    #[test]
    fn snapshots_are_immutable_under_later_updates() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        let before = router.snapshot();
        router.announce(p("10.64.0.0/10"), nh(9));
        router.publish();
        // The old snapshot still answers with the old next-hop.
        assert_eq!(before.lookup(0x0A40_0001), Some(nh(3)));
        assert_eq!(router.snapshot().lookup(0x0A40_0001), Some(nh(9)));
        assert_eq!(router.snapshot().epoch(), 1);
    }

    #[test]
    fn hot_publish_pins_blocks_and_stays_equivalent() {
        let mut router: Router<u32, SerializedDag<u32>> = Router::new(base_fib(), config());
        let heat = HeatMap::new(1, 24, 2048);
        let mut x = 1u32;
        for _ in 0..8192 {
            x = x.wrapping_mul(0x0101_6B55).wrapping_add(1);
            // Zipf-ish skew: three quarters of the traffic inside 10.64/10.
            let addr = if x % 4 == 0 {
                x
            } else {
                0x0A40_0000 | (x & 0x003F_FFFF)
            };
            heat.sketch(0).record(addr);
        }
        let before = router.epoch();
        let (snap, summary, stats) = router.publish_hot(&heat, &HotConfig::for_width(32));
        assert!(summary.total() > 0, "sampled traffic reached the summary");
        assert!(stats.promoted > 0, "skewed traffic pinned hot blocks");
        assert!(snap.hot_slab().is_some());
        assert!(
            snap.epoch() > before,
            "a hot publish cuts a fresh epoch even without route churn"
        );
        assert_eq!(
            heat.merged().total(),
            0,
            "sketches reset for the next interval"
        );

        // The slab is a pure cache: single, batch, and stream answers all
        // agree with the control FIB on hot and cold addresses alike.
        let mut x = 123u32;
        let mut addrs = Vec::new();
        for _ in 0..1024 {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(7);
            addrs.push(if x % 2 == 0 {
                x
            } else {
                0x0A40_0000 | (x & 0x003F_FFFF)
            });
        }
        let mut batch = vec![None; addrs.len()];
        snap.lookup_batch(&addrs, &mut batch);
        let mut stream = vec![None; addrs.len()];
        snap.lookup_stream(&addrs, &mut stream);
        for (i, &addr) in addrs.iter().enumerate() {
            let want = router.control().lookup(addr);
            assert_eq!(snap.lookup(addr), want, "single lookup at {addr:#x}");
            assert_eq!(batch[i], want, "batch lookup at {addr:#x}");
            assert_eq!(stream[i], want, "stream lookup at {addr:#x}");
        }
    }

    #[test]
    fn hot_publish_restrides_a_heat_aware_engine() {
        use fib_core::VarStrideDag;
        // A deeper FIB so the stride DP has real depth to trade on.
        let mut fib = base_fib();
        for i in 0u32..64 {
            fib.insert(Prefix::new(0x0A40_0000 | (i << 10), 22), nh(i % 5));
        }
        let mut router: Router<u32, VarStrideDag<u32>> = Router::new(fib, config());
        let uniform_hist = router
            .snapshot()
            .engine()
            .expect("owned engine")
            .stride_histogram();

        // All sampled traffic concentrates inside 10.64/10.
        let heat = HeatMap::new(1, 24, 2048);
        let mut x = 1u32;
        for _ in 0..8192 {
            x = x.wrapping_mul(0x0101_6B55).wrapping_add(1);
            heat.sketch(0).record(0x0A40_0000 | (x & 0x003F_FFFF));
        }
        let rebuilds_before = router.stats().rebuilds;
        let (snap, summary, _) = router.publish_hot(&heat, &HotConfig::for_width(32));
        assert!(summary.total() > 0);
        assert!(
            router.stats().rebuilds > rebuilds_before,
            "a heat-aware engine re-strides at the hot publish"
        );
        let restrided = snap.engine().expect("owned engine");
        assert_ne!(
            restrided.stride_histogram(),
            uniform_hist,
            "the live profile reshaped the stride placement"
        );
        // Re-striding never changes answers, hot and cold alike.
        let mut x = 123u32;
        for _ in 0..1024 {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(7);
            let addr = if x % 2 == 0 {
                x
            } else {
                0x0A40_0000 | (x & 0x003F_FFFF)
            };
            assert_eq!(
                snap.lookup(addr),
                router.control().lookup(addr),
                "{addr:#x}"
            );
        }
    }

    #[test]
    fn pdag_router_applies_updates_in_place() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        router.announce(p("192.168.0.0/16"), nh(7));
        router.withdraw(p("10.64.0.0/10"));
        let stats = router.stats();
        assert_eq!(stats.in_place, 2);
        assert_eq!(stats.declined, 0);
        let snap = router.publish();
        assert_eq!(snap.lookup(0xC0A8_0001), Some(nh(7)));
        assert_eq!(snap.lookup(0x0A40_0001), Some(nh(2)), "withdrawn → /8");
    }

    #[test]
    fn static_engine_router_rebuilds_on_publish() {
        let mut router: Router<u32, SerializedDag<u32>> = Router::new(base_fib(), config());
        router.announce(p("192.168.0.0/16"), nh(7));
        let stats = router.stats();
        assert_eq!(stats.in_place, 0);
        assert_eq!(stats.declined, 1);
        // Not yet published: the data plane still serves the old image.
        assert_eq!(router.lookup(0xC0A8_0001), Some(nh(1)));
        let snap = router.publish();
        assert_eq!(snap.lookup(0xC0A8_0001), Some(nh(7)));
        assert!(router.stats().rebuilds >= 1);
    }

    #[test]
    fn auto_publish_cuts_epochs() {
        let mut cfg = config();
        cfg.publish_every = Some(4);
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), cfg);
        for i in 0..8u32 {
            router.announce(Prefix4::new(i << 24, 8), nh(i));
        }
        assert_eq!(router.epoch(), 2, "8 updates / publish_every 4");
    }

    #[test]
    fn background_rebuild_compacts_and_preserves_equivalence() {
        let mut cfg = config();
        cfg.degradation_threshold = 0.01;
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), cfg);
        // Churn deep prefixes to fragment the arena until a background
        // rebuild fires, then keep updating while it runs.
        let mut fired = false;
        for i in 0..4000u32 {
            let prefix = Prefix4::new(0x0A00_0000 | ((i % 97) << 10), 24);
            if i % 3 == 2 {
                router.withdraw(prefix);
            } else {
                router.announce(prefix, nh(i % 5));
            }
            fired |= router.rebuild_in_flight();
        }
        let snap = router.publish();
        assert!(fired, "degradation threshold never tripped");
        router.finish_rebuild(true);
        assert!(router.stats().background_rebuilds >= 1);
        for i in 0..3000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(snap.lookup(addr), router.control().lookup(addr));
        }
        // After the harvest the working engine is compact again.
        let fresh = router.publish();
        for i in 0..3000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(fresh.lookup(addr), router.control().lookup(addr));
        }
    }

    #[test]
    fn noop_publish_reuses_the_current_snapshot() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        router.announce(p("192.168.0.0/16"), nh(7));
        let first = router.publish();
        assert_eq!(first.epoch(), 1);
        // Nothing changed: no engine clone, no new epoch, same Arc.
        let second = router.publish();
        assert_eq!(second.epoch(), 1);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(router.stats().epochs, 2, "initial + one real publish");
    }

    #[test]
    fn update_path_harvests_finished_background_rebuilds() {
        let mut cfg = config();
        cfg.degradation_threshold = 0.0001;
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), cfg);
        // Enough churn that a rebuild both starts and finishes while
        // updates keep streaming — without any publish() call.
        for round in 0..200u32 {
            let prefix = Prefix4::new(0x0A00_0000 | (round << 12), 24);
            router.announce(prefix, nh(1));
            router.withdraw(prefix);
            if router.stats().background_rebuilds > 0 {
                break;
            }
            std::thread::yield_now();
        }
        router.finish_rebuild(true);
        assert!(
            router.stats().background_rebuilds >= 1,
            "the update path never harvested: {:?}",
            router.stats()
        );
        assert!(!router.rebuild_in_flight() || router.stats().background_rebuilds >= 1);
    }

    #[test]
    fn data_plane_handle_tracks_publishes_across_threads() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        let mut dp = router.data_plane();
        let reader = std::thread::spawn(move || {
            // Spin until the writer publishes epoch 1, then answer.
            loop {
                let snap = dp.snapshot();
                if snap.epoch() == 1 {
                    return snap.lookup(0xC0A8_0001u32);
                }
                std::thread::yield_now();
            }
        });
        router.announce(p("192.168.0.0/16"), nh(7));
        router.publish();
        assert_eq!(reader.join().expect("reader panicked"), Some(nh(7)));
    }
}
