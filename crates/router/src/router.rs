//! The single-shard router core: a control plane driving epoch-snapshotted
//! data-plane engines.

use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;

use fib_core::{BuildConfig, FibBuild, FibLookup, FibUpdate};
use fib_trie::{Address, BinaryTrie, NextHop, Prefix};

/// Policy knobs of a [`Router`].
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// How data-plane engines are (re)built from the control FIB. The
    /// λ barrier in here is the paper's update-cost/size dial: it decides
    /// both how expensive in-place pDAG updates are and how much work a
    /// full re-fold costs.
    pub build: BuildConfig,
    /// Auto-publish a new epoch snapshot after this many updates
    /// (`None` = only on explicit [`Router::publish`] calls).
    pub publish_every: Option<usize>,
    /// When the working engine's [`FibUpdate::degradation`] exceeds this,
    /// the router schedules a compacting rebuild. pDAG degradation is
    /// arena fragmentation from λ-barrier refolds.
    pub degradation_threshold: f64,
    /// Run scheduled rebuilds on a background thread (the control CPU of
    /// the paper's software router) instead of inline.
    pub background_rebuild: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            build: BuildConfig::default(),
            publish_every: Some(1024),
            degradation_threshold: 0.25,
            background_rebuild: true,
        }
    }
}

/// An immutable data-plane image: the engine state the router published at
/// one epoch. Handed out as an [`Arc`], so packet-path readers keep a
/// consistent view for as long as they hold it while the control plane
/// swaps newer epochs in behind them.
#[derive(Debug)]
pub struct EpochSnapshot<E> {
    epoch: u64,
    routes: usize,
    engine: E,
}

impl<E> EpochSnapshot<E> {
    /// Monotonic epoch counter (0 = the initial build).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of routes in the control FIB when this epoch was cut.
    #[must_use]
    pub fn routes(&self) -> usize {
        self.routes
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Longest-prefix-match on the snapshot.
    #[must_use]
    pub fn lookup<A: Address>(&self, addr: A) -> Option<NextHop>
    where
        E: FibLookup<A>,
    {
        self.engine.lookup(addr)
    }

    /// Batched longest-prefix-match on the snapshot.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch<A: Address>(&self, addrs: &[A], out: &mut [Option<NextHop>])
    where
        E: FibLookup<A>,
    {
        self.engine.lookup_batch(addrs, out);
    }
}

/// A cloneable reader handle onto a router's published snapshot — what a
/// forwarding thread owns. [`DataPlane::snapshot`] takes the read lock
/// only long enough to clone the inner [`Arc`]; lookups then run entirely
/// lock-free on the snapshot.
#[derive(Debug)]
pub struct DataPlane<E> {
    current: Arc<RwLock<Arc<EpochSnapshot<E>>>>,
}

impl<E> Clone for DataPlane<E> {
    fn clone(&self) -> Self {
        Self {
            current: Arc::clone(&self.current),
        }
    }
}

impl<E> DataPlane<E> {
    /// The currently published snapshot.
    ///
    /// # Panics
    /// Panics if the publishing lock was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Arc<EpochSnapshot<E>> {
        Arc::clone(&self.current.read().expect("publish lock poisoned"))
    }
}

/// Counters describing what a [`Router`] has done so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Updates accepted by the control plane.
    pub updates: u64,
    /// Updates the working engine absorbed in place.
    pub in_place: u64,
    /// Updates the working engine declined ([`fib_core::RebuildNeeded`]).
    pub declined: u64,
    /// Epoch snapshots published.
    pub epochs: u64,
    /// Full engine rebuilds (inline and background).
    pub rebuilds: u64,
    /// Rebuilds that ran on a background thread.
    pub background_rebuilds: u64,
    /// Journal entries replayed onto freshly rebuilt engines.
    pub replayed: u64,
}

/// One journaled control-plane change awaiting replay onto a rebuilt
/// engine.
#[derive(Clone, Copy, Debug)]
enum JournalOp<A: Address> {
    Announce(Prefix<A>, NextHop),
    Withdraw(Prefix<A>),
}

struct RebuildJob<E> {
    handle: JoinHandle<E>,
}

/// A software router split along the paper's §5 architecture: a slow
/// control plane owning the oracle [`BinaryTrie`] plus an update journal,
/// and a fast data plane serving immutable, `Arc`-swapped epoch snapshots
/// of a compressed engine.
///
/// Updates flow control-first: every change lands in the control FIB, then
/// the router tries the engine's in-place path ([`FibUpdate`]). Engines
/// with λ-barrier updates (the prefix DAG) absorb them directly; static
/// images decline and are rebuilt from the control FIB at the next
/// [`publish`](Self::publish). When in-place churn degrades the working
/// engine past [`RouterConfig::degradation_threshold`], a compacting
/// rebuild is scheduled — on a background thread when configured — and the
/// journal bridges the gap: operations accepted while the rebuild runs are
/// replayed onto the new engine before it is published.
pub struct Router<A: Address, E> {
    config: RouterConfig,
    control: BinaryTrie<A>,
    working: E,
    /// The working engine no longer reflects `control` (static engine
    /// declined an update); it must be rebuilt before the next publish.
    stale: bool,
    /// Ops applied to `control` since the in-flight rebuild started.
    journal: Vec<JournalOp<A>>,
    rebuild: Option<RebuildJob<E>>,
    published: Arc<RwLock<Arc<EpochSnapshot<E>>>>,
    epoch: u64,
    since_publish: usize,
    stats: RouterStats,
}

impl<A, E> Router<A, E>
where
    A: Address + Send + Sync + 'static,
    E: FibLookup<A> + FibBuild<A> + FibUpdate<A> + Clone + Send + 'static,
{
    /// Builds the initial engine from `control` and publishes epoch 0.
    #[must_use]
    pub fn new(control: BinaryTrie<A>, config: RouterConfig) -> Self {
        let working = E::build(&control, &config.build);
        let snapshot = Arc::new(EpochSnapshot {
            epoch: 0,
            routes: control.len(),
            engine: working.clone(),
        });
        Self {
            config,
            control,
            working,
            stale: false,
            journal: Vec::new(),
            rebuild: None,
            published: Arc::new(RwLock::new(snapshot)),
            epoch: 0,
            since_publish: 0,
            stats: RouterStats {
                epochs: 1,
                ..RouterStats::default()
            },
        }
    }

    /// The control-plane oracle.
    #[must_use]
    pub fn control(&self) -> &BinaryTrie<A> {
        &self.control
    }

    /// Number of live routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.control.len()
    }

    /// Whether the FIB holds no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.control.is_empty()
    }

    /// Epoch of the currently published snapshot.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Whether a background rebuild is currently in flight.
    #[must_use]
    pub fn rebuild_in_flight(&self) -> bool {
        self.rebuild.is_some()
    }

    /// A reader handle for forwarding threads.
    #[must_use]
    pub fn data_plane(&self) -> DataPlane<E> {
        DataPlane {
            current: Arc::clone(&self.published),
        }
    }

    /// The currently published snapshot.
    ///
    /// # Panics
    /// Panics if the publishing lock was poisoned.
    #[must_use]
    pub fn snapshot(&self) -> Arc<EpochSnapshot<E>> {
        Arc::clone(&self.published.read().expect("publish lock poisoned"))
    }

    /// Convenience lookup on the published snapshot. Forwarding threads
    /// should hold a [`DataPlane`] instead and amortize the snapshot fetch
    /// over whole batches.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.snapshot().lookup(addr)
    }

    /// Announces (inserts or replaces) a route.
    pub fn announce(&mut self, prefix: Prefix<A>, next_hop: NextHop) {
        self.control.insert(prefix, next_hop);
        if self.rebuild.is_some() {
            self.journal.push(JournalOp::Announce(prefix, next_hop));
        }
        if !self.stale {
            match self.working.try_insert(prefix, next_hop) {
                Ok(_) => self.stats.in_place += 1,
                Err(_) => {
                    self.stale = true;
                    self.stats.declined += 1;
                }
            }
        } else {
            self.stats.declined += 1;
        }
        self.after_update();
    }

    /// Withdraws a route.
    pub fn withdraw(&mut self, prefix: Prefix<A>) {
        self.control.remove(prefix);
        if self.rebuild.is_some() {
            self.journal.push(JournalOp::Withdraw(prefix));
        }
        if !self.stale {
            match self.working.try_remove(prefix) {
                Ok(_) => self.stats.in_place += 1,
                Err(_) => {
                    self.stale = true;
                    self.stats.declined += 1;
                }
            }
        } else {
            self.stats.declined += 1;
        }
        self.after_update();
    }

    fn after_update(&mut self) {
        self.stats.updates += 1;
        self.since_publish += 1;
        // Harvest a completed background rebuild eagerly (a cheap
        // `is_finished` probe): the compacted engine replaces the working
        // one right away and the journal stays bounded even for callers
        // that stream updates and rarely publish.
        if self.rebuild.is_some() {
            self.finish_rebuild(false);
        }
        // λ-barrier-aware maintenance: in-place updates are cheap, but
        // refolds fragment the arena; past the threshold, schedule a
        // compacting rebuild while the working engine keeps serving.
        if !self.stale
            && self.rebuild.is_none()
            && self.working.degradation() > self.config.degradation_threshold
        {
            self.start_rebuild();
        }
        if let Some(every) = self.config.publish_every {
            if self.since_publish >= every {
                self.publish();
            }
        }
    }

    /// Schedules a full rebuild from the control FIB: on a background
    /// thread when [`RouterConfig::background_rebuild`] is set (journaling
    /// subsequent updates for replay), inline otherwise.
    pub fn start_rebuild(&mut self) {
        if self.rebuild.is_some() {
            return;
        }
        if self.config.background_rebuild {
            let control = self.control.clone();
            let build = self.config.build;
            self.journal.clear();
            self.rebuild = Some(RebuildJob {
                handle: std::thread::spawn(move || E::build(&control, &build)),
            });
        } else {
            self.working = E::build(&self.control, &self.config.build);
            self.stale = false;
            self.stats.rebuilds += 1;
        }
    }

    /// Harvests a finished background rebuild, replaying the journal onto
    /// the new engine. With `block`, waits for an unfinished one. Returns
    /// whether a rebuilt engine was installed.
    pub fn finish_rebuild(&mut self, block: bool) -> bool {
        let finished = match &self.rebuild {
            Some(job) => block || job.handle.is_finished(),
            None => false,
        };
        if !finished {
            return false;
        }
        let job = self.rebuild.take().expect("checked above");
        let mut fresh = job.handle.join().expect("rebuild thread panicked");
        // Bring the rebuilt engine up to date with the control FIB.
        let mut replayed = 0u64;
        let mut replay_ok = true;
        for op in &self.journal {
            let applied = match *op {
                JournalOp::Announce(p, nh) => fresh.try_insert(p, nh).is_ok(),
                JournalOp::Withdraw(p) => fresh.try_remove(p).is_ok(),
            };
            if applied {
                replayed += 1;
            } else {
                replay_ok = false;
                break;
            }
        }
        // Only an installed engine counts toward the rebuild stats; a
        // background build whose replay failed is discarded.
        if replay_ok {
            self.working = fresh;
            self.stats.rebuilds += 1;
            self.stats.background_rebuilds += 1;
            self.stats.replayed += replayed;
        } else {
            // A static engine cannot replay; fold the journal in by
            // rebuilding from the (already up-to-date) control FIB.
            self.working = E::build(&self.control, &self.config.build);
            self.stats.rebuilds += 1;
        }
        self.stale = false;
        self.journal.clear();
        true
    }

    /// Cuts and publishes a new epoch snapshot reflecting the control FIB
    /// exactly as of this call.
    ///
    /// If the working engine went stale (static engine under churn), it is
    /// rebuilt first — preferring a finished background rebuild plus
    /// journal replay over a from-scratch build. A still-running
    /// background rebuild is only waited on when correctness requires it.
    ///
    /// # Panics
    /// Panics if the publishing lock was poisoned or a rebuild thread
    /// panicked.
    pub fn publish(&mut self) -> Arc<EpochSnapshot<E>> {
        if self.rebuild.is_some() {
            // Harvest if done; block only if the working engine is stale
            // and the snapshot would otherwise diverge from control.
            self.finish_rebuild(self.stale);
        }
        if self.stale {
            self.working = E::build(&self.control, &self.config.build);
            self.stale = false;
            self.stats.rebuilds += 1;
        }
        // No-op publish (stale was cleared above): nothing changed since
        // the last epoch, so reuse the published snapshot instead of
        // cloning the engine again — `ShardedRouter::publish_all` hits
        // this on every untouched shard.
        if self.since_publish == 0 {
            return self.snapshot();
        }
        self.epoch += 1;
        self.since_publish = 0;
        self.stats.epochs += 1;
        let snapshot = Arc::new(EpochSnapshot {
            epoch: self.epoch,
            routes: self.control.len(),
            engine: self.working.clone(),
        });
        *self.published.write().expect("publish lock poisoned") = Arc::clone(&snapshot);
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_core::{PrefixDag, SerializedDag};
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn base_fib() -> BinaryTrie<u32> {
        let mut t = BinaryTrie::new();
        t.insert(p("0.0.0.0/0"), nh(1));
        t.insert(p("10.0.0.0/8"), nh(2));
        t.insert(p("10.64.0.0/10"), nh(3));
        t
    }

    fn config() -> RouterConfig {
        RouterConfig {
            publish_every: None,
            ..RouterConfig::default()
        }
    }

    #[test]
    fn initial_snapshot_matches_control() {
        let router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        let snap = router.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.routes(), 3);
        for i in 0..2000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(snap.lookup(addr), router.control().lookup(addr));
        }
    }

    #[test]
    fn snapshots_are_immutable_under_later_updates() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        let before = router.snapshot();
        router.announce(p("10.64.0.0/10"), nh(9));
        router.publish();
        // The old snapshot still answers with the old next-hop.
        assert_eq!(before.lookup(0x0A40_0001), Some(nh(3)));
        assert_eq!(router.snapshot().lookup(0x0A40_0001), Some(nh(9)));
        assert_eq!(router.snapshot().epoch(), 1);
    }

    #[test]
    fn pdag_router_applies_updates_in_place() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        router.announce(p("192.168.0.0/16"), nh(7));
        router.withdraw(p("10.64.0.0/10"));
        let stats = router.stats();
        assert_eq!(stats.in_place, 2);
        assert_eq!(stats.declined, 0);
        let snap = router.publish();
        assert_eq!(snap.lookup(0xC0A8_0001), Some(nh(7)));
        assert_eq!(snap.lookup(0x0A40_0001), Some(nh(2)), "withdrawn → /8");
    }

    #[test]
    fn static_engine_router_rebuilds_on_publish() {
        let mut router: Router<u32, SerializedDag<u32>> = Router::new(base_fib(), config());
        router.announce(p("192.168.0.0/16"), nh(7));
        let stats = router.stats();
        assert_eq!(stats.in_place, 0);
        assert_eq!(stats.declined, 1);
        // Not yet published: the data plane still serves the old image.
        assert_eq!(router.lookup(0xC0A8_0001), Some(nh(1)));
        let snap = router.publish();
        assert_eq!(snap.lookup(0xC0A8_0001), Some(nh(7)));
        assert!(router.stats().rebuilds >= 1);
    }

    #[test]
    fn auto_publish_cuts_epochs() {
        let mut cfg = config();
        cfg.publish_every = Some(4);
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), cfg);
        for i in 0..8u32 {
            router.announce(Prefix4::new(i << 24, 8), nh(i));
        }
        assert_eq!(router.epoch(), 2, "8 updates / publish_every 4");
    }

    #[test]
    fn background_rebuild_compacts_and_preserves_equivalence() {
        let mut cfg = config();
        cfg.degradation_threshold = 0.01;
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), cfg);
        // Churn deep prefixes to fragment the arena until a background
        // rebuild fires, then keep updating while it runs.
        let mut fired = false;
        for i in 0..4000u32 {
            let prefix = Prefix4::new(0x0A00_0000 | ((i % 97) << 10), 24);
            if i % 3 == 2 {
                router.withdraw(prefix);
            } else {
                router.announce(prefix, nh(i % 5));
            }
            fired |= router.rebuild_in_flight();
        }
        let snap = router.publish();
        assert!(fired, "degradation threshold never tripped");
        router.finish_rebuild(true);
        assert!(router.stats().background_rebuilds >= 1);
        for i in 0..3000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(snap.lookup(addr), router.control().lookup(addr));
        }
        // After the harvest the working engine is compact again.
        let fresh = router.publish();
        for i in 0..3000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(fresh.lookup(addr), router.control().lookup(addr));
        }
    }

    #[test]
    fn noop_publish_reuses_the_current_snapshot() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        router.announce(p("192.168.0.0/16"), nh(7));
        let first = router.publish();
        assert_eq!(first.epoch(), 1);
        // Nothing changed: no engine clone, no new epoch, same Arc.
        let second = router.publish();
        assert_eq!(second.epoch(), 1);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(router.stats().epochs, 2, "initial + one real publish");
    }

    #[test]
    fn update_path_harvests_finished_background_rebuilds() {
        let mut cfg = config();
        cfg.degradation_threshold = 0.0001;
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), cfg);
        // Enough churn that a rebuild both starts and finishes while
        // updates keep streaming — without any publish() call.
        for round in 0..200u32 {
            let prefix = Prefix4::new(0x0A00_0000 | (round << 12), 24);
            router.announce(prefix, nh(1));
            router.withdraw(prefix);
            if router.stats().background_rebuilds > 0 {
                break;
            }
            std::thread::yield_now();
        }
        router.finish_rebuild(true);
        assert!(
            router.stats().background_rebuilds >= 1,
            "the update path never harvested: {:?}",
            router.stats()
        );
        assert!(!router.rebuild_in_flight() || router.stats().background_rebuilds >= 1);
    }

    #[test]
    fn data_plane_handle_tracks_publishes_across_threads() {
        let mut router: Router<u32, PrefixDag<u32>> = Router::new(base_fib(), config());
        let dp = router.data_plane();
        let reader = std::thread::spawn(move || {
            // Spin until the writer publishes epoch 1, then answer.
            loop {
                let snap = dp.snapshot();
                if snap.epoch() == 1 {
                    return snap.lookup(0xC0A8_0001u32);
                }
                std::thread::yield_now();
            }
        });
        router.announce(p("192.168.0.0/16"), nh(7));
        router.publish();
        assert_eq!(reader.join().expect("reader panicked"), Some(nh(7)));
    }
}
