//! A home-grown wait-free snapshot cell: single-writer publication of
//! `Arc<T>` values that packet-path readers can pick up without ever
//! touching a lock.
//!
//! # Why not `RwLock<Arc<T>>`
//!
//! The previous data plane cloned the published `Arc` under a read lock.
//! Readers never blocked *each other*, but every packet batch still paid
//! a shared-cache-line atomic on the lock word, and a publishing writer
//! stalled behind every in-flight reader. With N forwarding cores hitting
//! one cell millions of times per second, that lock word becomes the
//! hottest line in the process. Here the reader fast path is **one
//! acquire-cost atomic load of a generation counter** that only the
//! (rare) publish ever writes.
//!
//! # Design
//!
//! `AtomicPtr` publication with generation-counted deferred reclamation:
//!
//! * The cell holds `current` (a heap cell owning one `Arc<T>`) and a
//!   `gen` counter bumped on every publish.
//! * Each [`SnapReader`] caches a cloned `Arc<T>` plus the generation it
//!   was read at. [`SnapReader::get`] compares generations and returns
//!   the cached clone — the wait-free fast path.
//! * On a generation change the reader re-reads `current`. That is the
//!   only dangerous step: the writer may concurrently retire the old
//!   heap cell. Readers therefore *announce* the generation they are
//!   reading at in a per-reader hazard slot before dereferencing, and the
//!   writer only frees a retired cell once every announced slot has
//!   moved past the cell's retirement generation.
//!
//! # Safety protocol
//!
//! * writer order: swap `current` → bump `gen` to `t` → tag the old cell
//!   `t` → scan hazard slots;
//! * reader order: announce `a` (observed `gen`) → re-check `gen == a` →
//!   load `current` → clone → set slot idle.
//!
//! A reader that validated at generation `a` loads `current` *after* the
//! swap of any cell retired at tag `t ≤ a` (the bump to `t` happens-before
//! the gen-load that returned `a ≥ t`), so the pointers it can
//! dereference are exactly those retired at `t > a` — and for those its
//! announced `a < t` is visible to the writer's scan, which then defers
//! the free. The announce-store/scan-load and gen-bump/validate-load
//! pairs form a Dekker handshake and stay `SeqCst`; every other site is
//! downgraded to the weakest ordering the `fib-check` model checker
//! passes exhaustively, with a `// ordering:` justification at each use.
//!
//! # One source, two runtimes
//!
//! The protocol lives in [`SnapCellCore`]/[`SnapReaderCore`], generic
//! over the [`crate::shim::Shim`] synchronization family. Production code
//! uses the [`SnapCell`]/[`SnapReader`] aliases over [`RealShim`] (std
//! atomics, `Box::into_raw` cells — this module carries the crate's only
//! `unsafe`). The `fib-check` crate instantiates the *same* core with a
//! model shim whose every operation is a scheduling point of an
//! exhaustive DFS explorer, replacing the hand-pinned schedules this
//! module used to carry. Seeded protocol bugs for the mutation-kill
//! suite are injected through [`Mutation`] (test-only constructor).

#![allow(unsafe_code)]

use crate::shim::{AtomCell, AtomU64, MutexLike, Ordering, Shim};
use std::sync::Arc;

/// Hazard-slot value meaning "not currently reading".
const IDLE: u64 = u64::MAX;

/// Seeded protocol bugs for the `fib-check` mutation-kill suite. Each
/// variant weakens exactly one protocol step; the model checker must
/// report a violation for every one (a checker that can't kill mutants
/// is decoration). Production cells are always [`Mutation::None`] — the
/// injecting constructor is compiled only for tests and the `mutants`
/// feature.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Mutation {
    /// The correct protocol.
    #[default]
    None,
    /// Reader dereferences `current` without re-validating `gen` after
    /// the announce (classic time-of-check/time-of-use).
    SkipValidate,
    /// Reader announces with `Relaxed` — the dropped fence lets the
    /// announcement sit in a store buffer while the writer's scan reads
    /// the stale `IDLE` and frees the cell mid-read.
    RelaxedAnnounce,
    /// Reader validates with a `Relaxed` generation load — a stale read
    /// passes validation even though a publish already retired the cell.
    StaleGenRead,
    /// Writer frees cells one generation too eagerly
    /// (reclaim-before-unpin off-by-one on the hazard floor).
    ReclaimOffByOne,
    /// Writer reclaims without scanning hazard slots at all.
    SkipHazardScan,
    /// Publish pushes the same retired cell twice (double-retire →
    /// double-free once it quiesces).
    DoubleRetire,
}

/// One reader's hazard slot: the generation it is (possibly) reading at.
struct ReaderSlot<S: Shim> {
    announced: S::AtomicU64,
}

/// A retired heap cell awaiting quiescence.
struct Retired<T: Send + Sync + 'static, S: Shim> {
    /// Generation at which the cell stopped being current.
    gen: u64,
    cell: S::Ptr<Arc<T>>,
}

/// Writer-side state serialized by one mutex (publication is control
/// plane; only the *reader* side must stay lock-free).
struct WriterSide<T: Send + Sync + 'static, S: Shim> {
    retired: Vec<Retired<T, S>>,
}

struct SharedCore<T: Send + Sync + 'static, S: Shim> {
    /// Monotonic publication counter; starts at 1 so `IDLE` and "never
    /// seen" cannot collide.
    gen: S::AtomicU64,
    /// The current snapshot: a heap cell owning one `Arc<T>`.
    current: S::Cell<Arc<T>>,
    /// Registered hazard slots, one per live [`SnapReaderCore`].
    readers: S::Mutex<Vec<Arc<ReaderSlot<S>>>>,
    writer: S::Mutex<WriterSide<T, S>>,
    /// Seeded bug, [`Mutation::None`] outside the mutation-kill suite.
    mutation: Mutation,
}

impl<T: Send + Sync + 'static, S: Shim> SharedCore<T, S> {
    /// Frees a retired cell tagged `t` only when every announced slot has
    /// moved to a generation ≥ `t` (or is idle). Called under the writer
    /// mutex.
    fn reclaim_locked(&self, side: &mut WriterSide<T, S>) {
        if side.retired.is_empty() {
            return;
        }
        let floor = if self.mutation == Mutation::SkipHazardScan {
            None
        } else {
            let readers = self.readers.lock();
            readers
                .iter()
                // ordering: SeqCst — Dekker pair with the reader's SeqCst
                // announce store in `refresh`: either this scan sees the
                // announcement, or the reader's validate saw our gen bump
                // and retried. A weaker load could miss an announcement
                // whose validate also missed the bump, freeing a cell the
                // reader is about to dereference.
                .map(|slot| slot.announced.load(Ordering::SeqCst))
                .filter(|&a| a != IDLE)
                .min()
        };
        let slack = u64::from(self.mutation == Mutation::ReclaimOffByOne);
        side.retired.retain(|r| {
            let quiesced = floor.is_none_or(|f| f + slack >= r.gen);
            if quiesced {
                // Every reader that could still dereference this cell
                // would be announced at a generation < r.gen (see the
                // module protocol); none is, so this is the only path to
                // the cell left.
                S::free(r.cell);
            }
            !quiesced
        });
    }
}

impl<T: Send + Sync + 'static, S: Shim> Drop for SharedCore<T, S> {
    fn drop(&mut self) {
        // No readers can exist (they hold an `Arc<SharedCore>`), so every
        // outstanding cell is exclusively ours.
        let side = self.writer.get_mut();
        for r in side.retired.drain(..) {
            S::free(r.cell);
        }
        // ordering: Relaxed — `&mut self` proves exclusive access; there
        // is no concurrent publisher or reader left to order against.
        S::free(self.current.load(Ordering::Relaxed));
    }
}

/// Single-writer, many-reader wait-free snapshot publication cell,
/// generic over the [`Shim`] synchronization family. Use the
/// [`SnapCell`] alias unless you are the model checker.
///
/// The writer half: [`publish`](Self::publish) installs a new snapshot;
/// [`reader`](Self::reader) registers a new [`SnapReaderCore`];
/// [`load`](Self::load) is the writer-side (locking, control-path) read.
pub struct SnapCellCore<T: Send + Sync + 'static, S: Shim> {
    shared: Arc<SharedCore<T, S>>,
}

/// Production snapshot cell: [`SnapCellCore`] over real std atomics.
pub type SnapCell<T> = SnapCellCore<T, RealShim>;

/// Production reader handle: [`SnapReaderCore`] over real std atomics.
pub type SnapReader<T> = SnapReaderCore<T, RealShim>;

impl<T: Send + Sync + 'static, S: Shim> SnapCellCore<T, S> {
    /// Creates a cell publishing `initial` at generation 1.
    #[must_use]
    pub fn new(initial: Arc<T>) -> Self {
        Self::build(initial, Mutation::None)
    }

    /// Creates a cell with a seeded protocol bug for the mutation-kill
    /// suite. Never use outside the model checker: the mutants exist to
    /// corrupt memory.
    #[cfg(any(test, feature = "mutants"))]
    #[must_use]
    pub fn with_mutation(initial: Arc<T>, mutation: Mutation) -> Self {
        Self::build(initial, mutation)
    }

    fn build(initial: Arc<T>, mutation: Mutation) -> Self {
        Self {
            shared: Arc::new(SharedCore {
                gen: S::AtomicU64::new(1),
                current: S::Cell::new(S::alloc(initial)),
                readers: S::Mutex::new(Vec::new()),
                writer: S::Mutex::new(WriterSide {
                    retired: Vec::new(),
                }),
                mutation,
            }),
        }
    }

    /// The current generation (bumped by every publish; starts at 1).
    #[must_use]
    pub fn generation(&self) -> u64 {
        // ordering: SeqCst — control-path observer whose value tests
        // compare against the publish total order; it is never on the
        // packet path, so the strongest order is the simplest correct one.
        self.shared.gen.load(Ordering::SeqCst)
    }

    /// Publishes `next` as the new snapshot, retiring the previous one
    /// and freeing any retired snapshots all readers have moved past.
    pub fn publish(&self, next: Arc<T>) {
        let mut side = self.shared.writer.lock();
        let fresh = S::alloc(next);
        // ordering: Release — pairs with the Acquire `current` load in
        // `refresh` so the cell contents written by `alloc` are visible
        // before the pointer is. No acquire needed for the old value:
        // this thread is the only mutator (writer mutex held) and
        // published it itself.
        let old = self.shared.current.swap(fresh, Ordering::Release);
        // ordering: SeqCst — Dekker pair with the reader's SeqCst
        // validate load in `refresh`: either the validate sees this bump
        // (and the reader retries), or the hazard scan in
        // `reclaim_locked` sees the reader's announcement (and defers the
        // free). Weakening either side lets both miss each other (store
        // buffering) and frees a cell mid-read.
        let tag = self.shared.gen.fetch_add(1, Ordering::SeqCst) + 1;
        side.retired.push(Retired {
            gen: tag,
            cell: old,
        });
        if self.shared.mutation == Mutation::DoubleRetire {
            side.retired.push(Retired {
                gen: tag,
                cell: old,
            });
        }
        self.shared.reclaim_locked(&mut side);
    }

    /// Frees whatever retired snapshots have quiesced. Publishes already
    /// reclaim; this is for tests and long publish-free stretches.
    pub fn reclaim(&self) {
        let mut side = self.shared.writer.lock();
        self.shared.reclaim_locked(&mut side);
    }

    /// Number of retired snapshots still awaiting reader quiescence.
    #[must_use]
    pub fn retired_len(&self) -> usize {
        self.shared.writer.lock().retired.len()
    }

    /// Writer-side read of the current snapshot. Takes the writer mutex —
    /// correct from any thread, but the packet path should hold a
    /// [`SnapReaderCore`] instead.
    #[must_use]
    pub fn load(&self) -> Arc<T> {
        self.load_with_gen().0
    }

    /// Coherent `(snapshot, generation)` pair, read under the writer
    /// mutex (a publish holds the same mutex across its swap + bump).
    fn load_with_gen(&self) -> (Arc<T>, u64) {
        let _side = self.shared.writer.lock();
        // ordering: Relaxed — `gen` and `current` only change inside
        // `publish`, which holds the writer mutex we hold here; the lock
        // acquire supplies the happens-before edge, so no concurrent
        // mutation can be mid-flight.
        let g = self.shared.gen.load(Ordering::Relaxed);
        // ordering: Relaxed — same writer-mutex argument as the `gen`
        // load above; the cell cannot be retired while we hold the lock.
        let cell = self.shared.current.load(Ordering::Relaxed);
        (S::read(cell), g)
    }

    /// Registers a new lock-free reader handle, seeded with the current
    /// snapshot.
    #[must_use]
    pub fn reader(&self) -> SnapReaderCore<T, S> {
        let slot = Arc::new(ReaderSlot {
            announced: S::AtomicU64::new(IDLE),
        });
        self.shared.readers.lock().push(Arc::clone(&slot));
        let (cached, cached_gen) = self.load_with_gen();
        SnapReaderCore {
            shared: Arc::clone(&self.shared),
            slot,
            cached,
            cached_gen,
        }
    }
}

/// A forwarding thread's handle: a cached snapshot refreshed on
/// generation bumps. `get` is wait-free (one atomic load) while the
/// generation is unchanged; a refresh is lock-free (bounded retries only
/// if publishes keep landing mid-refresh). Use the [`SnapReader`] alias
/// unless you are the model checker.
pub struct SnapReaderCore<T: Send + Sync + 'static, S: Shim> {
    shared: Arc<SharedCore<T, S>>,
    slot: Arc<ReaderSlot<S>>,
    cached: Arc<T>,
    cached_gen: u64,
}

impl<T: Send + Sync + 'static, S: Shim> SnapReaderCore<T, S> {
    /// The current snapshot: cached clone on the fast path, hazard-
    /// protected re-read after a publish.
    #[inline]
    pub fn get(&mut self) -> &Arc<T> {
        // ordering: Acquire — pure change detector: a stale read only
        // delays noticing a publish until the next call, and `refresh`
        // announces and re-validates with SeqCst before dereferencing
        // anything, so no Dekker strength is needed here on the one load
        // the packet path pays per batch.
        let g = self.shared.gen.load(Ordering::Acquire);
        if g != self.cached_gen {
            self.refresh();
        }
        &self.cached
    }

    /// A lower bound on the generation of the snapshot [`Self::get`]
    /// returns: the snapshot is never *staler* than this generation. It
    /// can transiently be fresher — a publish's pointer swap may land
    /// between the refresh's validate and its `current` load, handing
    /// the reader the newer snapshot under the older tag (found by the
    /// `fib-check` model checker, which verifies the bound holds). The
    /// next [`Self::get`] observes the bumped generation and re-syncs.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.cached_gen
    }

    #[cold]
    fn refresh(&mut self) {
        loop {
            // ordering: Acquire — the value read here is only a candidate:
            // it is announced and then re-validated with SeqCst below
            // before anything is dereferenced, so a stale read costs one
            // extra loop iteration, never safety.
            let g = self.shared.gen.load(Ordering::Acquire);
            let announce = if self.shared.mutation == Mutation::RelaxedAnnounce {
                // ordering: mutant — deliberately dropped fence, exists to
                // be killed by the model checker.
                Ordering::Relaxed
            } else {
                // ordering: SeqCst — Dekker pair with the writer's SeqCst
                // hazard-scan load in `reclaim_locked`; a weaker store can
                // sit in a store buffer while the scan reads the old IDLE
                // value and frees the cell we are about to load.
                Ordering::SeqCst
            };
            self.slot.announced.store(g, announce);
            if self.shared.mutation != Mutation::SkipValidate {
                let validate = if self.shared.mutation == Mutation::StaleGenRead {
                    // ordering: mutant — deliberately stale generation
                    // read, exists to be killed by the model checker.
                    Ordering::Relaxed
                } else {
                    // ordering: SeqCst — Dekker pair with the writer's
                    // SeqCst gen bump in `publish`: a publish whose hazard
                    // scan missed our announcement must be visible here so
                    // we retry instead of loading a pointer the writer may
                    // already have freed.
                    Ordering::SeqCst
                };
                if self.shared.gen.load(validate) != g {
                    // A publish landed between announce and validate; the
                    // stale announcement only makes the writer conservative.
                    continue;
                }
            }
            // ordering: Acquire — pairs with the Release swap in `publish`
            // so the heap cell's contents are visible; the announce +
            // validate handshake above guarantees the writer cannot free
            // this cell while our slot stays at `g`.
            let cell = self.shared.current.load(Ordering::Acquire);
            self.cached = S::read(cell);
            self.cached_gen = g;
            // ordering: Release — keeps the snapshot clone above ordered
            // before the slot goes idle; the writer's SeqCst scan load
            // acquires it, so a writer that observes IDLE and frees the
            // cell knows our clone already completed.
            self.slot.announced.store(IDLE, Ordering::Release);
            return;
        }
    }
}

impl<T: Send + Sync + 'static, S: Shim> Clone for SnapReaderCore<T, S> {
    fn clone(&self) -> Self {
        let slot = Arc::new(ReaderSlot {
            announced: S::AtomicU64::new(IDLE),
        });
        self.shared.readers.lock().push(Arc::clone(&slot));
        Self {
            shared: Arc::clone(&self.shared),
            slot,
            cached: Arc::clone(&self.cached),
            cached_gen: self.cached_gen,
        }
    }
}

impl<T: Send + Sync + 'static, S: Shim> Drop for SnapReaderCore<T, S> {
    fn drop(&mut self) {
        // ordering: Release — `&mut self` proves no refresh of ours is
        // in flight; publish-order the idle store so a concurrent hazard
        // scan that observes it may free retired cells immediately.
        self.slot.announced.store(IDLE, Ordering::Release);
        self.shared
            .readers
            .lock()
            .retain(|s| !Arc::ptr_eq(s, &self.slot));
    }
}

impl<T: Send + Sync + 'static + std::fmt::Debug, S: Shim> std::fmt::Debug for SnapCellCore<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl<T: Send + Sync + 'static, S: Shim> std::fmt::Debug for SnapReaderCore<T, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapReader")
            .field("generation", &self.cached_gen)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RealShim: the production instantiation over std atomics and raw heap
// cells. This is the only unsafe in the crate; the generic core above and
// everything the model checker explores is safe code.
// ---------------------------------------------------------------------------

/// Production [`Shim`]: std atomics, `Box::into_raw` heap cells.
pub struct RealShim;

/// A raw heap cell handle; `Copy + Eq` so the protocol core can treat it
/// as an opaque token.
pub struct RawCell<V>(*mut V);

impl<V> Clone for RawCell<V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<V> Copy for RawCell<V> {}
impl<V> PartialEq for RawCell<V> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<V> Eq for RawCell<V> {}

// SAFETY: a `RawCell` is an owning/borrowing token for a heap cell of `V`
// whose lifecycle is governed by the hazard protocol above; moving the
// token between threads is sound whenever `V` itself may move between
// threads.
unsafe impl<V: Send + Sync> Send for RawCell<V> {}
// SAFETY: shared references to the token only copy it; dereferencing is
// gated by the protocol (see `Shim::read`/`Shim::free` callers).
unsafe impl<V: Send + Sync> Sync for RawCell<V> {}

/// `AtomicPtr` wrapped to trade in [`RawCell`] tokens.
pub struct RealCell<V>(std::sync::atomic::AtomicPtr<V>);

impl<V: Send + Sync + 'static> AtomCell<RawCell<V>> for RealCell<V> {
    fn new(value: RawCell<V>) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(value.0))
    }
    fn load(&self, order: Ordering) -> RawCell<V> {
        RawCell(self.0.load(order))
    }
    fn swap(&self, value: RawCell<V>, order: Ordering) -> RawCell<V> {
        RawCell(self.0.swap(value.0, order))
    }
}

impl Shim for RealShim {
    type AtomicU64 = std::sync::atomic::AtomicU64;
    type Cell<V: Send + Sync + 'static> = RealCell<V>;
    type Mutex<T: Send> = std::sync::Mutex<T>;
    type Ptr<V: Send + Sync + 'static> = RawCell<V>;

    fn alloc<V: Send + Sync + 'static>(value: V) -> RawCell<V> {
        RawCell(Box::into_raw(Box::new(value)))
    }

    fn free<V: Send + Sync + 'static>(ptr: RawCell<V>) {
        // SAFETY: callers (the hazard protocol) guarantee `ptr` came from
        // `alloc`, is live, and no other thread can still dereference it.
        drop(unsafe { Box::from_raw(ptr.0) });
    }

    fn read<V: Clone + Send + Sync + 'static>(ptr: RawCell<V>) -> V {
        // SAFETY: callers guarantee `ptr` is live for the duration of the
        // call — readers hold an announced+validated hazard slot, the
        // writer holds the writer mutex.
        unsafe { (*ptr.0).clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::{Relaxed, SeqCst};
    use std::sync::atomic::{AtomicU64, AtomicUsize};

    /// Counts live instances so the tests can observe exactly when the
    /// cell frees a retired snapshot.
    struct Tracked {
        live: Arc<AtomicUsize>,
        value: u64,
    }

    impl Tracked {
        fn new(live: &Arc<AtomicUsize>, value: u64) -> Arc<Self> {
            live.fetch_add(1, Relaxed);
            Arc::new(Self {
                live: Arc::clone(live),
                value,
            })
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Relaxed);
        }
    }

    #[test]
    fn fast_path_returns_cached_snapshot() {
        let cell = SnapCell::new(Arc::new(7u64));
        let mut reader = cell.reader();
        let a = Arc::clone(reader.get());
        let b = Arc::clone(reader.get());
        assert!(Arc::ptr_eq(&a, &b), "no publish → same Arc");
        assert_eq!(*a, 7);
    }

    #[test]
    fn publish_is_picked_up_and_generations_are_monotonic() {
        let cell = SnapCell::new(Arc::new(0u64));
        let mut reader = cell.reader();
        let mut last_gen = reader.generation();
        for v in 1..=100u64 {
            cell.publish(Arc::new(v));
            assert_eq!(**reader.get(), v);
            assert!(reader.generation() > last_gen, "generation must advance");
            last_gen = reader.generation();
        }
        assert_eq!(cell.generation(), 101);
    }

    #[test]
    fn old_snapshots_survive_while_a_clone_is_held() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapCell::new(Tracked::new(&live, 0));
        let mut reader = cell.reader();
        let pinned = Arc::clone(reader.get());
        for v in 1..=10 {
            cell.publish(Tracked::new(&live, v));
        }
        let _ = reader.get(); // reader moves to the newest snapshot
        cell.reclaim();
        // The pinned clone keeps value 0 alive; intermediate snapshots
        // (1..=9) were freed, the current one (10) is live.
        assert_eq!(pinned.value, 0);
        assert_eq!(live.load(Relaxed), 2, "pinned + current only");
        drop(pinned);
        assert_eq!(live.load(Relaxed), 1, "only the current snapshot");
    }

    #[test]
    fn concurrent_readers_and_publisher_agree() {
        // A stress smoke on real threads; the exhaustive interleaving
        // coverage lives in `fib-check` (crates/check/tests), which runs
        // this same protocol core on the model shim and explores every
        // schedule up to the preemption bound.
        let live = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapCell::new(Tracked::new(&live, 0)));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let mut reader = cell.reader();
            handles.push(std::thread::spawn(move || {
                let mut last_gen = 0;
                let mut last_value = 0;
                while stop.load(SeqCst) == 0 {
                    let value = reader.get().value;
                    let gen = reader.generation();
                    assert!(gen >= last_gen, "generation went backwards");
                    assert!(value >= last_value, "stale snapshot resurfaced");
                    last_gen = gen;
                    last_value = value;
                }
            }));
        }
        for v in 1..=1000 {
            cell.publish(Tracked::new(&live, v));
            if v % 97 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(1, SeqCst);
        for h in handles {
            h.join().expect("reader panicked");
        }
        drop(cell);
        assert_eq!(live.load(Relaxed), 0, "every snapshot freed");
    }
}
