//! A home-grown wait-free snapshot cell: single-writer publication of
//! `Arc<T>` values that packet-path readers can pick up without ever
//! touching a lock.
//!
//! # Why not `RwLock<Arc<T>>`
//!
//! The previous data plane cloned the published `Arc` under a read lock.
//! Readers never blocked *each other*, but every packet batch still paid
//! a shared-cache-line atomic on the lock word, and a publishing writer
//! stalled behind every in-flight reader. With N forwarding cores hitting
//! one cell millions of times per second, that lock word becomes the
//! hottest line in the process. Here the reader fast path is **one
//! relaxed-cost atomic load of a generation counter** that only the
//! (rare) publish ever writes.
//!
//! # Design
//!
//! `AtomicPtr` publication with generation-counted deferred reclamation:
//!
//! * The cell holds `current: AtomicPtr<Arc<T>>` (a heap cell owning one
//!   `Arc<T>`) and a `gen: AtomicU64` bumped on every publish.
//! * Each [`SnapReader`] caches a cloned `Arc<T>` plus the generation it
//!   was read at. [`SnapReader::get`] compares generations and returns
//!   the cached clone — the wait-free fast path.
//! * On a generation change the reader re-reads `current`. That is the
//!   only dangerous step: the writer may concurrently retire the old
//!   heap cell. Readers therefore *announce* the generation they are
//!   reading at in a per-reader hazard slot before dereferencing, and the
//!   writer only frees a retired cell once every announced slot has
//!   moved past the cell's retirement generation.
//!
//! # Safety protocol
//!
//! All protocol atomics are `SeqCst`; publishes and refreshes are rare
//! (the fast path never executes an ordered store), so the cost is
//! irrelevant and the reasoning stays simple. Invariant:
//!
//! * writer order: swap `current` → bump `gen` to `t` → tag the old cell
//!   `t` → scan hazard slots;
//! * reader order: announce `a` (observed `gen`) → re-check `gen == a` →
//!   load `current` → clone → set slot idle.
//!
//! A reader that validated at generation `a` loads `current` *after* the
//! swap of any cell retired at tag `t ≤ a` (the bump to `t` precedes, in
//! the `SeqCst` total order, the gen-load that returned `a ≥ t`), so the
//! pointers it can dereference are exactly those retired at `t > a` —
//! and for those its announced `a < t` is visible to the writer's scan,
//! which then defers the free. A slot returns to idle only after the
//! clone completed, at which point the reader holds its own strong
//! reference and the heap cell may be dropped freely.
//!
//! This module carries the crate's only `unsafe` code; everything is
//! expressed through the small step functions below so the deterministic
//! interleaving tests can drive publish/read/reclaim schedules one step
//! at a time.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Hazard-slot value meaning "not currently reading".
const IDLE: u64 = u64::MAX;

/// One reader's hazard slot: the generation it is (possibly) reading at.
struct ReaderSlot {
    announced: AtomicU64,
}

/// A retired heap cell awaiting quiescence.
struct Retired<T> {
    /// Generation at which the cell stopped being current.
    gen: u64,
    cell: *mut Arc<T>,
}

/// Writer-side state serialized by one mutex (publication is control
/// plane; only the *reader* side must stay lock-free).
struct WriterSide<T> {
    retired: Vec<Retired<T>>,
}

struct Shared<T> {
    /// Monotonic publication counter; starts at 1 so `IDLE` and "never
    /// seen" cannot collide.
    gen: AtomicU64,
    /// The current snapshot: a heap cell owning one `Arc<T>`.
    current: AtomicPtr<Arc<T>>,
    /// Registered hazard slots, one per live [`SnapReader`].
    readers: Mutex<Vec<Arc<ReaderSlot>>>,
    writer: Mutex<WriterSide<T>>,
}

// SAFETY: the raw pointers in `current`/`retired` point at heap cells of
// `Arc<T>` whose ownership is governed by the hazard protocol above; they
// are only dereferenced for cloning (readers, protocol-protected) and
// dropping (writer, after quiescence). Sharing the structure across
// threads is exactly its purpose and is sound whenever `Arc<T>` itself
// may move between threads.
unsafe impl<T: Send + Sync> Send for Shared<T> {}
unsafe impl<T: Send + Sync> Sync for Shared<T> {}

impl<T> Shared<T> {
    /// Frees a retired cell tagged `t` only when every announced slot has
    /// moved to a generation ≥ `t` (or is idle). Called under the writer
    /// mutex.
    fn reclaim_locked(&self, side: &mut WriterSide<T>) {
        if side.retired.is_empty() {
            return;
        }
        let floor = {
            let readers = self.readers.lock().expect("reader registry poisoned");
            readers
                .iter()
                .map(|slot| slot.announced.load(SeqCst))
                .filter(|&a| a != IDLE)
                .min()
        };
        side.retired.retain(|r| {
            let quiesced = floor.is_none_or(|f| f >= r.gen);
            if quiesced {
                // SAFETY: every reader that could still dereference this
                // cell would be announced at a generation < r.gen (see
                // the module protocol); none is, so we hold the only
                // path to the cell and may reconstitute and drop it.
                drop(unsafe { Box::from_raw(r.cell) });
            }
            !quiesced
        });
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // No readers can exist (they hold an `Arc<Shared>`), so every
        // outstanding cell is exclusively ours.
        let side = self.writer.get_mut().expect("writer mutex poisoned");
        for r in side.retired.drain(..) {
            // SAFETY: exclusive access per above.
            drop(unsafe { Box::from_raw(r.cell) });
        }
        let current = *self.current.get_mut();
        if !current.is_null() {
            // SAFETY: exclusive access per above.
            drop(unsafe { Box::from_raw(current) });
        }
    }
}

/// Single-writer, many-reader wait-free snapshot publication cell.
///
/// The writer half: [`publish`](Self::publish) installs a new snapshot;
/// [`reader`](Self::reader) registers a new [`SnapReader`];
/// [`load`](Self::load) is the writer-side (locking, control-path) read.
pub struct SnapCell<T> {
    shared: Arc<Shared<T>>,
}

impl<T> SnapCell<T> {
    /// Creates a cell publishing `initial` at generation 1.
    #[must_use]
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            shared: Arc::new(Shared {
                gen: AtomicU64::new(1),
                current: AtomicPtr::new(Box::into_raw(Box::new(initial))),
                readers: Mutex::new(Vec::new()),
                writer: Mutex::new(WriterSide {
                    retired: Vec::new(),
                }),
            }),
        }
    }

    /// The current generation (bumped by every publish; starts at 1).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.shared.gen.load(SeqCst)
    }

    /// Publishes `next` as the new snapshot, retiring the previous one
    /// and freeing any retired snapshots all readers have moved past.
    ///
    /// # Panics
    /// Panics if another publisher poisoned the writer mutex.
    pub fn publish(&self, next: Arc<T>) {
        let mut side = self.shared.writer.lock().expect("writer mutex poisoned");
        let fresh = Box::into_raw(Box::new(next));
        let old = self.shared.current.swap(fresh, SeqCst);
        let tag = self.shared.gen.fetch_add(1, SeqCst) + 1;
        side.retired.push(Retired {
            gen: tag,
            cell: old,
        });
        self.shared.reclaim_locked(&mut side);
    }

    /// Frees whatever retired snapshots have quiesced. Publishes already
    /// reclaim; this is for tests and long publish-free stretches.
    ///
    /// # Panics
    /// Panics if another publisher poisoned the writer mutex.
    pub fn reclaim(&self) {
        let mut side = self.shared.writer.lock().expect("writer mutex poisoned");
        self.shared.reclaim_locked(&mut side);
    }

    /// Number of retired snapshots still awaiting reader quiescence.
    ///
    /// # Panics
    /// Panics if another publisher poisoned the writer mutex.
    #[must_use]
    pub fn retired_len(&self) -> usize {
        self.shared
            .writer
            .lock()
            .expect("writer mutex poisoned")
            .retired
            .len()
    }

    /// Writer-side read of the current snapshot. Takes the writer mutex —
    /// correct from any thread, but the packet path should hold a
    /// [`SnapReader`] instead.
    ///
    /// # Panics
    /// Panics if another publisher poisoned the writer mutex.
    #[must_use]
    pub fn load(&self) -> Arc<T> {
        self.load_with_gen().0
    }

    /// Coherent `(snapshot, generation)` pair, read under the writer
    /// mutex (a publish holds the same mutex across its swap + bump).
    fn load_with_gen(&self) -> (Arc<T>, u64) {
        let _side = self.shared.writer.lock().expect("writer mutex poisoned");
        let g = self.shared.gen.load(SeqCst);
        let cell = self.shared.current.load(SeqCst);
        // SAFETY: holding the writer mutex excludes any concurrent
        // publish, so `cell` is the live current cell and cannot be
        // retired (let alone freed) before we return.
        (unsafe { (*cell).clone() }, g)
    }

    /// Registers a new lock-free reader handle, seeded with the current
    /// snapshot.
    ///
    /// # Panics
    /// Panics if a poisoned mutex is encountered.
    #[must_use]
    pub fn reader(&self) -> SnapReader<T> {
        let slot = Arc::new(ReaderSlot {
            announced: AtomicU64::new(IDLE),
        });
        self.shared
            .readers
            .lock()
            .expect("reader registry poisoned")
            .push(Arc::clone(&slot));
        let (cached, cached_gen) = self.load_with_gen();
        SnapReader {
            shared: Arc::clone(&self.shared),
            slot,
            cached,
            cached_gen,
        }
    }
}

/// A forwarding thread's handle: a cached snapshot refreshed on
/// generation bumps. `get` is wait-free (one atomic load) while the
/// generation is unchanged; a refresh is lock-free (bounded retries only
/// if publishes keep landing mid-refresh).
pub struct SnapReader<T> {
    shared: Arc<Shared<T>>,
    slot: Arc<ReaderSlot>,
    cached: Arc<T>,
    cached_gen: u64,
}

impl<T> SnapReader<T> {
    /// The current snapshot: cached clone on the fast path, hazard-
    /// protected re-read after a publish.
    #[inline]
    pub fn get(&mut self) -> &Arc<T> {
        let g = self.shared.gen.load(SeqCst);
        if g != self.cached_gen {
            self.refresh();
        }
        &self.cached
    }

    /// The generation of the snapshot [`Self::get`] would return.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.cached_gen
    }

    #[cold]
    fn refresh(&mut self) {
        loop {
            let g = self.shared.gen.load(SeqCst);
            self.slot.announced.store(g, SeqCst);
            if self.shared.gen.load(SeqCst) != g {
                // A publish landed between announce and validate; the
                // stale announcement only makes the writer conservative.
                continue;
            }
            let cell = self.shared.current.load(SeqCst);
            // SAFETY: we announced generation `g` and re-validated before
            // loading `current`, so per the module protocol the writer
            // cannot free this cell until our slot goes idle or advances.
            self.cached = unsafe { (*cell).clone() };
            self.cached_gen = g;
            self.slot.announced.store(IDLE, SeqCst);
            return;
        }
    }
}

impl<T> Clone for SnapReader<T> {
    fn clone(&self) -> Self {
        let slot = Arc::new(ReaderSlot {
            announced: AtomicU64::new(IDLE),
        });
        self.shared
            .readers
            .lock()
            .expect("reader registry poisoned")
            .push(Arc::clone(&slot));
        Self {
            shared: Arc::clone(&self.shared),
            slot,
            cached: Arc::clone(&self.cached),
            cached_gen: self.cached_gen,
        }
    }
}

impl<T> Drop for SnapReader<T> {
    fn drop(&mut self) {
        self.slot.announced.store(IDLE, SeqCst);
        if let Ok(mut readers) = self.shared.readers.lock() {
            readers.retain(|s| !Arc::ptr_eq(s, &self.slot));
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SnapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapCell")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for SnapReader<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapReader")
            .field("generation", &self.cached_gen)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::atomic::Ordering::Relaxed;

    /// Counts live instances so the tests can observe exactly when the
    /// cell frees a retired snapshot.
    struct Tracked {
        live: Arc<AtomicUsize>,
        value: u64,
    }

    impl Tracked {
        fn new(live: &Arc<AtomicUsize>, value: u64) -> Arc<Self> {
            live.fetch_add(1, Relaxed);
            Arc::new(Self {
                live: Arc::clone(live),
                value,
            })
        }
    }

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Relaxed);
        }
    }

    #[test]
    fn fast_path_returns_cached_snapshot() {
        let cell = SnapCell::new(Arc::new(7u64));
        let mut reader = cell.reader();
        let a = Arc::clone(reader.get());
        let b = Arc::clone(reader.get());
        assert!(Arc::ptr_eq(&a, &b), "no publish → same Arc");
        assert_eq!(*a, 7);
    }

    #[test]
    fn publish_is_picked_up_and_generations_are_monotonic() {
        let cell = SnapCell::new(Arc::new(0u64));
        let mut reader = cell.reader();
        let mut last_gen = reader.generation();
        for v in 1..=100u64 {
            cell.publish(Arc::new(v));
            assert_eq!(**reader.get(), v);
            assert!(reader.generation() > last_gen, "generation must advance");
            last_gen = reader.generation();
        }
        assert_eq!(cell.generation(), 101);
    }

    #[test]
    fn old_snapshots_survive_while_a_clone_is_held() {
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapCell::new(Tracked::new(&live, 0));
        let mut reader = cell.reader();
        let pinned = Arc::clone(reader.get());
        for v in 1..=10 {
            cell.publish(Tracked::new(&live, v));
        }
        let _ = reader.get(); // reader moves to the newest snapshot
        cell.reclaim();
        // The pinned clone keeps value 0 alive; intermediate snapshots
        // (1..=9) were freed, the current one (10) is live.
        assert_eq!(pinned.value, 0);
        assert_eq!(live.load(Relaxed), 2, "pinned + current only");
        drop(pinned);
        assert_eq!(live.load(Relaxed), 1, "only the current snapshot");
    }

    /// Loom-style deterministic interleavings: the reader's refresh is
    /// driven one protocol step at a time (announce → validate → load →
    /// clone → release) with publishes and reclaims injected between
    /// steps, checking at each point that the writer never frees a cell
    /// the reader may still dereference.
    #[test]
    fn interleaved_publish_read_reclaim_schedules() {
        // Step driver mirroring SnapReader::refresh exactly, but pausable.
        #[allow(clippy::redundant_allocation)]
        struct StepReader<'a> {
            shared: &'a Shared<Tracked>,
            slot: Arc<ReaderSlot>,
            announced_gen: Option<u64>,
            loaded: Option<*mut Arc<Tracked>>,
        }

        impl<'a> StepReader<'a> {
            fn announce(&mut self) {
                let g = self.shared.gen.load(SeqCst);
                self.slot.announced.store(g, SeqCst);
                self.announced_gen = Some(g);
            }

            /// Re-validate; on failure the protocol re-announces.
            fn validate(&mut self) -> bool {
                let g = self.announced_gen.expect("announce first");
                if self.shared.gen.load(SeqCst) == g {
                    true
                } else {
                    self.announce();
                    false
                }
            }

            fn load(&mut self) {
                self.loaded = Some(self.shared.current.load(SeqCst));
            }

            fn clone_and_release(&mut self) -> Arc<Tracked> {
                let p = self.loaded.take().expect("load first");
                // SAFETY: same protocol position as SnapReader::refresh —
                // announced + validated before the load, still announced.
                let value = unsafe { Arc::clone(&*p) };
                self.slot.announced.store(IDLE, SeqCst);
                value
            }
        }

        // Schedule A: reader pinned mid-read across several publishes —
        // nothing it may hold is freed until it releases.
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapCell::new(Tracked::new(&live, 0));
        let slot = Arc::new(ReaderSlot {
            announced: AtomicU64::new(IDLE),
        });
        cell.shared.readers.lock().unwrap().push(Arc::clone(&slot));
        let mut reader = StepReader {
            shared: &cell.shared,
            slot,
            announced_gen: None,
            loaded: None,
        };

        reader.announce();
        assert!(reader.validate());
        reader.load(); // holds the gen-1 cell, slot announced at 1
        for v in 1..=3 {
            cell.publish(Tracked::new(&live, v));
        }
        cell.reclaim();
        assert_eq!(cell.retired_len(), 3, "announced reader blocks every free");
        assert_eq!(live.load(Relaxed), 4, "0..=3 all alive");
        let held = reader.clone_and_release(); // clone, then go idle
        assert_eq!(held.value, 0, "reader saw the cell it loaded");
        cell.reclaim();
        assert_eq!(cell.retired_len(), 0, "idle reader unblocks reclaim");
        assert_eq!(live.load(Relaxed), 2, "held clone + current");
        drop(held);
        assert_eq!(live.load(Relaxed), 1);

        // Schedule B: publish lands between announce and validate — the
        // reader must re-announce at the new generation and then load the
        // *new* cell; the old cell frees because the stale announcement
        // was superseded before any load.
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapCell::new(Tracked::new(&live, 10));
        let slot = Arc::new(ReaderSlot {
            announced: AtomicU64::new(IDLE),
        });
        cell.shared.readers.lock().unwrap().push(Arc::clone(&slot));
        let mut reader = StepReader {
            shared: &cell.shared,
            slot,
            announced_gen: None,
            loaded: None,
        };
        reader.announce(); // announces gen 1
        cell.publish(Tracked::new(&live, 11)); // gen → 2
        assert!(!reader.validate(), "stale announce must be caught");
        assert_eq!(reader.announced_gen, Some(2), "re-announced at gen 2");
        assert!(reader.validate());
        reader.load();
        let held = reader.clone_and_release();
        assert_eq!(held.value, 11, "validated read sees the new snapshot");
        cell.reclaim();
        assert_eq!(cell.retired_len(), 0, "gen-1 cell freed");
        assert_eq!(live.load(Relaxed), 1, "only snapshot 11 is alive");

        // Schedule C: two readers pinned at different generations — the
        // reclaim floor is the older announcement; releasing the older
        // reader unblocks exactly the cells the younger one is past.
        let live = Arc::new(AtomicUsize::new(0));
        let cell = SnapCell::new(Tracked::new(&live, 20));
        let make = |cell: &SnapCell<Tracked>| {
            let slot = Arc::new(ReaderSlot {
                announced: AtomicU64::new(IDLE),
            });
            cell.shared.readers.lock().unwrap().push(Arc::clone(&slot));
            slot
        };
        let slot_a = make(&cell);
        let slot_b = make(&cell);
        let mut ra = StepReader {
            shared: &cell.shared,
            slot: slot_a,
            announced_gen: None,
            loaded: None,
        };
        ra.announce();
        assert!(ra.validate());
        ra.load(); // pinned at gen 1
        cell.publish(Tracked::new(&live, 21)); // gen 2, retires gen-1 cell at tag 2
        let mut rb = StepReader {
            shared: &cell.shared,
            slot: slot_b,
            announced_gen: None,
            loaded: None,
        };
        rb.announce();
        assert!(rb.validate());
        rb.load(); // pinned at gen 2
        cell.publish(Tracked::new(&live, 22)); // gen 3, retires gen-2 cell at tag 3
        cell.reclaim();
        assert_eq!(cell.retired_len(), 2, "floor = 1 blocks both");
        let a = ra.clone_and_release();
        assert_eq!(a.value, 20);
        cell.reclaim();
        assert_eq!(
            cell.retired_len(),
            1,
            "floor = 2 frees the tag-2 cell, keeps tag-3"
        );
        let b = rb.clone_and_release();
        assert_eq!(b.value, 21);
        cell.reclaim();
        assert_eq!(cell.retired_len(), 0);
        drop((a, b));
        assert_eq!(live.load(Relaxed), 1, "only the current snapshot");
    }

    #[test]
    fn concurrent_readers_and_publisher_agree() {
        // A stress smoke on real threads: every observed value must be
        // one the writer actually published, generations must be
        // monotonic per reader, and nothing may crash or leak.
        let live = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(SnapCell::new(Tracked::new(&live, 0)));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            let mut reader = cell.reader();
            handles.push(std::thread::spawn(move || {
                let mut last_gen = 0;
                let mut last_value = 0;
                while stop.load(SeqCst) == 0 {
                    let value = reader.get().value;
                    let gen = reader.generation();
                    assert!(gen >= last_gen, "generation went backwards");
                    assert!(value >= last_value, "stale snapshot resurfaced");
                    last_gen = gen;
                    last_value = value;
                }
            }));
        }
        for v in 1..=1000 {
            cell.publish(Tracked::new(&live, v));
            if v % 97 == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(1, SeqCst);
        for h in handles {
            h.join().expect("reader panicked");
        }
        drop(cell);
        assert_eq!(live.load(Relaxed), 0, "every snapshot freed");
    }
}
