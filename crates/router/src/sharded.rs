//! First-byte sharding: 256 independent routers covering one address
//! space.
//!
//! Real deployments split the FIB across line cards or NUMA domains;
//! sharding by the top address byte is the classic cut (every DFZ prefix
//! of length ≥ 8 lands in exactly one shard). Short prefixes are
//! replicated into every shard they cover, so each shard's control FIB
//! answers longest-prefix match for its slice of the address space
//! without consulting its neighbours: any route matching an address
//! covers it, hence lives in that address's shard.

use std::sync::Arc;

use fib_core::{FibBuild, FibLookup, FibUpdate, ImageCodec};
use fib_trie::{Address, BinaryTrie, NextHop, Prefix};

use crate::router::{DataPlane, EpochSnapshot, Router, RouterConfig, RouterStats};

/// The shard owning `addr` (top [`SHARD_BITS`] address bits).
#[inline]
fn shard_index<A: Address>(addr: A) -> usize {
    addr.bits(0, SHARD_BITS) as usize
}

/// Number of address bits selecting the shard.
pub const SHARD_BITS: u8 = 8;
/// Number of shards (`2^SHARD_BITS`).
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// A [`Router`] per top address byte.
pub struct ShardedRouter<A: Address, E: Send + Sync + 'static> {
    shards: Vec<Router<A, E>>,
    /// The router's own data-plane handle: reusable scratch + wait-free
    /// per-shard snapshot readers for [`Self::lookup_batch`].
    plane: ShardedDataPlane<A, E>,
}

/// A forwarding thread's handle over all 256 shards: one wait-free
/// [`DataPlane`] reader per shard plus the counting-sort scratch the
/// batched path needs, so steady-state batches allocate nothing and
/// never touch a lock.
pub struct ShardedDataPlane<A, E: Send + Sync + 'static> {
    planes: Vec<DataPlane<E>>,
    /// Input indices grouped by shard (counting-sort output).
    order: Vec<usize>,
    /// Per-shard gathered addresses (reused run by run).
    gathered: Vec<A>,
    /// Per-shard answers before scattering back.
    answers: Vec<Option<NextHop>>,
}

impl<A: Address, E: Send + Sync + 'static> Clone for ShardedDataPlane<A, E> {
    fn clone(&self) -> Self {
        Self {
            planes: self.planes.clone(),
            order: Vec::new(),
            gathered: Vec::new(),
            answers: Vec::new(),
        }
    }
}

/// Batches at or below this size skip the counting sort entirely and
/// resolve scalar through the per-shard readers — the stack path for
/// small batches, where bucketing overhead would dominate.
const SMALL_BATCH: usize = 16;

impl<A: Address, E: Send + Sync + 'static> ShardedDataPlane<A, E> {
    /// Lookup through the owning shard's cached snapshot (wait-free).
    #[must_use]
    pub fn lookup(&mut self, addr: A) -> Option<NextHop>
    where
        E: ImageCodec<A>,
    {
        self.planes[shard_index(addr)].current().lookup(addr)
    }

    /// Batched lookup: addresses are bucketed per shard with one
    /// counting-sort pass over reusable scratch, each shard's run goes
    /// through its engine's software-pipelined
    /// [`lookup_stream`](fib_core::FibLookup::lookup_stream), and results
    /// scatter back into `out` in input order. Steady state performs no
    /// allocation and no locking.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&mut self, addrs: &[A], out: &mut [Option<NextHop>])
    where
        E: ImageCodec<A>,
    {
        assert!(out.len() >= addrs.len(), "output buffer too small");
        if addrs.len() <= SMALL_BATCH {
            for (addr, slot) in addrs.iter().zip(out.iter_mut()) {
                *slot = self.lookup(*addr);
            }
            return;
        }
        // Counting sort by shard: `order` holds the input indices grouped
        // by shard, `starts[s]..starts[s + 1]` delimiting shard s's run.
        let mut counts = [0usize; SHARD_COUNT + 1];
        for addr in addrs {
            counts[shard_index(*addr) + 1] += 1;
        }
        for s in 0..SHARD_COUNT {
            counts[s + 1] += counts[s];
        }
        let starts = counts;
        let mut cursor = starts;
        self.order.clear();
        self.order.resize(addrs.len(), 0);
        for (i, addr) in addrs.iter().enumerate() {
            let shard = shard_index(*addr);
            self.order[cursor[shard]] = i;
            cursor[shard] += 1;
        }
        for shard in 0..SHARD_COUNT {
            let run = &self.order[starts[shard]..starts[shard + 1]];
            if run.is_empty() {
                continue;
            }
            self.gathered.clear();
            self.gathered.extend(run.iter().map(|&i| addrs[i]));
            self.answers.clear();
            self.answers.resize(run.len(), None);
            self.planes[shard]
                .current()
                .lookup_stream(&self.gathered, &mut self.answers);
            for (&i, &answer) in run.iter().zip(&self.answers) {
                out[i] = answer;
            }
        }
    }
}

impl<A, E> ShardedRouter<A, E>
where
    A: Address + Send + Sync + 'static,
    E: FibLookup<A> + FibBuild<A> + FibUpdate<A> + ImageCodec<A> + Clone + Send + Sync + 'static,
{
    /// Partitions `control` by first byte and builds one router per shard,
    /// replicating prefixes shorter than [`SHARD_BITS`] into every shard
    /// they cover.
    #[must_use]
    pub fn new(control: &BinaryTrie<A>, config: RouterConfig) -> Self {
        let mut tries: Vec<BinaryTrie<A>> = (0..SHARD_COUNT).map(|_| BinaryTrie::new()).collect();
        for (prefix, nh) in control.iter() {
            for shard in Self::shard_range(prefix) {
                tries[shard].insert(prefix, nh);
            }
        }
        let shards: Vec<Router<A, E>> = tries
            .into_iter()
            .map(|trie| Router::new(trie, config))
            .collect();
        let plane = ShardedDataPlane {
            planes: shards.iter().map(Router::data_plane).collect(),
            order: Vec::new(),
            gathered: Vec::new(),
            answers: Vec::new(),
        };
        Self { shards, plane }
    }

    /// The shard owning `addr`.
    #[must_use]
    pub fn shard_of(addr: A) -> usize {
        shard_index(addr)
    }

    /// A forwarding thread's handle: wait-free per-shard snapshot readers
    /// plus private batch scratch.
    #[must_use]
    pub fn data_plane(&self) -> ShardedDataPlane<A, E> {
        ShardedDataPlane {
            planes: self.shards.iter().map(Router::data_plane).collect(),
            order: Vec::new(),
            gathered: Vec::new(),
            answers: Vec::new(),
        }
    }

    /// The contiguous shard range a prefix covers.
    fn shard_range(prefix: Prefix<A>) -> std::ops::Range<usize> {
        if prefix.len() >= SHARD_BITS {
            let shard = prefix.addr().bits(0, SHARD_BITS) as usize;
            shard..shard + 1
        } else {
            let base = prefix.addr().bits(0, SHARD_BITS) as usize;
            base..base + (1usize << (SHARD_BITS - prefix.len()))
        }
    }

    /// Announces a route into every shard it covers.
    pub fn announce(&mut self, prefix: Prefix<A>, next_hop: NextHop) {
        for shard in Self::shard_range(prefix) {
            self.shards[shard].announce(prefix, next_hop);
        }
    }

    /// Withdraws a route from every shard it covers.
    pub fn withdraw(&mut self, prefix: Prefix<A>) {
        for shard in Self::shard_range(prefix) {
            self.shards[shard].withdraw(prefix);
        }
    }

    /// Publishes a fresh epoch on every shard.
    pub fn publish_all(&mut self) {
        for shard in &mut self.shards {
            shard.publish();
        }
    }

    /// Lookup through the owning shard's published snapshot.
    #[must_use]
    pub fn lookup(&self, addr: A) -> Option<NextHop> {
        self.shards[Self::shard_of(addr)].lookup(addr)
    }

    /// Batched lookup through the router's embedded
    /// [`ShardedDataPlane`]: one counting-sort pass over reusable scratch
    /// (no per-call allocation), wait-free per-shard snapshot reads, and
    /// the engines' software-pipelined stream walk per shard run.
    /// Forwarding threads should hold their own handle from
    /// [`Self::data_plane`] instead.
    ///
    /// # Panics
    /// Panics if `out` is shorter than `addrs`.
    pub fn lookup_batch(&mut self, addrs: &[A], out: &mut [Option<NextHop>]) {
        self.plane.lookup_batch(addrs, out);
    }

    /// Access to a single shard (e.g. for its [`Router::data_plane`]).
    #[must_use]
    pub fn shard(&self, index: usize) -> &Router<A, E> {
        &self.shards[index]
    }

    /// Snapshot of the shard owning `addr`.
    #[must_use]
    pub fn snapshot_for(&self, addr: A) -> Arc<EpochSnapshot<E>> {
        self.shards[Self::shard_of(addr)].snapshot()
    }

    /// Sum of all shard counters.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        let mut total = RouterStats::default();
        for shard in &self.shards {
            let s = shard.stats();
            total.updates += s.updates;
            total.in_place += s.in_place;
            total.declined += s.declined;
            total.epochs += s.epochs;
            total.rebuilds += s.rebuilds;
            total.background_rebuilds += s.background_rebuilds;
            total.replayed += s.replayed;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_core::PrefixDag;
    use fib_trie::Prefix4;

    fn nh(i: u32) -> NextHop {
        NextHop::new(i)
    }

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn config() -> RouterConfig {
        RouterConfig {
            publish_every: None,
            ..RouterConfig::default()
        }
    }

    fn sample_fib() -> BinaryTrie<u32> {
        let mut t = BinaryTrie::new();
        t.insert(p("0.0.0.0/0"), nh(1)); // replicated into all 256 shards
        t.insert(p("10.0.0.0/8"), nh(2));
        t.insert(p("10.64.0.0/10"), nh(3));
        t.insert(p("96.0.0.0/3"), nh(4)); // covers 32 shards
        t.insert(p("203.0.113.0/24"), nh(5));
        t
    }

    #[test]
    fn shard_range_math() {
        assert_eq!(
            ShardedRouter::<u32, PrefixDag<u32>>::shard_range(p("10.0.0.0/8")),
            10..11
        );
        assert_eq!(
            ShardedRouter::<u32, PrefixDag<u32>>::shard_range(p("10.1.2.0/24")),
            10..11
        );
        assert_eq!(
            ShardedRouter::<u32, PrefixDag<u32>>::shard_range(p("96.0.0.0/3")),
            96..128
        );
        assert_eq!(
            ShardedRouter::<u32, PrefixDag<u32>>::shard_range(p("0.0.0.0/0")),
            0..256
        );
    }

    #[test]
    fn sharded_lookup_matches_flat_oracle() {
        let flat = sample_fib();
        let sharded: ShardedRouter<u32, PrefixDag<u32>> = ShardedRouter::new(&flat, config());
        for i in 0..20_000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9) ^ (i >> 5);
            assert_eq!(sharded.lookup(addr), flat.lookup(addr), "addr {addr:#x}");
        }
    }

    #[test]
    fn sharded_batch_matches_scalar() {
        let flat = sample_fib();
        let mut sharded: ShardedRouter<u32, PrefixDag<u32>> = ShardedRouter::new(&flat, config());
        let addrs: Vec<u32> = (0..4097u32).map(|i| i.wrapping_mul(0x0101_6B55)).collect();
        let mut out = vec![None; addrs.len()];
        sharded.lookup_batch(&addrs, &mut out);
        for (a, got) in addrs.iter().zip(&out) {
            assert_eq!(*got, flat.lookup(*a), "addr {a:#x}");
        }
    }

    #[test]
    fn publish_all_skips_untouched_shards() {
        let mut sharded: ShardedRouter<u32, PrefixDag<u32>> =
            ShardedRouter::new(&sample_fib(), config());
        sharded.announce(p("203.0.113.128/25"), nh(9)); // exactly one shard
        sharded.publish_all();
        // 256 initial epochs plus one real publish; the other 255 shards
        // reused their snapshots.
        assert_eq!(sharded.stats().epochs, 257);
    }

    #[test]
    fn updates_fan_out_to_covered_shards() {
        let mut sharded: ShardedRouter<u32, PrefixDag<u32>> =
            ShardedRouter::new(&sample_fib(), config());
        // A /6 covers 4 shards; the default route update covers all 256.
        sharded.announce(p("8.0.0.0/6"), nh(9));
        sharded.announce(p("0.0.0.0/0"), nh(8));
        sharded.withdraw(p("10.64.0.0/10"));
        sharded.publish_all();
        let mut oracle = sample_fib();
        oracle.insert(p("8.0.0.0/6"), nh(9));
        oracle.insert(p("0.0.0.0/0"), nh(8));
        oracle.remove(p("10.64.0.0/10"));
        for i in 0..20_000u32 {
            let addr = i.wrapping_mul(0x9E37_79B9);
            assert_eq!(sharded.lookup(addr), oracle.lookup(addr), "addr {addr:#x}");
        }
        assert_eq!(sharded.stats().updates, 4 + 256 + 1);
    }
}
