//! Micro-benchmarks: the succinct primitives behind XBW-b
//! (`access`/`rank`/`select` and the fused `access_rank1` on plain, RRR,
//! and wavelet-tree storage) — these constants are exactly why the paper
//! concludes that XBW-b, though asymptotically optimal, loses to the
//! pointer-based prefix DAG.
//!
//! Three 1 Mbit patterns bracket the regimes the FIB engines hit:
//!
//! * `dense`  — ~50 % pseudorandom bits (worst case for RRR offsets),
//! * `sparse` — 1 % density (RRR's sweet spot, select1's stress case),
//! * `fib`    — the actual `S_I` trie-shape string of a leaf-pushed
//!   DFZ-like FIB, the exact bit statistics the XBW-b lookup loop sees.

use fib_bench::timing::BenchGroup;
use fib_succinct::{BitVec, RrrVec, RsBitVec, WaveletBacking, WaveletShape, WaveletTree};
use fib_trie::{BinaryTrie, ProperNode, ProperTrie};
use fib_workload::rng::Xoshiro256;
use fib_workload::FibSpec;
use std::hint::black_box;

const N: usize = 1 << 20;
const OPS: usize = 1024;

/// Splitmix-style word hash for deterministic pseudorandom patterns.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// The level-order interior/leaf shape string of a real leaf-pushed FIB,
/// cycled up to exactly `N` bits.
fn fib_shape_bits() -> BitVec {
    let mut rng = Xoshiro256::seed_from_u64(0xF1B5);
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(60_000).generate(&mut rng);
    let proper = ProperTrie::from_trie(&trie);
    let mut bits = BitVec::with_capacity(N);
    'fill: loop {
        for (_, node) in proper.bfs_with_depth() {
            bits.push(matches!(node, ProperNode::Leaf(_)));
            if bits.len() == N {
                break 'fill;
            }
        }
    }
    bits
}

fn bit_patterns() -> Vec<(&'static str, BitVec)> {
    vec![
        ("dense", (0..N).map(|i| mix(i as u64) & 1 == 1).collect()),
        ("sparse", (0..N).map(|i| mix(i as u64) % 100 == 0).collect()),
        ("fib", fib_shape_bits()),
    ]
}

fn bit_primitives() {
    for (pattern, bits) in bit_patterns() {
        let rs = RsBitVec::new(bits.clone());
        let rrr = RrrVec::new(&bits);
        let positions: Vec<usize> = (0..OPS).map(|i| (i * 7919) % N).collect();
        let ones = rs.count_ones();
        let zeros = rs.count_zeros();
        let ranks1: Vec<usize> = (0..OPS).map(|i| 1 + (i * 104_729) % ones).collect();
        let ranks0: Vec<usize> = (0..OPS).map(|i| 1 + (i * 104_729) % zeros).collect();

        let group = BenchGroup::new(&format!("bitvec/{pattern}")).throughput_elements(OPS as u64);
        // Rank queries chain: each result perturbs the next position, as
        // in the XBW-b walk where every level's rank decides the next
        // probe. This measures latency, the constant that bounds lookup.
        group.bench_function("plain/rank1", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    acc = acc.wrapping_add(rs.rank1(black_box((p + (acc & 63)) % N)));
                }
                black_box(acc)
            });
        });
        group.bench_function("plain/access_rank1", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    let (bit, rank) = rs.access_rank1(black_box(p));
                    acc = acc.wrapping_add(rank + usize::from(bit));
                }
                black_box(acc)
            });
        });
        group.bench_function("plain/select1", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &q in &ranks1 {
                    acc = acc.wrapping_add(rs.select1(black_box(q)).unwrap_or(0));
                }
                black_box(acc)
            });
        });
        group.bench_function("plain/select0", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &q in &ranks0 {
                    acc = acc.wrapping_add(rs.select0(black_box(q)).unwrap_or(0));
                }
                black_box(acc)
            });
        });
        group.bench_function("rrr/rank1", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    acc = acc.wrapping_add(rrr.rank1(black_box((p + (acc & 63)) % N)));
                }
                black_box(acc)
            });
        });
        group.bench_function("rrr/access", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    acc = acc.wrapping_add(usize::from(rrr.get(black_box(p))));
                }
                black_box(acc)
            });
        });
        group.bench_function("rrr/access_rank1", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    let (bit, rank) = rrr.access_rank1(black_box(p));
                    acc = acc.wrapping_add(rank + usize::from(bit));
                }
                black_box(acc)
            });
        });
        group.bench_function("rrr/select1", |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &q in &ranks1 {
                    acc = acc.wrapping_add(rrr.select1(black_box(q)).unwrap_or(0));
                }
                black_box(acc)
            });
        });
    }
}

fn wavelet_primitives() {
    // Skewed 16-symbol sequence, like a FIB label string.
    let seq: Vec<u64> = (0..N as u64)
        .map(|i| if i % 16 == 0 { 1 + (i / 16) % 15 } else { 0 })
        .collect();
    let variants = [
        (
            "balanced",
            WaveletTree::with_backing(&seq, 16, WaveletShape::Balanced, WaveletBacking::Plain),
        ),
        (
            "huffman",
            WaveletTree::with_backing(&seq, 16, WaveletShape::Huffman, WaveletBacking::Plain),
        ),
        (
            "huffman-rrr",
            WaveletTree::with_backing(&seq, 16, WaveletShape::Huffman, WaveletBacking::Rrr),
        ),
    ];
    let positions: Vec<usize> = (0..OPS).map(|i| (i * 7919) % N).collect();

    let group = BenchGroup::new("wavelet/access").throughput_elements(OPS as u64);
    for (name, wt) in &variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &positions {
                    acc = acc.wrapping_add(wt.access(black_box(p)));
                }
                black_box(acc)
            });
        });
    }

    let group = BenchGroup::new("wavelet/rank").throughput_elements(OPS as u64);
    for (name, wt) in &variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    acc = acc.wrapping_add(wt.rank_sym(0, black_box(p)));
                }
                black_box(acc)
            });
        });
    }
}

fn main() {
    bit_primitives();
    wavelet_primitives();
}
