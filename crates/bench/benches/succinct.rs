//! Micro-benchmarks: the succinct primitives behind XBW-b
//! (`access`/`rank`/`select` on plain, RRR, and wavelet-tree storage) —
//! these constants are exactly why the paper concludes that XBW-b, though
//! asymptotically optimal, loses to the pointer-based prefix DAG.

use fib_bench::timing::BenchGroup;
use fib_succinct::{BitVec, RrrVec, RsBitVec, WaveletBacking, WaveletShape, WaveletTree};
use std::hint::black_box;

const N: usize = 1 << 20;
const OPS: usize = 1024;

fn bit_primitives() {
    let bits: BitVec = (0..N)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % 3 == 0)
        .collect();
    let rs = RsBitVec::new(bits.clone());
    let rrr = RrrVec::new(&bits);
    let positions: Vec<usize> = (0..OPS).map(|i| (i * 7919) % N).collect();
    let ones = rs.count_ones();
    let ranks: Vec<usize> = (0..OPS).map(|i| 1 + (i * 104_729) % ones).collect();

    let group = BenchGroup::new("bitvec").throughput_elements(OPS as u64);
    group.bench_function("plain/rank1", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &positions {
                acc = acc.wrapping_add(rs.rank1(black_box(p)));
            }
            black_box(acc)
        });
    });
    group.bench_function("rrr/rank1", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &positions {
                acc = acc.wrapping_add(rrr.rank1(black_box(p)));
            }
            black_box(acc)
        });
    });
    group.bench_function("plain/select1", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &ranks {
                acc = acc.wrapping_add(rs.select1(black_box(q)).unwrap_or(0));
            }
            black_box(acc)
        });
    });
    group.bench_function("rrr/select1", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &ranks {
                acc = acc.wrapping_add(rrr.select1(black_box(q)).unwrap_or(0));
            }
            black_box(acc)
        });
    });
    group.bench_function("rrr/access", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &positions {
                acc = acc.wrapping_add(usize::from(rrr.get(black_box(p))));
            }
            black_box(acc)
        });
    });
}

fn wavelet_primitives() {
    // Skewed 16-symbol sequence, like a FIB label string.
    let seq: Vec<u64> = (0..N as u64)
        .map(|i| if i % 16 == 0 { 1 + (i / 16) % 15 } else { 0 })
        .collect();
    let variants = [
        (
            "balanced",
            WaveletTree::with_backing(&seq, 16, WaveletShape::Balanced, WaveletBacking::Plain),
        ),
        (
            "huffman",
            WaveletTree::with_backing(&seq, 16, WaveletShape::Huffman, WaveletBacking::Plain),
        ),
        (
            "huffman-rrr",
            WaveletTree::with_backing(&seq, 16, WaveletShape::Huffman, WaveletBacking::Rrr),
        ),
    ];
    let positions: Vec<usize> = (0..OPS).map(|i| (i * 7919) % N).collect();

    let group = BenchGroup::new("wavelet/access").throughput_elements(OPS as u64);
    for (name, wt) in &variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in &positions {
                    acc = acc.wrapping_add(wt.access(black_box(p)));
                }
                black_box(acc)
            });
        });
    }

    let group = BenchGroup::new("wavelet/rank").throughput_elements(OPS as u64);
    for (name, wt) in &variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &p in &positions {
                    acc = acc.wrapping_add(wt.rank_sym(0, black_box(p)));
                }
                black_box(acc)
            });
        });
    }
}

fn main() {
    bit_primitives();
    wavelet_primitives();
}
