//! Micro-benchmarks: construction time of every representation (Lemma 1's
//! O(t) XBW-b build, Lemma 4's O(t) trie-folding, and the baselines).

use fib_bench::timing::BenchGroup;
use fib_core::{PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fib_trie::{BinaryTrie, LcTrie, ProperTrie};
use fib_workload::rng::Xoshiro256;
use fib_workload::FibSpec;
use std::hint::black_box;

const FIB_SIZE: usize = 50_000;

fn build_benches() {
    let mut rng = Xoshiro256::seed_from_u64(0xB01D);
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);
    let dag = PrefixDag::from_trie(&trie, 11);

    let group = BenchGroup::new("build").sample_size(10);
    group.bench_function("leaf-push", |b| {
        b.iter(|| black_box(ProperTrie::from_trie(black_box(&trie))));
    });
    group.bench_function("lc-trie", |b| {
        b.iter(|| black_box(LcTrie::from_trie(black_box(&trie))));
    });
    group.bench_function("xbw-succinct", |b| {
        b.iter(|| black_box(XbwFib::build(black_box(&trie), XbwStorage::Succinct)));
    });
    group.bench_function("xbw-entropy", |b| {
        b.iter(|| black_box(XbwFib::build(black_box(&trie), XbwStorage::Entropy)));
    });
    group.bench_function("pdag-lambda11", |b| {
        b.iter(|| black_box(PrefixDag::from_trie(black_box(&trie), 11)));
    });
    group.bench_function("pdag-lambda0", |b| {
        b.iter(|| black_box(PrefixDag::from_trie(black_box(&trie), 0)));
    });
    group.bench_function("serialize-pdag", |b| {
        b.iter(|| black_box(SerializedDag::from_dag(black_box(&dag))));
    });
    group.bench_function("ortc", |b| {
        b.iter(|| black_box(fib_trie::ortc::compress(black_box(&trie))));
    });
}

fn main() {
    build_benches();
}
