//! Micro-benchmarks: longest-prefix-match throughput of every engine over
//! uniform and locality-skewed key streams (the measurement behind
//! Table 2's Mlookup/s rows), for both the one-address-at-a-time path and
//! the batched data-plane path (`FibLookup::lookup_batch`), whose
//! interleaved multi-lane walks are the whole point of the batch API.

use fib_bench::timing::BenchGroup;
use fib_core::{FibEngine, MultibitDag, PrefixDag, SerializedDag, XbwFib, XbwStorage};
use fib_trie::{BinaryTrie, LcTrie};
use fib_workload::rng::Xoshiro256;
use fib_workload::traces::{uniform, ZipfTrace};
use fib_workload::FibSpec;
use std::hint::black_box;

const FIB_SIZE: usize = 100_000;
const BATCH: usize = 1024;

fn engines_and_traces() {
    let mut rng = Xoshiro256::seed_from_u64(0xBE7C);
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);

    let lc = LcTrie::from_trie(&trie);
    let xbw_succinct = XbwFib::build(&trie, XbwStorage::Succinct);
    let xbw_entropy = XbwFib::build(&trie, XbwStorage::Entropy);
    let dag = PrefixDag::from_trie(&trie, 11);
    let ser = SerializedDag::from_dag(&dag);
    let mb = MultibitDag::from_trie(&trie, 4);

    let rand_keys: Vec<u32> = uniform(&mut rng, BATCH);
    let zipf = ZipfTrace::new(&trie, 1.1);
    let trace_keys: Vec<u32> = zipf.generate(&mut rng, BATCH);

    let engines: Vec<(&str, &dyn FibEngine<u32>)> = vec![
        ("binary-trie", &trie),
        ("fib_trie", &lc),
        ("xbw-succinct", &xbw_succinct),
        ("xbw-entropy", &xbw_entropy),
        ("pdag", &dag),
        ("pdag-serialized", &ser),
        ("multibit-dag", &mb),
    ];

    for (trace_name, keys) in [("rand", &rand_keys), ("trace", &trace_keys)] {
        let group =
            BenchGroup::new(&format!("lookup/{trace_name}")).throughput_elements(BATCH as u64);
        for (name, engine) in &engines {
            group.bench_function(name, |b| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for &k in keys.iter() {
                        acc = acc.wrapping_add(u64::from(
                            engine.lookup(black_box(k)).map_or(0, |nh| nh.index()),
                        ));
                    }
                    black_box(acc)
                });
            });
        }
    }

    // The batched path: the flat-layout engines (serialized pDAG, LC-trie,
    // multibit DAG) run their interleaved overrides; the rest exercise the
    // default loop so regressions in either path show up side by side.
    let mut out = vec![None; BATCH];
    for (trace_name, keys) in [("rand", &rand_keys), ("trace", &trace_keys)] {
        let group = BenchGroup::new(&format!("lookup_batch/{trace_name}"))
            .throughput_elements(BATCH as u64);
        for (name, engine) in &engines {
            group.bench_function(name, |b| {
                b.iter(|| {
                    engine.lookup_batch(black_box(keys), &mut out);
                    black_box(out.last().copied())
                });
            });
        }
    }

    // The software-pipelined stream path: identical results to
    // lookup_batch, plus a first-touch prefetch stage for structures
    // beyond the cache-residency threshold (below it, the path delegates
    // to lookup_batch, so this doubles as a delegation-overhead check).
    for (trace_name, keys) in [("rand", &rand_keys), ("trace", &trace_keys)] {
        let group = BenchGroup::new(&format!("lookup_stream/{trace_name}"))
            .throughput_elements(BATCH as u64);
        for (name, engine) in &engines {
            group.bench_function(name, |b| {
                b.iter(|| {
                    engine.lookup_stream(black_box(keys), &mut out);
                    black_box(out.last().copied())
                });
            });
        }
    }

    // Image-backed serving: the same engines, written to `fibimage/v1`
    // bytes and answered through the zero-copy views. The acceptance bar
    // is ≤ 5% of the owned engines above — views and owned engines run
    // the same walk code over the same word encodings, so anything beyond
    // noise here is a layout regression in the image path.
    image_views(&trie, &rand_keys);
}

fn image_views(trie: &BinaryTrie<u32>, keys: &[u32]) {
    use fib_core::{write_image, FibBuild, FibImage, FibLookup, ImageCodec};

    fn bench_view<E: ImageCodec<u32> + FibBuild<u32>>(
        group: &BenchGroup,
        name: &str,
        trie: &BinaryTrie<u32>,
        config: &fib_core::BuildConfig,
        keys: &[u32],
    ) {
        let engine = E::build(trie, config);
        let bytes = write_image(&engine, None, 0).expect("image encodes");
        let image = FibImage::from_bytes(&bytes).expect("image loads");
        let view = E::view(&image).expect("view assembles");
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &k in keys {
                    acc = acc.wrapping_add(u64::from(
                        view.lookup(black_box(k)).map_or(0, |nh| nh.index()),
                    ));
                }
                black_box(acc)
            });
        });
    }

    let group = BenchGroup::new("lookup_image/rand").throughput_elements(BATCH as u64);
    let config = fib_core::BuildConfig::default();
    let succinct = fib_core::BuildConfig {
        xbw_storage: XbwStorage::Succinct,
        ..config
    };
    bench_view::<XbwFib<u32>>(&group, "xbw-succinct", trie, &succinct, keys);
    bench_view::<XbwFib<u32>>(&group, "xbw-entropy", trie, &config, keys);
    bench_view::<SerializedDag<u32>>(&group, "pdag-serialized", trie, &config, keys);
    bench_view::<MultibitDag<u32>>(&group, "multibit-dag", trie, &config, keys);
    bench_view::<LcTrie<u32>>(&group, "fib_trie", trie, &config, keys);
}

fn main() {
    engines_and_traces();
}
