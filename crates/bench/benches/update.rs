//! Criterion micro-benchmarks: FIB update cost — the prefix DAG across
//! barrier settings (Fig. 5's y-axis) against the plain binary trie.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use fib_core::PrefixDag;
use fib_trie::BinaryTrie;
use fib_workload::updates::{bgp_sequence, random_sequence, UpdateOp};
use fib_workload::FibSpec;
use rand::SeedableRng;

const FIB_SIZE: usize = 100_000;
const SEQ: usize = 256;

fn apply_dag(dag: &mut PrefixDag<u32>, seq: &[UpdateOp<u32>]) {
    for op in seq {
        match *op {
            UpdateOp::Announce(p, nh) => {
                dag.insert(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                dag.remove(p);
            }
        }
    }
}

fn update_benches(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x0BDA);
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);
    let rand_seq: Vec<UpdateOp<u32>> = random_sequence(&mut rng, SEQ, 4);
    let bgp_seq: Vec<UpdateOp<u32>> = bgp_sequence(&mut rng, &trie, SEQ);

    for (seq_name, seq) in [("random", &rand_seq), ("bgp", &bgp_seq)] {
        let mut group = c.benchmark_group(format!("update/{seq_name}"));
        group.sample_size(10);
        for lambda in [0u8, 8, 11, 16, 32] {
            let dag = PrefixDag::from_trie(&trie, lambda);
            group.bench_with_input(BenchmarkId::new("pdag-lambda", lambda), seq, |b, seq| {
                b.iter_batched(
                    || dag.clone(),
                    |mut dag| apply_dag(&mut dag, seq),
                    BatchSize::LargeInput,
                );
            });
        }
        group.bench_with_input(BenchmarkId::from_parameter("binary-trie"), seq, |b, seq| {
            b.iter_batched(
                || trie.clone(),
                |mut t| {
                    for op in seq.iter() {
                        op.apply(&mut t);
                    }
                },
                BatchSize::LargeInput,
            );
        });
        group.finish();
    }
}

criterion_group!(benches, update_benches);
criterion_main!(benches);
