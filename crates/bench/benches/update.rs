//! Micro-benchmarks: FIB update cost — the prefix DAG across barrier
//! settings (Fig. 5's y-axis) against the plain binary trie, plus churn
//! through the router core (control-plane update + epoch snapshot
//! publishing), which is the path a deployed software router runs.

use fib_bench::timing::BenchGroup;
use fib_core::{BuildConfig, PrefixDag};
use fib_router::{Router, RouterConfig};
use fib_trie::BinaryTrie;
use fib_workload::rng::Xoshiro256;
use fib_workload::updates::{bgp_sequence, random_sequence, UpdateOp};
use fib_workload::FibSpec;

const FIB_SIZE: usize = 100_000;
const SEQ: usize = 256;

fn apply_dag(dag: &mut PrefixDag<u32>, seq: &[UpdateOp<u32>]) {
    for op in seq {
        match *op {
            UpdateOp::Announce(p, nh) => {
                dag.insert(p, nh);
            }
            UpdateOp::Withdraw(p) => {
                dag.remove(p);
            }
        }
    }
}

fn apply_router(router: &mut Router<u32, PrefixDag<u32>>, seq: &[UpdateOp<u32>]) {
    for op in seq {
        match *op {
            UpdateOp::Announce(p, nh) => router.announce(p, nh),
            UpdateOp::Withdraw(p) => router.withdraw(p),
        }
    }
    router.publish();
}

fn update_benches() {
    let mut rng = Xoshiro256::seed_from_u64(0x0BDA);
    let trie: BinaryTrie<u32> = FibSpec::dfz_like(FIB_SIZE).generate(&mut rng);
    let rand_seq: Vec<UpdateOp<u32>> = random_sequence(&mut rng, SEQ, 4);
    let bgp_seq: Vec<UpdateOp<u32>> = bgp_sequence(&mut rng, &trie, SEQ);

    for (seq_name, seq) in [("random", &rand_seq), ("bgp", &bgp_seq)] {
        let group = BenchGroup::new(&format!("update/{seq_name}")).sample_size(10);
        for lambda in [0u8, 8, 11, 16, 32] {
            let dag = PrefixDag::from_trie(&trie, lambda);
            group.bench_function(&format!("pdag-lambda/{lambda}"), |b| {
                b.iter_batched(|| dag.clone(), |mut dag| apply_dag(&mut dag, seq));
            });
        }
        group.bench_function("binary-trie", |b| {
            b.iter_batched(
                || trie.clone(),
                |mut t| {
                    for op in seq.iter() {
                        op.apply(&mut t);
                    }
                },
            );
        });
    }

    // Churn under snapshots: absorb the feed through the router's control
    // plane and cut one epoch at the end — in-place λ-barrier updates plus
    // the engine clone + Arc swap of `publish`.
    let router_config = RouterConfig {
        build: BuildConfig::with_lambda(11),
        publish_every: None,
        degradation_threshold: 0.25,
        background_rebuild: false,
    };
    let group = BenchGroup::new("router_churn").sample_size(10);
    for (seq_name, seq) in [("random", &rand_seq), ("bgp", &bgp_seq)] {
        group.bench_function(&format!("pdag-snapshots/{seq_name}"), |b| {
            b.iter_batched(
                || Router::<u32, PrefixDag<u32>>::new(trie.clone(), router_config),
                |mut router| apply_router(&mut router, seq),
            );
        });
    }
}

fn main() {
    update_benches();
}
