//! Shared infrastructure for the table/figure harness binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation
//! (Section 5) and prints it as an aligned text table with the published
//! numbers alongside, so shape-level agreement is visible at a glance:
//!
//! * `table1` — storage sizes (I, E, XBW-b, pDAG, ν, η) for all 11 FIBs,
//! * `table2` — the lookup benchmark (sizes, depths, Mlps, cycles, cache
//!   misses) on the taz stand-in,
//! * `fig5`   — update time vs. memory across λ = 0…32,
//! * `fig6`   — size and compression efficiency vs. Bernoulli entropy,
//! * `fig7`   — the same in the string model,
//! * `ablation` — λ-formula and storage-backend ablations (not in the
//!   paper; supports the design discussion of §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use std::time::Instant;

/// Formats and prints an aligned table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", line.join("  "));
    };
    fmt_row(&header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
    for row in rows {
        fmt_row(row);
    }
}

/// Writes rows as tab-separated values to `out/<name>.tsv` (for plotting),
/// creating the directory if needed. Errors are reported, not fatal.
pub fn write_tsv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("out");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.tsv"));
    let mut content = header.join("\t");
    content.push('\n');
    for row in rows {
        content.push_str(&row.join("\t"));
        content.push('\n');
    }
    match std::fs::write(&path, content) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Times a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

/// Measures the mean nanoseconds per call of `f` over `iters` calls,
/// using a black box to keep the optimizer honest.
pub fn ns_per_call(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Formats a byte count as KBytes with one decimal.
#[must_use]
pub fn kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats a float with the given precision.
#[must_use]
pub fn f(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Builds a paper-instance stand-in FIB, optionally scaled down for quick
/// runs (`scale = 1.0` reproduces the published prefix count).
///
/// # Panics
/// Panics if the instance name is unknown.
#[must_use]
pub fn instance_fib(name: &str, scale: f64, seed: u64) -> fib_trie::BinaryTrie<u32> {
    let mut inst = fib_workload::instances::by_name(name)
        .unwrap_or_else(|| panic!("unknown paper instance '{name}'"));
    inst.n_prefixes = ((inst.n_prefixes as f64 * scale) as usize).max(64);
    inst.build(seed)
}

/// Parses a `--scale=X` argument from the command line, defaulting to 1.0.
#[must_use]
pub fn scale_arg() -> f64 {
    for arg in std::env::args() {
        if let Some(v) = arg.strip_prefix("--scale=") {
            match v.parse::<f64>() {
                Ok(s) if s > 0.0 && s <= 1.0 => return s,
                _ => eprintln!("ignoring bad --scale value '{v}' (want 0 < s ≤ 1)"),
            }
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(kb(2048), "2.0");
        assert_eq!(f(1.23456, 2), "1.23");
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
